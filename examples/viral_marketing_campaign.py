"""Viral marketing: pick a reliable seed set for a campaign.

The paper's motivating scenario (after Watts): instead of a handful of
superstar influencers, target many ordinary users with small but *reliable*
spheres of influence.  This example

1. loads a scaled Slashdot-like social graph with weighted-cascade
   probabilities,
2. selects 25 seeds with both InfMax_std (classic greedy) and InfMax_TC
   (max-cover over spheres of influence),
3. scores both seed sets on fresh worlds: expected spread AND stability
   (the expected Jaccard distance between the typical cascade of the seed
   set and fresh random cascades — lower is more predictable).

Run:  python examples/viral_marketing_campaign.py
"""

from repro import CascadeIndex, evaluate_spread_curve, infmax_std, infmax_tc
from repro.core.stability import seed_set_stability
from repro.datasets.registry import load_setting
from repro.utils.tables import format_series


def main() -> None:
    setting = load_setting("Slashdot-W", scale=0.12)
    graph = setting.graph
    print(f"Dataset {setting.name}: {graph.num_nodes} nodes, {graph.num_edges} arcs")
    print(f"Probabilities: {setting.probability_source}\n")

    k = 25
    num_samples = 64

    # Both methods select from the same sampled worlds (the paper protocol).
    select_index = CascadeIndex.build(graph, num_samples, seed=1)
    trace_std = infmax_std(select_index, k)
    trace_tc, spheres = infmax_tc(select_index, k)
    seeds_std = trace_std.seeds
    seeds_tc = [int(v) for v in trace_tc.selected]

    # Fresh evaluation worlds, shared by both seed sequences.
    eval_index = CascadeIndex.build(graph, num_samples, seed=1000, reduce=False)
    curve_std = evaluate_spread_curve(graph, seeds_std, index=eval_index)
    curve_tc = evaluate_spread_curve(graph, seeds_tc, index=eval_index)

    checkpoints = [1, 5, 10, 15, 20, 25]
    print(
        format_series(
            "|S|",
            checkpoints,
            {
                "spread InfMax_std": [float(curve_std[c - 1]) for c in checkpoints],
                "spread InfMax_TC": [float(curve_tc[c - 1]) for c in checkpoints],
            },
            precision=2,
            title="Expected spread by seed-set size (fresh worlds)",
        )
    )

    # Stability of the full seed sets (Figure 8's measure).
    stability_index = CascadeIndex.build(graph, num_samples, seed=2000, reduce=False)
    _, cost_std = seed_set_stability(graph, seeds_std, stability_index, 128, seed=7)
    _, cost_tc = seed_set_stability(graph, seeds_tc, stability_index, 128, seed=7)
    print("\nSeed-set stability (expected Jaccard cost; lower = more reliable)")
    print(f"  InfMax_std: {cost_std:.4f}")
    print(f"  InfMax_TC : {cost_tc:.4f}")

    # Which individual seeds are the most reliable influencers?
    print("\nMost reliable InfMax_TC seeds (by sphere cost):")
    for v in sorted(seeds_tc, key=lambda v: spheres[v].cost)[:5]:
        s = spheres[v]
        print(f"  node {v:4d}: sphere size {s.size:3d}, cost {s.cost:.3f}")


if __name__ == "__main__":
    main()
