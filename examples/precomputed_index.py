"""Two marketing campaigns served from one saved cascade index.

Section 8 of the paper: "having the spheres of influence precomputed and
stored in an index might provide a direct solution to several variants of
influence maximization ... when the next campaign is run ... we can again
reuse the same spheres."  This script plays that scenario end to end:

1. the *analytics team* samples 128 possible worlds once, builds the
   cascade index in parallel, and saves it as a memory-mapped store;
2. *campaign A* (a product launch) loads the store — zero-copy, in
   milliseconds — and picks 5 seeds with InfMax_TC;
3. *campaign B* (a retention push) reuses the very same file for a
   different budget and a stability read-out, and its sphere store carries
   a provenance record proving both campaigns used identical worlds;
4. a quarter later the team tightens the approximation by appending 128
   more worlds to the store in place — no rebuild.

Run:  python examples/precomputed_index.py
"""

import tempfile
from pathlib import Path

from repro import CascadeIndex, TypicalCascadeComputer, infmax_tc
from repro.graph.generators import powerlaw_outdegree_digraph
from repro.problearn.assign import assign_weighted_cascade
from repro.store import append_worlds, read_header

SAMPLES = 128


def main() -> None:
    graph = assign_weighted_cascade(
        powerlaw_outdegree_digraph(300, mean_degree=6.0, seed=3)
    )
    workdir = Path(tempfile.mkdtemp(prefix="repro-index-"))
    store = workdir / "worlds.cidx"

    # -- once: build and persist the index ---------------------------------
    index = CascadeIndex.build(graph, SAMPLES, seed=2016, n_jobs=2)
    index.save(store)
    header = read_header(store)
    print(f"saved index: {store}")
    print(f"  {header.num_nodes} nodes, {header.num_worlds} worlds")
    print(f"  content digest: {header.content_digest[:23]}...")

    # -- campaign A: product launch, budget k=5 ----------------------------
    trace_a, spheres_a = infmax_tc(str(store), k=5)  # loads the store itself
    print(f"\ncampaign A seeds (k=5): {trace_a.selected}")
    print(f"  covered {int(trace_a.coverage[-1])} of {header.num_nodes} nodes")

    # -- campaign B: retention push, different budget, same worlds ---------
    loaded = CascadeIndex.load(store)
    computer = TypicalCascadeComputer(loaded)
    trace_b, _ = infmax_tc(loaded, k=10)
    sphere_store = computer.compute_store(nodes=trace_b.selected)
    print(f"\ncampaign B seeds (k=10): {trace_b.selected}")
    most_stable = sphere_store.most_reliable(3, min_size=1)
    print(f"  most stable seeds: {most_stable}")
    prov = sphere_store.provenance
    assert prov is not None and prov.content_digest == header.content_digest
    print(f"  provenance digest matches the saved index: {prov.num_worlds} worlds")

    # -- next quarter: tighten the guarantee in place ----------------------
    append_worlds(store, SAMPLES, n_jobs=2)
    print(f"\nappended {SAMPLES} worlds: store now holds "
          f"{read_header(store).num_worlds} "
          f"(bit-identical to a fresh {2 * SAMPLES}-sample build)")


if __name__ == "__main__":
    main()
