"""Client walkthrough for the online sphere-query service — stdlib only.

Start a server in another terminal (or let this script start one for you)::

    python -m repro index build --setting NetHEPT-W --samples 64 \
        --scale 0.1 --out /tmp/nethept.cidx
    python -m repro serve /tmp/nethept.cidx --port 8314

then run::

    PYTHONPATH=src python examples/serve_client.py http://127.0.0.1:8314

With no argument the script builds a small in-process index, serves it on
an ephemeral port, runs the same queries and shuts down — so it also works
as a self-contained demo.
"""

import json
import sys
import threading
import urllib.error
import urllib.request


def get(base: str, path: str):
    """GET a JSON endpoint, returning (status, parsed payload)."""
    try:
        with urllib.request.urlopen(base + path, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def post_json(base: str, path: str, payload):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("ascii"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def run_queries(base: str) -> None:
    status, health = get(base, "/healthz")
    print(f"healthz [{status}]: {health['num_nodes']} nodes, "
          f"{health['num_worlds']} worlds, "
          f"{health['precomputed_spheres']} precomputed spheres")

    node = 5
    status, sphere = get(base, f"/sphere/{node}")
    print(f"sphere/{node} [{status}]: size {sphere['size']}, "
          f"cost {sphere['cost']:.4f}")

    status, stats = get(base, f"/cascades/{node}")
    print(f"cascades/{node} [{status}]: sizes min {stats['size_min']} "
          f"mean {stats['size_mean']:.2f} max {stats['size_max']}")

    status, batch = post_json(base, "/spheres", {"nodes": [1, 2, 3]})
    print(f"spheres batch [{status}]: {batch['count']} results")

    status, missing = get(base, "/sphere/10000000")
    print(f"sphere/10000000 [{status}]: {missing['error']['message']}")

    # /most-reliable needs a precomputed sphere store (serve --spheres);
    # without one the server answers 400 and explains.
    status, reliable = get(base, "/most-reliable?count=5")
    if status == 200:
        print(f"most-reliable [{status}]: {reliable['nodes']}")
    else:
        print(f"most-reliable [{status}]: {reliable['error']['message']}")

    with urllib.request.urlopen(base + "/metrics", timeout=30) as response:
        metrics = response.read().decode()
    for sample in ("repro_serve_store_hits_total",
                   "repro_serve_computes_total",
                   "repro_serve_cache_hits_total"):
        line = next(
            line for line in metrics.splitlines()
            if line.startswith(sample + " ")
        )
        print(f"metrics: {line}")


def main() -> None:
    if len(sys.argv) > 1:
        run_queries(sys.argv[1].rstrip("/"))
        return

    # Self-contained mode: build, serve on an ephemeral port, query, stop.
    from repro.cascades.index import CascadeIndex
    from repro.graph.generators import powerlaw_outdegree_digraph
    from repro.problearn.assign import assign_fixed
    from repro.serve.app import SphereService, make_server

    graph = assign_fixed(
        powerlaw_outdegree_digraph(120, mean_degree=5.0, seed=7), 0.12
    )
    index = CascadeIndex.build(graph, 16, seed=42)
    server = make_server(SphereService(index, cache_size=128, max_inflight=4))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    print(f"demo server on {base}")
    try:
        run_queries(base)
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


if __name__ == "__main__":
    main()
