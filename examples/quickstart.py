"""Quickstart: spheres of influence on the paper's Figure 1 graph.

Builds the 5-node probabilistic graph from Figure 1 of the paper, computes
the typical cascade (sphere of influence) of node v5, verifies it against
the exact brute-force optimum, and runs both influence maximisers.

Run:  python examples/quickstart.py
"""

from itertools import combinations

from repro import CascadeIndex, TypicalCascadeComputer, infmax_std, infmax_tc
from repro.graph.generators import figure1_graph
from repro.median.cost import exact_expected_cost


def main() -> None:
    graph = figure1_graph()
    print(f"Graph: {graph.num_nodes} nodes, {graph.num_edges} arcs")
    for u, v, p in graph.edges():
        print(f"  v{u + 1} -> v{v + 1}  p = {p}")

    # Algorithm 1: sample 500 possible worlds and index their condensations.
    index = CascadeIndex.build(graph, 500, seed=42)

    # Algorithm 2: the typical cascade of v5 (node id 4).
    computer = TypicalCascadeComputer(index)
    sphere = computer.compute(4)
    names = ", ".join(f"v{m + 1}" for m in sphere.members)
    print(f"\nSphere of influence of v5: {{{names}}}")
    print(f"  empirical cost (stability): {sphere.cost:.4f}")
    print(f"  mean sampled cascade size : {sphere.sample_size_mean:.2f}")

    # The graph is tiny, so we can brute-force the exact optimal median.
    best_cost, best_set = min(
        (exact_expected_cost(graph, 4, comb), comb)
        for r in range(graph.num_nodes + 1)
        for comb in combinations(range(graph.num_nodes), r)
    )
    best_names = ", ".join(f"v{m + 1}" for m in best_set)
    print(f"\nBrute-force optimum: {{{best_names}}} with cost {best_cost:.4f}")
    assert sphere.as_set() == set(best_set), "sampling missed the optimum!"
    print("The sampled Jaccard median recovers the exact optimum.")

    # Influence maximisation, both ways.
    k = 2
    trace_std = infmax_std(index, k)
    trace_tc, _ = infmax_tc(index, k)
    print(f"\nInfMax_std seeds (k={k}): {[f'v{s + 1}' for s in trace_std.seeds]}")
    print(f"InfMax_TC  seeds (k={k}): {[f'v{int(s) + 1}' for s in trace_tc.selected]}")


if __name__ == "__main__":
    main()
