"""Outbreak response: reliability search + targeted vaccination.

Combines two applications the paper's related-work/future-work sections
point at, both running on the same precomputed cascade index:

1. **Reliability search** (Khan et al., EDBT 2014): which people will the
   outbreak reach with probability at least eta?  Useful for tiered
   response (quarantine the eta=0.5 ring, monitor the eta=0.1 ring).
2. **Vaccination** (the DAVA problem, Zhang & Prakash, SDM 2014): choose k
   people to vaccinate so the expected outbreak size drops the most, and
   compare against the naive highest-degree heuristic.

Run:  python examples/outbreak_response.py
"""

import numpy as np

from repro import CascadeIndex
from repro.cascades.reliability_search import reliability_search
from repro.core.vaccination import (
    degree_vaccination_baseline,
    greedy_vaccination,
)
from repro.graph.generators import forest_fire_digraph
from repro.problearn.assign import assign_fixed
from repro.utils.tables import format_table


def main() -> None:
    contacts = forest_fire_digraph(
        350, forward_prob=0.3, backward_prob=0.15, seed=11, max_burn=25
    )
    graph = assign_fixed(contacts, 0.1)
    print(f"Contact network: {graph.num_nodes} people, {graph.num_edges} contacts")

    # Two index cases, picked among well-connected nodes.
    degrees = graph.out_degrees()
    infected = [int(v) for v in np.argsort(degrees)[::-1][:2]]
    print(f"Index cases: {infected}\n")

    # --- tiered reliability search -----------------------------------------
    index = CascadeIndex.build(graph, 192, seed=12)
    rows = []
    for eta in (0.9, 0.5, 0.25, 0.1):
        ring = reliability_search(index, infected, eta)
        rows.append((f"eta >= {eta}", int(ring.size)))
    print(
        format_table(
            ["reliability ring", "people"],
            rows,
            title="Who does the outbreak reach? (tiered response rings)",
        )
    )

    # --- vaccination: greedy vs highest-degree ------------------------------
    k = 4
    greedy = greedy_vaccination(graph, infected, k, num_worlds=96, seed=13)
    naive = degree_vaccination_baseline(graph, infected, k, num_worlds=96, seed=13)

    print(
        "\n"
        + format_table(
            ["policy", "vaccinated", "expected infections", "saved"],
            [
                (
                    "greedy (DAVA-style)",
                    str(greedy.vaccinated),
                    float(greedy.expected_infections[-1]),
                    greedy.saved,
                ),
                (
                    "highest degree",
                    str(naive.vaccinated),
                    float(naive.expected_infections[-1]),
                    naive.saved,
                ),
            ],
            precision=1,
            title=f"Vaccinating {k} people (baseline "
            f"{greedy.baseline_infections:.1f} expected infections)",
        )
    )
    assert greedy.expected_infections[-1] <= naive.expected_infections[-1] + 1e-9
    print("\nGreedy vaccination dominates the naive heuristic, as expected.")


if __name__ == "__main__":
    main()
