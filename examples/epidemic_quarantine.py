"""Epidemics: who should be quarantined when a node gets infected?

The paper's introduction motivates spheres of influence beyond marketing:
"given an ebola case, which other individuals should we quarantine?".  The
sphere of influence of the index case is exactly the set that is closest
(in expected Jaccard distance) to the realised outbreak.

This example compares three quarantine policies on a contact network:

* DIRECT   — quarantine the direct contacts of the index case;
* TOP-PROB — quarantine everyone whose infection probability exceeds 1/2
             (the majority set of Section 5, observation 4);
* SPHERE   — quarantine the typical cascade (our method).

Each policy is scored by its expected Jaccard distance to fresh simulated
outbreaks: lower means the policy matches what actually happens.

Run:  python examples/epidemic_quarantine.py
"""

import numpy as np

from repro import CascadeIndex, TypicalCascadeComputer
from repro.cascades.reliability import reachability_probabilities
from repro.graph.generators import forest_fire_digraph
from repro.median.cost import monte_carlo_expected_cost
from repro.problearn.assign import assign_fixed
from repro.utils.tables import format_table


def main() -> None:
    # A contact network: forest-fire topology, uniform transmission 0.12.
    contacts = forest_fire_digraph(400, forward_prob=0.35, backward_prob=0.2, seed=3)
    graph = assign_fixed(contacts, 0.12)
    print(f"Contact network: {graph.num_nodes} people, {graph.num_edges} contacts")

    # Pick a well-connected index case.
    index_case = int(np.argmax(graph.out_degrees()))
    print(f"Index case: person {index_case} "
          f"(out-degree {graph.out_degree(index_case)})\n")

    # Policy 1: direct contacts.
    direct = np.union1d(graph.successors(index_case), [index_case])

    # Policy 2: infection probability above 1/2.
    probs = reachability_probabilities(graph, index_case, 500, seed=4)
    top_prob = np.flatnonzero(probs >= 0.5).astype(np.int64)

    # Policy 3: the sphere of influence.
    cascade_index = CascadeIndex.build(graph, 256, seed=5)
    sphere = TypicalCascadeComputer(cascade_index).compute(index_case)

    policies = {
        "DIRECT (contacts)": direct,
        "TOP-PROB (p >= 1/2)": top_prob,
        "SPHERE (typical cascade)": sphere.members,
    }

    rows = []
    for name, quarantine_set in policies.items():
        cost = monte_carlo_expected_cost(
            graph, index_case, quarantine_set, 600, seed=6
        )
        rows.append((name, int(len(quarantine_set)), cost))

    print(
        format_table(
            ["Policy", "people quarantined", "expected mismatch (Jaccard)"],
            rows,
            title="Quarantine policies vs simulated outbreaks (lower = better)",
        )
    )
    best = min(rows, key=lambda r: r[2])
    print(f"\nBest-matching policy: {best[0]}")
    assert best[0].startswith("SPHERE") or best[2] <= rows[2][2] + 1e-9


if __name__ == "__main__":
    main()
