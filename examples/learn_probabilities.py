"""Learning influence probabilities from an activity log.

The paper evaluates on probabilities *learnt* from past user activity
(Digg votes, Flixster ratings, Twitter reshares) using two learners:
Saito et al.'s EM and Goyal et al.'s frequentist model.  This example

1. plants ground-truth probabilities on a Digg-like directed graph,
2. simulates an activity log of IC cascades over it,
3. fits both learners on the same log,
4. compares the learnt probability distributions (the Figure 3 CDFs) and
   the estimation error against the planted truth.

Run:  python examples/learn_probabilities.py
"""

import numpy as np

from repro.datasets.synth import build_digg_like, plant_ground_truth
from repro.problearn.goyal import learn_goyal
from repro.problearn.logs import generate_action_log
from repro.problearn.saito import learn_saito
from repro.utils.tables import format_table


def cdf_at(probs: np.ndarray, grid) -> list[float]:
    return [float((probs <= x).mean()) for x in grid]


def estimation_error(truth, learnt) -> float:
    """Mean absolute error over the arcs the learner kept."""
    errors = []
    for u, v, p in learnt.edges():
        errors.append(abs(p - truth.edge_probability(u, v)))
    return float(np.mean(errors)) if errors else float("nan")


def main() -> None:
    topology = build_digg_like(scale=0.12)
    truth = plant_ground_truth(topology, mean=0.10, seed=1)
    print(
        f"Ground-truth graph: {truth.num_nodes} nodes, {truth.num_edges} arcs, "
        f"mean p = {truth.probs.mean():.3f}"
    )

    log = generate_action_log(truth, num_items=400, seed=2, initial_adopters=2)
    print(f"Synthetic activity log: {log.num_items} items, {log.num_actions} actions\n")

    saito_fit = learn_saito(truth, log, max_iterations=50)
    goyal_graph = learn_goyal(truth, log)
    print(f"Saito EM: {saito_fit.iterations} iterations, "
          f"{saito_fit.graph.num_edges} arcs kept")
    print(f"Goyal   : {goyal_graph.num_edges} arcs kept\n")

    grid = [0.01, 0.05, 0.1, 0.2, 0.5, 1.0]
    rows = [
        ["truth", *cdf_at(truth.probs, grid)],
        ["Saito", *cdf_at(saito_fit.graph.probs, grid)],
        ["Goyal", *cdf_at(goyal_graph.probs, grid)],
    ]
    print(
        format_table(
            ["probabilities", *[f"P[p<={x}]" for x in grid]],
            rows,
            title="CDF of edge probabilities (the Figure 3 comparison)",
        )
    )

    print("\nMean absolute estimation error (kept arcs only):")
    print(f"  Saito EM : {estimation_error(truth, saito_fit.graph):.4f}")
    print(f"  Goyal    : {estimation_error(truth, goyal_graph):.4f}")
    print(
        "\nAs in the paper, the frequentist model credits correlated "
        "activations to every candidate arc, so its probabilities run higher "
        "than the EM estimates."
    )


if __name__ == "__main__":
    main()
