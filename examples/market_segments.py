"""Reusing precomputed spheres across campaigns (the paper's Section 8).

The conclusions of the paper sketch two extensions that fall out of having
the spheres of influence precomputed and stored in an index:

* **weighted max-cover** — when market segments have different values, run
  a weighted cover over the same spheres, no recomputation needed;
* **budgeted max-cover** — when different nodes have different costs to
  become a seed, run the budgeted cost-benefit greedy.

This example precomputes the spheres once on a Twitter-like graph and then
answers three different campaign briefs against the same index.

Run:  python examples/market_segments.py
"""

import numpy as np

from repro import CascadeIndex, TypicalCascadeComputer
from repro.influence.maxcover import (
    budgeted_greedy_max_cover,
    greedy_max_cover,
    weighted_greedy_max_cover,
)
from repro.datasets.registry import load_setting
from repro.utils.rng import derive_rng


def main() -> None:
    setting = load_setting("Twitter-S", scale=0.12)
    graph = setting.graph
    n = graph.num_nodes
    print(f"Dataset {setting.name}: {n} nodes, {graph.num_edges} arcs")

    # Precompute the spheres ONCE.
    index = CascadeIndex.build(graph, 64, seed=1)
    spheres = TypicalCascadeComputer(index).compute_all()
    family = {v: s.members for v, s in spheres.items()}
    print(f"Precomputed {len(family)} spheres of influence\n")

    k = 10
    rng = derive_rng(99)

    # Campaign 1: plain reach maximisation.
    plain = greedy_max_cover(family, k, n)
    print(f"Campaign 1 (uniform value): seeds {list(plain.selected)}")
    print(f"  users covered: {plain.coverage[-1]:.0f} of {n}\n")

    # Campaign 2: a premium segment is worth 10x.  Same spheres, new values.
    values = np.ones(n)
    premium = rng.choice(n, size=n // 5, replace=False)
    values[premium] = 10.0
    weighted = weighted_greedy_max_cover(family, k, n, values)
    covered = set()
    for key in weighted.selected:
        covered |= set(family[key].tolist())
    premium_covered = len(covered & set(premium.tolist()))
    print(f"Campaign 2 (premium segment x10): seeds {list(weighted.selected)}")
    print(f"  value covered: {weighted.coverage[-1]:.0f}")
    print(f"  premium users covered: {premium_covered} of {len(premium)}\n")

    # Campaign 3: celebrity seeds cost more.  Budgeted cover, budget = 12.
    costs = {v: 1.0 + 0.5 * spheres[v].size for v in family}
    budgeted = budgeted_greedy_max_cover(family, 12.0, n, costs)
    spent = sum(costs[v] for v in budgeted.selected)
    print(f"Campaign 3 (budget 12.0, cost grows with sphere size):")
    print(f"  seeds: {list(budgeted.selected)}")
    print(f"  users covered: {budgeted.coverage[-1]:.0f}, budget spent: {spent:.1f}")
    assert spent <= 12.0


if __name__ == "__main__":
    main()
