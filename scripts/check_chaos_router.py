#!/usr/bin/env python
"""Chaos gate for the sharded serving tier (.github/workflows/ci.yml).

Partitions a tiny store with ``repro index shard``, runs a real
``python -m repro serve-fleet`` process (frontend router + three
supervised worker processes), and verifies the *either correct or
refused* contract one level up the stack:

1. **faulted hammer** — with ``REPRO_FAULTS`` arming injected
   ``router.forward`` transport failures, every routed response is
   byte-identical to a serially-computed single-process reference or an
   explicit JSON 4xx/5xx; the refused nodes recover on retry, and the
   injected failures are visible in the router's ``/metrics``;
2. **worker SIGKILL mid-hammer** — one shard's worker is killed while
   traffic is in flight; every response during the outage is correct
   bytes or an explicit refusal (no hangs, no garbage), the supervisor
   respawns the worker with a new pid, and the fleet returns to
   ``healthz: ok`` with full byte parity;
3. **rolling SIGHUP reload mid-hammer** — a rolling generation-checked
   reload sweeps the fleet while requests are in flight; zero requests
   are dropped or refused, and every shard reports ``store_generation``
   2 afterwards;
4. **loadgen smoke** — ``scripts/loadgen.py`` drives the router open
   loop and writes a well-formed ``BENCH_router.json``;
5. **graceful drain** — SIGTERM shuts the router and all workers down
   cleanly (exit code 0, drain banner printed).

Run from the repository root::

    PYTHONPATH=src python scripts/check_chaos_router.py
"""

from __future__ import annotations

import json
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from check_serve import check, fetch, metric_value, subprocess_env  # noqa: E402

from repro.cascades.index import CascadeIndex  # noqa: E402
from repro.core.typical_cascade import TypicalCascadeComputer  # noqa: E402
from repro.graph.generators import powerlaw_outdegree_digraph  # noqa: E402
from repro.problearn.assign import assign_fixed  # noqa: E402
from repro.runtime.faults import ENV_VAR, FaultPlan, FaultSpec  # noqa: E402
from repro.serve import query as q  # noqa: E402

SAMPLES = 6
SEED = 20160626
NUM_NODES = 60
NUM_SHARDS = 3
FAULT_SHARD = 1   # router.forward transport failures injected here
KILL_SHARD = 2    # its worker is SIGKILLed mid-hammer
SIZE_GRID_RATIO = 1.15  # the serve default; references must match it

#: Statuses that count as an explicit refusal under the routed contract
#: (the worker set plus the router's own 502 upstream-failure surface).
REFUSALS = (429, 500, 502, 503, 504)

_SERVING = re.compile(r"\[fleet\] shard (\d+) pid (\d+) serving on (\S+)")


def reference_bodies(index_path: Path) -> dict[int, bytes]:
    """Serially computed canonical sphere bodies from the unsharded store."""
    index = CascadeIndex.load(index_path)
    computer = TypicalCascadeComputer(index, size_grid_ratio=SIZE_GRID_RATIO)
    return {
        node: q.canonical_json(q.sphere_payload(node, computer.compute(node)))
        for node in range(NUM_NODES)
    }


class FleetProcess:
    """A ``serve-fleet`` subprocess plus a thread scraping its output.

    Worker spawn events (``[fleet] shard N pid P serving on ADDR``) and
    the router banner arrive on the same pipe from different threads, so
    everything is collected into a list and waited on by predicate.
    """

    def __init__(self, fleet_dir: Path, faults: FaultPlan | None = None):
        env = subprocess_env()
        if faults is not None:
            env[ENV_VAR] = faults.to_json()
        self.process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve-fleet", str(fleet_dir),
                "--port", "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        self.lines: list[str] = []
        self._lock = threading.Lock()
        self._reader = threading.Thread(target=self._drain, daemon=True)
        self._reader.start()

    def _drain(self) -> None:
        for line in self.process.stdout:
            with self._lock:
                self.lines.append(line.rstrip("\n"))
        self.process.stdout.close()

    def snapshot(self) -> list[str]:
        with self._lock:
            return list(self.lines)

    def wait_line(self, predicate, timeout: float = 90.0) -> str:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            for line in self.snapshot():
                if predicate(line):
                    return line
            if self.process.poll() is not None:
                break
            time.sleep(0.05)
        raise AssertionError(
            "no matching fleet output within "
            f"{timeout:g}s; got:\n" + "\n".join(self.snapshot())
        )

    def base(self) -> str:
        line = self.wait_line(
            lambda l: l.startswith("routing ") and " on http://" in l
        )
        return line.rsplit(" on ", 1)[1].strip()

    def worker_pids(self) -> dict[int, int]:
        """Latest pid per shard, from the spawn events seen so far."""
        pids: dict[int, int] = {}
        for line in self.snapshot():
            match = _SERVING.search(line)
            if match:
                pids[int(match.group(1))] = int(match.group(2))
        return pids


def hammer(base: str, reference: dict[int, bytes], stop: threading.Event,
           strict: bool, failures: list) -> None:
    """Loop all nodes until ``stop``; collect contract violations.

    ``strict`` disallows refusals too (the rolling-reload phase must
    drop zero requests); otherwise an explicit JSON refusal is fine.
    """
    while not stop.is_set():
        for node in range(NUM_NODES):
            try:
                status, _, body = fetch(base, f"/sphere/{node}")
            except Exception as exc:  # dropped connection = dropped request
                failures.append((node, "transport", repr(exc)))
                continue
            if status == 200 and body == reference[node]:
                continue
            refused = status in REFUSALS and "error" in json.loads(body)
            if strict or not refused:
                failures.append((node, status, body[:200]))


def main() -> int:
    graph = assign_fixed(
        powerlaw_outdegree_digraph(NUM_NODES, mean_degree=5.0, seed=7), 0.15
    )
    index = CascadeIndex.build(graph, SAMPLES, seed=SEED)

    with tempfile.TemporaryDirectory() as tmp:
        store = Path(tmp) / "idx"
        fleet_dir = Path(tmp) / "fleet"
        index.save(store, format="store")
        reference = reference_bodies(store)

        print("phase 0: partition the store with `repro index shard`")
        shard_cli = subprocess.run(
            [sys.executable, "-m", "repro", "index", "shard", str(store),
             "--shards", str(NUM_SHARDS), "--out", str(fleet_dir)],
            capture_output=True,
            env=subprocess_env(),
        )
        check("index shard exits 0", shard_cli.returncode == 0)
        check("partition map written",
              (fleet_dir / "partition.json").is_file())

        faults = FaultPlan.of(
            FaultSpec(site="router.forward", kind="error", key=FAULT_SHARD,
                      attempts=(2, 5)),
        )
        fleet = FleetProcess(fleet_dir, faults=faults)
        try:
            base = fleet.base()
            print(f"router: {base}, shards: {fleet.worker_pids()}")
            check("all workers announced a pid",
                  set(fleet.worker_pids()) == set(range(NUM_SHARDS)))

            print("phase 1: faulted hammer vs serial single-process reference")
            results: dict[int, tuple[int, bytes]] = {}
            lock = threading.Lock()

            def sweep(nodes) -> None:
                for node in nodes:
                    status, _, body = fetch(base, f"/sphere/{node}")
                    with lock:
                        results[node] = (status, body)

            threads = [
                threading.Thread(target=sweep,
                                 args=(range(i, NUM_NODES, 6),))
                for i in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)

            bad = [
                node
                for node, (status, body) in sorted(results.items())
                if not (
                    (status == 200 and body == reference[node])
                    or (status in REFUSALS and "error" in json.loads(body))
                )
            ]
            check("every routed response is correct bytes or explicit refusal",
                  bad == [])
            refused = [n for n, (s, _) in sorted(results.items()) if s != 200]
            check("injected router.forward faults surfaced as refusals",
                  len(refused) == 2
                  and all(results[n][0] == 502 for n in refused))
            for node in refused:
                status, _, body = fetch(base, f"/sphere/{node}")
                check(f"refused node {node} recovers on retry",
                      status == 200 and body == reference[node])

            batch_nodes = [0, 25, 45, 59, 13]
            status, _, body = fetch(base, "/spheres", method="POST",
                                    body={"nodes": batch_nodes})
            payload = json.loads(body)
            check(
                "scatter-gather batch matches per-node reference payloads",
                status == 200 and payload["count"] == len(batch_nodes)
                and all(
                    entry == json.loads(reference[node])
                    for node, entry in zip(batch_nodes, payload["results"])
                ),
            )

            status, _, body = fetch(base, "/metrics")
            text = body.decode()
            check("metrics: injected forwards counted", metric_value(
                text,
                'repro_router_forward_failures_total'
                f'{{kind="injected",replica="0",shard="{FAULT_SHARD}"}}') == 2)
            check("metrics: worker samples carry shard labels",
                  f'shard="{KILL_SHARD}"' in text)

            print("phase 2: worker SIGKILL mid-hammer, supervisor respawn")
            first_pid = fleet.worker_pids()[KILL_SHARD]
            stop = threading.Event()
            failures: list = []
            hammer_threads = [
                threading.Thread(target=hammer,
                                 args=(base, reference, stop, False, failures))
                for _ in range(4)
            ]
            for t in hammer_threads:
                t.start()
            time.sleep(0.3)
            subprocess.run(["kill", "-9", str(first_pid)], check=True)
            fleet.wait_line(
                lambda l: (m := _SERVING.search(l)) is not None
                and int(m.group(1)) == KILL_SHARD
                and int(m.group(2)) != first_pid
            )
            # Let the respawned worker absorb routed traffic before stopping.
            recovered = False
            for _ in range(300):
                status, _, body = fetch(base, "/healthz")
                if status == 200 and json.loads(body)["status"] == "ok":
                    recovered = True
                    break
                time.sleep(0.1)
            stop.set()
            for t in hammer_threads:
                t.join(timeout=60)
            check("supervisor respawned the killed worker with a new pid",
                  fleet.worker_pids()[KILL_SHARD] != first_pid)
            check("fleet healthz back to ok after respawn", recovered)
            check("outage responses were correct bytes or explicit refusals",
                  failures == [])
            lo = KILL_SHARD * NUM_NODES // NUM_SHARDS
            parity = [fetch(base, f"/sphere/{n}") for n in range(lo, lo + 5)]
            check(
                "respawned shard serves byte-identical spheres",
                all(s == 200 and b == reference[n]
                    for n, (s, _, b) in zip(range(lo, lo + 5), parity)),
            )

            print("phase 3: rolling SIGHUP reload mid-hammer")
            stop = threading.Event()
            failures = []
            hammer_threads = [
                threading.Thread(target=hammer,
                                 args=(base, reference, stop, True, failures))
                for _ in range(4)
            ]
            for t in hammer_threads:
                t.start()
            time.sleep(0.2)
            fleet.process.send_signal(signal.SIGHUP)
            generations = None
            for _ in range(300):
                status, _, body = fetch(base, "/healthz")
                generations = [
                    shard["store_generation"]
                    for shard in json.loads(body)["shards"]
                ]
                if generations == [2] * NUM_SHARDS:
                    break
                time.sleep(0.1)
            stop.set()
            for t in hammer_threads:
                t.join(timeout=60)
            check("rolling reload advanced every shard to generation 2",
                  generations == [2] * NUM_SHARDS)
            check("zero dropped or refused requests across the rolling reload",
                  failures == [])
            fleet.wait_line(lambda l: "rolling reload reloaded" in l,
                            timeout=30)
            status, _, body = fetch(base, "/metrics")
            check("metrics: rolling reload counted ok", metric_value(
                body.decode(),
                'repro_router_reloads_total{result="ok"}') == 1)

            print("phase 4: loadgen smoke against the router")
            bench = Path(tmp) / "BENCH_router.json"
            loadgen = subprocess.run(
                [sys.executable,
                 str(Path(__file__).resolve().parent / "loadgen.py"),
                 base, "--rate", "40", "--duration", "2",
                 "--out", str(bench)],
                capture_output=True,
                env=subprocess_env(),
                text=True,
            )
            check("loadgen exits 0", loadgen.returncode == 0)
            report = json.loads(bench.read_text()) if bench.is_file() else {}
            check(
                "loadgen wrote a well-formed BENCH_router.json",
                report.get("completed") == 80
                and report.get("ok", 0) >= 78
                and "p99" in report.get("latency_ms", {}),
            )

            print("phase 5: graceful drain")
            fleet.process.send_signal(signal.SIGTERM)
            try:
                code = fleet.process.wait(timeout=60)
            except subprocess.TimeoutExpired:
                fleet.process.kill()
                check("SIGTERM drains within 60s", False)
            check("exit code 0 after SIGTERM", code == 0)
            fleet._reader.join(timeout=10)
            check(
                "drain banner printed",
                any("shut down cleanly" in line for line in fleet.snapshot()),
            )
        finally:
            if fleet.process.poll() is None:
                fleet.process.kill()
                fleet.process.wait(timeout=10)

    print("all chaos-router checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
