#!/usr/bin/env python
"""Chaos gate for the resilient serving stack (.github/workflows/ci.yml).

Hammers a real ``python -m repro serve`` process while injecting the
failure modes the resilience layer claims to absorb, and verifies the
*either correct or refused* contract end to end:

1. **faulted hammer** — with ``REPRO_FAULTS`` arming an injected compute
   error (a request-level crash) and an over-deadline sleep, every
   response is either byte-identical to a serially-computed reference or
   an explicit JSON 4xx/5xx; the faulted nodes then recover on retry;
2. **mid-traffic hot reload** — ``index append`` grows the store on disk,
   SIGHUP swaps it in while requests are in flight; every in-flight
   response matches the old or the new generation's reference bytes, and
   post-reload digests match an uninterrupted run of the new store;
3. **reload rollback** — a candidate store with a flipped byte is refused
   by ``POST /admin/reload`` (500, ``rolled back``) and the old
   generation keeps serving, byte-identical;
4. **read-time quarantine** — a server on a corrupted copy answers the
   touching query with an explicit ``500 store-corrupt``, reports the
   quarantined column in ``/healthz`` + ``/metrics``, and keeps running;
5. both servers shut down cleanly on SIGTERM (exit code 0).

Run from the repository root::

    PYTHONPATH=src python scripts/check_chaos_serve.py
"""

from __future__ import annotations

import json
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from check_serve import check, fetch, metric_value, subprocess_env  # noqa: E402

from repro.cascades.index import CascadeIndex  # noqa: E402
from repro.core.typical_cascade import TypicalCascadeComputer  # noqa: E402
from repro.graph.generators import powerlaw_outdegree_digraph  # noqa: E402
from repro.problearn.assign import assign_fixed  # noqa: E402
from repro.runtime.faults import ENV_VAR, FaultPlan, FaultSpec  # noqa: E402
from repro.serve import query as q  # noqa: E402

SAMPLES = 6
SEED = 20160626
NUM_NODES = 60
HAMMER_NODES = tuple(range(30))
ERROR_NODE = 13   # injected compute error (request-level crash)
SLEEP_NODE = 17   # injected over-deadline sleep (wedged compute)
DEADLINE = 1.0
SIZE_GRID_RATIO = 1.15  # the serve default; references must match it

#: Statuses that count as an explicit refusal under the contract.
REFUSALS = (429, 500, 503, 504)


def reference_bodies(index_path: Path, nodes) -> dict[int, bytes]:
    """Serially computed canonical sphere bodies for ``nodes``."""
    index = CascadeIndex.load(index_path)
    computer = TypicalCascadeComputer(index, size_grid_ratio=SIZE_GRID_RATIO)
    return {
        node: q.canonical_json(q.sphere_payload(node, computer.compute(node)))
        for node in nodes
    }


def start_server(index_path: Path, *args: str, faults: FaultPlan | None = None):
    env = subprocess_env()
    if faults is not None:
        env[ENV_VAR] = faults.to_json()
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", str(index_path),
            "--port", "0", *args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    banner = process.stdout.readline()
    if "http://" not in banner:
        process.kill()
        raise AssertionError(f"no listening banner, got: {banner!r}")
    return process, banner.rsplit(" on ", 1)[1].strip()


def stop_server(process, label: str) -> None:
    process.send_signal(signal.SIGTERM)
    try:
        code = process.wait(timeout=30)
    except subprocess.TimeoutExpired:
        process.kill()
        check(f"{label}: SIGTERM shuts down within 30s", False)
        return
    check(f"{label}: exit code 0 after SIGTERM", code == 0)


def main() -> int:
    graph = assign_fixed(
        powerlaw_outdegree_digraph(NUM_NODES, mean_degree=5.0, seed=7), 0.15
    )
    index = CascadeIndex.build(graph, SAMPLES, seed=SEED)

    with tempfile.TemporaryDirectory() as tmp:
        store = Path(tmp) / "idx"
        index.save(store, format="store")
        reference = reference_bodies(store, HAMMER_NODES)
        print(f"store: {NUM_NODES} nodes, {SAMPLES} worlds, "
              f"{len(HAMMER_NODES)} reference spheres")

        faults = FaultPlan.of(
            FaultSpec(site="serve.compute", kind="error", key=ERROR_NODE),
            FaultSpec(site="serve.compute", kind="sleep", key=SLEEP_NODE,
                      seconds=3.0),
        )
        process, base = start_server(
            store, "--deadline", str(DEADLINE), "--max-inflight", "8",
            faults=faults,
        )
        corrupt_server = None
        try:
            print("phase 1: faulted hammer vs serial reference")
            results: dict[int, tuple[int, bytes]] = {}
            lock = threading.Lock()

            def hammer(nodes) -> None:
                for node in nodes:
                    status, _, body = fetch(base, f"/sphere/{node}")
                    with lock:
                        results[node] = (status, body)

            threads = [
                threading.Thread(target=hammer, args=(HAMMER_NODES[i::6],))
                for i in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)

            bad = [
                node
                for node, (status, body) in results.items()
                if not (
                    (status == 200 and body == reference[node])
                    or (status in REFUSALS and "error" in json.loads(body))
                )
            ]
            check("every response is correct bytes or an explicit refusal",
                  bad == [])
            check("injected compute error surfaced as a 5xx",
                  results[ERROR_NODE][0] in (500, 503))
            check("wedged compute surfaced as 504 deadline-exceeded",
                  results[SLEEP_NODE][0] in (503, 504)
                  and results.get(SLEEP_NODE) is not None)
            refused = [n for n, (s, _) in results.items() if s != 200]
            for node in refused:
                status, _, body = fetch(base, f"/sphere/{node}")
                check(f"faulted node {node} recovers on retry",
                      status == 200 and body == reference[node])

            status, _, body = fetch(base, "/metrics")
            text = body.decode()
            check("metrics: injected error counted", metric_value(
                text, 'repro_serve_compute_failures_total{kind="error"}') >= 1)
            check("metrics: timeout counted", metric_value(
                text, 'repro_serve_compute_failures_total{kind="timeout"}') >= 1)
            check("metrics: 504s counted", metric_value(
                text, "repro_serve_deadline_exceeded_total") >= 1)

            print("phase 2: mid-traffic SIGHUP hot reload")
            append = subprocess.run(
                [sys.executable, "-m", "repro", "index", "append",
                 str(store), "--samples", "2"],
                capture_output=True,
                env=subprocess_env(),
            )
            check("index append exits 0", append.returncode == 0)
            reference_v2 = reference_bodies(store, HAMMER_NODES)

            stop = threading.Event()
            invalid: list[tuple[int, int, bytes]] = []

            def reload_hammer(nodes) -> None:
                while not stop.is_set():
                    for node in nodes:
                        status, _, body = fetch(base, f"/sphere/{node}")
                        ok = (
                            status == 200
                            and body in (reference[node], reference_v2[node])
                        ) or status in REFUSALS
                        if not ok:
                            with lock:
                                invalid.append((node, status, body))

            reload_threads = [
                threading.Thread(target=reload_hammer,
                                 args=(HAMMER_NODES[i::4],))
                for i in range(4)
            ]
            for t in reload_threads:
                t.start()
            process.send_signal(signal.SIGHUP)
            generation = None
            for _ in range(300):
                status, _, body = fetch(base, "/healthz")
                generation = json.loads(body).get("generation")
                if generation == 2:
                    break
                threading.Event().wait(0.1)
            stop.set()
            for t in reload_threads:
                t.join(timeout=60)
            check("SIGHUP swapped to generation 2", generation == 2)
            check("zero invalid responses across the reload", invalid == [])
            status, _, body = fetch(base, "/healthz")
            health = json.loads(body)
            check("reloaded store serves the appended worlds",
                  health["num_worlds"] == SAMPLES + 2)
            parity = [fetch(base, f"/sphere/{n}") for n in HAMMER_NODES[:8]]
            check(
                "post-reload bytes match an uninterrupted run",
                all(s == 200 and b == reference_v2[n]
                    for n, (s, _, b) in zip(HAMMER_NODES[:8], parity)),
            )

            print("phase 3: verified reload rolls back a corrupt candidate")
            candidate = Path(tmp) / "candidate"
            shutil.copytree(store, candidate)
            damaged = candidate / "members.npy"
            blob = bytearray(damaged.read_bytes())
            blob[-64] ^= 0xFF
            damaged.write_bytes(bytes(blob))
            status, _, body = fetch(
                base, "/admin/reload", method="POST",
                body={"index": str(candidate)},
            )
            check("corrupt candidate refused with 500",
                  status == 500 and b"rolled back" in body)
            status, _, body = fetch(base, "/healthz")
            health = json.loads(body)
            check("rollback kept generation 2 serving",
                  health["generation"] == 2 and health["status"] == "ok")
            status, _, body = fetch(base, f"/sphere/{HAMMER_NODES[2]}")
            check("old generation still byte-identical after rollback",
                  status == 200 and body == reference_v2[HAMMER_NODES[2]])
            status, _, body = fetch(base, "/metrics")
            check("metrics: rollback counted", metric_value(
                body.decode(),
                'repro_serve_reloads_total{result="rolled_back"}') == 1)

            print("phase 4: read-time corruption quarantine")
            corrupt_store = Path(tmp) / "corrupt"
            shutil.copytree(store, corrupt_store)
            damaged = corrupt_store / "members.npy"
            blob = bytearray(damaged.read_bytes())
            blob[-64] ^= 0xFF
            damaged.write_bytes(bytes(blob))
            corrupt_server, corrupt_base = start_server(
                corrupt_store, "--verify", "lazy"
            )
            status, _, body = fetch(corrupt_base, f"/sphere/{HAMMER_NODES[0]}")
            check("corrupted column answers an explicit 500",
                  status == 500 and b"quarantined" in body)
            status, _, body = fetch(corrupt_base, f"/sphere/{HAMMER_NODES[1]}")
            check("quarantine fast-fails later touches", status == 500)
            status, _, body = fetch(corrupt_base, "/healthz")
            health = json.loads(body)
            check(
                "healthz reports degraded + the quarantined column",
                health["status"] == "degraded"
                and health["quarantined_columns"] == ["members"],
            )
            status, _, body = fetch(corrupt_base, "/metrics")
            text = body.decode()
            check("metrics: store corruption counted",
                  metric_value(text, "repro_serve_store_corrupt_total") >= 2)
            check("metrics: quarantine gauge set", metric_value(
                text, "repro_serve_quarantined_columns") == 1)

            print("phase 5: graceful shutdown")
            stop_server(process, "main server")
            stop_server(corrupt_server, "corrupt server")
            corrupt_server = None
            process = None
        finally:
            for running in (process, corrupt_server):
                if running is not None and running.poll() is None:
                    running.kill()
                    running.wait(timeout=10)

    print("all chaos-serve checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
