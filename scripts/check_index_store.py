#!/usr/bin/env python
"""CI gate for the persistent index store (.github/workflows/ci.yml).

Exercises the store's whole lifecycle on a small synthetic graph and fails
loudly on any deviation:

1. parallel build is bit-identical to the serial build;
2. a saved index answers every ``cascade(v, i)`` exactly like the index it
   was saved from (full-verify load);
3. ``append_worlds`` on disk matches a from-scratch build of the larger
   index, digest for digest.

Run from the repository root::

    PYTHONPATH=src python scripts/check_index_store.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.cascades.index import CascadeIndex
from repro.graph.generators import powerlaw_outdegree_digraph
from repro.problearn.assign import assign_fixed
from repro.store import append_worlds, read_header, read_index, write_index
from repro.store.fingerprint import digest_of_index

SAMPLES = 12
APPEND = 6
SEED = 20160626


def check(label: str, ok: bool) -> None:
    print(f"  [{'ok' if ok else 'FAIL'}] {label}")
    if not ok:
        sys.exit(1)


def main() -> int:
    graph = assign_fixed(
        powerlaw_outdegree_digraph(200, mean_degree=6.0, seed=7), 0.12
    )
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    print("parallel determinism:")
    serial = CascadeIndex.build(graph, SAMPLES, seed=SEED)
    parallel = CascadeIndex.build(graph, SAMPLES, seed=SEED, n_jobs=2)
    check(
        "parallel build digest == serial build digest",
        digest_of_index(parallel) == digest_of_index(serial),
    )
    check(
        "component matrices bit-identical",
        np.array_equal(parallel.component_matrix, serial.component_matrix),
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "idx"

        print("save/load round-trip:")
        write_index(serial, path)
        loaded = read_index(path, verify="full")
        mismatches = sum(
            not np.array_equal(loaded.cascade(v, w), serial.cascade(v, w))
            for v in range(graph.num_nodes)
            for w in range(SAMPLES)
        )
        check(
            f"all {graph.num_nodes * SAMPLES} cascades identical "
            f"({mismatches} mismatches)",
            mismatches == 0,
        )
        check(
            "loaded digest matches in-memory digest",
            digest_of_index(loaded) == digest_of_index(serial),
        )

        print("incremental append:")
        append_worlds(path, APPEND, n_jobs=2)
        grown = read_index(path, verify="full")
        direct = CascadeIndex.build(graph, SAMPLES + APPEND, seed=SEED)
        check(
            f"store appended to {SAMPLES + APPEND} worlds == direct build",
            digest_of_index(grown) == digest_of_index(direct),
        )
        check(
            "header records the appended world count",
            read_header(path).num_worlds == SAMPLES + APPEND,
        )

    print("index store OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
