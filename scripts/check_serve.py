#!/usr/bin/env python
"""CI gate for the online sphere-query service (.github/workflows/ci.yml).

Runs the real ``python -m repro serve`` process end to end against a tiny
persistent index + precomputed sphere store, and fails loudly on any
deviation:

1. every endpoint answers (healthz, sphere, cascades, batch,
   most-reliable, metrics);
2. warm-path proof: with ``--spheres`` loaded, sphere queries perform
   **zero** ``TypicalCascadeComputer`` calls
   (``repro_serve_computes_total`` stays 0);
3. a cold query is shed with ``429`` + ``Retry-After`` (the server runs
   with ``--max-inflight 0``) and the shed counter moves;
4. ``index query --json`` and ``GET /sphere/{node}`` return
   byte-identical JSON;
5. SIGTERM shuts the server down cleanly (exit code 0).

Run from the repository root::

    PYTHONPATH=src python scripts/check_serve.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import urllib.error
import urllib.request
from pathlib import Path

from repro.cascades.index import CascadeIndex
from repro.core.typical_cascade import TypicalCascadeComputer
from repro.graph.generators import powerlaw_outdegree_digraph
from repro.problearn.assign import assign_fixed

SAMPLES = 8
SEED = 20160626
WARM_NODES = tuple(range(12))


def check(label: str, ok: bool) -> None:
    print(f"  [{'ok' if ok else 'FAIL'}] {label}")
    if not ok:
        sys.exit(1)


def fetch(base: str, path: str, *, method: str = "GET", body=None):
    """(status, headers, body_bytes); HTTP error statuses are returned."""
    data = json.dumps(body).encode("ascii") if body is not None else None
    request = urllib.request.Request(base + path, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def metric_value(metrics_text: str, sample: str) -> float:
    for line in metrics_text.splitlines():
        if line.startswith(sample + " "):
            return float(line.split()[-1])
    raise AssertionError(f"sample {sample!r} not found in /metrics")


def subprocess_env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def start_server(index_path: Path, spheres_path: Path) -> tuple:
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", str(index_path),
            "--spheres", str(spheres_path),
            "--port", "0", "--max-inflight", "0", "--retry-after", "2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=subprocess_env(),
        text=True,
    )
    banner = process.stdout.readline()
    if "http://" not in banner:
        process.kill()
        raise AssertionError(f"no listening banner, got: {banner!r}")
    base = banner.rsplit(" on ", 1)[1].strip()
    return process, base, banner


def main() -> int:
    graph = assign_fixed(
        powerlaw_outdegree_digraph(80, mean_degree=5.0, seed=7), 0.15
    )
    index = CascadeIndex.build(graph, SAMPLES, seed=SEED)
    computer = TypicalCascadeComputer(index)

    with tempfile.TemporaryDirectory() as tmp:
        index_path = Path(tmp) / "idx"
        spheres_path = Path(tmp) / "spheres.npz"
        index.save(index_path, format="store")
        computer.compute_store(nodes=WARM_NODES).save(spheres_path)
        print(f"store: {graph.num_nodes} nodes, {SAMPLES} worlds, "
              f"{len(WARM_NODES)} precomputed spheres")

        process, base, banner = start_server(index_path, spheres_path)
        try:
            print(f"server: {banner.strip()}")

            print("endpoints:")
            status, _, body = fetch(base, "/healthz")
            health = json.loads(body)
            check("healthz is ok", status == 200 and health["status"] == "ok")
            check(
                "healthz reports the precomputed spheres",
                health["precomputed_spheres"] == len(WARM_NODES),
            )

            warm_bodies = [fetch(base, f"/sphere/{v}") for v in WARM_NODES[:4]]
            check(
                "warm sphere queries answer 200",
                all(status == 200 for status, _, _ in warm_bodies),
            )
            status, _, body = fetch(base, "/cascades/3")
            check(
                "cascades stats answer",
                status == 200 and json.loads(body)["num_worlds"] == SAMPLES,
            )
            status, _, body = fetch(base, "/cascades/3?world=1")
            check("cascades world answer", status == 200)
            status, _, body = fetch(base, "/most-reliable?count=3")
            check(
                "most-reliable answers from the store",
                status == 200 and len(json.loads(body)["nodes"]) <= 3,
            )
            status, _, body = fetch(
                base, "/spheres", method="POST",
                body={"nodes": list(WARM_NODES[:3])},
            )
            check(
                "batch endpoint answers all nodes",
                status == 200 and json.loads(body)["count"] == 3,
            )
            status, _, _ = fetch(base, f"/sphere/{graph.num_nodes + 5}")
            check("missing node is 404", status == 404)

            print("shed path (--max-inflight 0):")
            cold = max(WARM_NODES) + 1
            status, headers, body = fetch(base, f"/sphere/{cold}")
            check("cold sphere query is shed with 429", status == 429)
            check(
                "429 carries Retry-After",
                headers.get("Retry-After") == "2",
            )

            print("metrics:")
            status, _, body = fetch(base, "/metrics")
            check("metrics endpoint answers", status == 200)
            text = body.decode()
            check(
                "warm-path proof: zero TypicalCascadeComputer calls",
                metric_value(text, "repro_serve_computes_total") == 0,
            )
            check(
                "store hits counted",
                metric_value(text, "repro_serve_store_hits_total") >= 4,
            )
            check(
                "shed counter moved",
                metric_value(text, "repro_serve_shed_total") >= 1,
            )
            check(
                "request counter moved",
                metric_value(
                    text,
                    'repro_serve_requests_total{endpoint="sphere",status="200"}',
                ) >= 4,
            )

            print("CLI/server JSON parity:")
            node = WARM_NODES[1]
            _, _, http_body = fetch(base, f"/sphere/{node}")
            cli = subprocess.run(
                [
                    sys.executable, "-m", "repro", "index", "query",
                    str(index_path), "--node", str(node), "--sphere", "--json",
                ],
                capture_output=True,
                env=subprocess_env(),
            )
            check("CLI query --json exits 0", cli.returncode == 0)
            check(
                "CLI and server JSON byte-identical",
                cli.stdout.rstrip(b"\n") == http_body,
            )

            print("graceful shutdown:")
            process.send_signal(signal.SIGTERM)
            try:
                code = process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
                check("SIGTERM shuts down within 30s", False)
            check("exit code 0 after SIGTERM", code == 0)
            remaining = process.stdout.read()
            check(
                "drain message printed",
                "shut down cleanly" in remaining,
            )
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)

    print("all serve checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
