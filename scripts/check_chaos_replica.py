#!/usr/bin/env python
"""Chaos gate for the replicated serving tier (.github/workflows/ci.yml).

Partitions a tiny store into a 2 shards x 2 replicas fleet with
``repro index shard --replicas 2``, runs a real ``python -m repro
serve-fleet`` process (replica-aware router + four supervised worker
processes), and verifies the replication contract one level up:

1. **deterministic failover + hedge** — an injected ``router.forward``
   transport failure on one replica is absorbed by transparent failover
   (200, byte parity), and an injected stall on another replica is
   beaten by a deadline-aware hedged read; both are visible in
   ``/metrics``;
2. **replica SIGKILL mid-hammer** — one replica of a shard is killed
   while strict traffic is in flight: zero non-200 responses, zero
   wrong bytes (peers absorb the outage), the fleet reports
   ``degraded`` during the window, and the supervisor respawns the
   replica back to ``healthz: ok``;
3. **scrub quarantines, repair restores** — a replica's column file is
   byte-corrupted on disk; ``POST /admin/scrub`` quarantines exactly
   that replica, traffic keeps flowing byte-identically on the verified
   peer, ``POST /admin/repair`` rebuilds it from the healthy peer, and
   a re-scrub comes back clean;
4. **whole shard down** — with every replica of one shard killed the
   router refuses with an explicit ``503`` + ``Retry-After`` (never a
   hang or garbage) while the other shard keeps serving, and the shard
   recovers on respawn;
5. **rolling SIGHUP reload** — every replica of every shard advances to
   ``store_generation`` 2;
6. **loadgen smoke** — ``scripts/loadgen.py`` writes a
   ``BENCH_router.json`` carrying the availability ratio;
7. **graceful drain** — SIGTERM shuts router and workers down cleanly.

Run from the repository root::

    PYTHONPATH=src python scripts/check_chaos_replica.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from check_serve import check, fetch, metric_value, subprocess_env  # noqa: E402

from repro.cascades.index import CascadeIndex  # noqa: E402
from repro.core.typical_cascade import TypicalCascadeComputer  # noqa: E402
from repro.graph.generators import powerlaw_outdegree_digraph  # noqa: E402
from repro.problearn.assign import assign_fixed  # noqa: E402
from repro.runtime.faults import ENV_VAR, FaultPlan, FaultSpec  # noqa: E402
from repro.serve import query as q  # noqa: E402

SAMPLES = 6
SEED = 20160626
NUM_NODES = 60
NUM_SHARDS = 2
NUM_REPLICAS = 2
FAULT_SHARD = 1    # injected transport failure on its replica 0 -> failover
HEDGE_SHARD = 0    # injected stall on its replica 0 -> hedge wins
KILL_SHARD = 1     # loses one replica mid-hammer, later the whole shard
SCRUB_SHARD = 0    # its replica 1 gets a corrupted column on disk
SIZE_GRID_RATIO = 1.15  # the serve default; references must match it

_SERVING = re.compile(
    r"\[fleet\] shard (\d+) replica (\d+) pid (\d+) serving on (\S+)"
)


def reference_bodies(index_path: Path) -> dict[int, bytes]:
    """Serially computed canonical sphere bodies from the unsharded store."""
    index = CascadeIndex.load(index_path)
    computer = TypicalCascadeComputer(index, size_grid_ratio=SIZE_GRID_RATIO)
    return {
        node: q.canonical_json(q.sphere_payload(node, computer.compute(node)))
        for node in range(NUM_NODES)
    }


def shard_nodes(shard_id: int) -> range:
    """The node range owned by ``shard_id`` (canonical near-equal split)."""
    per = NUM_NODES // NUM_SHARDS
    return range(shard_id * per, (shard_id + 1) * per)


class FleetProcess:
    """A ``serve-fleet`` subprocess plus a thread scraping its output."""

    def __init__(self, fleet_dir: Path, faults: FaultPlan | None = None):
        env = subprocess_env()
        if faults is not None:
            env[ENV_VAR] = faults.to_json()
        self.process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve-fleet", str(fleet_dir),
                "--port", "0", "--hedge-after", "0.2",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        self.lines: list[str] = []
        self._lock = threading.Lock()
        self._reader = threading.Thread(target=self._drain, daemon=True)
        self._reader.start()

    def _drain(self) -> None:
        for line in self.process.stdout:
            with self._lock:
                self.lines.append(line.rstrip("\n"))
        self.process.stdout.close()

    def snapshot(self) -> list[str]:
        with self._lock:
            return list(self.lines)

    def wait_line(self, predicate, timeout: float = 90.0) -> str:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            for line in self.snapshot():
                if predicate(line):
                    return line
            if self.process.poll() is not None:
                break
            time.sleep(0.05)
        raise AssertionError(
            "no matching fleet output within "
            f"{timeout:g}s; got:\n" + "\n".join(self.snapshot())
        )

    def base(self) -> str:
        line = self.wait_line(
            lambda l: l.startswith("routing ") and " on http://" in l
        )
        return line.rsplit(" on ", 1)[1].strip()

    def worker_pids(self) -> dict[tuple[int, int], int]:
        """Latest pid per (shard, replica), from the spawn events so far."""
        pids: dict[tuple[int, int], int] = {}
        for line in self.snapshot():
            match = _SERVING.search(line)
            if match:
                key = (int(match.group(1)), int(match.group(2)))
                pids[key] = int(match.group(3))
        return pids


def hammer(base: str, reference: dict[int, bytes], stop: threading.Event,
           failures: list) -> None:
    """Strict hammer: every response must be 200 with reference bytes.

    Replication makes a single-replica outage fully transparent, so —
    unlike the solo-fleet gate — not even explicit refusals are allowed
    here.
    """
    while not stop.is_set():
        for node in range(NUM_NODES):
            try:
                status, _, body = fetch(base, f"/sphere/{node}")
            except Exception as exc:  # dropped connection = dropped request
                failures.append((node, "transport", repr(exc)))
                continue
            if status != 200 or body != reference[node]:
                failures.append((node, status, body[:200]))


def corrupt_column(replica_dir: Path) -> str:
    """Byte-corrupt the first column of a replica via ``os.replace``.

    Replicas are hardlinked at partition time, so writing through the
    link would corrupt the peer too; a rename swaps in a fresh inode and
    diverges only this replica — exactly the failure scrub pins down.
    """
    target = sorted(replica_dir.glob("*.npy"))[0]
    junk = replica_dir / (target.name + ".junk")
    junk.write_bytes(b"not a column" * 64)
    os.replace(junk, target)
    return target.name


def wait_healthz(base: str, predicate, timeout: float = 60.0) -> dict:
    deadline = time.monotonic() + timeout
    payload: dict = {}
    while time.monotonic() < deadline:
        try:
            _, _, body = fetch(base, "/healthz")
            payload = json.loads(body)
        except Exception:
            payload = {}
        if payload and predicate(payload):
            return payload
        time.sleep(0.02)
    raise AssertionError(
        f"healthz predicate not met within {timeout:g}s; last: {payload}"
    )


def main() -> int:
    graph = assign_fixed(
        powerlaw_outdegree_digraph(NUM_NODES, mean_degree=5.0, seed=7), 0.15
    )
    index = CascadeIndex.build(graph, SAMPLES, seed=SEED)

    with tempfile.TemporaryDirectory() as tmp:
        store = Path(tmp) / "idx"
        fleet_dir = Path(tmp) / "fleet"
        index.save(store, format="store")
        reference = reference_bodies(store)

        print("phase 0: partition with `repro index shard --replicas 2`")
        shard_cli = subprocess.run(
            [sys.executable, "-m", "repro", "index", "shard", str(store),
             "--shards", str(NUM_SHARDS), "--replicas", str(NUM_REPLICAS),
             "--out", str(fleet_dir)],
            capture_output=True,
            env=subprocess_env(),
        )
        check("index shard exits 0", shard_cli.returncode == 0)
        check("replica directories written", all(
            (fleet_dir / name).is_dir()
            for name in ("shard-00.cidx", "shard-00.r1.cidx",
                         "shard-01.cidx", "shard-01.r1.cidx")
        ))
        scrub_cli = subprocess.run(
            [sys.executable, "-m", "repro", "shard", "scrub", str(fleet_dir)],
            capture_output=True,
            env=subprocess_env(),
            text=True,
        )
        check("`repro shard scrub` passes a fresh fleet",
              scrub_cli.returncode == 0
              and "every replica matches" in scrub_cli.stdout)

        faults = FaultPlan.of(
            FaultSpec(site="router.forward", kind="error",
                      key=f"{FAULT_SHARD}/0"),
            FaultSpec(site="router.forward", kind="sleep",
                      key=f"{HEDGE_SHARD}/0", seconds=1.5),
        )
        fleet = FleetProcess(fleet_dir, faults=faults)
        try:
            base = fleet.base()
            print(f"router: {base}, workers: {fleet.worker_pids()}")
            check("all shard x replica workers announced a pid",
                  set(fleet.worker_pids()) == {
                      (s, r)
                      for s in range(NUM_SHARDS)
                      for r in range(NUM_REPLICAS)
                  })
            # No /healthz before phase 1: health polls traverse the same
            # ``router.forward`` fault site and would consume the
            # single-occurrence injected faults armed for the next phase.
            print("phase 1: injected failover and hedged read")
            node = shard_nodes(FAULT_SHARD)[0]
            status, _, body = fetch(base, f"/sphere/{node}")
            check("injected transport failure fails over transparently",
                  status == 200 and body == reference[node])
            node = shard_nodes(HEDGE_SHARD)[0]
            started = time.monotonic()
            status, _, body = fetch(base, f"/sphere/{node}")
            elapsed = time.monotonic() - started
            check("hedge beats the stalled primary, byte-identical",
                  status == 200 and body == reference[node]
                  and elapsed < 1.5)
            text = fetch(base, "/metrics")[2].decode()
            check("metrics: failover counted", metric_value(
                text,
                f'repro_router_failovers_total{{shard="{FAULT_SHARD}"}}') == 1)
            check("metrics: injected forward failure carries replica label",
                  metric_value(
                      text,
                      'repro_router_forward_failures_total'
                      f'{{kind="injected",replica="0",shard="{FAULT_SHARD}"}}'
                  ) == 1)
            check("metrics: hedge counted", metric_value(
                text,
                f'repro_router_hedges_total{{shard="{HEDGE_SHARD}"}}') == 1)
            payload = wait_healthz(base, lambda p: p["status"] == "ok")
            check("healthz reports the replica topology",
                  payload["replicas"] == NUM_REPLICAS and all(
                      shard["replicas_total"] == NUM_REPLICAS
                      and shard["replicas_healthy"] == NUM_REPLICAS
                      for shard in payload["shards"]
                  ))

            print("phase 2: replica SIGKILL mid-hammer — zero non-200s")
            first_pid = fleet.worker_pids()[(KILL_SHARD, 0)]
            stop = threading.Event()
            failures: list = []
            hammer_threads = [
                threading.Thread(target=hammer,
                                 args=(base, reference, stop, failures))
                for _ in range(4)
            ]
            for t in hammer_threads:
                t.start()
            time.sleep(0.3)
            subprocess.run(["kill", "-9", str(first_pid)], check=True)
            degraded = wait_healthz(
                base, lambda p: p["status"] in ("degraded", "ok")
                and p["shards"][KILL_SHARD]["replicas_healthy"] < NUM_REPLICAS
            )
            check("fleet degrades while the replica is down",
                  degraded["status"] == "degraded")
            fleet.wait_line(
                lambda l: (m := _SERVING.search(l)) is not None
                and (int(m.group(1)), int(m.group(2))) == (KILL_SHARD, 0)
                and int(m.group(3)) != first_pid
            )
            wait_healthz(base, lambda p: p["status"] == "ok")
            stop.set()
            for t in hammer_threads:
                t.join(timeout=60)
            check("supervisor respawned the replica with a new pid",
                  fleet.worker_pids()[(KILL_SHARD, 0)] != first_pid)
            check("zero non-200 and zero wrong-byte responses in the outage",
                  failures == [])

            print("phase 3: corrupt a column, scrub quarantines, repair heals")
            corrupt_column(fleet_dir / f"shard-0{SCRUB_SHARD}.r1.cidx")
            status, _, body = fetch(base, "/admin/scrub", method="POST",
                                    body={})
            payload = json.loads(body)
            check("scrub flags exactly the corrupted replica",
                  status == 200 and payload["ok"] is False
                  and [(e["shard_id"], e["replica"])
                       for e in payload["quarantined"]] == [(SCRUB_SHARD, 1)])
            health = json.loads(fetch(base, "/healthz")[2])
            check("healthz shows the quarantined replica",
                  health["status"] == "degraded"
                  and health["shards"][SCRUB_SHARD]["replicas"][1]["status"]
                  == "quarantined")
            parity = [
                fetch(base, f"/sphere/{n}")
                for n in list(shard_nodes(SCRUB_SHARD))[:8]
            ]
            check("quarantined shard keeps serving byte-identically via peer",
                  all(s == 200 and b == reference[n]
                      for n, (s, _, b) in zip(shard_nodes(SCRUB_SHARD),
                                              parity)))
            status, _, body = fetch(
                base, "/admin/repair", method="POST",
                body={"shard": SCRUB_SHARD, "replica": 1},
            )
            payload = json.loads(body)
            check("repair rebuilds from the healthy peer",
                  status == 200 and payload["status"] == "repaired"
                  and payload["source_replica"] == 0)
            status, _, body = fetch(base, "/admin/scrub", method="POST",
                                    body={})
            check("re-scrub is clean after repair",
                  status == 200 and json.loads(body)["ok"] is True)
            wait_healthz(base, lambda p: p["status"] == "ok")
            scrub_cli = subprocess.run(
                [sys.executable, "-m", "repro", "shard", "scrub",
                 str(fleet_dir)],
                capture_output=True,
                env=subprocess_env(),
                text=True,
            )
            check("offline `repro shard scrub` agrees the fleet is clean",
                  scrub_cli.returncode == 0)

            print("phase 4: whole shard down — explicit 503, peer shard serves")
            pids = fleet.worker_pids()
            for replica in range(NUM_REPLICAS):
                subprocess.run(
                    ["kill", "-9", str(pids[(KILL_SHARD, replica)])],
                    check=True,
                )
            wait_healthz(
                base,
                lambda p: p["shards"][KILL_SHARD]["replicas_healthy"] == 0,
            )
            down_node = shard_nodes(KILL_SHARD)[0]
            up_node = shard_nodes(1 - KILL_SHARD)[0]
            saw_503 = False
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline and not saw_503:
                status, headers, body = fetch(base, f"/sphere/{down_node}")
                if status == 200:
                    # A replica respawned under us; re-open the window.
                    for key, pid in fleet.worker_pids().items():
                        if key[0] == KILL_SHARD:
                            subprocess.run(["kill", "-9", str(pid)])
                    time.sleep(0.05)
                    continue
                check("downed shard refuses explicitly, never garbage",
                      status in (502, 503) and "error" in json.loads(body))
                if status == 503:
                    check("503 carries Retry-After", "Retry-After" in headers)
                    saw_503 = True
            check("shard with zero replicas surfaced a 503 + Retry-After",
                  saw_503)
            status, _, body = fetch(base, f"/sphere/{up_node}")
            check("the other shard keeps serving byte-identically",
                  status == 200 and body == reference[up_node])
            wait_healthz(base, lambda p: p["status"] == "ok")
            status, _, body = fetch(base, f"/sphere/{down_node}")
            check("downed shard recovers after respawn",
                  status == 200 and body == reference[down_node])

            print("phase 5: rolling SIGHUP reload across every replica")
            fleet.process.send_signal(signal.SIGHUP)
            wait_healthz(base, lambda p: p["status"] == "ok" and all(
                replica["store_generation"] == 2
                for shard in p["shards"]
                for replica in shard["replicas"]
            ))
            check("metrics: rolling reload counted ok", metric_value(
                fetch(base, "/metrics")[2].decode(),
                'repro_router_reloads_total{result="ok"}') == 1)

            print("phase 6: loadgen smoke — availability in BENCH_router.json")
            bench = Path(tmp) / "BENCH_router.json"
            loadgen = subprocess.run(
                [sys.executable,
                 str(Path(__file__).resolve().parent / "loadgen.py"),
                 base, "--rate", "40", "--duration", "2",
                 "--out", str(bench)],
                capture_output=True,
                env=subprocess_env(),
                text=True,
            )
            check("loadgen exits 0", loadgen.returncode == 0)
            report = json.loads(bench.read_text()) if bench.is_file() else {}
            check(
                "loadgen reports availability against the replicated fleet",
                report.get("completed") == 80
                and "shed" in report
                and report.get("availability", 0.0) >= 0.97
                and "p99" in report.get("latency_ms", {}),
            )

            print("phase 7: graceful drain")
            fleet.process.send_signal(signal.SIGTERM)
            try:
                code = fleet.process.wait(timeout=60)
            except subprocess.TimeoutExpired:
                fleet.process.kill()
                check("SIGTERM drains within 60s", False)
            check("exit code 0 after SIGTERM", code == 0)
            fleet._reader.join(timeout=10)
            check(
                "drain banner printed",
                any("shut down cleanly" in line for line in fleet.snapshot()),
            )
        finally:
            if fleet.process.poll() is None:
                fleet.process.kill()
                fleet.process.wait(timeout=10)

    print("all chaos-replica checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
