#!/usr/bin/env python
"""CI gate for the real-dataset ETL subsystem (.github/workflows/ci.yml).

Runs the full offline pipeline end to end — fetch → ingest → index build
→ serve — with no network access, and fails loudly on any deviation:

1. every bundled offline fixture fetches and matches its pinned digest;
2. ``repro data ingest`` commits a dataset whose manifest passes a full
   array re-hash (``repro data verify --full``);
3. chaos: an ingest crashed mid-parse through ``REPRO_FAULTS`` resumes
   to a manifest digest **bit-identical** to an uninterrupted run;
4. a torn ``dataset.json`` is refused by ``repro data verify`` (exit 2)
   — the provenance contract mirrors the store's partition.json refusal;
5. ``repro index build --dataset`` builds a store from the ingested
   graph, ``repro serve`` answers on it, and ``GET /sphere/{node}`` is
   byte-identical to ``repro index query --json``;
6. the ``repro data`` CLI surface round-trips (fetch/ingest/info/verify).

Run from the repository root::

    PYTHONPATH=src python scripts/check_data_etl.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import urllib.error
import urllib.request
from pathlib import Path

from repro.data import fetch_source, list_sources, read_manifest
from repro.data.errors import ManifestError
from repro.runtime.faults import CRASH_EXIT_CODE
from repro.store.fingerprint import digest_file

SOURCE = "epinions"
DATASET = "epinions-W"
SAMPLES = 8


def check(label: str, ok: bool) -> None:
    print(f"  [{'ok' if ok else 'FAIL'}] {label}")
    if not ok:
        sys.exit(1)


def fetch(base: str, path: str):
    """(status, body_bytes); HTTP error statuses are returned."""
    request = urllib.request.Request(base + path)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def subprocess_env(root: Path) -> dict[str, str]:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["REPRO_DATA_DIR"] = str(root)
    env.pop("REPRO_FAULTS", None)
    return env


def repro(root: Path, *argv: str, faults=None) -> subprocess.CompletedProcess:
    env = subprocess_env(root)
    if faults is not None:
        env["REPRO_FAULTS"] = json.dumps({"faults": faults})
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env=env,
    )


def ingest_digest(root: Path, *, faults=None) -> subprocess.CompletedProcess:
    """One ``repro data ingest`` run; digest is read back via the manifest."""
    return repro(
        root, "data", "ingest", SOURCE, "--offline", faults=faults
    )


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "data"

        print("offline fixtures:")
        for name in list_sources():
            result = fetch_source(name, root=root, offline=True)
            check(
                f"{name} fixture matches its pinned digest",
                digest_file(result.path) == result.sha256,
            )

        print("ingest + verify:")
        done = ingest_digest(root)
        check("repro data ingest exits 0", done.returncode == 0)
        check(
            "ingest reports a manifest digest",
            "manifest digest: sha256:" in done.stdout,
        )
        verify = repro(root, "data", "verify", DATASET, "--full")
        check("full array re-hash verifies clean", verify.returncode == 0)
        dataset_dir = root / "ingested" / DATASET
        clean = read_manifest(dataset_dir)["manifest_digest"]
        print(f"  clean manifest digest: {clean}")

        print("chaos: crash mid-parse, resume to bit-identical digest:")
        chaos_root = Path(tmp) / "chaos"
        fetch_source(SOURCE, root=chaos_root, offline=True)
        plan = [{
            "site": "data.parse", "kind": "crash", "key": "dedup",
            "attempts": [0], "seconds": 0,
        }]
        interrupted = ingest_digest(chaos_root, faults=plan)
        check(
            "fault crashed the ingest",
            interrupted.returncode == CRASH_EXIT_CODE,
        )
        staging = chaos_root / "ingested" / f"{DATASET}.staging"
        check(
            "journal survives the crash",
            (staging / "ingest.journal.json").exists(),
        )
        resumed = ingest_digest(chaos_root)
        check("resume exits 0", resumed.returncode == 0)
        check("resume reused journalled stages", "resumed" in resumed.stdout)
        resumed_digest = read_manifest(
            chaos_root / "ingested" / DATASET
        )["manifest_digest"]
        check(
            "resumed manifest digest is bit-identical to the clean run",
            resumed_digest == clean,
        )

        print("torn-manifest refusal:")
        torn_root = Path(tmp) / "torn"
        fetch_source(SOURCE, root=torn_root, offline=True)
        check("torn-root ingest exits 0", ingest_digest(torn_root).returncode == 0)
        manifest_path = torn_root / "ingested" / DATASET / "dataset.json"
        text = manifest_path.read_text()
        manifest_path.write_text(text[: len(text) // 2])
        torn = repro(torn_root, "data", "verify", DATASET)
        check("repro data verify refuses a torn manifest (exit 2)",
              torn.returncode == 2)
        check("refusal names the torn write", "torn write" in torn.stderr)
        try:
            read_manifest(torn_root / "ingested" / DATASET)
            refused = False
        except ManifestError:
            refused = True
        check("read_manifest refuses the torn manifest", refused)

        print("build -> serve on the ingested graph:")
        index_path = Path(tmp) / "idx"
        built = repro(
            root, "index", "build", "--dataset", DATASET,
            "--samples", str(SAMPLES), "--out", str(index_path),
        )
        check("index build --dataset exits 0", built.returncode == 0)

        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", str(index_path),
             "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=subprocess_env(root),
            text=True,
        )
        try:
            banner = process.stdout.readline()
            check("server prints a listening banner", "http://" in banner)
            base = banner.rsplit(" on ", 1)[1].strip()

            status, body = fetch(base, "/healthz")
            health = json.loads(body)
            check("healthz is ok", status == 200 and health["status"] == "ok")
            manifest = read_manifest(dataset_dir)
            check(
                "served graph is the ingested graph",
                health["num_nodes"] == manifest["graph"]["num_nodes"],
            )

            node = 3
            status, http_body = fetch(base, f"/sphere/{node}")
            check("sphere query answers 200", status == 200)
            cli = subprocess.run(
                [sys.executable, "-m", "repro", "index", "query",
                 str(index_path), "--node", str(node), "--sphere", "--json"],
                capture_output=True,
                env=subprocess_env(root),
            )
            check("CLI query --json exits 0", cli.returncode == 0)
            check(
                "CLI and server JSON byte-identical",
                cli.stdout.rstrip(b"\n") == http_body,
            )
        finally:
            process.kill()
            process.wait(timeout=10)

        print("CLI surface:")
        check(
            "data fetch reports the cache hit",
            "already cached" in repro(root, "data", "fetch", SOURCE,
                                      "--offline").stdout,
        )
        info = repro(root, "data", "info", DATASET)
        check("data info shows provenance", info.returncode == 0
              and "sha256:" in info.stdout)
        listing = repro(root, "data", "info", "--json")
        payload = json.loads(listing.stdout)
        check(
            "data info --json lists the ingested dataset",
            listing.returncode == 0 and DATASET in payload["ingested"],
        )

    print("all data-etl checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
