#!/usr/bin/env python
"""Minimal open-loop load generator for the serving tier.

Drives a running ``repro serve`` or ``repro serve-fleet`` endpoint with a
*fixed arrival rate*: requests are dispatched on schedule whether or not
earlier ones have completed (open-loop), so a slow server accumulates
in-flight work and its latency tail is measured honestly instead of being
hidden by coordinated omission.  Traffic is a deterministic mixed workload
(single-sphere reads, cascade stats, small batches) seeded by ``--seed``.

Writes a JSON benchmark artefact (default ``BENCH_router.json``) with
p50/p99/max latency, per-status error counts and achieved throughput —
the serving-perf trajectory artefact the ROADMAP measures future PRs
against.

With ``--jobs`` the generator drives the durable job tier instead:
open-loop ``POST /jobs/infmax`` submissions across every job model, then
a drain phase polling each accepted job to a terminal state.  The
artefact (default ``BENCH_jobs.json``) reports p50/p99 *submit* latency,
achieved submit throughput, the shed count (429s are load shedding, not
errors) and the error budget.

With ``--dataset`` the generator benches the ETL pipeline instead of a
server (no base URL needed): one forced ``repro.data.ingest`` of the
named catalogue source, timed per stage.  The artefact (default
``BENCH_etl.json``) reports parse MB/s, edges/s through parse+assemble,
and total ingest wall-clock — the ETL-perf trajectory artefact.

Examples::

    PYTHONPATH=src python scripts/loadgen.py http://127.0.0.1:8313 \
        --rate 100 --duration 10 --out BENCH_router.json
    PYTHONPATH=src python scripts/loadgen.py http://127.0.0.1:8314 \
        --jobs --rate 5 --duration 4
    PYTHONPATH=src python scripts/loadgen.py --dataset epinions --offline
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
import time
import urllib.error
import urllib.request

#: Workload mix: (kind, weight).  Weights are relative, not percentages.
MIX = (("sphere", 7), ("cascades", 2), ("batch", 1))

BATCH_SIZE = 8

#: Job-submission mix for ``--jobs`` (kind, weight): the payload templates
#: cycle through every job model the service runs, small enough that a
#: load test's jobs actually drain.
JOB_MIX = (
    ({"model": "celfpp", "k": 3}, 3),
    ({"model": "greedy_tc", "k": 3}, 3),
    ({"model": "stability", "k": 3}, 2),
    ({"model": "ris", "k": 3, "num_rr_sets": 200, "rr_seed": 7}, 2),
)


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (q in [0, 1])."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1)))
    return sorted_values[rank]


def _fetch(base: str, path: str, body=None, timeout: float = 30.0) -> int:
    data = json.dumps(body).encode("ascii") if body is not None else None
    request = urllib.request.Request(
        base + path, data=data, method="POST" if data is not None else "GET"
    )
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            response.read()
            return response.status
    except urllib.error.HTTPError as exc:
        exc.read()
        return exc.code
    except (urllib.error.URLError, TimeoutError, ConnectionError, OSError):
        return 0  # transport failure: connection refused/reset/timeout


def build_requests(rng: random.Random, count: int, num_nodes: int):
    """The deterministic request mix: (path, body) pairs."""
    kinds = [kind for kind, weight in MIX for _ in range(weight)]
    requests = []
    for _ in range(count):
        kind = rng.choice(kinds)
        if kind == "sphere":
            requests.append((f"/sphere/{rng.randrange(num_nodes)}", None))
        elif kind == "cascades":
            requests.append((f"/cascades/{rng.randrange(num_nodes)}", None))
        else:
            nodes = rng.sample(range(num_nodes), min(BATCH_SIZE, num_nodes))
            requests.append(("/spheres", {"nodes": nodes}))
    return requests


def run(base: str, *, rate: float, duration: float, seed: int,
        timeout: float) -> dict:
    status_code, _, health = _status_and_health(base, timeout)
    if status_code not in (200, 503) or health is None:
        raise SystemExit(f"loadgen: {base}/healthz unreachable")
    num_nodes = int(health["num_nodes"])

    count = max(1, int(rate * duration))
    requests = build_requests(random.Random(seed), count, num_nodes)
    latencies_ms: list[float] = []
    statuses: dict[str, int] = {}
    lock = threading.Lock()

    def one(path: str, body) -> None:
        begin = time.monotonic()
        status = _fetch(base, path, body, timeout=timeout)
        elapsed_ms = (time.monotonic() - begin) * 1000.0
        key = str(status) if status else "transport_error"
        with lock:
            latencies_ms.append(elapsed_ms)
            statuses[key] = statuses.get(key, 0) + 1

    threads: list[threading.Thread] = []
    start = time.monotonic()
    for i, (path, body) in enumerate(requests):
        # Open loop: dispatch at the scheduled arrival time, never waiting
        # for earlier requests — queueing shows up in the latency tail.
        wait = start + i / rate - time.monotonic()
        if wait > 0:
            time.sleep(wait)
        thread = threading.Thread(target=one, args=(path, body), daemon=True)
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join(timeout=timeout + 5.0)
    wall = time.monotonic() - start

    latencies_ms.sort()
    ok = sum(n for code, n in statuses.items() if code.startswith("2"))
    shed = statuses.get("429", 0)
    errors = {c: n for c, n in sorted(statuses.items())
              if not c.startswith("2") and c != "429"}
    # Availability = answered successfully / completed.  Sheds (429) are
    # deliberate load shedding, so they count against availability but
    # are reported separately from hard errors.
    return {
        "target": base,
        "workload": {
            "rate_rps": rate,
            "duration_s": duration,
            "seed": seed,
            "mix": {kind: weight for kind, weight in MIX},
            "requests": count,
        },
        "completed": len(latencies_ms),
        "ok": ok,
        "shed": shed,
        "errors": errors,
        "availability": round(ok / max(1, len(latencies_ms)), 4),
        "latency_ms": {
            "p50": round(percentile(latencies_ms, 0.50), 3),
            "p90": round(percentile(latencies_ms, 0.90), 3),
            "p99": round(percentile(latencies_ms, 0.99), 3),
            "max": round(percentile(latencies_ms, 1.0), 3),
        },
        "achieved_rps": round(len(latencies_ms) / wall, 2) if wall else 0.0,
    }


def _fetch_json(base: str, path: str, body=None, timeout: float = 30.0):
    """(status, parsed JSON or None) for one request."""
    data = json.dumps(body).encode("ascii") if body is not None else None
    request = urllib.request.Request(
        base + path, data=data, method="POST" if data is not None else "GET"
    )
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        try:
            return exc.code, json.loads(exc.read())
        except ValueError:
            return exc.code, None
    except (urllib.error.URLError, TimeoutError, ConnectionError, OSError):
        return 0, None


def run_jobs(base: str, *, rate: float, duration: float, seed: int,
             timeout: float, drain_timeout: float = 120.0) -> dict:
    """Open-loop job submissions, then drain: the jobs-tier benchmark.

    Submits at the scheduled arrival rate (unique idempotency keys, so
    every arrival is a distinct job), records per-submit latency and
    status, then polls until every accepted job settles.  A 429
    (queue full) is load shedding, not an error: it lands in ``shed``
    and stays out of the error budget.
    """
    status_code, _, health = _status_and_health(base, timeout)
    if status_code not in (200, 503) or health is None:
        raise SystemExit(f"loadgen: {base}/healthz unreachable")
    if "jobs" not in health:
        raise SystemExit(
            "loadgen: target has no job service (start serve with --jobs)"
        )

    count = max(1, int(rate * duration))
    rng = random.Random(seed)
    payloads = [payload for payload, weight in JOB_MIX for _ in range(weight)]
    submits = []
    for i in range(count):
        payload = dict(rng.choice(payloads))
        payload["idempotency_key"] = f"loadgen-{seed}-{i}"
        submits.append(payload)

    latencies_ms: list[float] = []
    statuses: dict[str, int] = {}
    accepted: list[str] = []
    lock = threading.Lock()

    def one(payload: dict) -> None:
        begin = time.monotonic()
        status, view = _fetch_json(base, "/jobs/infmax", payload, timeout=timeout)
        elapsed_ms = (time.monotonic() - begin) * 1000.0
        key = str(status) if status else "transport_error"
        with lock:
            latencies_ms.append(elapsed_ms)
            statuses[key] = statuses.get(key, 0) + 1
            if status in (200, 202) and isinstance(view, dict) and "id" in view:
                accepted.append(view["id"])

    threads: list[threading.Thread] = []
    start = time.monotonic()
    for i, payload in enumerate(submits):
        wait = start + i / rate - time.monotonic()
        if wait > 0:
            time.sleep(wait)
        thread = threading.Thread(target=one, args=(payload,), daemon=True)
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join(timeout=timeout + 5.0)
    submit_wall = time.monotonic() - start

    # Drain: poll every accepted job to a terminal state.
    terminal = ("done", "cancelled", "failed-permanent")
    final_states: dict[str, int] = {}
    pending = list(dict.fromkeys(accepted))
    drain_deadline = time.monotonic() + drain_timeout
    while pending and time.monotonic() < drain_deadline:
        still = []
        for job_id in pending:
            status, view = _fetch_json(base, f"/jobs/{job_id}", timeout=timeout)
            state = view.get("state") if isinstance(view, dict) else None
            if status == 200 and state in terminal:
                final_states[state] = final_states.get(state, 0) + 1
            else:
                still.append(job_id)
        pending = still
        if pending:
            time.sleep(0.1)
    drain_wall = time.monotonic() - start - submit_wall

    latencies_ms.sort()
    ok = sum(n for code, n in statuses.items() if code.startswith("2"))
    shed = statuses.get("429", 0)
    errors = {c: n for c, n in sorted(statuses.items())
              if not c.startswith("2") and c != "429"}
    error_count = sum(errors.values())
    return {
        "target": base,
        "workload": {
            "kind": "jobs",
            "rate_rps": rate,
            "duration_s": duration,
            "seed": seed,
            "mix": [payload["model"] for payload, _ in JOB_MIX],
            "requests": count,
        },
        "completed": len(latencies_ms),
        "ok": ok,
        "shed": shed,
        "errors": errors,
        "error_budget": {
            "errors": error_count,
            "rate": round(error_count / max(1, len(latencies_ms)), 4),
        },
        "submit_latency_ms": {
            "p50": round(percentile(latencies_ms, 0.50), 3),
            "p90": round(percentile(latencies_ms, 0.90), 3),
            "p99": round(percentile(latencies_ms, 0.99), 3),
            "max": round(percentile(latencies_ms, 1.0), 3),
        },
        "achieved_submit_rps": (
            round(len(latencies_ms) / submit_wall, 2) if submit_wall else 0.0
        ),
        "jobs": {
            "accepted": len(accepted),
            "final_states": dict(sorted(final_states.items())),
            "undrained": len(pending),
            "drain_seconds": round(drain_wall, 2),
        },
    }


def run_etl(source: str, *, assignment: str, seed: int, data_root=None,
            offline: bool = False) -> dict:
    """One forced ingest of ``source``, timed per stage: the ETL benchmark.

    The fetch is warmed first (and timed separately by the ingest
    itself), so ``parse_mb_per_s`` measures the streaming parser against
    the on-disk source bytes, not the network.  Without ``--data-root``
    the run is hermetic in a temporary directory.
    """
    import tempfile
    from pathlib import Path

    from repro.data import fetch_source, ingest

    cleanup = None
    if data_root is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-etl-")
        data_root = Path(cleanup.name)
    try:
        fetched = fetch_source(source, root=data_root, offline=offline)
        source_bytes = fetched.path.stat().st_size
        report = ingest(
            source,
            root=data_root,
            assignment=assignment,
            seed=seed,
            offline=offline,
            force=True,
        )
    finally:
        if cleanup is not None:
            cleanup.cleanup()

    timings = report.timings
    parse_s = max(timings.get("parse_s", 0.0), 1e-9)
    pipeline_s = max(parse_s + timings.get("assemble_s", 0.0), 1e-9)
    parse = report.manifest["parse"]
    graph = report.manifest["graph"]
    return {
        "workload": {
            "kind": "etl",
            "source": source,
            "assignment": assignment,
            "seed": seed,
            "offline_fixture": report.manifest["source"]["offline_fixture"],
        },
        "source": {
            "bytes": source_bytes,
            "sha256": report.manifest["source"]["sha256"],
        },
        "dataset": {
            "name": report.name,
            "num_nodes": graph["num_nodes"],
            "num_edges": graph["num_edges"],
            "raw_edges": parse["raw_edges"],
            "duplicate_edges": parse["duplicate_edges"],
            "self_loops_dropped": parse["self_loops_dropped"],
            "manifest_digest": report.manifest["manifest_digest"],
        },
        "timings_s": {
            stage: round(seconds, 4) for stage, seconds in timings.items()
        },
        "throughput": {
            "parse_mb_per_s": round(source_bytes / 1e6 / parse_s, 2),
            "ingest_edges_per_s": round(parse["raw_edges"] / pipeline_s, 1),
            "ingest_wall_s": round(timings["total_s"], 3),
        },
    }


def _status_and_health(base: str, timeout: float):
    request = urllib.request.Request(base + "/healthz")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, dict(response.headers), json.loads(
                response.read()
            )
    except urllib.error.HTTPError as exc:
        try:
            return exc.code, dict(exc.headers), json.loads(exc.read())
        except ValueError:
            return exc.code, dict(exc.headers), None
    except (urllib.error.URLError, TimeoutError, ConnectionError, OSError):
        return 0, {}, None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="open-loop arrival-rate load generator for repro serving"
    )
    parser.add_argument("base", nargs="?", default=None,
                        help="server base URL, e.g. http://127.0.0.1:8313 "
                             "(not needed with --dataset)")
    parser.add_argument("--rate", type=float, default=50.0,
                        help="arrival rate in requests/second (default 50)")
    parser.add_argument("--duration", type=float, default=5.0,
                        help="seconds of scheduled arrivals (default 5)")
    parser.add_argument("--seed", type=int, default=20160626,
                        help="workload RNG seed (default 20160626)")
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="per-request client timeout (default 30s)")
    parser.add_argument("--jobs", action="store_true",
                        help="drive the /jobs tier instead of the read path")
    parser.add_argument("--drain-timeout", type=float, default=120.0,
                        help="seconds to wait for submitted jobs to settle "
                             "(--jobs only, default 120)")
    parser.add_argument("--dataset", default=None, metavar="SOURCE",
                        help="bench the ETL pipeline on this catalogue "
                             "source instead of driving a server")
    parser.add_argument("--assignment", default="wc",
                        choices=("wc", "fixed", "trivalency", "file"),
                        help="probability assignment for --dataset "
                             "(default wc)")
    parser.add_argument("--offline", action="store_true",
                        help="use the bundled offline fixture for --dataset")
    parser.add_argument("--data-root", default=None,
                        help="data root for --dataset (default: a "
                             "temporary directory)")
    parser.add_argument("--out", default=None,
                        help="benchmark JSON to write (default "
                             "BENCH_router.json; BENCH_jobs.json with "
                             "--jobs; BENCH_etl.json with --dataset)")
    args = parser.parse_args(argv)
    if args.dataset is None and args.base is None:
        parser.error("a server base URL is required unless --dataset is given")
    out = args.out or (
        "BENCH_etl.json" if args.dataset
        else "BENCH_jobs.json" if args.jobs
        else "BENCH_router.json"
    )

    if args.dataset:
        report = run_etl(
            args.dataset,
            assignment=args.assignment,
            seed=args.seed,
            data_root=args.data_root,
            offline=args.offline,
        )
    elif args.jobs:
        report = run_jobs(
            args.base.rstrip("/"),
            rate=args.rate,
            duration=args.duration,
            seed=args.seed,
            timeout=args.timeout,
            drain_timeout=args.drain_timeout,
        )
    else:
        report = run(
            args.base.rstrip("/"),
            rate=args.rate,
            duration=args.duration,
            seed=args.seed,
            timeout=args.timeout,
        )
    with open(out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if args.dataset:
        dataset = report["dataset"]
        throughput = report["throughput"]
        print(
            f"loadgen: etl {args.dataset} -> {dataset['name']}: "
            f"{dataset['num_nodes']} nodes, {dataset['num_edges']} arcs "
            f"({dataset['raw_edges']} raw), "
            f"parse {throughput['parse_mb_per_s']} MB/s, "
            f"{throughput['ingest_edges_per_s']} edges/s, "
            f"{throughput['ingest_wall_s']}s wall -> {out}"
        )
    elif args.jobs:
        latency = report["submit_latency_ms"]
        jobs = report["jobs"]
        print(
            f"loadgen: {report['completed']}/{report['workload']['requests']} "
            f"submits, {report['ok']} ok, shed={report['shed']}, "
            f"errors={report['errors'] or '{}'}, "
            f"p50={latency['p50']}ms p99={latency['p99']}ms "
            f"({report['achieved_submit_rps']} rps), "
            f"jobs settled={jobs['final_states'] or '{}'} "
            f"undrained={jobs['undrained']} -> {out}"
        )
    else:
        latency = report["latency_ms"]
        print(
            f"loadgen: {report['completed']}/{report['workload']['requests']} "
            f"requests, {report['ok']} ok, shed={report['shed']}, "
            f"errors={report['errors'] or '{}'}, "
            f"availability={report['availability']}, "
            f"p50={latency['p50']}ms p99={latency['p99']}ms "
            f"({report['achieved_rps']} rps achieved) -> {out}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
