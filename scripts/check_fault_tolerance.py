#!/usr/bin/env python
"""CI gate for the fault-tolerant runtime (.github/workflows/ci.yml).

Runs the acceptance scenario of the fault-tolerance work end to end, with
deterministic fault injection armed, and fails loudly on any digest drift:

1. a 4-worker supervised index build survives **two injected worker
   crashes** (attempts 0 and 1 of one chunk) with a content digest
   identical to a clean serial build;
2. an all-nodes sphere sweep killed by a **torn checkpoint-shard write**
   and then resumed produces a sphere store digest-identical to an
   uninterrupted sweep;
3. a batched ``index build`` killed mid-append and resumed with
   ``--resume`` semantics converges to the clean build's digest.

Run from the repository root::

    PYTHONPATH=src python scripts/check_fault_tolerance.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.cascades.index import CascadeIndex
from repro.core.typical_cascade import TypicalCascadeComputer
from repro.graph.generators import powerlaw_outdegree_digraph
from repro.problearn.assign import assign_fixed
from repro.runtime.build_resume import resumable_index_build
from repro.runtime.checkpoint import FAULT_SITE_SHARD, _shard_name
from repro.runtime.errors import InjectedFault
from repro.runtime.faults import FaultPlan, FaultSpec, fault_scope
from repro.runtime.supervisor import SupervisorConfig
from repro.store.append import FAULT_SITE_STAGE
from repro.store.build import FAULT_SITE_CHUNK
from repro.store.fingerprint import digest_of_index
from repro.store.format import read_header, read_index

SAMPLES = 12
SEED = 20160626
FAST_RETRY = SupervisorConfig(backoff_base=0.01, backoff_max=0.05)


def check(label: str, ok: bool) -> None:
    print(f"  [{'ok' if ok else 'FAIL'}] {label}")
    if not ok:
        sys.exit(1)


def main() -> int:
    graph = assign_fixed(
        powerlaw_outdegree_digraph(150, mean_degree=5.0, seed=7), 0.12
    )
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    clean = CascadeIndex.build(graph, SAMPLES, seed=SEED)
    clean_digest = digest_of_index(clean)

    print("supervised parallel build under injected worker crashes:")
    crash_plan = FaultPlan.of(
        FaultSpec(site=FAULT_SITE_CHUNK, kind="crash", key=0, attempts=(0, 1))
    )
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "idx"
        with fault_scope(crash_plan):
            header = resumable_index_build(
                graph,
                SAMPLES,
                seed=SEED,
                out=out,
                n_jobs=4,
                supervisor=FAST_RETRY,
            )
        check(
            "digest after 2 worker crashes == clean serial build",
            header.content_digest == clean_digest,
        )
        check(
            "every array passes full sha256 verification",
            read_index(out, verify="full") is not None,
        )

    print("sphere sweep killed by a torn checkpoint write, then resumed:")
    computer = TypicalCascadeComputer(clean)
    clean_store_digest = computer.compute_store().digest()
    torn_plan = FaultPlan.of(
        FaultSpec(site=FAULT_SITE_SHARD, kind="torn", key=_shard_name(1))
    )
    with tempfile.TemporaryDirectory() as tmp:
        ck = Path(tmp) / "ck"
        interrupted = False
        with fault_scope(torn_plan):
            try:
                computer.compute_store(checkpoint_dir=ck, checkpoint_every=32)
            except InjectedFault:
                interrupted = True
        check("the torn shard write killed the sweep", interrupted)
        resumed = computer.compute_store(checkpoint_dir=ck, checkpoint_every=32)
        check(
            "resumed sweep digest == uninterrupted sweep digest",
            resumed.digest() == clean_store_digest,
        )

    print("batched index build killed mid-append, then resumed:")
    stage_plan = FaultPlan.of(
        FaultSpec(site=FAULT_SITE_STAGE, kind="error", key="dag_targets")
    )
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "idx"
        interrupted = False
        with fault_scope(stage_plan):
            try:
                resumable_index_build(
                    graph, SAMPLES, seed=SEED, out=out, batch_size=4
                )
            except InjectedFault:
                interrupted = True
        check("the injected stage fault killed the second batch", interrupted)
        check(
            "first batch survived durably",
            read_header(out).num_worlds == 4,
        )
        header = resumable_index_build(
            graph, SAMPLES, seed=SEED, out=out, batch_size=4, resume=True
        )
        check(
            "resumed build digest == clean build digest",
            header.content_digest == clean_digest,
        )

    print("fault-tolerant runtime OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
