#!/usr/bin/env python
"""Chaos gate for the durable seed-selection job service
(.github/workflows/ci.yml).

Runs a real ``python -m repro serve --jobs`` process (process-mode
workers — the deployment shape) with torn-write faults armed on the
``jobs.commit`` journal site, keeps live ``/sphere`` read traffic
hammering throughout, and verifies the durability contract end to end:

1. **torn journal commit** — every job's first attempt tears its first
   ``step`` append (half a line hits the disk, the worker dies); the
   manager truncates the torn tail, respawns, and the finished job's
   result is byte-identical to an uninterrupted serial reference;
2. **worker SIGKILL mid-selection** — a slow job's worker process is
   SIGKILLed after >= 2 committed steps; the respawned attempt resumes
   from the journalled prefix and the final seed set has byte parity
   with the serial reference (resume purity);
3. **cancellation frees every slot** — running and queued jobs are
   cancelled over HTTP; afterwards the ``repro_jobs_running`` and
   ``repro_jobs_queued`` gauges are both zero and a fresh job completes;
4. **idempotent submission** — re-submitting the same payload and key
   returns the same job id with ``deduplicated: true`` (status 200);
5. **deadline enforcement** — a job with an exceeded wall-clock deadline
   settles ``failed-permanent`` and frees its slot;
6. **live traffic unharmed** — the concurrent ``/sphere`` hammer saw
   only byte-correct responses across every chaos phase;
7. **loadgen smoke** — ``scripts/loadgen.py --jobs`` drives the tier and
   writes a well-formed ``BENCH_jobs.json``;
8. **graceful drain** — SIGTERM exits 0.

Run from the repository root::

    PYTHONPATH=src python scripts/check_chaos_jobs.py
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from check_serve import check, fetch, metric_value, subprocess_env  # noqa: E402

from repro.cascades.index import CascadeIndex  # noqa: E402
from repro.core.typical_cascade import TypicalCascadeComputer  # noqa: E402
from repro.graph.generators import powerlaw_outdegree_digraph  # noqa: E402
from repro.jobs.select import run_to_completion  # noqa: E402
from repro.jobs.spec import JobSpec  # noqa: E402
from repro.problearn.assign import assign_fixed  # noqa: E402
from repro.runtime.faults import ENV_VAR, FaultPlan, FaultSpec  # noqa: E402
from repro.serve import query as q  # noqa: E402

SAMPLES = 8
SEED = 20160626
NUM_NODES = 60
TERMINAL = ("done", "cancelled", "failed-permanent")

#: Job ids are assigned sequentially (j000001, j000002, ...), so each
#: phase knows its job's id up front and can key per-job fault specs.
TORN_JOB = "j000001"
KILL_JOB = "j000002"
SLOW_A, SLOW_B, QUEUED_JOB = "j000003", "j000004", "j000005"
# j000006 is the freed-slot probe of phase 3, j000007 the keyed submit of
# phase 4 — ids are sequential, so the deadline phase gets j000008.
DEADLINE_JOB = "j000008"


def build_store(tmp: Path) -> Path:
    graph = assign_fixed(
        powerlaw_outdegree_digraph(NUM_NODES, mean_degree=5.0, seed=7), 0.15
    )
    index = CascadeIndex.build(graph, SAMPLES, seed=11)
    store = tmp / "idx"
    index.save(store, format="store")
    return store


def reference_result(store: Path, payload: dict) -> bytes:
    """Canonical bytes of the uninterrupted serial selection."""
    index = CascadeIndex.load(store)
    spec = JobSpec.from_payload(payload, index.num_nodes)
    return q.canonical_json(run_to_completion(spec, index))


def sphere_references(store: Path) -> dict[int, bytes]:
    index = CascadeIndex.load(store)
    computer = TypicalCascadeComputer(index, size_grid_ratio=1.15)
    return {
        node: q.canonical_json(q.sphere_payload(node, computer.compute(node)))
        for node in range(NUM_NODES)
    }


def wait_job(base: str, job_id: str, timeout: float = 120.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, _, body = fetch(base, f"/jobs/{job_id}")
        view = json.loads(body)
        if status == 200 and view["state"] in TERMINAL:
            return view
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never settled within {timeout:g}s")


def wait_gauges_zero(base: str, timeout: float = 15.0) -> bool:
    """Poll /metrics until both job gauges read zero.

    The journal turns terminal a beat before the manager's drive loop
    observes the outcome and settles the gauges, so a single read races.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, _, body = fetch(base, "/metrics")
        text = body.decode()
        if (
            metric_value(text, "repro_jobs_running") == 0
            and metric_value(text, "repro_jobs_queued") == 0
        ):
            return True
        time.sleep(0.05)
    return False


def wait_steps(base: str, job_id: str, steps: int, timeout: float = 60.0) -> dict:
    """Poll until the job has committed >= ``steps`` and has a worker pid."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, _, body = fetch(base, f"/jobs/{job_id}")
        view = json.loads(body)
        if (
            status == 200
            and view["steps"] >= steps
            and view.get("worker_pid")
            and view["state"] == "running"
        ):
            return view
        time.sleep(0.02)
    raise AssertionError(
        f"job {job_id} never reached {steps} committed running steps"
    )


def hammer(base: str, reference: dict[int, bytes], stop: threading.Event,
           failures: list) -> None:
    """Live read traffic: every /sphere response must be correct bytes."""
    while not stop.is_set():
        for node in range(0, NUM_NODES, 3):
            if stop.is_set():
                return
            try:
                status, _, body = fetch(base, f"/sphere/{node}")
            except Exception as exc:
                failures.append((node, "transport", repr(exc)))
                continue
            if not (status == 200 and body == reference[node]):
                failures.append((node, status, body[:160]))


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp_str:
        tmp = Path(tmp_str)
        print("phase 0: build store + uninterrupted serial references")
        store = build_store(tmp)
        torn_payload = {"model": "celfpp", "k": 6}
        kill_payload = {"model": "greedy_tc", "k": 8}
        torn_reference = reference_result(store, torn_payload)
        kill_reference = reference_result(store, kill_payload)
        spheres = sphere_references(store)

        # One fault plan for the whole serve process (workers inherit it):
        # - every job's attempt 0 tears its first `step` journal append;
        # - the SIGKILL-phase job runs slow on attempts 0-2 so the kill
        #   lands mid-selection and the resumed attempt is observable;
        # - the cancellation/deadline jobs run slow on every attempt.
        plan = FaultPlan.of(
            FaultSpec(site="jobs.commit", kind="torn", key="step",
                      attempts=(0,)),
            FaultSpec(site="jobs.step", kind="sleep", key=KILL_JOB,
                      attempts=(0, 1, 2), seconds=0.25),
            *[
                FaultSpec(site="jobs.step", kind="sleep", key=job,
                          attempts=(0, 1, 2, 3), seconds=0.5)
                for job in (SLOW_A, SLOW_B, QUEUED_JOB, DEADLINE_JOB)
            ],
        )
        env = subprocess_env()
        env[ENV_VAR] = plan.to_json()
        jobs_dir = tmp / "jobs"
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", str(store),
                "--port", "0", "--jobs", "--jobs-dir", str(jobs_dir),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            check("serve --jobs came up", "http://" in banner)
            base = banner.rsplit(" on ", 1)[1].strip()
            print(f"server: {base}")

            stop = threading.Event()
            failures: list = []
            hammer_thread = threading.Thread(
                target=hammer, args=(base, spheres, stop, failures),
                daemon=True,
            )
            hammer_thread.start()

            print("phase 1: torn jobs.commit -> truncate, respawn, byte parity")
            status, _, body = fetch(base, "/jobs/infmax", method="POST",
                                    body=torn_payload)
            check("submit accepted (202)", status == 202)
            check("job id assigned as expected",
                  json.loads(body)["id"] == TORN_JOB)
            view = wait_job(base, TORN_JOB)
            check("torn job finished done", view["state"] == "done")
            check("torn write cost exactly one respawn", view["attempts"] == 2)
            status, _, body = fetch(base, f"/jobs/{TORN_JOB}/result")
            result = q.canonical_json(json.loads(body)["result"])
            check("result has byte parity with the serial reference",
                  status == 200 and result == torn_reference)
            journal_bytes = (jobs_dir / TORN_JOB / "journal.jsonl").read_bytes()
            check("repaired journal is newline-terminated (no torn tail)",
                  journal_bytes.endswith(b"\n"))

            print("phase 2: SIGKILL the worker mid-selection, resume parity")
            status, _, body = fetch(base, "/jobs/infmax", method="POST",
                                    body=kill_payload)
            check("kill-phase submit accepted",
                  status == 202 and json.loads(body)["id"] == KILL_JOB)
            view = wait_steps(base, KILL_JOB, 2)
            victim = view["worker_pid"]
            before_steps = view["steps"]
            subprocess.run(["kill", "-9", str(victim)], check=True)
            view = wait_job(base, KILL_JOB)
            check("killed job finished done", view["state"] == "done")
            check("the SIGKILL forced at least one extra attempt",
                  view["attempts"] >= 3)  # torn attempt + killed + finisher
            check("resume continued past the committed prefix",
                  view["steps"] == 8 and view["steps"] > before_steps)
            status, _, body = fetch(base, f"/jobs/{KILL_JOB}/result")
            check(
                "resumed seed set has byte parity with the serial reference",
                status == 200
                and q.canonical_json(json.loads(body)["result"])
                == kill_reference,
            )

            print("phase 3: cancellation frees every admission slot")
            for job, payload in (
                (SLOW_A, {"model": "celfpp", "k": 30}),
                (SLOW_B, {"model": "celfpp", "k": 31}),
                (QUEUED_JOB, {"model": "celfpp", "k": 32}),
            ):
                status, _, body = fetch(base, "/jobs/infmax", method="POST",
                                        body=payload)
                check(f"{job} submitted", status == 202
                      and json.loads(body)["id"] == job)
            # Default max_running is 2: the third job must be queued.
            status, _, body = fetch(base, f"/jobs/{QUEUED_JOB}")
            check("third job queued behind the slot limit",
                  json.loads(body)["state"] == "queued")
            for job in (QUEUED_JOB, SLOW_A, SLOW_B):
                status, _, _ = fetch(base, f"/jobs/{job}/cancel",
                                     method="POST")
                check(f"cancel {job} accepted", status == 200)
            for job in (SLOW_A, SLOW_B, QUEUED_JOB):
                check(f"{job} settled cancelled",
                      wait_job(base, job)["state"] == "cancelled")
            check("running and queued gauges drained to 0",
                  wait_gauges_zero(base))
            status, _, body = fetch(base, "/jobs/infmax", method="POST",
                                    body={"model": "greedy_tc", "k": 3})
            probe = json.loads(body)["id"]
            check("freed slots admit and finish new work",
                  wait_job(base, probe)["state"] == "done")

            print("phase 4: idempotent double-submit")
            payload = {"model": "celfpp", "k": 4, "idempotency_key": "chaos-1"}
            status, _, body = fetch(base, "/jobs/infmax", method="POST",
                                    body=payload)
            first = json.loads(body)
            check("first keyed submit is 202", status == 202)
            status, _, body = fetch(base, "/jobs/infmax", method="POST",
                                    body=payload)
            second = json.loads(body)
            check(
                "duplicate submit returns the same job, deduplicated, 200",
                status == 200
                and second["id"] == first["id"]
                and second.get("deduplicated") is True,
            )
            wait_job(base, first["id"])

            print("phase 5: wall-clock deadline settles failed-permanent")
            status, _, body = fetch(
                base, "/jobs/infmax", method="POST",
                body={"model": "celfpp", "k": 40, "deadline": 1.0},
            )
            check("deadline job submitted",
                  status == 202 and json.loads(body)["id"] == DEADLINE_JOB)
            view = wait_job(base, DEADLINE_JOB)
            check("deadline exceeded -> failed-permanent",
                  view["state"] == "failed-permanent"
                  and "deadline" in (view["error"] or ""))
            check("deadline job freed its slot", wait_gauges_zero(base))

            print("phase 6: live /sphere traffic stayed byte-correct")
            stop.set()
            hammer_thread.join(timeout=30)
            check("zero read-path violations during job chaos",
                  failures == [])

            print("phase 7: loadgen --jobs smoke")
            bench = tmp / "BENCH_jobs.json"
            loadgen = subprocess.run(
                [sys.executable,
                 str(Path(__file__).resolve().parent / "loadgen.py"),
                 base, "--jobs", "--rate", "4", "--duration", "2",
                 "--out", str(bench)],
                capture_output=True,
                env=subprocess_env(),
                text=True,
                timeout=300,
            )
            check("loadgen --jobs exits 0", loadgen.returncode == 0)
            report = json.loads(bench.read_text()) if bench.is_file() else {}
            check(
                "loadgen wrote a well-formed BENCH_jobs.json",
                "p99" in report.get("submit_latency_ms", {})
                and report.get("jobs", {}).get("undrained") == 0
                and report.get("error_budget", {}).get("errors") == 0,
            )

            print("phase 8: graceful drain")
            process.send_signal(signal.SIGTERM)
            try:
                code = process.wait(timeout=60)
            except subprocess.TimeoutExpired:
                process.kill()
                check("SIGTERM drains within 60s", False)
            check("exit code 0 after SIGTERM", code == 0)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)

    print("all chaos-jobs checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
