"""Tests of the top-level public API surface."""

import repro


class TestExports:
    def test_all_names_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2


class TestEndToEndPipeline:
    def test_quickstart_flow(self, fig1):
        """The README quickstart, as a test: build an index, compute a
        sphere, run both influence maximisers."""
        index = repro.CascadeIndex.build(fig1, 200, seed=42)
        computer = repro.TypicalCascadeComputer(index)
        sphere = computer.compute(4)
        assert sphere.as_set() == {0, 1, 4}

        trace_std = repro.infmax_std(index, 2)
        trace_tc, spheres = repro.infmax_tc(index, 2)
        assert len(trace_std.seeds) == 2
        assert len(trace_tc.selected) == 2
        assert len(spheres) == 5

    def test_jaccard_helpers_exported(self):
        assert repro.jaccard_distance({1}, {1}) == 0.0
        assert repro.jaccard_similarity({1}, {2}) == 0.0
