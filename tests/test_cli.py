"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_setting_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table2", "--settings", "Nope-S"])

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.scale == 0.2
        assert args.samples == 64


class TestCommands:
    def test_list_settings(self, capsys):
        assert main(["list-settings"]) == 0
        out = capsys.readouterr().out
        assert "Digg-S" in out and "Slashdot-F" in out

    def test_sphere_command(self, capsys):
        code = main(
            [
                "sphere",
                "--setting",
                "NetHEPT-W",
                "--node",
                "1",
                "--scale",
                "0.03",
                "--samples",
                "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Sphere of influence of node 1" in out
        assert "cost" in out

    def test_table2_subset(self, capsys):
        code = main(
            [
                "table2",
                "--scale",
                "0.03",
                "--samples",
                "8",
                "--settings",
                "NetHEPT-W",
                "--max-nodes",
                "10",
            ]
        )
        assert code == 0
        assert "NetHEPT-W" in capsys.readouterr().out

    def test_fig7_runs_small(self, capsys):
        code = main(
            [
                "fig7",
                "--scale",
                "0.03",
                "--samples",
                "8",
                "--settings",
                "NetHEPT-F",
            ]
        )
        assert code == 0
        assert "marginal gain" in capsys.readouterr().out


class TestReportCommand:
    def test_report_writes_markdown(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "table1.txt").write_text("FAKE TABLE")
        out = tmp_path / "EXPERIMENTS.md"
        code = main(
            ["report", "--results-dir", str(results), "--output", str(out)]
        )
        assert code == 0
        assert out.exists()
        assert "FAKE TABLE" in out.read_text()
