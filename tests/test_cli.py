"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_setting_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table2", "--settings", "Nope-S"])

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.scale == 0.2
        assert args.samples == 64


class TestCommands:
    def test_list_settings(self, capsys):
        assert main(["list-settings"]) == 0
        out = capsys.readouterr().out
        assert "Digg-S" in out and "Slashdot-F" in out

    def test_sphere_command(self, capsys):
        code = main(
            [
                "sphere",
                "--setting",
                "NetHEPT-W",
                "--node",
                "1",
                "--scale",
                "0.03",
                "--samples",
                "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Sphere of influence of node 1" in out
        assert "cost" in out

    def test_table2_subset(self, capsys):
        code = main(
            [
                "table2",
                "--scale",
                "0.03",
                "--samples",
                "8",
                "--settings",
                "NetHEPT-W",
                "--max-nodes",
                "10",
            ]
        )
        assert code == 0
        assert "NetHEPT-W" in capsys.readouterr().out

    def test_fig7_runs_small(self, capsys):
        code = main(
            [
                "fig7",
                "--scale",
                "0.03",
                "--samples",
                "8",
                "--settings",
                "NetHEPT-F",
            ]
        )
        assert code == 0
        assert "marginal gain" in capsys.readouterr().out


class TestIndexCommands:
    @pytest.fixture
    def built(self, tmp_path, capsys):
        path = tmp_path / "idx"
        assert main(
            [
                "index", "build",
                "--setting", "NetHEPT-W",
                "--scale", "0.03",
                "--samples", "6",
                "--seed", "11",
                "--out", str(path),
            ]
        ) == 0
        capsys.readouterr()
        return path

    def test_build_reports_header(self, tmp_path, capsys):
        path = tmp_path / "idx"
        code = main(
            [
                "index", "build",
                "--setting", "NetHEPT-W",
                "--scale", "0.03",
                "--samples", "6",
                "--seed", "11",
                "--out", str(path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "worlds: 6" in out
        assert "content digest: sha256:" in out
        assert (path / "header.json").is_file()

    def test_info_full_verify(self, built, capsys):
        assert main(["index", "info", str(built), "--verify", "full"]) == 0
        out = capsys.readouterr().out
        assert "seed entropy: 11" in out
        assert "verified: full sha256" in out

    def test_append_grows_store(self, built, capsys):
        assert main(["index", "append", str(built), "--samples", "2"]) == 0
        out = capsys.readouterr().out
        assert "appended 2 worlds" in out
        assert "worlds: 8" in out

    def test_query_cascade_sphere_infmax(self, built, capsys):
        code = main(
            [
                "index", "query", str(built),
                "--node", "1",
                "--world", "0",
                "--sphere",
                "--infmax", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cascade of node 1 in world 0" in out
        assert "sphere of node 1" in out
        assert "InfMax_TC seeds (k=2)" in out

    def test_query_without_work_errors(self, built):
        with pytest.raises(SystemExit):
            main(["index", "query", str(built)])

    def test_sphere_accepts_saved_index(self, built, capsys):
        assert main(["sphere", "--index", str(built), "--node", "1"]) == 0
        out = capsys.readouterr().out
        assert "Sphere of influence of node 1" in out

    def test_sphere_requires_setting_or_index(self):
        with pytest.raises(SystemExit):
            main(["sphere", "--node", "1"])


class TestReportCommand:
    def test_report_writes_markdown(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "table1.txt").write_text("FAKE TABLE")
        out = tmp_path / "EXPERIMENTS.md"
        code = main(
            ["report", "--results-dir", str(results), "--output", str(out)]
        )
        assert code == 0
        assert out.exists()
        assert "FAKE TABLE" in out.read_text()
