"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_setting_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table2", "--settings", "Nope-S"])

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.scale == 0.2
        assert args.samples == 64


class TestCommands:
    def test_list_settings(self, capsys):
        assert main(["list-settings"]) == 0
        out = capsys.readouterr().out
        assert "Digg-S" in out and "Slashdot-F" in out

    def test_sphere_command(self, capsys):
        code = main(
            [
                "sphere",
                "--setting",
                "NetHEPT-W",
                "--node",
                "1",
                "--scale",
                "0.03",
                "--samples",
                "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Sphere of influence of node 1" in out
        assert "cost" in out

    def test_table2_subset(self, capsys):
        code = main(
            [
                "table2",
                "--scale",
                "0.03",
                "--samples",
                "8",
                "--settings",
                "NetHEPT-W",
                "--max-nodes",
                "10",
            ]
        )
        assert code == 0
        assert "NetHEPT-W" in capsys.readouterr().out

    def test_fig7_runs_small(self, capsys):
        code = main(
            [
                "fig7",
                "--scale",
                "0.03",
                "--samples",
                "8",
                "--settings",
                "NetHEPT-F",
            ]
        )
        assert code == 0
        assert "marginal gain" in capsys.readouterr().out


class TestIndexCommands:
    @pytest.fixture
    def built(self, tmp_path, capsys):
        path = tmp_path / "idx"
        assert main(
            [
                "index", "build",
                "--setting", "NetHEPT-W",
                "--scale", "0.03",
                "--samples", "6",
                "--seed", "11",
                "--out", str(path),
            ]
        ) == 0
        capsys.readouterr()
        return path

    def test_build_reports_header(self, tmp_path, capsys):
        path = tmp_path / "idx"
        code = main(
            [
                "index", "build",
                "--setting", "NetHEPT-W",
                "--scale", "0.03",
                "--samples", "6",
                "--seed", "11",
                "--out", str(path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "worlds: 6" in out
        assert "content digest: sha256:" in out
        assert (path / "header.json").is_file()

    def test_info_full_verify(self, built, capsys):
        assert main(["index", "info", str(built), "--verify", "full"]) == 0
        out = capsys.readouterr().out
        assert "seed entropy: 11" in out
        assert "verified: full sha256" in out

    def test_verify_clean_store(self, built, capsys):
        assert main(["index", "verify", str(built)]) == 0
        out = capsys.readouterr().out
        assert "result: clean" in out
        assert "members.npy" in out
        assert "CORRUPT" not in out

    def test_verify_json_clean(self, built, capsys):
        assert main(["index", "verify", str(built), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["corrupt"] == []
        names = {column["name"] for column in payload["columns"]}
        assert "members" in names and "graph_targets" in names

    def test_verify_corrupt_store_exits_2(self, built, capsys):
        target = built / "members.npy"
        data = bytearray(target.read_bytes())
        data[-30] ^= 0xFF
        target.write_bytes(bytes(data))
        with pytest.raises(SystemExit) as excinfo:
            main(["index", "verify", str(built)])
        assert excinfo.value.code == 2
        out = capsys.readouterr().out
        assert "members.npy" in out
        assert "CORRUPT (sha256 mismatch)" in out
        assert "result: CORRUPT" in out
        assert "1 damaged" in out

    def test_verify_json_reports_every_damaged_file(self, built, capsys):
        (built / "graph_probs.npy").unlink()
        target = built / "dag_targets.npy"
        target.write_bytes(target.read_bytes()[:-8])
        with pytest.raises(SystemExit) as excinfo:
            main(["index", "verify", str(built), "--json"])
        assert excinfo.value.code == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["corrupt"] == ["dag_targets", "graph_probs"]

    def test_verify_missing_path_is_operational_error(self, tmp_path, capsys):
        assert main(["index", "verify", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_append_grows_store(self, built, capsys):
        assert main(["index", "append", str(built), "--samples", "2"]) == 0
        out = capsys.readouterr().out
        assert "appended 2 worlds" in out
        assert "worlds: 8" in out

    def test_query_cascade_sphere_infmax(self, built, capsys):
        code = main(
            [
                "index", "query", str(built),
                "--node", "1",
                "--world", "0",
                "--sphere",
                "--infmax", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cascade of node 1 in world 0" in out
        assert "sphere of node 1" in out
        assert "InfMax_TC seeds (k=2)" in out

    def test_query_without_work_errors(self, built):
        with pytest.raises(SystemExit):
            main(["index", "query", str(built)])

    def test_sphere_accepts_saved_index(self, built, capsys):
        assert main(["sphere", "--index", str(built), "--node", "1"]) == 0
        out = capsys.readouterr().out
        assert "Sphere of influence of node 1" in out

    def test_sphere_requires_setting_or_index(self):
        with pytest.raises(SystemExit):
            main(["sphere", "--node", "1"])

    def test_sphere_requires_node_xor_all(self, built):
        with pytest.raises(SystemExit, match="exactly one"):
            main(["sphere", "--index", str(built)])
        with pytest.raises(SystemExit, match="exactly one"):
            main(["sphere", "--index", str(built), "--node", "1", "--all"])


class TestErrorHygiene:
    """Operational failures exit 2 with one stderr line, never a traceback."""

    def test_missing_store_path(self, capsys):
        assert main(["index", "info", "/no/such/store"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro index: error:")
        assert err.count("\n") == 1

    def test_corrupt_index_archive(self, tmp_path, capsys):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"garbage, not a zip archive")
        assert main(["sphere", "--index", str(bad), "--node", "0"]) == 2
        err = capsys.readouterr().err
        assert "not a readable" in err
        assert "Traceback" not in err

    def test_missing_index_file(self, tmp_path, capsys):
        assert main(
            ["sphere", "--index", str(tmp_path / "nope.npz"), "--node", "0"]
        ) == 2
        assert "error:" in capsys.readouterr().err

    def test_torn_store_append(self, tmp_path, capsys):
        path = tmp_path / "idx"
        assert main(
            [
                "index", "build",
                "--setting", "NetHEPT-W",
                "--scale", "0.03",
                "--samples", "4",
                "--out", str(path),
            ]
        ) == 0
        capsys.readouterr()
        victim = path / "members.npy"
        victim.write_bytes(victim.read_bytes()[:-8])
        assert main(["index", "append", str(path), "--samples", "2"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro index: error:")
        assert "Traceback" not in err


class TestResumableCommands:
    @pytest.fixture
    def built(self, tmp_path, capsys):
        path = tmp_path / "base-idx"
        assert main(
            [
                "index", "build",
                "--setting", "NetHEPT-W",
                "--scale", "0.03",
                "--samples", "6",
                "--seed", "11",
                "--out", str(path),
            ]
        ) == 0
        capsys.readouterr()
        return path

    def test_batched_build_then_resume_grows_store(self, tmp_path, capsys):
        path = tmp_path / "idx"
        common = [
            "index", "build",
            "--setting", "NetHEPT-W",
            "--scale", "0.03",
            "--seed", "11",
            "--out", str(path),
            "--batch-size", "3",
        ]
        assert main(common + ["--samples", "6"]) == 0
        assert "worlds: 6" in capsys.readouterr().out
        assert main(common + ["--samples", "10", "--resume"]) == 0
        assert "worlds: 10" in capsys.readouterr().out

    def test_resumed_build_matches_monolithic(self, tmp_path, capsys):
        from repro.store import read_header

        batched = tmp_path / "batched"
        mono = tmp_path / "mono"
        base = [
            "index", "build",
            "--setting", "NetHEPT-W",
            "--scale", "0.03",
            "--samples", "8",
            "--seed", "11",
        ]
        assert main(base + ["--out", str(batched), "--batch-size", "3"]) == 0
        assert main(base + ["--out", str(mono)]) == 0
        capsys.readouterr()
        assert (
            read_header(batched).content_digest == read_header(mono).content_digest
        )

    def test_sphere_all_sweep_refuse_and_resume(self, built, tmp_path, capsys):
        out = tmp_path / "spheres.npz"
        sweep = ["sphere", "--index", str(built), "--all", "--out", str(out),
                 "--checkpoint-every", "8"]
        assert main(sweep) == 0
        first = capsys.readouterr().out
        assert "digest: sha256:" in first
        assert out.exists()
        # a second sweep against the same checkpoint dir refuses without --resume
        with pytest.raises(SystemExit, match="pass --resume"):
            main(sweep)
        # with --resume it recovers everything and lands on the same digest
        assert main(sweep + ["--resume"]) == 0
        second = capsys.readouterr().out
        digest = [ln for ln in first.splitlines() if "digest:" in ln]
        assert digest and digest[0] in second

    def test_sphere_all_requires_out(self, built):
        with pytest.raises(SystemExit, match="--out is required"):
            main(["sphere", "--index", str(built), "--all"])


class TestReportCommand:
    def test_report_writes_markdown(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "table1.txt").write_text("FAKE TABLE")
        out = tmp_path / "EXPERIMENTS.md"
        code = main(
            ["report", "--results-dir", str(results), "--output", str(out)]
        )
        assert code == 0
        assert out.exists()
        assert "FAKE TABLE" in out.read_text()
