"""Tests for repro.median.minhash."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.median.jaccard import jaccard_distance, jaccard_similarity
from repro.median.minhash import (
    MinHasher,
    estimate_jaccard_distance,
    estimate_jaccard_similarity,
    estimate_mean_distance,
)


class TestMinHasher:
    def test_signature_shape(self):
        hasher = MinHasher(num_hashes=64, seed=1)
        sig = hasher.signature(np.array([1, 5, 9]))
        assert sig.shape == (64,)

    def test_signature_deterministic(self):
        a = MinHasher(64, seed=2).signature(np.array([1, 2, 3]))
        b = MinHasher(64, seed=2).signature(np.array([1, 2, 3]))
        assert np.array_equal(a, b)

    def test_signature_order_invariant(self):
        hasher = MinHasher(64, seed=3)
        a = hasher.signature(np.array([5, 1, 9]))
        b = hasher.signature(np.array([9, 5, 1]))
        assert np.array_equal(a, b)

    def test_identical_sets_collide_fully(self):
        hasher = MinHasher(32, seed=4)
        sig = hasher.signature(np.array([2, 4, 6]))
        assert estimate_jaccard_similarity(sig, sig) == 1.0

    def test_empty_set_sentinel(self):
        hasher = MinHasher(8, seed=5)
        sig = hasher.signature(np.zeros(0, dtype=np.int64))
        assert np.all(sig == np.iinfo(np.int64).max)

    def test_signatures_stack(self):
        hasher = MinHasher(16, seed=6)
        sigs = hasher.signatures([np.array([1]), np.array([2, 3])])
        assert sigs.shape == (2, 16)

    def test_large_elements_fallback_path(self):
        hasher = MinHasher(8, seed=7)
        big = np.array([2**40, 2**41], dtype=np.int64)
        sig = hasher.signature(big)
        assert sig.shape == (8,)


class TestEstimation:
    def test_unbiasedness_on_known_pair(self):
        """With many hashes the estimate concentrates around true J."""
        a = np.arange(0, 60)
        b = np.arange(30, 90)  # |inter| = 30, |union| = 90 -> J = 1/3
        hasher = MinHasher(2048, seed=8)
        est = estimate_jaccard_similarity(hasher.signature(a), hasher.signature(b))
        assert est == pytest.approx(1 / 3, abs=0.05)

    def test_distance_complements_similarity(self):
        hasher = MinHasher(256, seed=9)
        sa = hasher.signature(np.array([1, 2]))
        sb = hasher.signature(np.array([2, 3]))
        assert estimate_jaccard_distance(sa, sb) == pytest.approx(
            1 - estimate_jaccard_similarity(sa, sb)
        )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shapes differ"):
            estimate_jaccard_similarity(np.zeros(4), np.zeros(8))

    def test_mean_distance_matches_pairwise(self):
        hasher = MinHasher(128, seed=10)
        samples = [np.array([1, 2, 3]), np.array([4, 5])]
        sigs = hasher.signatures(samples)
        cand = hasher.signature(np.array([1, 2]))
        expected = np.mean(
            [estimate_jaccard_distance(cand, sigs[i]) for i in range(2)]
        )
        assert estimate_mean_distance(cand, sigs) == pytest.approx(float(expected))

    def test_mean_distance_shape_checked(self):
        with pytest.raises(ValueError, match="num_samples"):
            estimate_mean_distance(np.zeros(4), np.zeros((2, 8)))


@settings(max_examples=15)
@given(
    st.frozensets(st.integers(0, 40), min_size=1, max_size=25),
    st.frozensets(st.integers(0, 40), min_size=1, max_size=25),
)
def test_estimate_tracks_true_jaccard(a, b):
    """Property: 1024-hash estimates stay within 0.15 of the truth."""
    hasher = MinHasher(1024, seed=11)
    sa = hasher.signature(np.fromiter(sorted(a), dtype=np.int64))
    sb = hasher.signature(np.fromiter(sorted(b), dtype=np.int64))
    est = estimate_jaccard_similarity(sa, sb)
    true = jaccard_similarity(a, b)
    assert abs(est - true) <= 0.15
