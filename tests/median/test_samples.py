"""Tests for repro.median.samples — the packed sample collection."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.median.jaccard import jaccard_distance
from repro.median.samples import SampleCollection


def make(sets, n=10) -> SampleCollection:
    return SampleCollection(n, [np.array(sorted(s), dtype=np.int64) for s in sets])


class TestConstruction:
    def test_basic(self):
        sc = make([{1, 2}, {2, 3, 4}, set()])
        assert sc.num_samples == 3
        assert sc.universe_size == 10
        assert sc.sizes.tolist() == [2, 3, 0]

    def test_needs_at_least_one_sample(self):
        with pytest.raises(ValueError, match="at least one"):
            SampleCollection(5, [])

    def test_unsorted_sample_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            SampleCollection(5, [np.array([2, 1])])

    def test_duplicate_elements_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            SampleCollection(5, [np.array([1, 1])])

    def test_out_of_universe_rejected(self):
        with pytest.raises(ValueError, match="universe"):
            SampleCollection(5, [np.array([7])])

    def test_from_iterables_sorts_and_dedups(self):
        sc = SampleCollection.from_iterables(10, [[3, 1, 3], [2]])
        assert sc.sample(0).tolist() == [1, 3]

    def test_sample_accessor_bounds(self):
        sc = make([{1}])
        with pytest.raises(IndexError):
            sc.sample(1)

    def test_iteration(self):
        sc = make([{1}, {2, 3}])
        assert [s.tolist() for s in sc] == [[1], [2, 3]]


class TestAggregates:
    def test_union(self):
        sc = make([{1, 2}, {2, 5}, {9}])
        assert sc.union().tolist() == [1, 2, 5, 9]

    def test_frequencies(self):
        sc = make([{1, 2}, {2, 5}, {2}])
        assert dict(zip(sc.union().tolist(), sc.frequencies().tolist())) == {
            1: 1,
            2: 3,
            5: 1,
        }

    def test_all_empty_samples(self):
        sc = make([set(), set()])
        assert sc.union().size == 0
        assert sc.frequencies().size == 0

    def test_sample_ids_per_element(self):
        sc = make([{1, 2}, {5}])
        assert sc.sample_ids_per_element().tolist() == [0, 0, 1]


class TestEvaluation:
    def test_intersection_sizes_naive_agreement(self):
        sc = make([{1, 2, 3}, {3, 4}, set(), {0, 9}])
        candidate = np.array([0, 3, 4])
        mask = sc.membership_mask(candidate)
        expected = [1, 2, 0, 1]
        assert sc.intersection_sizes(mask).tolist() == expected

    def test_distances_match_jaccard(self):
        samples = [{1, 2, 3}, {3, 4}, set(), {0, 9}]
        sc = make(samples)
        candidate = np.array([0, 3, 4])
        dist = sc.distances(candidate)
        for i, s in enumerate(samples):
            assert dist[i] == pytest.approx(jaccard_distance(candidate, s))

    def test_empty_candidate_vs_empty_sample(self):
        sc = make([set(), {1}])
        dist = sc.distances(np.zeros(0, dtype=np.int64))
        assert dist.tolist() == [0.0, 1.0]

    def test_mean_distance(self):
        sc = make([{1}, {2}])
        assert sc.mean_distance(np.array([1])) == pytest.approx(0.5)

    def test_mask_shape_checked(self):
        sc = make([{1}])
        with pytest.raises(ValueError, match="shape"):
            sc.intersection_sizes(np.zeros(3, dtype=bool))


@given(
    st.lists(st.frozensets(st.integers(0, 15), max_size=10), min_size=1, max_size=8),
    st.frozensets(st.integers(0, 15), max_size=10),
)
def test_vectorised_distances_equal_reference(samples, candidate):
    """Property: the packed evaluation equals per-pair Jaccard distances."""
    sc = SampleCollection.from_iterables(16, samples)
    cand = np.fromiter(sorted(candidate), dtype=np.int64)
    dist = sc.distances(cand)
    for i, s in enumerate(samples):
        assert dist[i] == pytest.approx(jaccard_distance(cand, s))
    assert sc.mean_distance(cand) == pytest.approx(float(dist.mean()))
