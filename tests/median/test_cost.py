"""Tests for repro.median.cost — the three cost estimators agree."""

import numpy as np
import pytest

from repro.cascades.ic import sample_cascades
from repro.median.cost import (
    empirical_cost,
    exact_expected_cost,
    monte_carlo_expected_cost,
)
from repro.median.jaccard import jaccard_distance
from repro.median.samples import SampleCollection


class TestEmpiricalCost:
    def test_matches_manual_mean(self):
        samples = [np.array([1, 2]), np.array([2, 3])]
        candidate = [2]
        expected = np.mean(
            [jaccard_distance({2}, {1, 2}), jaccard_distance({2}, {2, 3})]
        )
        assert empirical_cost(candidate, samples, universe_size=5) == pytest.approx(
            float(expected)
        )

    def test_accepts_sample_collection(self):
        sc = SampleCollection(5, [np.array([1, 2])])
        assert empirical_cost([1, 2], sc) == 0.0

    def test_universe_inferred(self):
        samples = [np.array([3]), np.array([7])]
        cost = empirical_cost([3], samples)
        assert cost == pytest.approx(0.5)


class TestExactExpectedCost:
    def test_deterministic_graph(self, diamond):
        certain = diamond.with_probabilities(np.ones(diamond.num_edges))
        assert exact_expected_cost(certain, 0, [0, 1, 2, 3]) == 0.0

    def test_two_node_closed_form(self):
        from repro.graph.digraph import ProbabilisticDigraph

        g = ProbabilisticDigraph(2, [(0, 1, 0.4)])
        # Candidate {0}: cascade {0} w.p. 0.6 (d=0), {0,1} w.p. 0.4 (d=1/2).
        assert exact_expected_cost(g, 0, [0]) == pytest.approx(0.2)
        # Candidate {0,1}: d=1/2 w.p. 0.6, d=0 w.p. 0.4.
        assert exact_expected_cost(g, 0, [0, 1]) == pytest.approx(0.3)

    def test_optimal_median_of_figure1(self, fig1):
        """Cross-checked against exhaustive search in the smoke tests: the
        optimal typical cascade of v5 is {v1, v2, v5}."""
        cost = exact_expected_cost(fig1, 4, [0, 1, 4])
        assert cost == pytest.approx(0.3511012, abs=1e-6)


class TestMonteCarloExpectedCost:
    def test_converges_to_exact(self, fig1):
        exact = exact_expected_cost(fig1, 4, [0, 1, 4])
        mc = monte_carlo_expected_cost(fig1, 4, [0, 1, 4], 6000, seed=0)
        assert mc == pytest.approx(exact, abs=0.02)

    def test_zero_for_certain_graph(self, diamond):
        certain = diamond.with_probabilities(np.ones(diamond.num_edges))
        assert monte_carlo_expected_cost(certain, 0, [0, 1, 2, 3], 50, seed=1) == 0.0

    def test_deterministic_in_seed(self, fig1):
        a = monte_carlo_expected_cost(fig1, 4, [4], 200, seed=5)
        b = monte_carlo_expected_cost(fig1, 4, [4], 200, seed=5)
        assert a == b


class TestEstimatorConsistency:
    def test_empirical_cost_of_sampled_cascades_near_exact(self, fig1):
        """rho_bar over sampled cascades is an unbiased estimate of rho."""
        cascades = sample_cascades(fig1, 4, 4000, seed=3)
        candidate = [0, 1, 4]
        emp = empirical_cost(candidate, cascades, universe_size=5)
        exact = exact_expected_cost(fig1, 4, candidate)
        assert emp == pytest.approx(exact, abs=0.02)
