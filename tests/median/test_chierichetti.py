"""Tests for repro.median.chierichetti — the approximate Jaccard median."""

from itertools import chain, combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.median.chierichetti import (
    best_of_samples,
    jaccard_median,
    majority_median,
)
from repro.median.jaccard import jaccard_distance
from repro.median.samples import SampleCollection


def brute_force_median(samples: list[frozenset], universe: int) -> float:
    """Optimal empirical cost by exhaustive search over all subsets of the
    union (the optimal median is always a subset of the union)."""
    union = sorted(set(chain.from_iterable(samples)))
    best = np.inf
    for r in range(len(union) + 1):
        for comb in combinations(union, r):
            cost = float(
                np.mean([jaccard_distance(set(comb), s) for s in samples])
            )
            best = min(best, cost)
    return best


def make(samples, n=12) -> SampleCollection:
    return SampleCollection.from_iterables(n, samples)


class TestExactCases:
    def test_identical_samples_give_zero_cost(self):
        sc = make([{1, 2, 3}] * 5)
        result = jaccard_median(sc)
        assert result.as_set() == {1, 2, 3}
        assert result.cost == 0.0

    def test_all_empty_samples(self):
        sc = make([set(), set()])
        result = jaccard_median(sc)
        assert result.size == 0
        assert result.cost == 0.0
        assert result.strategy == "empty"

    def test_single_sample(self):
        sc = make([{4, 7}])
        result = jaccard_median(sc)
        assert result.as_set() == {4, 7}
        assert result.cost == 0.0

    def test_majority_element_structure(self):
        # Element 1 in all samples, 2 in two of three: the majority median
        # is a reasonable candidate and the sweep should do at least as well.
        samples = [{1, 2}, {1, 2}, {1}]
        sc = make(samples)
        result = jaccard_median(sc)
        maj = majority_median(sc)
        assert result.cost <= maj.cost + 1e-12


class TestApproximationQuality:
    @pytest.mark.parametrize(
        "samples",
        [
            [{1, 2, 3}, {1, 2}, {2, 3}, {1, 3}],
            [{0}, {0, 1}, {0, 1, 2}, {0, 1, 2, 3}],
            [{1, 2}, {3, 4}, {1, 4}],
            [{5}, {6}, {7}],
        ],
    )
    def test_close_to_brute_force(self, samples):
        sc = make(samples)
        result = jaccard_median(sc)
        optimal = brute_force_median([frozenset(s) for s in samples], 12)
        # The candidate families include the exact optimum in these small
        # instances most of the time; always within the theoretical factor.
        assert result.cost <= optimal * 1.5 + 1e-9
        assert result.cost >= optimal - 1e-9

    def test_never_worse_than_best_sample(self):
        samples = [{1, 2, 3, 4}, {1, 2}, {2, 3}, {9}]
        sc = make(samples)
        assert jaccard_median(sc).cost <= best_of_samples(sc).cost + 1e-12

    def test_never_worse_than_majority(self):
        samples = [{1, 2}, {1, 3}, {1, 4}, {1, 5}]
        sc = make(samples)
        assert jaccard_median(sc).cost <= majority_median(sc).cost + 1e-12


class TestResultObject:
    def test_median_sorted(self):
        result = jaccard_median(make([{5, 1, 9}, {1, 5}]))
        m = result.median
        assert np.all(np.diff(m) > 0) if m.size > 1 else True

    def test_evaluated_counter_positive(self):
        result = jaccard_median(make([{1, 2}]))
        assert result.candidates_evaluated >= 1

    def test_bad_ratio_rejected(self):
        with pytest.raises(ValueError, match="size_grid_ratio"):
            jaccard_median(make([{1}]), size_grid_ratio=1.0)

    def test_cost_matches_reported_median(self):
        sc = make([{1, 2, 3}, {2, 3, 4}, {3}])
        result = jaccard_median(sc)
        assert sc.mean_distance(result.median) == pytest.approx(result.cost)


class TestHelpers:
    def test_best_of_samples_is_a_sample(self):
        samples = [{1, 2}, {2, 3, 4}, {5}]
        sc = make(samples)
        best = best_of_samples(sc)
        assert best.as_set() in [frozenset(s) for s in samples]

    def test_majority_median_is_half_threshold(self):
        sc = make([{1, 2}, {1, 3}, {1}, {1, 2}])
        maj = majority_median(sc)
        assert maj.as_set() == {1, 2}  # 1 in 4/4, 2 in 2/4 >= half, 3 in 1/4


@settings(max_examples=25)
@given(
    st.lists(
        st.frozensets(st.integers(0, 7), max_size=6), min_size=1, max_size=6
    )
)
def test_sweep_at_least_matches_brute_force_within_factor(samples):
    """Property: the combined candidate families stay within 1.5x of the
    exhaustive optimum on brute-forceable instances (the guarantee is
    1 + O(eps), so this is a loose envelope)."""
    sc = make(samples, n=8)
    result = jaccard_median(sc)
    optimal = brute_force_median([frozenset(s) for s in samples], 8)
    if optimal == 0.0:
        assert result.cost <= 1e-9
    else:
        assert result.cost <= 1.5 * optimal + 0.15
