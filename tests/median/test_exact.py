"""Tests for repro.median.exact — the exhaustive median oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.median.chierichetti import jaccard_median
from repro.median.exact import approximation_ratio, exact_jaccard_median
from repro.median.samples import SampleCollection


def make(samples, n=12) -> SampleCollection:
    return SampleCollection.from_iterables(n, samples)


class TestExactMedian:
    def test_identical_samples(self):
        result = exact_jaccard_median(make([{1, 2}] * 3))
        assert result.as_set() == {1, 2}
        assert result.cost == 0.0

    def test_empty_instance(self):
        result = exact_jaccard_median(make([set(), set()]))
        assert result.size == 0
        assert result.cost == 0.0

    def test_known_optimum(self):
        # Samples {1},{2},{1,2}: candidates — {1}: (0+1+1/2)/3 = 1/2;
        # {1,2}: (1/2+1/2+0)/3 = 1/3; {2}: 1/2; {}: 1. Optimal: {1,2}.
        result = exact_jaccard_median(make([{1}, {2}, {1, 2}]))
        assert result.as_set() == {1, 2}
        assert result.cost == pytest.approx(1 / 3)

    def test_never_above_approximation(self):
        samples = [{1, 2, 3}, {2, 3, 4}, {3, 4, 5}, {9}]
        sc = make(samples)
        exact = exact_jaccard_median(sc)
        approx = jaccard_median(sc)
        assert exact.cost <= approx.cost + 1e-12

    def test_union_guard(self):
        big = make([set(range(12))], n=20)
        with pytest.raises(ValueError, match="NP-hard"):
            exact_jaccard_median(big, max_union=10)

    def test_strategy_label(self):
        assert exact_jaccard_median(make([{1}])).strategy == "exact"


class TestApproximationRatio:
    def test_perfect_on_zero_cost(self):
        assert approximation_ratio(make([{3, 4}] * 4)) == 1.0

    def test_at_least_one(self):
        samples = [{1, 2}, {2, 3}, {4}]
        assert approximation_ratio(make(samples)) >= 1.0 - 1e-12


@settings(max_examples=20)
@given(
    st.lists(st.frozensets(st.integers(0, 6), max_size=5), min_size=1, max_size=5)
)
def test_approximation_within_theoretical_envelope(samples):
    """Property: the approximation's ratio stays modest on tiny instances.

    Chierichetti et al. give 1 + O(eps); empirically the combined candidate
    families land within 1.35x on these instances."""
    sc = make(samples, n=8)
    ratio = approximation_ratio(sc, max_union=8)
    assert ratio <= 1.35 + 1e-9
