"""Tests for repro.median.jaccard — including the metric axioms."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.median.jaccard import (
    intersection_size,
    jaccard_distance,
    jaccard_similarity,
    symmetric_difference_size,
    union_size,
)

sets = st.frozensets(st.integers(0, 20), max_size=12)


class TestBasics:
    def test_identical_sets(self):
        assert jaccard_distance({1, 2, 3}, {1, 2, 3}) == 0.0

    def test_disjoint_sets(self):
        assert jaccard_distance({1, 2}, {3, 4}) == 1.0

    def test_known_value(self):
        # |A n B| = 1, |A u B| = 3.
        assert jaccard_similarity({1, 2}, {2, 3}) == pytest.approx(1 / 3)

    def test_empty_vs_empty(self):
        assert jaccard_distance(set(), set()) == 0.0
        assert jaccard_similarity(set(), set()) == 1.0

    def test_empty_vs_nonempty(self):
        assert jaccard_distance(set(), {1}) == 1.0

    def test_numpy_array_inputs(self):
        a = np.array([1, 2, 5])
        b = np.array([2, 5, 9])
        assert jaccard_similarity(a, b) == pytest.approx(0.5)

    def test_mixed_inputs(self):
        assert jaccard_distance([1, 2], np.array([1, 2])) == 0.0

    def test_helper_sizes(self):
        assert intersection_size({1, 2, 3}, {2, 3, 4}) == 2
        assert union_size({1, 2, 3}, {2, 3, 4}) == 4
        assert symmetric_difference_size({1, 2, 3}, {2, 3, 4}) == 2


class TestMetricAxioms:
    @given(sets, sets)
    def test_symmetry(self, a, b):
        assert jaccard_distance(a, b) == pytest.approx(jaccard_distance(b, a))

    @given(sets, sets)
    def test_identity_of_indiscernibles(self, a, b):
        d = jaccard_distance(a, b)
        if a == b:
            assert d == 0.0
        else:
            assert d > 0.0

    @given(sets, sets, sets)
    def test_triangle_inequality(self, a, b, c):
        """The property Lemma 1 of the paper leans on."""
        dab = jaccard_distance(a, b)
        dbc = jaccard_distance(b, c)
        dac = jaccard_distance(a, c)
        assert dac <= dab + dbc + 1e-12

    @given(sets, sets)
    def test_range(self, a, b):
        assert 0.0 <= jaccard_distance(a, b) <= 1.0

    @given(sets, sets)
    def test_distance_equals_symdiff_over_union(self, a, b):
        union = union_size(a, b)
        if union == 0:
            assert jaccard_distance(a, b) == 0.0
        else:
            expected = symmetric_difference_size(a, b) / union
            assert jaccard_distance(a, b) == pytest.approx(expected)
