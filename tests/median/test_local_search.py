"""Tests for repro.median.local_search."""

import numpy as np
import pytest

from repro.median.chierichetti import jaccard_median
from repro.median.local_search import local_search_refine
from repro.median.samples import SampleCollection


def make(samples, n=12) -> SampleCollection:
    return SampleCollection.from_iterables(n, samples)


class TestRefine:
    def test_never_worse_than_start(self):
        sc = make([{1, 2, 3}, {2, 3, 4}, {3, 4, 5}])
        start = np.array([9], dtype=np.int64)  # a terrible start
        refined = local_search_refine(sc, start)
        assert refined.cost <= sc.mean_distance(np.array([9])) + 1e-12

    def test_fixes_obviously_bad_start(self):
        sc = make([{1, 2}] * 4)
        refined = local_search_refine(sc, np.array([7], dtype=np.int64))
        assert refined.as_set() == {1, 2}
        assert refined.cost == pytest.approx(0.0)

    def test_empty_start(self):
        sc = make([{1}, {1, 2}])
        refined = local_search_refine(sc, np.zeros(0, dtype=np.int64))
        assert 1 in refined.as_set()

    def test_zero_passes_returns_start_cost(self):
        sc = make([{1, 2}, {3}])
        start = np.array([1], dtype=np.int64)
        refined = local_search_refine(sc, start, max_passes=0)
        assert refined.as_set() == {1}
        assert refined.cost == pytest.approx(sc.mean_distance(start))

    def test_negative_passes_rejected(self):
        sc = make([{1}])
        with pytest.raises(ValueError, match="max_passes"):
            local_search_refine(sc, np.array([1]), max_passes=-1)

    def test_polish_does_not_hurt_sweep_result(self):
        samples = [{1, 2, 3}, {1, 2}, {2, 3}, {1, 3}, {6}]
        sc = make(samples)
        sweep = jaccard_median(sc)
        refined = local_search_refine(sc, sweep.median)
        assert refined.cost <= sweep.cost + 1e-12

    def test_reported_cost_is_recomputed(self):
        sc = make([{1, 2}, {2, 3}])
        refined = local_search_refine(sc, np.array([2], dtype=np.int64))
        assert refined.cost == pytest.approx(sc.mean_distance(refined.median))
