"""Tests for repro.graph.reachability."""

import numpy as np
import pytest

from repro.graph.generators import gnp_digraph, path_graph
from repro.graph.reachability import (
    reachable_array,
    reachable_from_all,
    reachable_mask,
    reachable_set,
    spread_size,
)


class TestReachableSet:
    def test_source_always_included(self, diamond):
        assert 0 in reachable_set(diamond, 0)

    def test_full_topology(self, diamond):
        assert reachable_set(diamond, 0) == {0, 1, 2, 3}
        assert reachable_set(diamond, 1) == {1, 3}
        assert reachable_set(diamond, 3) == {3}

    def test_edge_mask_restricts(self, diamond):
        # Arcs sorted: (0,1) (0,2) (1,3) (2,3); kill (0,2) and (1,3).
        mask = np.array([True, False, False, True])
        assert reachable_set(diamond, 0, mask) == {0, 1}

    def test_multi_source(self, diamond):
        assert reachable_set(diamond, [1, 2]) == {1, 2, 3}

    def test_duplicate_sources_ok(self, diamond):
        assert reachable_set(diamond, [1, 1]) == {1, 3}

    def test_cycle_reaches_everything(self, two_cycles):
        assert reachable_set(two_cycles, 0) == {0, 1, 2, 3, 4, 5}
        assert reachable_set(two_cycles, 3) == {3, 4, 5}

    def test_invalid_source(self, diamond):
        with pytest.raises(ValueError):
            reachable_set(diamond, 9)

    def test_mask_shape_checked(self, diamond):
        with pytest.raises(ValueError, match="shape"):
            reachable_set(diamond, 0, np.array([True]))


class TestReachableArrayAndMask:
    def test_array_sorted(self, two_cycles):
        arr = reachable_array(two_cycles, 0)
        assert np.all(np.diff(arr) > 0)

    def test_mask_consistent_with_set(self, small_random):
        for source in (0, 5, 17):
            mask = reachable_mask(small_random, source)
            assert set(np.flatnonzero(mask)) == reachable_set(small_random, source)


class TestReachableFromAll:
    def test_matches_per_node(self, small_random):
        sets = reachable_from_all(small_random)
        assert sets[3] == reachable_set(small_random, 3)
        assert len(sets) == small_random.num_nodes

    def test_path_graph_structure(self):
        g = path_graph(5)
        sets = reachable_from_all(g)
        for v in range(5):
            assert sets[v] == set(range(v, 5))


def test_spread_size_counts_union(two_cycles):
    assert spread_size(two_cycles, [0]) == 6
    assert spread_size(two_cycles, [3]) == 3
    assert spread_size(two_cycles, [0, 3]) == 6


def test_reachability_agrees_with_networkx():
    import networkx as nx

    g = gnp_digraph(50, 0.06, seed=11)
    nx_graph = nx.DiGraph()
    nx_graph.add_nodes_from(range(50))
    nx_graph.add_edges_from((u, v) for u, v, _ in g.edges())
    for source in (0, 10, 49):
        expected = set(nx.descendants(nx_graph, source)) | {source}
        assert reachable_set(g, source) == expected
