"""Tests for repro.graph.generators."""

import numpy as np
import pytest

from repro.graph.generators import (
    complete_dag,
    copying_model_digraph,
    cycle_graph,
    figure1_graph,
    forest_fire_digraph,
    gnp_digraph,
    path_graph,
    powerlaw_outdegree_digraph,
    random_dag,
    star_graph,
)


class TestFixtures:
    def test_path(self):
        g = path_graph(5)
        assert g.num_edges == 4
        assert g.has_edge(0, 1) and g.has_edge(3, 4)

    def test_cycle(self):
        g = cycle_graph(4)
        assert g.num_edges == 4
        assert g.has_edge(3, 0)

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(1)

    def test_star(self):
        g = star_graph(6)
        assert g.out_degree(0) == 5
        assert g.out_degree(1) == 0

    def test_complete_dag(self):
        g = complete_dag(5)
        assert g.num_edges == 10

    def test_figure1_matches_paper_arcs(self):
        g = figure1_graph()
        assert g.num_nodes == 5
        assert g.edge_probability(4, 0) == 0.7  # v5 -> v1
        assert g.edge_probability(4, 1) == 0.4  # v5 -> v2
        assert g.edge_probability(4, 3) == 0.3  # v5 -> v4
        assert g.edge_probability(3, 1) == 0.6  # v4 -> v2
        assert g.edge_probability(1, 2) == 0.4  # v2 -> v3


class TestRandomFamilies:
    def test_gnp_determinism(self):
        assert gnp_digraph(30, 0.1, seed=5) == gnp_digraph(30, 0.1, seed=5)

    def test_gnp_density_in_expected_range(self):
        g = gnp_digraph(60, 0.1, seed=1)
        expected = 0.1 * 60 * 59
        assert 0.5 * expected < g.num_edges < 1.5 * expected

    def test_gnp_stamp_probability(self):
        g = gnp_digraph(10, 0.3, p=0.42, seed=0)
        assert all(p == 0.42 for _, _, p in g.edges())

    def test_random_dag_is_acyclic_by_id(self):
        g = random_dag(20, 0.2, seed=3)
        for u, v, _ in g.edges():
            assert u < v

    def test_powerlaw_mean_degree_roughly_respected(self):
        g = powerlaw_outdegree_digraph(300, mean_degree=5.0, seed=2)
        mean = g.num_edges / g.num_nodes
        assert 2.0 < mean < 10.0

    def test_powerlaw_reciprocal_symmetry(self):
        g = powerlaw_outdegree_digraph(100, mean_degree=4.0, seed=2, reciprocal=True)
        for u, v, _ in g.edges():
            assert g.has_edge(v, u)

    def test_powerlaw_determinism(self):
        a = powerlaw_outdegree_digraph(80, 3.0, seed=9)
        b = powerlaw_outdegree_digraph(80, 3.0, seed=9)
        assert a == b

    def test_powerlaw_rejects_bad_exponent(self):
        with pytest.raises(ValueError, match="exponent"):
            powerlaw_outdegree_digraph(10, 2.0, exponent=1.0)

    def test_copying_model_no_self_loops_and_deterministic(self):
        a = copying_model_digraph(50, seed=4)
        b = copying_model_digraph(50, seed=4)
        assert a == b
        for u, v, _ in a.edges():
            assert u != v

    def test_copying_model_heavy_tail(self):
        g = copying_model_digraph(300, out_degree=5, copy_prob=0.6, seed=1)
        indeg = g.in_degrees()
        # Copying yields skew: the max in-degree far exceeds the mean.
        assert indeg.max() > 4 * indeg.mean()

    def test_forest_fire_connected_to_past(self):
        g = forest_fire_digraph(40, seed=8)
        # Every non-root node links to at least one earlier node.
        for u in range(1, 40):
            assert g.out_degree(u) >= 1

    def test_forest_fire_determinism(self):
        assert forest_fire_digraph(30, seed=8) == forest_fire_digraph(30, seed=8)


class TestValidation:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: path_graph(0),
            lambda: gnp_digraph(5, 1.5),
            lambda: powerlaw_outdegree_digraph(5, -1.0),
            lambda: copying_model_digraph(5, out_degree=0),
        ],
    )
    def test_bad_arguments_rejected(self, factory):
        with pytest.raises((ValueError, TypeError)):
            factory()
