"""Tests for repro.graph.transitive — closure/reduction on condensations."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph.condensation import condense
from repro.graph.generators import complete_dag, gnp_digraph, path_graph
from repro.graph.transitive import (
    closures_equal,
    reduce_condensation,
    transitive_closure,
    transitive_reduction,
)


def _dag_arrays(graph):
    """Condense a (probabilistic) DAG to get reverse-topo CSR arrays."""
    cond = condense(graph)
    return cond.indptr, cond.targets, cond


class TestClosure:
    def test_path_closure(self):
        indptr, targets, _ = _dag_arrays(path_graph(4))
        closure = transitive_closure(indptr, targets)
        # In reverse-topo ids the path 0->1->2->3 becomes comps 3->2->1->0.
        assert closure.sum() == 6  # 3+2+1 reachable pairs
        assert not closure.diagonal().any()

    def test_complete_dag_closure_is_full_triangle(self):
        indptr, targets, _ = _dag_arrays(complete_dag(5))
        closure = transitive_closure(indptr, targets)
        assert closure.sum() == 10

    def test_guard(self):
        indptr, targets, _ = _dag_arrays(path_graph(10))
        with pytest.raises(ValueError, match="max_nodes"):
            transitive_closure(indptr, targets, max_nodes=5)

    def test_invariant_violation_detected(self):
        # Arc from lower to higher id violates the convention.
        indptr = np.array([0, 1, 1])
        targets = np.array([1])
        with pytest.raises(ValueError, match="reverse-topological"):
            transitive_closure(indptr, targets)


class TestReduction:
    def test_complete_dag_reduces_to_path(self):
        indptr, targets, _ = _dag_arrays(complete_dag(6))
        new_indptr, new_targets = transitive_reduction(indptr, targets)
        assert new_targets.shape[0] == 5  # a 6-node chain

    def test_path_is_already_reduced(self):
        indptr, targets, _ = _dag_arrays(path_graph(6))
        new_indptr, new_targets = transitive_reduction(indptr, targets)
        assert np.array_equal(new_indptr, indptr)
        assert np.array_equal(new_targets, targets)

    def test_reduction_preserves_reachability(self):
        indptr, targets, _ = _dag_arrays(complete_dag(7))
        new_indptr, new_targets = transitive_reduction(indptr, targets)
        assert closures_equal(indptr, targets, new_indptr, new_targets)

    def test_empty_dag(self):
        indptr = np.zeros(4, dtype=np.int64)
        targets = np.zeros(0, dtype=np.int64)
        new_indptr, new_targets = transitive_reduction(indptr, targets)
        assert new_targets.size == 0


class TestReduceCondensation:
    def test_membership_untouched(self, small_random):
        cond = condense(small_random)
        reduced = reduce_condensation(cond)
        assert np.array_equal(reduced.node_comp, cond.node_comp)
        assert reduced.num_components == cond.num_components

    def test_never_more_edges(self, small_random):
        cond = condense(small_random)
        reduced = reduce_condensation(cond)
        assert reduced.num_edges <= cond.num_edges

    def test_fallback_when_over_guard(self, small_random):
        cond = condense(small_random)
        untouched = reduce_condensation(cond, max_nodes=1)
        assert untouched is cond


@given(st.integers(0, 5000), st.floats(0.05, 0.4))
def test_reduction_minimal_and_closure_preserving(seed, density):
    """Property: reduction preserves reachability, and removing any kept
    edge changes reachability (minimality/uniqueness on DAGs)."""
    g = gnp_digraph(12, density, seed=seed)
    rng = np.random.default_rng(seed)
    mask = rng.random(g.num_edges) < 0.6
    cond = condense(g, mask)
    indptr, targets = cond.indptr, cond.targets
    new_indptr, new_targets = transitive_reduction(indptr, targets)
    assert closures_equal(indptr, targets, new_indptr, new_targets)

    closure = transitive_closure(new_indptr, new_targets)
    n = cond.num_components
    sources = np.repeat(np.arange(n), np.diff(new_indptr))
    for i in range(new_targets.shape[0]):
        u, v = int(sources[i]), int(new_targets[i])
        # Without the direct edge, v must not be reachable from u.
        reach_via_others = any(
            closure[int(w)][v] or int(w) == v
            for j, w in enumerate(new_targets[new_indptr[u] : new_indptr[u + 1]])
            if int(w) != v
        )
        assert not reach_via_others
