"""Tests for repro.graph.scc — iterative Tarjan + id-order invariant."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph.digraph import ProbabilisticDigraph
from repro.graph.generators import cycle_graph, gnp_digraph, path_graph
from repro.graph.scc import (
    component_members,
    is_valid_scc_labelling,
    strongly_connected_components,
)


class TestBasics:
    def test_cycle_is_one_component(self):
        comp, k = strongly_connected_components(cycle_graph(5))
        assert k == 1
        assert len(set(comp.tolist())) == 1

    def test_path_is_all_singletons(self):
        comp, k = strongly_connected_components(path_graph(5))
        assert k == 5
        assert len(set(comp.tolist())) == 5

    def test_two_cycles(self, two_cycles):
        comp, k = strongly_connected_components(two_cycles)
        assert k == 2
        assert comp[0] == comp[1] == comp[2]
        assert comp[3] == comp[4] == comp[5]
        assert comp[0] != comp[3]
        # Arc 2 -> 3 goes from the higher to the lower component id.
        assert comp[2] > comp[3]

    def test_empty_graph(self):
        comp, k = strongly_connected_components(ProbabilisticDigraph(4))
        assert k == 4

    def test_reverse_topological_invariant(self, small_random):
        comp, _ = strongly_connected_components(small_random)
        assert is_valid_scc_labelling(small_random, comp)

    def test_edge_mask_respected(self, two_cycles):
        # Kill every arc: all singletons.
        mask = np.zeros(two_cycles.num_edges, dtype=bool)
        comp, k = strongly_connected_components(two_cycles, mask)
        assert k == 6

    def test_mask_shape_checked(self, two_cycles):
        with pytest.raises(ValueError, match="shape"):
            strongly_connected_components(two_cycles, np.array([True]))

    def test_deep_path_no_recursion_error(self):
        g = path_graph(30_000)
        comp, k = strongly_connected_components(g)
        assert k == 30_000


class TestComponentMembers:
    def test_members_partition_nodes(self, two_cycles):
        comp, k = strongly_connected_components(two_cycles)
        members = component_members(comp, k)
        all_nodes = sorted(int(v) for m in members for v in m)
        assert all_nodes == list(range(6))

    def test_members_sorted(self, small_random):
        comp, k = strongly_connected_components(small_random)
        for m in component_members(comp, k):
            assert np.all(np.diff(m) > 0) if m.size > 1 else True


def _random_graph_strategy():
    return st.builds(
        lambda n, edges: (n, [(u % n, v % n) for u, v in edges if u % n != v % n]),
        st.integers(2, 12),
        st.lists(st.tuples(st.integers(0, 11), st.integers(0, 11)), max_size=40),
    )


@given(_random_graph_strategy())
def test_scc_agrees_with_networkx(data):
    import networkx as nx

    n, edges = data
    edges = sorted(set(edges))
    g = ProbabilisticDigraph(n, [(u, v, 1.0) for u, v in edges])
    comp, k = strongly_connected_components(g)

    nx_graph = nx.DiGraph()
    nx_graph.add_nodes_from(range(n))
    nx_graph.add_edges_from(edges)
    expected = list(nx.strongly_connected_components(nx_graph))
    assert k == len(expected)
    # Same partition: nodes share a component iff networkx says so.
    label_of = {}
    for i, group in enumerate(expected):
        for v in group:
            label_of[v] = i
    for u in range(n):
        for v in range(n):
            assert (comp[u] == comp[v]) == (label_of[u] == label_of[v])
    assert is_valid_scc_labelling(g, comp)


@given(st.integers(0, 2**32 - 1), st.floats(0.02, 0.2))
def test_scc_invariant_on_random_masked_worlds(seed, density):
    g = gnp_digraph(25, density, p=0.5, seed=seed % 10_000)
    rng = np.random.default_rng(seed)
    mask = rng.random(g.num_edges) < 0.5
    comp, k = strongly_connected_components(g, mask)
    assert is_valid_scc_labelling(g, comp, mask)
    assert comp.min() >= 0 and comp.max() < k if g.num_nodes else True
