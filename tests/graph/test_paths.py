"""Tests for repro.graph.paths — most-probable paths."""

import numpy as np
import pytest

from repro.graph.digraph import ProbabilisticDigraph
from repro.graph.generators import path_graph
from repro.graph.paths import (
    most_probable_path,
    most_probable_path_tree,
    path_probability,
)


class TestMostProbablePath:
    def test_picks_higher_probability_route(self, diamond):
        # 0->1->3: 0.5*0.5 = 0.25; 0->2->3: 0.8*0.4 = 0.32.
        result = most_probable_path(diamond, 0, 3)
        assert result.nodes == (0, 2, 3)
        assert result.probability == pytest.approx(0.32)

    def test_prefers_strong_long_path_over_weak_shortcut(self):
        g = ProbabilisticDigraph(
            4, [(0, 3, 0.1), (0, 1, 0.9), (1, 2, 0.9), (2, 3, 0.9)]
        )
        result = most_probable_path(g, 0, 3)
        assert result.nodes == (0, 1, 2, 3)
        assert result.probability == pytest.approx(0.9**3)

    def test_unreachable_returns_none(self, diamond):
        assert most_probable_path(diamond, 3, 0) is None

    def test_source_equals_target(self, diamond):
        result = most_probable_path(diamond, 1, 1)
        assert result.nodes == (1,)
        assert result.probability == 1.0
        assert result.num_hops == 0

    def test_path_on_chain(self):
        g = path_graph(5, p=0.5)
        result = most_probable_path(g, 0, 4)
        assert result.nodes == (0, 1, 2, 3, 4)
        assert result.probability == pytest.approx(0.5**4)

    def test_result_consistent_with_path_probability(self, small_random):
        result = most_probable_path(small_random, 0, 20)
        if result is not None:
            assert path_probability(small_random, result.nodes) == pytest.approx(
                result.probability
            )


class TestPathProbability:
    def test_explicit_product(self, diamond):
        assert path_probability(diamond, [0, 1, 3]) == pytest.approx(0.25)

    def test_missing_arc_raises(self, diamond):
        with pytest.raises(KeyError):
            path_probability(diamond, [0, 3])

    def test_trivial_path(self, diamond):
        assert path_probability(diamond, [2]) == 1.0


class TestPathTree:
    def test_tree_matches_pairwise_queries(self, small_random):
        probability, parent = most_probable_path_tree(small_random, 0)
        for target in (5, 17, 33):
            single = most_probable_path(small_random, 0, target)
            if single is None:
                assert probability[target] == 0.0
            else:
                assert probability[target] == pytest.approx(single.probability)

    def test_source_entry(self, diamond):
        probability, parent = most_probable_path_tree(diamond, 0)
        assert probability[0] == pytest.approx(1.0)
        assert parent[0] == -1

    def test_unreachable_zero(self, diamond):
        probability, _ = most_probable_path_tree(diamond, 3)
        assert probability[0] == 0.0

    def test_probability_upper_bounds_nothing_exceeds_one(self, small_random):
        probability, _ = most_probable_path_tree(small_random, 3)
        assert np.all((probability >= 0) & (probability <= 1.0 + 1e-12))
