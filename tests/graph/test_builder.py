"""Tests for repro.graph.builder."""

import pytest

from repro.graph.builder import GraphBuilder


class TestNodes:
    def test_add_node_idempotent(self):
        b = GraphBuilder()
        assert b.add_node("a") == 0
        assert b.add_node("a") == 0
        assert b.add_node("b") == 1

    def test_labels_in_first_appearance_order(self):
        b = GraphBuilder()
        b.add_nodes(["x", "y", "z"])
        assert b.label_mapping() == {"x": 0, "y": 1, "z": 2}

    def test_num_nodes(self):
        b = GraphBuilder()
        b.add_edge("a", "b", 0.5)
        assert b.num_nodes == 2


class TestEdges:
    def test_add_edge(self):
        b = GraphBuilder()
        b.add_edge(10, 20, 0.3)
        g = b.build()
        assert g.num_edges == 1
        assert g.edge_probability(0, 1) == 0.3

    def test_self_loop_rejected(self):
        b = GraphBuilder()
        with pytest.raises(ValueError, match="self-loop"):
            b.add_edge("a", "a", 0.5)

    def test_bad_probability_rejected(self):
        b = GraphBuilder()
        with pytest.raises(ValueError):
            b.add_edge("a", "b", 0.0)

    def test_duplicate_overwrites_by_default(self):
        b = GraphBuilder()
        b.add_edge("a", "b", 0.3)
        b.add_edge("a", "b", 0.7)
        assert b.build().edge_probability(0, 1) == 0.7

    def test_duplicate_error_mode(self):
        b = GraphBuilder(on_duplicate="error")
        b.add_edge("a", "b", 0.3)
        with pytest.raises(ValueError, match="duplicate"):
            b.add_edge("a", "b", 0.7)

    def test_duplicate_max_mode(self):
        b = GraphBuilder(on_duplicate="max")
        b.add_edge("a", "b", 0.3)
        b.add_edge("a", "b", 0.2)
        assert b.build().edge_probability(0, 1) == 0.3

    def test_duplicate_min_mode(self):
        b = GraphBuilder(on_duplicate="min")
        b.add_edge("a", "b", 0.3)
        b.add_edge("a", "b", 0.2)
        assert b.build().edge_probability(0, 1) == 0.2

    def test_invalid_duplicate_mode(self):
        with pytest.raises(ValueError, match="on_duplicate"):
            GraphBuilder(on_duplicate="bogus")

    def test_undirected_edge_adds_both_arcs(self):
        b = GraphBuilder()
        b.add_undirected_edge("a", "b", 0.4)
        g = b.build()
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_has_edge(self):
        b = GraphBuilder()
        b.add_edge("a", "b", 0.4)
        assert b.has_edge("a", "b")
        assert not b.has_edge("b", "a")
        assert not b.has_edge("a", "missing")

    def test_add_edges_bulk(self):
        b = GraphBuilder()
        b.add_edges([("a", "b", 0.1), ("b", "c", 0.2)])
        assert b.num_edges == 2


class TestBuild:
    def test_build_with_labels(self):
        b = GraphBuilder()
        b.add_edge("u", "v", 0.5)
        g, labels = b.build_with_labels()
        assert labels == {"u": 0, "v": 1}
        assert g.num_nodes == 2

    def test_isolated_nodes_preserved(self):
        b = GraphBuilder()
        b.add_node("lonely")
        b.add_edge("a", "b", 0.5)
        assert b.build().num_nodes == 3
