"""Tests for repro.graph.io — edge-list round-trips."""

import io

import pytest

from repro.graph.digraph import ProbabilisticDigraph
from repro.graph.io import read_edge_list, write_edge_list


def sample_graph() -> ProbabilisticDigraph:
    return ProbabilisticDigraph(
        5, [(0, 1, 0.5), (1, 2, 0.25), (2, 0, 0.125), (0, 3, 1.0)]
    )


class TestRoundTrip:
    def test_write_read_identical(self, tmp_path):
        g = sample_graph()
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        assert read_edge_list(path) == g

    def test_isolated_node_preserved_via_header(self, tmp_path):
        g = sample_graph()  # node 4 is isolated
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        assert read_edge_list(path).num_nodes == 5

    def test_precision_round_trip(self, tmp_path):
        g = ProbabilisticDigraph(2, [(0, 1, 0.123456789)])
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        assert read_edge_list(path).edge_probability(0, 1) == pytest.approx(
            0.123456789
        )


class TestRead:
    def test_read_from_handle(self):
        g = read_edge_list(io.StringIO("0 1 0.5\n1 2 0.25\n"))
        assert g.num_edges == 2

    def test_comments_and_blanks_ignored(self):
        text = "# a comment\n\n0 1 0.5\n   \n# another\n"
        assert read_edge_list(io.StringIO(text)).num_edges == 1

    def test_two_columns_need_default(self):
        with pytest.raises(ValueError, match="default_probability"):
            read_edge_list(io.StringIO("0 1\n"))

    def test_two_columns_with_default(self):
        g = read_edge_list(io.StringIO("0 1\n"), default_probability=0.2)
        assert g.edge_probability(0, 1) == 0.2

    def test_bad_probability_reports_line(self):
        with pytest.raises(ValueError, match="line 2"):
            read_edge_list(io.StringIO("0 1 0.5\n1 2 oops\n"))

    def test_wrong_column_count_reports_line(self):
        with pytest.raises(ValueError, match="line 1"):
            read_edge_list(io.StringIO("0 1 0.5 extra\n"))

    def test_string_labels(self):
        g, labels = read_edge_list(
            io.StringIO("alice bob 0.5\nbob carol 0.3\n"), return_labels=True
        )
        assert labels == {"alice": 0, "bob": 1, "carol": 2}
        assert g.has_edge(labels["alice"], labels["bob"])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            read_edge_list(io.StringIO("0 1 0.5\n0 1 0.6\n"))


class TestGzip:
    def test_gz_round_trip(self, tmp_path):
        g = sample_graph()
        path = tmp_path / "g.txt.gz"
        write_edge_list(g, path)
        assert read_edge_list(path) == g

    def test_gz_output_is_deterministic(self, tmp_path):
        g = sample_graph()
        a, b = tmp_path / "a.txt.gz", tmp_path / "sub" / "b.txt.gz"
        b.parent.mkdir()
        write_edge_list(g, a)
        write_edge_list(g, b)
        # mtime=0 and an empty embedded name keep the container stable.
        assert a.read_bytes() == b.read_bytes()

    def test_gz_actually_compressed(self, tmp_path):
        import gzip as gzip_mod

        g = sample_graph()
        path = tmp_path / "g.txt.gz"
        write_edge_list(g, path)
        text = gzip_mod.decompress(path.read_bytes()).decode("utf-8")
        assert text.startswith("# nodes 5")


class TestDuplicatePolicy:
    def test_default_stays_error(self):
        with pytest.raises(ValueError, match="duplicate"):
            read_edge_list(io.StringIO("0 1 0.5\n0 1 0.6\n"))

    def test_first_keeps_first(self):
        g = read_edge_list(
            io.StringIO("0 1 0.5\n0 1 0.6\n"), on_duplicate="first"
        )
        assert g.edge_probability(0, 1) == 0.5

    def test_max_keeps_max(self):
        g = read_edge_list(
            io.StringIO("0 1 0.5\n0 1 0.6\n"), on_duplicate="max"
        )
        assert g.edge_probability(0, 1) == 0.6

    def test_policy_applies_to_paths_too(self, tmp_path):
        path = tmp_path / "dup.txt"
        path.write_text("0 1 0.5\n0 1 0.6\n")
        assert read_edge_list(path, on_duplicate="first").num_edges == 1
