"""Tests for the stochastic Kronecker generator."""

import pytest

from repro.graph.generators import stochastic_kronecker_digraph

INITIATOR = [[0.9, 0.5], [0.5, 0.2]]


class TestKronecker:
    def test_node_count_is_power(self):
        g = stochastic_kronecker_digraph(INITIATOR, 5, seed=1)
        assert g.num_nodes == 32

    def test_deterministic(self):
        a = stochastic_kronecker_digraph(INITIATOR, 5, seed=2)
        b = stochastic_kronecker_digraph(INITIATOR, 5, seed=2)
        assert a == b

    def test_edge_count_near_expected_mass(self):
        """E[#arc draws] = (sum of initiator)^power; after dedup and
        self-loop removal the edge count stays the right order."""
        g = stochastic_kronecker_digraph(INITIATOR, 7, seed=3)
        expected = sum(sum(row) for row in INITIATOR) ** 7
        assert 0.3 * expected < g.num_edges <= expected

    def test_core_periphery_structure(self):
        """The [0.9 .5; .5 .2] initiator biases arcs toward low-id 'core'
        nodes: the top quarter of node ids is sparser than the bottom."""
        g = stochastic_kronecker_digraph(INITIATOR, 7, seed=4)
        n = g.num_nodes
        degrees = g.out_degrees() + g.in_degrees()
        core = float(degrees[: n // 4].mean())
        periphery = float(degrees[3 * n // 4 :].mean())
        assert core > periphery

    def test_probability_stamp(self):
        g = stochastic_kronecker_digraph(INITIATOR, 4, p=0.25, seed=5)
        if g.num_edges:
            assert all(p == 0.25 for _, _, p in g.edges())

    def test_no_self_loops(self):
        g = stochastic_kronecker_digraph(INITIATOR, 6, seed=6)
        for u, v, _ in g.edges():
            assert u != v

    def test_validation(self):
        with pytest.raises(ValueError, match="square"):
            stochastic_kronecker_digraph([[0.5, 0.5]], 2)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            stochastic_kronecker_digraph([[1.5, 0], [0, 0]], 2)
        with pytest.raises(ValueError, match="too large"):
            stochastic_kronecker_digraph(INITIATOR, 30)
        with pytest.raises((ValueError, TypeError)):
            stochastic_kronecker_digraph(INITIATOR, 0)
