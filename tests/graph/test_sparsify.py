"""Tests for repro.graph.sparsify."""

import numpy as np
import pytest

from repro.graph.digraph import ProbabilisticDigraph
from repro.graph.sparsify import (
    retained_probability_mass,
    sparsify_fraction,
    sparsify_top_probability,
)


@pytest.fixture
def g() -> ProbabilisticDigraph:
    return ProbabilisticDigraph(
        5,
        [
            (0, 1, 0.9),
            (0, 2, 0.1),
            (1, 2, 0.8),
            (1, 3, 0.2),
            (2, 3, 0.7),
            (3, 4, 0.05),
        ],
    )


class TestTopProbability:
    def test_keeps_strongest_arcs(self, g):
        sparse = sparsify_top_probability(g, 3)
        assert sparse.num_edges == 3
        kept = {(u, v) for u, v, _ in sparse.edges()}
        assert kept == {(0, 1), (1, 2), (2, 3)}

    def test_budget_at_least_m_is_identity(self, g):
        assert sparsify_top_probability(g, 100) is g

    def test_min_out_degree_reserves_weak_nodes(self, g):
        # Node 3's only arc has p=0.05 and would normally be dropped.
        sparse = sparsify_top_probability(g, 4, min_out_degree=1)
        assert sparse.has_edge(3, 4)
        assert sparse.num_edges == 4

    def test_reservation_exceeding_budget_rejected(self, g):
        with pytest.raises(ValueError, match="reserves"):
            sparsify_top_probability(g, 2, min_out_degree=2)

    def test_probabilities_preserved(self, g):
        sparse = sparsify_top_probability(g, 2)
        for u, v, p in sparse.edges():
            assert p == g.edge_probability(u, v)

    def test_validation(self, g):
        with pytest.raises(ValueError):
            sparsify_top_probability(g, 0)
        with pytest.raises(ValueError):
            sparsify_top_probability(g, 1, min_out_degree=-1)


class TestFraction:
    def test_fraction_rounds_to_edges(self, g):
        sparse = sparsify_fraction(g, 0.5)
        assert sparse.num_edges == 3

    def test_full_fraction_identity(self, g):
        assert sparsify_fraction(g, 1.0) is g

    def test_fraction_bounds(self, g):
        with pytest.raises(ValueError):
            sparsify_fraction(g, 0.0)
        with pytest.raises(ValueError):
            sparsify_fraction(g, 1.5)


class TestMass:
    def test_retained_mass(self, g):
        sparse = sparsify_top_probability(g, 3)
        expected = (0.9 + 0.8 + 0.7) / (0.9 + 0.1 + 0.8 + 0.2 + 0.7 + 0.05)
        assert retained_probability_mass(g, sparse) == pytest.approx(expected)

    def test_identity_mass_is_one(self, g):
        assert retained_probability_mass(g, g) == pytest.approx(1.0)


class TestSpherePreservation:
    def test_sparsified_spheres_stay_close(self, small_random):
        """Keeping 70% of the mass-bearing arcs keeps spheres similar —
        the sparsification ablation's core claim."""
        from repro.cascades.index import CascadeIndex
        from repro.core.typical_cascade import TypicalCascadeComputer
        from repro.median.jaccard import jaccard_distance

        sparse = sparsify_fraction(small_random, 0.7, min_out_degree=1)
        full_index = CascadeIndex.build(small_random, 48, seed=1)
        sparse_index = CascadeIndex.build(sparse, 48, seed=1)
        full = TypicalCascadeComputer(full_index)
        thin = TypicalCascadeComputer(sparse_index)
        distances = [
            jaccard_distance(full.compute(v).members, thin.compute(v).members)
            for v in range(0, small_random.num_nodes, 5)
        ]
        assert float(np.mean(distances)) < 0.5
