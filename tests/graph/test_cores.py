"""Tests for repro.graph.cores — (k, eta)-core decomposition."""

import numpy as np
import pytest

from repro.graph.cores import (
    degree_tail_probabilities,
    eta_core_members,
    eta_core_numbers,
    eta_degree,
)
from repro.graph.digraph import ProbabilisticDigraph
from repro.graph.generators import gnp_digraph


class TestDegreeTail:
    def test_single_edge(self):
        tail = degree_tail_probabilities(np.array([0.3]))
        np.testing.assert_allclose(tail, [1.0, 0.3])

    def test_two_edges(self):
        tail = degree_tail_probabilities(np.array([0.5, 0.5]))
        # P[deg>=0]=1, P[deg>=1]=0.75, P[deg>=2]=0.25.
        np.testing.assert_allclose(tail, [1.0, 0.75, 0.25])

    def test_empty(self):
        np.testing.assert_allclose(degree_tail_probabilities(np.zeros(0)), [1.0])

    def test_certain_edges(self):
        tail = degree_tail_probabilities(np.ones(4))
        np.testing.assert_allclose(tail, [1.0] * 5)

    def test_matches_monte_carlo(self, rng):
        probs = np.array([0.2, 0.7, 0.4, 0.9])
        tail = degree_tail_probabilities(probs)
        draws = (rng.random((20000, 4)) < probs).sum(axis=1)
        for k in range(5):
            assert tail[k] == pytest.approx(float((draws >= k).mean()), abs=0.02)


class TestEtaDegree:
    def test_certain_graph(self):
        assert eta_degree(np.ones(3), 0.9) == 3

    def test_threshold_sensitivity(self):
        probs = np.array([0.5, 0.5])
        assert eta_degree(probs, 0.7) == 1  # P[>=1] = 0.75
        assert eta_degree(probs, 0.2) == 2  # P[>=2] = 0.25
        assert eta_degree(probs, 0.8) == 0

    def test_no_edges(self):
        assert eta_degree(np.zeros(0), 0.5) == 0


class TestCoreNumbers:
    def test_certain_graph_matches_networkx_kcore(self):
        import networkx as nx

        g = gnp_digraph(30, 0.1, p=1.0, seed=3)
        core = eta_core_numbers(g, 0.99)
        undirected = nx.Graph()
        undirected.add_nodes_from(range(30))
        undirected.add_edges_from((u, v) for u, v, _ in g.edges())
        expected = nx.core_number(undirected)
        for v in range(30):
            assert core[v] == expected[v], f"node {v}"

    def test_lower_eta_gives_higher_cores(self):
        g = gnp_digraph(25, 0.15, p=0.5, seed=4)
        strict = eta_core_numbers(g, 0.9)
        lenient = eta_core_numbers(g, 0.1)
        assert np.all(lenient >= strict)

    def test_triangle_with_weak_tail(self):
        # Certain triangle + a weak pendant node.
        g = ProbabilisticDigraph(
            4,
            [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0), (0, 3, 0.1)],
        )
        core = eta_core_numbers(g, 0.5)
        assert core[0] == core[1] == core[2] == 2
        assert core[3] == 0  # P[deg >= 1] = 0.1 < 0.5

    def test_isolated_nodes_core_zero(self):
        g = ProbabilisticDigraph(3)
        assert eta_core_numbers(g, 0.5).tolist() == [0, 0, 0]

    def test_reciprocal_pair_counts_once(self):
        g = ProbabilisticDigraph(2, [(0, 1, 0.9), (1, 0, 0.8)])
        core = eta_core_numbers(g, 0.85)
        # Undirected edge with max(0.9, 0.8) = 0.9 >= 0.85: both in 1-core.
        assert core.tolist() == [1, 1]


class TestCoreMembers:
    def test_members_of_k_core(self):
        g = ProbabilisticDigraph(
            4,
            [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0), (0, 3, 1.0)],
        )
        assert eta_core_members(g, 2, 0.9).tolist() == [0, 1, 2]
        assert eta_core_members(g, 1, 0.9).tolist() == [0, 1, 2, 3]

    def test_empty_core(self):
        g = ProbabilisticDigraph(3, [(0, 1, 0.5)])
        assert eta_core_members(g, 5, 0.5).size == 0

    def test_negative_k_rejected(self):
        g = ProbabilisticDigraph(2, [(0, 1, 0.5)])
        with pytest.raises(ValueError):
            eta_core_members(g, -1, 0.5)
