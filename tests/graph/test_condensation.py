"""Tests for repro.graph.condensation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph.condensation import condense
from repro.graph.digraph import ProbabilisticDigraph
from repro.graph.generators import cycle_graph, gnp_digraph
from repro.graph.reachability import reachable_set


class TestCondense:
    def test_cycle_condenses_to_point(self):
        cond = condense(cycle_graph(6))
        assert cond.num_components == 1
        assert cond.num_edges == 0
        assert cond.comp_sizes.tolist() == [6]

    def test_two_cycles_structure(self, two_cycles):
        cond = condense(two_cycles)
        assert cond.num_components == 2
        assert cond.num_edges == 1
        # The only DAG arc goes from the first cycle's comp to the second's.
        assert cond.comp_sizes.sum() == 6

    def test_parallel_dag_edges_deduplicated(self):
        # Two nodes in one SCC both pointing at node 2.
        g = ProbabilisticDigraph(
            3, [(0, 1, 1.0), (1, 0, 1.0), (0, 2, 1.0), (1, 2, 1.0)]
        )
        cond = condense(g)
        assert cond.num_components == 2
        assert cond.num_edges == 1

    def test_acyclic_invariant(self, small_random):
        assert condense(small_random).is_acyclic()

    def test_masked_condensation(self, two_cycles):
        mask = np.zeros(two_cycles.num_edges, dtype=bool)
        cond = condense(two_cycles, mask)
        assert cond.num_components == 6
        assert cond.num_edges == 0

    def test_successors_and_bounds(self, two_cycles):
        cond = condense(two_cycles)
        with pytest.raises(ValueError, match="out of range"):
            cond.successors(5)


class TestReachableComponents:
    def test_reachability_through_dag_matches_graph(self, small_random):
        cond = condense(small_random)
        members = cond.members()
        for node in (0, 7, 23):
            comp = int(cond.node_comp[node])
            reached_comps = cond.reachable_components(comp)
            nodes = sorted(
                int(v) for c in reached_comps for v in members[int(c)]
            )
            assert set(nodes) == reachable_set(small_random, node)

    def test_sink_component_reaches_only_itself(self, two_cycles):
        cond = condense(two_cycles)
        sink = int(cond.node_comp[3])
        assert cond.reachable_components(sink).tolist() == [sink]


@given(st.integers(0, 5000), st.floats(0.03, 0.25))
def test_condensation_members_partition_and_acyclic(seed, density):
    g = gnp_digraph(20, density, seed=seed)
    rng = np.random.default_rng(seed)
    mask = rng.random(g.num_edges) < 0.6
    cond = condense(g, mask)
    assert cond.is_acyclic()
    members = cond.members()
    flat = sorted(int(v) for m in members for v in m)
    assert flat == list(range(20))
    assert cond.comp_sizes.tolist() == [m.size for m in members]
