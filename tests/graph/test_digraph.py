"""Tests for repro.graph.digraph — the CSR probabilistic digraph."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph.digraph import ProbabilisticDigraph


def simple_graph() -> ProbabilisticDigraph:
    return ProbabilisticDigraph(4, [(0, 1, 0.5), (0, 2, 0.25), (2, 3, 1.0), (3, 0, 0.1)])


class TestConstruction:
    def test_counts(self):
        g = simple_graph()
        assert g.num_nodes == 4
        assert g.num_edges == 4

    def test_empty_graph(self):
        g = ProbabilisticDigraph(3)
        assert g.num_edges == 0
        assert g.successors(0).size == 0

    def test_zero_node_graph(self):
        g = ProbabilisticDigraph(0)
        assert g.num_nodes == 0

    def test_negative_nodes_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            ProbabilisticDigraph(-1)

    def test_non_int_nodes_rejected(self):
        with pytest.raises(TypeError):
            ProbabilisticDigraph(2.5)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            ProbabilisticDigraph(2, [(0, 0, 0.5)])

    def test_duplicate_arc_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ProbabilisticDigraph(2, [(0, 1, 0.5), (0, 1, 0.6)])

    @pytest.mark.parametrize("p", [0.0, -0.5, 1.5, float("nan")])
    def test_bad_probability_rejected(self, p):
        with pytest.raises(ValueError, match="probabilities"):
            ProbabilisticDigraph(2, [(0, 1, p)])

    @pytest.mark.parametrize("edge", [(0, 5, 0.5), (5, 0, 0.5), (-1, 0, 0.5)])
    def test_out_of_range_node_rejected(self, edge):
        with pytest.raises(ValueError, match="out of range"):
            ProbabilisticDigraph(3, [edge])

    def test_from_arrays_matches_triples(self):
        g1 = simple_graph()
        g2 = ProbabilisticDigraph.from_arrays(
            4,
            np.array([0, 0, 2, 3]),
            np.array([1, 2, 3, 0]),
            np.array([0.5, 0.25, 1.0, 0.1]),
        )
        assert g1 == g2

    def test_from_arrays_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            ProbabilisticDigraph.from_arrays(
                3, np.array([0]), np.array([1, 2]), np.array([0.5])
            )

    def test_edges_sorted_regardless_of_input_order(self):
        g = ProbabilisticDigraph(3, [(2, 0, 0.5), (0, 2, 0.5), (0, 1, 0.5)])
        assert list(g.edges()) == [(0, 1, 0.5), (0, 2, 0.5), (2, 0, 0.5)]


class TestAccessors:
    def test_successors_sorted(self):
        g = ProbabilisticDigraph(4, [(0, 3, 0.5), (0, 1, 0.5), (0, 2, 0.5)])
        assert g.successors(0).tolist() == [1, 2, 3]

    def test_successor_probs_aligned(self):
        g = simple_graph()
        np.testing.assert_allclose(g.successor_probs(0), [0.5, 0.25])

    def test_out_degree(self):
        g = simple_graph()
        assert g.out_degree(0) == 2
        assert g.out_degree(1) == 0

    def test_out_degrees_vector(self):
        assert simple_graph().out_degrees().tolist() == [2, 0, 1, 1]

    def test_in_degrees_vector(self):
        assert simple_graph().in_degrees().tolist() == [1, 1, 1, 1]

    def test_has_edge(self):
        g = simple_graph()
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_edge_probability(self):
        assert simple_graph().edge_probability(0, 2) == 0.25

    def test_edge_probability_missing(self):
        with pytest.raises(KeyError):
            simple_graph().edge_probability(1, 0)

    def test_edge_sources_aligned_with_targets(self):
        g = simple_graph()
        sources = g.edge_sources()
        for (u, v, p), s, t in zip(g.edges(), sources, g.targets):
            assert u == int(s)
            assert v == int(t)

    def test_node_validation(self):
        with pytest.raises(ValueError):
            simple_graph().successors(4)


class TestDerivedGraphs:
    def test_reverse_flips_arcs(self):
        g = simple_graph()
        r = g.reverse()
        assert r.has_edge(1, 0)
        assert r.edge_probability(1, 0) == 0.5
        assert r.num_edges == g.num_edges

    def test_reverse_is_cached_and_involutive(self):
        g = simple_graph()
        assert g.reverse() is g.reverse()
        assert g.reverse().reverse() is g

    def test_with_probabilities(self):
        g = simple_graph()
        g2 = g.with_probabilities(np.full(4, 0.9))
        assert g2.edge_probability(0, 1) == 0.9
        assert g.edge_probability(0, 1) == 0.5  # original untouched

    def test_with_probabilities_shape_checked(self):
        with pytest.raises(ValueError, match="shape"):
            simple_graph().with_probabilities(np.array([0.5]))

    def test_with_probabilities_range_checked(self):
        with pytest.raises(ValueError, match=r"\(0, 1\]"):
            simple_graph().with_probabilities(np.array([0.5, 0.5, 0.5, 0.0]))

    def test_subgraph_from_mask(self):
        g = simple_graph()
        mask = np.array([True, False, True, False])
        world = g.subgraph_from_mask(mask)
        assert world.num_edges == 2
        # Kept arcs are deterministic in the world.
        assert all(p == 1.0 for _, _, p in world.edges())

    def test_subgraph_mask_shape_checked(self):
        with pytest.raises(ValueError, match="shape"):
            simple_graph().subgraph_from_mask(np.array([True]))


class TestDunder:
    def test_equality_and_hash(self):
        assert simple_graph() == simple_graph()
        assert hash(simple_graph()) == hash(simple_graph())

    def test_inequality_on_probability(self):
        g2 = ProbabilisticDigraph(
            4, [(0, 1, 0.6), (0, 2, 0.25), (2, 3, 1.0), (3, 0, 0.1)]
        )
        assert simple_graph() != g2

    def test_repr(self):
        assert "num_nodes=4" in repr(simple_graph())


@given(
    st.lists(
        st.tuples(
            st.integers(0, 7),
            st.integers(0, 7),
            st.floats(0.01, 1.0, allow_nan=False),
        ),
        max_size=30,
    )
)
def test_csr_invariants_hold_for_any_valid_edge_list(raw_edges):
    """CSR arrays are consistent for arbitrary deduplicated edge lists."""
    seen = set()
    edges = []
    for u, v, p in raw_edges:
        if u != v and (u, v) not in seen:
            seen.add((u, v))
            edges.append((u, v, p))
    g = ProbabilisticDigraph(8, edges)
    assert g.num_edges == len(edges)
    assert g.indptr[0] == 0
    assert g.indptr[-1] == g.num_edges
    assert np.all(np.diff(g.indptr) >= 0)
    # Row targets sorted and unique.
    for u in range(8):
        row = g.successors(u)
        assert np.all(np.diff(row) > 0) if row.size > 1 else True
    # Round-trip through edges().
    assert sorted((u, v) for u, v, _ in g.edges()) == sorted(seen)
