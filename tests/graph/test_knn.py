"""Tests for repro.graph.knn — uncertain-graph k-NN."""

import numpy as np
import pytest

from repro.graph.digraph import ProbabilisticDigraph
from repro.graph.generators import path_graph, star_graph
from repro.graph.knn import (
    UNREACHABLE,
    k_nearest_neighbours,
    sampled_distance_matrix,
)


class TestDistanceMatrix:
    def test_shape_and_sentinel(self, diamond):
        matrix = sampled_distance_matrix(diamond, 3, 10, seed=1)
        assert matrix.shape == (10, 4)
        # Node 0 is never reachable from 3.
        assert np.all(matrix[:, 0] == UNREACHABLE)
        assert np.all(matrix[:, 3] == 0)

    def test_deterministic(self, diamond):
        a = sampled_distance_matrix(diamond, 0, 10, seed=2)
        b = sampled_distance_matrix(diamond, 0, 10, seed=2)
        assert np.array_equal(a, b)


class TestKnn:
    def test_certain_path_ordering(self):
        g = path_graph(5, p=1.0)
        nn = k_nearest_neighbours(g, 0, 3, num_samples=20, seed=3)
        assert [s.node for s in nn] == [1, 2, 3]
        assert [s.median_distance for s in nn] == [1.0, 2.0, 3.0]
        assert all(s.reliability == 1.0 for s in nn)

    def test_unreliable_node_ranked_last(self):
        # Leaf 1 at p=0.9, leaf 2 at p=0.1: same distance, different
        # reliability — the median distance of leaf 2 is infinite.
        g = ProbabilisticDigraph(3, [(0, 1, 0.9), (0, 2, 0.1)])
        nn = k_nearest_neighbours(g, 0, 2, num_samples=400, seed=4)
        assert nn[0].node == 1
        assert nn[0].median_distance == 1.0
        assert nn[1].median_distance == float("inf")

    def test_source_excluded(self):
        g = star_graph(5, p=1.0)
        nn = k_nearest_neighbours(g, 0, 4, num_samples=10, seed=5)
        assert 0 not in [s.node for s in nn]

    def test_majority_statistic(self):
        g = path_graph(3, p=0.8)
        nn = k_nearest_neighbours(g, 0, 2, num_samples=400, seed=6, by="majority")
        assert nn[0].node == 1
        assert nn[0].majority_distance == 1.0

    def test_reliable_mean_statistic(self, diamond):
        nn = k_nearest_neighbours(
            diamond, 0, 3, num_samples=300, seed=7, by="reliable-mean"
        )
        assert len(nn) == 3

    def test_invalid_statistic(self, diamond):
        with pytest.raises(ValueError, match="by must be"):
            k_nearest_neighbours(diamond, 0, 1, by="mode")

    def test_reliability_matches_expectation(self):
        g = ProbabilisticDigraph(2, [(0, 1, 0.3)])
        nn = k_nearest_neighbours(g, 0, 1, num_samples=3000, seed=8)
        assert nn[0].reliability == pytest.approx(0.3, abs=0.03)
