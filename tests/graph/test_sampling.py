"""Tests for repro.graph.sampling — possible-world semantics (Eq. 1)."""

import numpy as np
import pytest

from repro.graph.digraph import ProbabilisticDigraph
from repro.graph.sampling import (
    WorldSampler,
    enumerate_worlds,
    sample_world,
    sample_worlds,
    world_probability,
)


class TestSampleWorld:
    def test_mask_shape(self, fig1):
        mask = sample_world(fig1, seed=0)
        assert mask.shape == (fig1.num_edges,)
        assert mask.dtype == bool

    def test_determinism(self, fig1):
        assert np.array_equal(sample_world(fig1, 3), sample_world(fig1, 3))

    def test_certain_edges_always_alive(self):
        g = ProbabilisticDigraph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        for seed in range(20):
            assert sample_world(g, seed).all()

    def test_empirical_rate_matches_probability(self, fig1):
        rng = np.random.default_rng(0)
        masks = sample_worlds(fig1, 4000, rng)
        rates = masks.mean(axis=0)
        np.testing.assert_allclose(rates, fig1.probs, atol=0.05)

    def test_sample_worlds_shape(self, fig1):
        masks = sample_worlds(fig1, 7, seed=1)
        assert masks.shape == (7, fig1.num_edges)


class TestWorldProbability:
    def test_all_alive(self, diamond):
        mask = np.ones(diamond.num_edges, dtype=bool)
        expected = 0.5 * 0.8 * 0.5 * 0.4
        assert world_probability(diamond, mask) == pytest.approx(expected)

    def test_all_dead(self, diamond):
        mask = np.zeros(diamond.num_edges, dtype=bool)
        expected = 0.5 * 0.2 * 0.5 * 0.6
        assert world_probability(diamond, mask) == pytest.approx(expected)

    def test_certain_edge_absent_has_probability_zero(self):
        g = ProbabilisticDigraph(2, [(0, 1, 1.0)])
        assert world_probability(g, np.array([False])) == 0.0

    def test_shape_checked(self, diamond):
        with pytest.raises(ValueError, match="shape"):
            world_probability(diamond, np.array([True]))


class TestEnumerateWorlds:
    def test_probabilities_sum_to_one(self, diamond):
        total = sum(p for _, p in enumerate_worlds(diamond))
        assert total == pytest.approx(1.0)

    def test_world_count(self, diamond):
        worlds = list(enumerate_worlds(diamond))
        assert len(worlds) == 2**diamond.num_edges

    def test_guard_on_large_graphs(self):
        g = ProbabilisticDigraph(30, [(i, i + 1, 0.5) for i in range(25)])
        with pytest.raises(ValueError, match="refusing"):
            list(enumerate_worlds(g))


class TestWorldSampler:
    def test_world_deterministic_in_index(self, fig1):
        s = WorldSampler(fig1, seed=5)
        assert np.array_equal(s.world_mask(3), s.world_mask(3))

    def test_different_indices_differ(self, small_random):
        s = WorldSampler(small_random, seed=5)
        assert not np.array_equal(s.world_mask(0), s.world_mask(1))

    def test_same_seed_same_stream(self, fig1):
        a = WorldSampler(fig1, seed=9)
        b = WorldSampler(fig1, seed=9)
        assert np.array_equal(a.world_mask(2), b.world_mask(2))

    def test_negative_index_rejected(self, fig1):
        with pytest.raises(ValueError):
            WorldSampler(fig1).world_mask(-1)

    def test_world_graph_materialisation(self, fig1):
        s = WorldSampler(fig1, seed=1)
        mask = s.world_mask(0)
        world = s.world_graph(0)
        assert world.num_edges == int(mask.sum())

    def test_masks_iterator(self, fig1):
        s = WorldSampler(fig1, seed=1)
        masks = list(s.masks(4))
        assert len(masks) == 4
        assert np.array_equal(masks[2], s.world_mask(2))
