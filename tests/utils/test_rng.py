"""Tests for repro.utils.rng — determinism and stream independence."""

import numpy as np
import pytest

from repro.utils.rng import (
    RngStream,
    derive_rng,
    permutation_from_seed,
    sample_without_replacement,
    spawn_rngs,
)


class TestDeriveRng:
    def test_int_seed_is_deterministic(self):
        a = derive_rng(42).random(5)
        b = derive_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = derive_rng(1).random(5)
        b = derive_rng(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough_shares_state(self):
        gen = np.random.default_rng(0)
        same = derive_rng(gen)
        assert same is gen

    def test_generator_passthrough_is_not_a_copy(self):
        """Draws through the derived handle advance the original stream."""
        gen = np.random.default_rng(7)
        reference = np.random.default_rng(7)
        derive_rng(gen).random(5)  # consume through the derived handle
        # The shared state moved on: the next draw differs from a fresh
        # stream's first draw but matches a reference advanced identically.
        reference.random(5)
        assert np.array_equal(gen.random(3), reference.random(3))

    def test_none_gives_fresh_generator(self):
        assert isinstance(derive_rng(None), np.random.Generator)

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(5)
        a = derive_rng(seq).random(3)
        b = derive_rng(np.random.SeedSequence(5)).random(3)
        assert np.array_equal(a, b)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 7)) == 7

    def test_children_are_independent_and_deterministic(self):
        first = [g.random(3) for g in spawn_rngs(11, 3)]
        second = [g.random(3) for g in spawn_rngs(11, 3)]
        for a, b in zip(first, second):
            assert np.array_equal(a, b)
        assert not np.array_equal(first[0], first[1])

    def test_children_pairwise_distinct(self):
        draws = [g.random(8) for g in spawn_rngs(23, 6)]
        for i in range(len(draws)):
            for j in range(i + 1, len(draws)):
                assert not np.array_equal(draws[i], draws[j]), (i, j)

    def test_children_pairwise_uncorrelated(self):
        """Streams from one seed look independent (small cross-correlation)."""
        draws = [g.standard_normal(4096) for g in spawn_rngs(5, 4)]
        for i in range(len(draws)):
            for j in range(i + 1, len(draws)):
                corr = np.corrcoef(draws[i], draws[j])[0, 1]
                assert abs(corr) < 0.08, (i, j, corr)

    def test_from_generator_is_reproducible(self):
        """Equal-state parent generators spawn identical children."""
        first = [g.random(4) for g in spawn_rngs(np.random.default_rng(9), 3)]
        second = [g.random(4) for g in spawn_rngs(np.random.default_rng(9), 3)]
        for a, b in zip(first, second):
            assert np.array_equal(a, b)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_rngs(0, -1)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_from_generator(self):
        gen = np.random.default_rng(3)
        children = spawn_rngs(gen, 2)
        assert len(children) == 2


class TestRngStream:
    def test_fork_deterministic_in_name(self):
        a = RngStream(5).fork("worlds").random(4)
        b = RngStream(5).fork("worlds").random(4)
        assert np.array_equal(a, b)

    def test_fork_differs_by_name(self):
        stream = RngStream(5)
        a = stream.fork("worlds").random(4)
        b = stream.fork("cascades").random(4)
        assert not np.array_equal(a, b)

    def test_fork_order_independent(self):
        s1 = RngStream(9)
        first = s1.fork("a").random(2)
        s1.fork("b")
        s2 = RngStream(9)
        s2.fork("b")
        second = s2.fork("a").random(2)
        assert np.array_equal(first, second)

    def test_generators_yields_requested_count(self):
        stream = RngStream(1)
        gens = list(stream.generators("x", 4))
        assert len(gens) == 4


class TestHelpers:
    def test_permutation_is_permutation(self):
        perm = permutation_from_seed(20, 3)
        assert sorted(perm.tolist()) == list(range(20))

    def test_permutation_deterministic(self):
        assert np.array_equal(permutation_from_seed(10, 3), permutation_from_seed(10, 3))

    def test_sample_without_replacement_distinct(self):
        sample = sample_without_replacement(list(range(50)), 10, seed=0)
        assert len(sample) == 10
        assert len(set(sample)) == 10

    def test_sample_too_large_rejected(self):
        with pytest.raises(ValueError, match="cannot sample"):
            sample_without_replacement([1, 2], 3)
