"""Tests for repro.utils.timing."""

import pytest

from repro.utils.timing import Timer, time_call, timed


class TestTimer:
    def test_accumulates_across_cycles(self):
        timer = Timer("t")
        timer.start()
        timer.stop()
        first = timer.elapsed
        timer.start()
        timer.stop()
        assert timer.elapsed >= first

    def test_double_start_rejected(self):
        timer = Timer("t").start()
        with pytest.raises(RuntimeError, match="already running"):
            timer.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError, match="not running"):
            Timer("t").stop()

    def test_context_manager(self):
        timer = Timer("ctx")
        with timer:
            pass
        assert timer.elapsed >= 0.0
        assert not timer.running

    def test_reset(self):
        timer = Timer("t")
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0


def test_timed_appends_to_sink():
    sink: list[float] = []
    with timed(sink):
        pass
    with timed(sink):
        pass
    assert len(sink) == 2
    assert all(t >= 0.0 for t in sink)


def test_time_call_returns_result_and_elapsed():
    result, elapsed = time_call(lambda: 41 + 1)
    assert result == 42
    assert elapsed >= 0.0
