"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import format_series, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["a", "long_header"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "long_header" in lines[0]
        assert len(lines) == 4  # header, rule, 2 rows

    def test_title_renders(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_float_precision(self):
        out = format_table(["x"], [[1.23456]], precision=2)
        assert "1.23" in out
        assert "1.235" not in out

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError, match="row 0 has"):
            format_table(["a", "b"], [[1]])

    def test_bool_rendered_as_word(self):
        out = format_table(["x"], [[True]])
        assert "True" in out


class TestFormatSeries:
    def test_columns_aligned(self):
        out = format_series("k", [1, 2], {"y1": [0.5, 0.6], "y2": [1, 2]})
        assert "y1" in out and "y2" in out
        assert len(out.splitlines()) == 4

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="mismatched"):
            format_series("k", [1, 2], {"y": [1]})
