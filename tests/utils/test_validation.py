"""Tests for repro.utils.validation."""

import math

import pytest

from repro.utils.validation import (
    check_fraction,
    check_node,
    check_non_negative_int,
    check_positive_int,
    check_probability,
)


class TestCheckPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(3, "x") == 3

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive_int(bad, "x")

    @pytest.mark.parametrize("bad", [1.5, "3", None, True])
    def test_rejects_non_int(self, bad):
        with pytest.raises(TypeError):
            check_positive_int(bad, "x")


class TestCheckNonNegativeInt:
    def test_accepts_zero(self):
        assert check_non_negative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative_int(-1, "x")


class TestCheckProbability:
    def test_accepts_one(self):
        assert check_probability(1, "p") == 1.0

    def test_rejects_zero_by_default(self):
        with pytest.raises(ValueError, match=r"\(0, 1\]"):
            check_probability(0.0, "p")

    def test_allow_zero(self):
        assert check_probability(0.0, "p", allow_zero=True) == 0.0

    @pytest.mark.parametrize("bad", [-0.1, 1.0001, math.nan])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(ValueError):
            check_probability(bad, "p")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_probability(True, "p")

    def test_fraction_alias_allows_zero(self):
        assert check_fraction(0.0, "f") == 0.0


class TestCheckNode:
    def test_accepts_in_range(self):
        assert check_node(3, 5) == 3

    @pytest.mark.parametrize("bad", [-1, 5])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(ValueError, match="out of range"):
            check_node(bad, 5)

    def test_accepts_numpy_int(self):
        import numpy as np

        assert check_node(np.int64(2), 5) == 2

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_node("a", 5)
