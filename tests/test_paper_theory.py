"""Numerical validation of the paper's theory (Section 3 + Appendix A).

These tests check the *statements* of Lemmas 1, 3 and 4 and the empirical
content of Theorem 2 on concrete distributions over sets, independent of
any particular graph — exactly what the proofs quantify over.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cascades.index import CascadeIndex
from repro.median.chierichetti import jaccard_median
from repro.median.cost import monte_carlo_expected_cost
from repro.median.jaccard import jaccard_distance
from repro.median.samples import SampleCollection


def rho(candidate: frozenset, distribution: list[tuple[frozenset, float]]) -> float:
    """Exact expected Jaccard distance under a finite distribution."""
    return sum(p * jaccard_distance(candidate, c) for c, p in distribution)


def f_x(x: frozenset, y: frozenset, distribution) -> float:
    """The surrogate f_X(Y) = E[|Y (+) C| / |X u C|] of Lemma 1."""
    total = 0.0
    for c, p in distribution:
        denominator = len(x | c)
        if denominator == 0:
            continue
        total += p * len(y ^ c) / denominator
    return total


# A small family of hand-built distributions over non-empty subsets of [6].
DISTRIBUTIONS = [
    [(frozenset({0, 1, 2}), 0.5), (frozenset({0, 1}), 0.3), (frozenset({0, 1, 2, 3}), 0.2)],
    [(frozenset({0}), 0.6), (frozenset({0, 5}), 0.4)],
    [(frozenset({1, 2}), 0.25), (frozenset({2, 3}), 0.25),
     (frozenset({1, 3}), 0.25), (frozenset({1, 2, 3}), 0.25)],
]

subsets = st.frozensets(st.integers(0, 5), max_size=6)


class TestLemma3:
    @given(
        st.frozensets(st.integers(0, 10), min_size=1, max_size=8),
        st.frozensets(st.integers(0, 10), min_size=1, max_size=8),
    )
    def test_union_bound(self, a, b):
        """|A u B| <= min(|A|, |B|) / (1 - d_J(A, B)) when A n B != {}."""
        if not a & b:
            return
        d = jaccard_distance(a, b)
        assert len(a | b) <= min(len(a), len(b)) / (1 - d) + 1e-9


class TestLemma4:
    @pytest.mark.parametrize("distribution", DISTRIBUTIONS)
    @pytest.mark.parametrize("x", [frozenset({0, 1}), frozenset({0, 1, 2})])
    def test_inverse_union_bounds(self, distribution, x):
        """1/|X| >= E[1/|X u C|] >= (1 - 2 sqrt(rho(X))) / |X|."""
        expectation = sum(p / len(x | c) for c, p in distribution)
        cost = rho(x, distribution)
        assert expectation <= 1 / len(x) + 1e-12
        assert expectation >= (1 - 2 * np.sqrt(cost)) / len(x) - 1e-12


class TestLemma1:
    @pytest.mark.parametrize("distribution", DISTRIBUTIONS)
    @given(y=subsets, y2=subsets)
    @settings(max_examples=25)
    def test_part_a_distance_bounds(self, distribution, y, y2):
        """d_J(Y, Y') <= min(rho(Y) + rho(Y'), 6(rho(X) + f_X(Y) + f_X(Y')))."""
        x = frozenset({0, 1})
        d = jaccard_distance(y, y2)
        assert d <= rho(y, distribution) + rho(y2, distribution) + 1e-9
        bound = 6 * (rho(x, distribution) + f_x(x, y, distribution) + f_x(x, y2, distribution))
        assert d <= bound + 1e-9

    @pytest.mark.parametrize("distribution", DISTRIBUTIONS)
    @given(y=subsets)
    @settings(max_examples=25)
    def test_part_b_ratio_bounds(self, distribution, y):
        """If X n Y != {}: 1 - d_J(X,Y) <= rho(Y)/f_X(Y) <= 1/(1 - d_J(X,Y))."""
        x = frozenset({0, 1})
        if not x & y:
            return
        fy = f_x(x, y, distribution)
        ry = rho(y, distribution)
        if fy <= 1e-12:
            return
        d = jaccard_distance(x, y)
        if d >= 1.0 - 1e-12:
            return
        ratio = ry / fy
        assert ratio >= (1 - d) - 1e-9
        assert ratio <= 1 / (1 - d) + 1e-9

    @pytest.mark.parametrize("distribution", DISTRIBUTIONS)
    def test_part_c_optimality_transfer(self, distribution):
        """If rho(Y) <= rho(X) then f_X(Y) <= f_X(X) / (1 - 2 f_X(X))."""
        x = frozenset({0, 1})
        fxx = f_x(x, x, distribution)
        if fxx >= 0.5:
            return
        from itertools import chain, combinations

        universe = sorted(set(chain.from_iterable(c for c, _ in distribution)))
        for r in range(len(universe) + 1):
            for comb in combinations(universe, r):
                y = frozenset(comb)
                if rho(y, distribution) <= rho(x, distribution):
                    assert f_x(x, y, distribution) <= fxx / (1 - 2 * fxx) + 1e-9


class TestTheorem2Empirically:
    def test_constant_samples_suffice_across_sizes(self, rng):
        """The sample size needed for a near-optimal median does not grow
        with the graph: medians from l=32 samples score within 15% of
        medians from l=256 samples on graphs of 30 and 120 nodes."""
        from repro.graph.generators import gnp_digraph
        from repro.problearn.assign import assign_fixed

        for n, density in ((30, 0.12), (120, 0.03)):
            graph = assign_fixed(gnp_digraph(n, density, seed=n), 0.3)
            index = CascadeIndex.build(graph, 256, seed=1)
            node = 0
            small = jaccard_median(
                SampleCollection(n, [index.cascade(node, w) for w in range(32)])
            )
            large = jaccard_median(
                SampleCollection(n, [index.cascade(node, w) for w in range(256)])
            )
            cost_small = monte_carlo_expected_cost(
                graph, node, small.median, 600, seed=2
            )
            cost_large = monte_carlo_expected_cost(
                graph, node, large.median, 600, seed=2
            )
            assert cost_small <= cost_large + 0.15 * max(cost_large, 0.1)

    def test_in_sample_cost_underestimates_true_cost(self):
        """Overfitting direction: the empirical cost of the fitted median
        is (weakly) below its out-of-sample cost, as Section 3 discusses."""
        from repro.graph.generators import gnp_digraph
        from repro.problearn.assign import assign_fixed

        graph = assign_fixed(gnp_digraph(50, 0.08, seed=9), 0.25)
        index = CascadeIndex.build(graph, 16, seed=3)
        samples = SampleCollection(50, index.cascades(0))
        result = jaccard_median(samples)
        out_of_sample = monte_carlo_expected_cost(
            graph, 0, result.median, 1500, seed=4
        )
        assert result.cost <= out_of_sample + 0.05
