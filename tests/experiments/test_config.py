"""Tests for repro.experiments.config."""

import pytest

from repro.experiments.config import BENCH_CONFIG, TEST_CONFIG, ExperimentConfig


class TestExperimentConfig:
    def test_defaults(self):
        config = ExperimentConfig()
        assert config.scale == 1.0
        assert config.num_samples > 0
        assert config.seed == 20160626  # the SIGMOD'16 date

    def test_frozen(self):
        config = ExperimentConfig()
        with pytest.raises(AttributeError):
            config.scale = 2.0

    def test_scaled_multiplies_only_scale(self):
        config = ExperimentConfig(scale=0.5, num_samples=32, k=7)
        smaller = config.scaled(0.5)
        assert smaller.scale == pytest.approx(0.25)
        assert smaller.num_samples == 32
        assert smaller.k == 7
        assert smaller.seed == config.seed

    def test_presets_ordered_by_cost(self):
        assert TEST_CONFIG.scale < BENCH_CONFIG.scale
        assert TEST_CONFIG.num_samples <= BENCH_CONFIG.num_samples
        assert TEST_CONFIG.k <= BENCH_CONFIG.k


def test_package_version_consistent_with_pyproject():
    import pathlib

    import repro

    pyproject = pathlib.Path(repro.__file__).parents[2] / "pyproject.toml"
    if not pyproject.exists():
        pytest.skip("pyproject.toml not found (installed package layout)")
    text = pyproject.read_text()
    assert f'version = "{repro.__version__}"' in text
