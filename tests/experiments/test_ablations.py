"""Tests for the ablation harnesses (tiny scale)."""

import pytest

from repro.datasets.registry import clear_cache
from repro.experiments.ablations import (
    format_ablation_rows,
    run_index_ablation,
    run_median_ablation,
    run_samples_ablation,
)
from repro.experiments.config import TEST_CONFIG


@pytest.fixture(scope="module", autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestSamplesAblation:
    def test_costs_plateau(self):
        rows = run_samples_ablation(
            "Digg-S",
            TEST_CONFIG,
            sample_counts=(4, 16),
            num_nodes=8,
            eval_samples=60,
        )
        assert [r.num_samples for r in rows] == [4, 16]
        for r in rows:
            assert 0.0 <= r.mean_out_of_sample_cost <= 1.0
            assert 0.0 <= r.mean_in_sample_cost <= 1.0
        # More samples should not make the out-of-sample cost much worse.
        assert rows[1].mean_out_of_sample_cost <= rows[0].mean_out_of_sample_cost + 0.1


class TestIndexAblation:
    def test_reduction_shrinks_dag(self):
        rows = run_index_ablation("NetHEPT-W", TEST_CONFIG, num_queries=30)
        by_flag = {r.reduced: r for r in rows}
        assert set(by_flag) == {False, True}
        assert by_flag[True].total_dag_edges <= by_flag[False].total_dag_edges
        for r in rows:
            assert r.build_seconds > 0
            assert r.avg_extraction_seconds > 0


class TestMedianAblation:
    def test_all_algorithms_reported(self):
        rows = run_median_ablation("Digg-S", TEST_CONFIG, num_nodes=6)
        names = {r.algorithm for r in rows}
        assert names == {
            "chierichetti",
            "best-of-samples",
            "majority",
            "chierichetti+ls",
        }
        full = {r.algorithm: r for r in rows}
        # The combined algorithm is never worse in-sample than best-of-samples.
        assert (
            full["chierichetti"].mean_cost
            <= full["best-of-samples"].mean_cost + 1e-9
        )

    def test_rendering(self):
        rows = run_median_ablation("Digg-S", TEST_CONFIG, num_nodes=3)
        out = format_ablation_rows(rows, "median ablation")
        assert "median ablation" in out
        assert "chierichetti" in out
