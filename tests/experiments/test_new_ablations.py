"""Tests for the sparsification and MinHash ablation harnesses."""

import pytest

from repro.datasets.registry import clear_cache
from repro.experiments.ablations import (
    run_minhash_ablation,
    run_sparsify_ablation,
)
from repro.experiments.config import TEST_CONFIG


@pytest.fixture(scope="module", autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestSparsifyAblation:
    def test_rows_and_monotonicity(self):
        rows = run_sparsify_ablation(
            "Digg-S", TEST_CONFIG, fractions=(0.9, 0.5), num_nodes=6
        )
        assert [r.fraction for r in rows] == [0.9, 0.5]
        for r in rows:
            assert 0.0 <= r.mean_sphere_distance <= 1.0
            assert 0.0 < r.probability_mass_kept <= 1.0
        # More arcs kept -> more probability mass kept.
        assert rows[0].probability_mass_kept >= rows[1].probability_mass_kept
        assert rows[0].edges_kept >= rows[1].edges_kept


class TestMinhashAblation:
    def test_rows_and_accuracy_trend(self):
        rows = run_minhash_ablation(
            "NetHEPT-F", TEST_CONFIG, hash_counts=(16, 256), num_nodes=5
        )
        assert [r.num_hashes for r in rows] == [16, 256]
        for r in rows:
            assert r.mean_abs_cost_error >= 0.0
            assert r.exact_seconds > 0 and r.sketch_seconds > 0
        assert rows[1].mean_abs_cost_error <= rows[0].mean_abs_cost_error + 0.05
