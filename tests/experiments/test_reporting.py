"""Tests for repro.experiments.reporting."""


from repro.experiments.reporting import (
    build_experiments_markdown,
    collect_sections,
    write_experiments_markdown,
)


class TestCollect:
    def test_missing_artefacts_tolerated(self, tmp_path):
        sections = collect_sections(tmp_path)
        assert len(sections) >= 8
        assert all(s.artefact is None for s in sections)

    def test_artefacts_picked_up(self, tmp_path):
        (tmp_path / "table1.txt").write_text("TABLE ONE CONTENT")
        sections = {s.name: s for s in collect_sections(tmp_path)}
        assert sections["table1"].artefact == "TABLE ONE CONTENT"
        assert sections["fig3"].artefact is None


class TestBuild:
    def test_markdown_structure(self, tmp_path):
        (tmp_path / "fig6.txt").write_text("SPREAD CURVES")
        text = build_experiments_markdown(tmp_path)
        assert text.startswith("# EXPERIMENTS")
        assert "## Figure 6" in text
        assert "SPREAD CURVES" in text
        assert "**Paper.**" in text and "**Measured.**" in text

    def test_missing_artefact_note(self, tmp_path):
        text = build_experiments_markdown(tmp_path)
        assert "No artefact found" in text

    def test_write_roundtrip(self, tmp_path):
        out = tmp_path / "EXPERIMENTS.md"
        write_experiments_markdown(tmp_path, out)
        assert out.exists()
        assert out.read_text().startswith("# EXPERIMENTS")
