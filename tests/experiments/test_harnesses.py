"""Integration tests for the experiment harnesses at tiny scale.

These validate that every table/figure harness runs end to end, returns
well-formed rows/series, and renders — the paper-shape assertions live in
the benchmark suite, which runs at a larger scale.
"""

import numpy as np
import pytest

from repro.datasets.registry import clear_cache
from repro.experiments import (
    TEST_CONFIG,
    format_fig3,
    format_fig4,
    format_fig5,
    format_fig6,
    format_fig7,
    format_fig8,
    format_table1,
    format_table2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig7,
    run_table1,
    run_table2,
)
from repro.experiments.fig3 import GRID, mean_probability_by_method
from repro.experiments.fig6 import run_fig6_single
from repro.experiments.fig8 import run_fig8_single


@pytest.fixture(scope="module", autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestTable1:
    def test_rows_and_rendering(self):
        rows = run_table1(TEST_CONFIG)
        assert len(rows) == 6
        assert {r.dataset for r in rows} == {
            "Digg", "Flixster", "Twitter", "NetHEPT", "Epinions", "Slashdot"
        }
        out = format_table1(rows)
        assert "Digg" in out and "|V|" in out


class TestFig3:
    def test_curves(self):
        curves = run_fig3(TEST_CONFIG)
        assert len(curves) == 9
        for c in curves:
            assert c.cdf.shape == GRID.shape
            assert np.all(np.diff(c.cdf) >= 0)  # CDFs are nondecreasing
            assert c.cdf[-1] == pytest.approx(1.0)
        assert "Saito" in format_fig3(curves)

    def test_method_means(self):
        means = mean_probability_by_method(run_fig3(TEST_CONFIG))
        assert set(means) == {"Saito", "Goyal", "WC"}


class TestTable2:
    def test_rows(self):
        rows = run_table2(TEST_CONFIG, settings=("Digg-S", "NetHEPT-W"), max_nodes=20)
        assert len(rows) == 2
        for r in rows:
            assert r.avg_size >= 1.0
            assert r.max_size >= r.avg_size
            assert 0.0 <= r.avg_cost <= 1.0
        assert "avg(|C*|)" in format_table2(rows)


class TestFig4:
    def test_timings_positive(self):
        rows = run_fig4(TEST_CONFIG, settings=("Digg-S",), max_nodes=15)
        assert len(rows) == 1
        r = rows[0]
        assert 0 < r.median_time_p50 <= r.median_time_max
        assert 0 < r.cost_time_p50 <= r.cost_time_max
        assert "p90" in format_fig4(rows)


class TestFig5:
    def test_buckets_cover_all_nodes(self):
        buckets = run_fig5(TEST_CONFIG, settings=("NetHEPT-W",), max_nodes=30)
        assert sum(b.count for b in buckets) == 30
        for b in buckets:
            assert b.size_lo < b.size_hi
            assert 0.0 <= b.mean_cost <= b.max_cost <= 1.0
        assert "size in" in format_fig5(buckets)


class TestFig6:
    def test_single_setting(self):
        result = run_fig6_single("NetHEPT-W", TEST_CONFIG)
        assert result.k == TEST_CONFIG.k
        assert result.spread_std.shape == (result.k,)
        assert np.all(np.diff(result.spread_std) >= -1e-9)
        assert np.all(np.diff(result.spread_tc) >= -1e-9)
        assert len(result.seeds_std) == result.k
        assert len(set(result.seeds_tc)) == result.k
        assert "InfMax_std" in format_fig6([result])

    def test_crossover_detection(self):
        from repro.experiments.fig6 import _find_crossover

        std = np.array([5.0, 6.0, 7.0, 8.0])
        tc = np.array([4.0, 5.5, 7.5, 9.0])
        assert _find_crossover(std, tc) == 3
        assert _find_crossover(std, np.array([1.0, 2, 3, 4])) is None
        assert _find_crossover(std, std) == 1


class TestFig7:
    def test_curves(self):
        results = run_fig7(
            TEST_CONFIG,
            settings=("NetHEPT-F",),
            first_iteration=1,
            num_iterations=3,
        )
        r = results[0]
        assert r.std_curve.method == "InfMax_std"
        assert np.all((r.std_curve.ratios >= 0) & (r.std_curve.ratios <= 1))
        assert "marginal gain" in format_fig7(results)


class TestFig8:
    def test_single_setting(self):
        result = run_fig8_single("NetHEPT-W", TEST_CONFIG, num_checkpoints=3)
        assert len(result.checkpoints) <= 3
        assert np.all((result.cost_std >= 0) & (result.cost_std <= 1))
        assert np.all((result.cost_tc >= 0) & (result.cost_tc <= 1))
        assert 0.0 <= result.tc_more_stable_fraction <= 1.0
        assert "stability" in format_fig8([result])
