"""JobManager lifecycle: submit/status/result/cancel, idempotency,
admission control, crash-restart recovery, and slot accounting.

All tests run thread-mode workers (fast, deterministic); the process-mode
path is exercised end-to-end by ``scripts/check_chaos_jobs.py``.  Slow
jobs are manufactured with a ``sleep`` fault on the ``jobs.step`` site —
the worker passes its attempt explicitly, so the fault fires at *every*
step of attempt 0, stretching the job without any timing guesswork.
"""

from __future__ import annotations

import pytest

from repro.jobs.errors import JobConflict, JobNotDone, JobNotFound, JobQueueFull
from repro.jobs.journal import JobJournal, summarize
from repro.jobs.manager import JobManager
from repro.jobs.select import run_to_completion
from repro.jobs.spec import JobSpec
from repro.runtime.faults import FaultSpec, fault_scope

from tests.jobs.conftest import wait_drained, wait_state, wait_terminal

CELFPP = {"model": "celfpp", "k": 4}


def _slow(job_id: str, seconds: float = 0.2) -> list[FaultSpec]:
    return [
        FaultSpec(site="jobs.step", kind="sleep", key=job_id, seconds=seconds)
    ]


class TestLifecycle:
    def test_submit_runs_to_done(self, manager_factory, index):
        manager = manager_factory()
        view = manager.submit(CELFPP)
        assert view["state"] == "queued"
        assert view["model"] == "celfpp"
        final = wait_terminal(manager, view["id"])
        assert final["state"] == "done"
        assert final["steps"] == 4
        assert final["attempts"] == 1
        result = manager.result(view["id"])
        reference = run_to_completion(
            JobSpec.from_payload(CELFPP, index.num_nodes), index
        )
        assert result["result"]["seeds"] == reference["seeds"]
        wait_drained(manager)
        assert manager.healthz() == {
            "mode": "thread",
            "queued": 0,
            "running": 0,
            "max_queued": 16,
            "max_running": 2,
        }

    def test_result_before_done_conflicts(self, manager_factory):
        manager = manager_factory()
        job_id = manager.submit(CELFPP)["id"]
        # Whether or not the worker finished yet, the *queued* snapshot we
        # took is enough: poll a fresh slow job instead for determinism.
        slow_id = None
        with fault_scope(_slow("j000002", 10.0)):
            slow_id = manager.submit({"model": "celfpp", "k": 3})["id"]
            with pytest.raises(JobNotDone):
                manager.result(slow_id)
            manager.cancel(slow_id)
        wait_terminal(manager, job_id)
        wait_terminal(manager, slow_id)

    def test_unknown_and_malformed_ids(self, manager_factory):
        manager = manager_factory()
        with pytest.raises(JobNotFound):
            manager.status("j999999")
        with pytest.raises(JobNotFound):
            manager.status("../../etc/passwd")
        with pytest.raises(JobNotFound):
            manager.cancel("nope nope")

    def test_list_jobs(self, manager_factory):
        manager = manager_factory()
        first = manager.submit(CELFPP)["id"]
        second = manager.submit({"model": "greedy_tc", "k": 2})["id"]
        wait_terminal(manager, first)
        wait_terminal(manager, second)
        listing = manager.list_jobs()
        assert listing["count"] == 2
        by_id = {row["id"]: row for row in listing["jobs"]}
        assert by_id[first]["state"] == "done"
        assert by_id[second]["model"] == "greedy_tc"


class TestIdempotency:
    def test_duplicate_key_returns_same_job(self, manager_factory):
        manager = manager_factory()
        payload = {**CELFPP, "idempotency_key": "batch-7"}
        first = manager.submit(payload)
        second = manager.submit(payload)
        assert second["id"] == first["id"]
        assert second["deduplicated"] is True
        assert "deduplicated" not in first
        wait_terminal(manager, first["id"])

    def test_key_reuse_with_different_spec_conflicts(self, manager_factory):
        manager = manager_factory()
        manager.submit({**CELFPP, "idempotency_key": "batch-7"})
        with pytest.raises(JobConflict):
            manager.submit(
                {"model": "celfpp", "k": 5, "idempotency_key": "batch-7"}
            )
        wait_drained(manager)

    def test_dedup_survives_restart(self, manager_factory, tmp_path):
        jobs_dir = tmp_path / "restartable"
        manager = manager_factory(jobs_dir=jobs_dir)
        payload = {**CELFPP, "idempotency_key": "batch-7"}
        job_id = manager.submit(payload)["id"]
        wait_terminal(manager, job_id)
        manager.stop()
        reborn = manager_factory(jobs_dir=jobs_dir)
        view = reborn.submit(payload)
        assert view["id"] == job_id
        assert view["deduplicated"] is True


class TestCancellation:
    def test_cancel_queued_job(self, manager_factory):
        manager = manager_factory(max_running=1)
        with fault_scope(_slow("j000001", 10.0)):
            blocker = manager.submit(CELFPP)["id"]
            queued = manager.submit({"model": "greedy_tc", "k": 3})["id"]
            view = manager.cancel(queued)
            assert view["state"] == "cancelled"
            manager.cancel(blocker)
        assert wait_terminal(manager, blocker)["state"] == "cancelled"
        wait_drained(manager)

    def test_cancel_running_job_frees_slot(self, manager_factory):
        manager = manager_factory(max_running=1)
        with fault_scope(_slow("j000001", 0.2)):
            running = manager.submit({"model": "celfpp", "k": 50})["id"]
            manager.cancel(running)
            final = wait_terminal(manager, running)
        assert final["state"] == "cancelled"
        # The freed slot admits and completes new work.
        after = manager.submit(CELFPP)["id"]
        assert wait_terminal(manager, after)["state"] == "done"
        wait_drained(manager)

    def test_cancel_done_job_is_a_noop(self, manager_factory):
        manager = manager_factory()
        job_id = manager.submit(CELFPP)["id"]
        wait_terminal(manager, job_id)
        view = manager.cancel(job_id)
        assert view["state"] == "done"


class TestAdmission:
    def test_queue_full_rejects_with_retryable(self, manager_factory):
        manager = manager_factory(max_running=1, max_queued=1)
        with fault_scope(_slow("j000001", 10.0)):
            running = manager.submit(CELFPP)["id"]
            # The drive loop must promote the first job out of the queue
            # before it can occupy the running slot; submitting the second
            # job earlier would hit the queue bound instead of filling it.
            wait_state(manager, running, "running")
            queued = manager.submit({"model": "greedy_tc", "k": 2})["id"]
            with pytest.raises(JobQueueFull):
                manager.submit({"model": "greedy_tc", "k": 3})
            manager.cancel(queued)
            manager.cancel(running)
        wait_terminal(manager, running)
        wait_drained(manager)

    def test_bad_payload_rejected_before_admission(self, manager_factory):
        from repro.serve.errors import BadRequest

        manager = manager_factory()
        with pytest.raises(BadRequest):
            manager.submit({"model": "nope", "k": 3})
        with pytest.raises(BadRequest):
            manager.submit({"model": "celfpp", "k": 0})
        with pytest.raises(BadRequest):
            manager.submit({"model": "celfpp"})
        assert manager.healthz()["queued"] == 0


class TestRecovery:
    def test_restart_reenqueues_unfinished_jobs(self, manager_factory, tmp_path, index):
        jobs_dir = tmp_path / "recover"
        manager = manager_factory(jobs_dir=jobs_dir, max_running=1)
        with fault_scope(_slow("j000001", 30.0)):
            stuck = manager.submit(CELFPP)["id"]
            queued = manager.submit({"model": "greedy_tc", "k": 3})["id"]
            manager.stop(timeout=0.2)
        # A fresh manager over the same directory adopts both jobs and
        # finishes them with the exact uninterrupted-reference results.
        reborn = manager_factory(jobs_dir=jobs_dir, max_running=2)
        assert wait_terminal(reborn, stuck)["state"] == "done"
        assert wait_terminal(reborn, queued)["state"] == "done"
        ref = run_to_completion(
            JobSpec.from_payload(CELFPP, index.num_nodes), index
        )
        assert reborn.result(stuck)["result"]["seeds"] == ref["seeds"]
        wait_drained(reborn)

    def test_retryable_failures_back_off_then_give_up(self, manager_factory):
        plan = [
            FaultSpec(
                site="jobs.step",
                kind="error",
                key="j000001",
                attempts=(0, 1, 2, 3),
            )
        ]
        manager = manager_factory(max_retries=2)
        with fault_scope(plan):
            job_id = manager.submit(CELFPP)["id"]
            final = wait_terminal(manager, job_id)
        assert final["state"] == "failed-permanent"
        assert final["attempts"] == 3  # initial + 2 retries
        assert "gave up" in final["error"]
        wait_drained(manager)

    def test_transient_failure_recovers(self, manager_factory, index):
        plan = [
            FaultSpec(site="jobs.step", kind="error", key="j000001", attempts=(0,))
        ]
        manager = manager_factory(max_retries=3)
        with fault_scope(plan):
            job_id = manager.submit(CELFPP)["id"]
            final = wait_terminal(manager, job_id)
        assert final["state"] == "done"
        assert final["attempts"] == 2
        ref = run_to_completion(
            JobSpec.from_payload(CELFPP, index.num_nodes), index
        )
        assert manager.result(job_id)["result"]["seeds"] == ref["seeds"]

    def test_journal_reflects_manager_view(self, manager_factory, tmp_path):
        jobs_dir = tmp_path / "mirror"
        manager = manager_factory(jobs_dir=jobs_dir)
        job_id = manager.submit(CELFPP)["id"]
        final = wait_terminal(manager, job_id)
        records = JobJournal(jobs_dir / job_id).replay()
        view = summarize(records)
        assert view["state"] == final["state"] == "done"
        assert view["steps"] == final["steps"]
