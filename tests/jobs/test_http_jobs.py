"""HTTP surface of the job service: the happy path, and fuzzing every
/jobs route with malformed input.

Fuzz contract (mirrors ``tests/serve/test_fuzz.py``): no input — however
wrong — produces a traceback, a hung connection or a bare 500; everything
maps to the clean ``{"error": {"status": ..., "message": ...}}`` shape.
"""

from __future__ import annotations

import json

import pytest

from tests.jobs.conftest import wait_terminal
from tests.serve.test_fuzz import assert_clean_json_error

CELFPP = {"model": "celfpp", "k": 4}


def _submit(server, payload):
    return server.request("/jobs/infmax", method="POST", body=payload)


class TestHappyPath:
    def test_submit_status_result_lifecycle(self, jobs_server):
        status, _, body = _submit(jobs_server, CELFPP)
        assert status == 202
        view = json.loads(body)
        job_id = view["id"]
        assert view["state"] == "queued"
        assert view["model"] == "celfpp"

        final = wait_terminal(jobs_server.manager, job_id)
        assert final["state"] == "done"

        status, _, body = jobs_server.request(f"/jobs/{job_id}")
        assert status == 200
        assert json.loads(body)["state"] == "done"

        status, _, body = jobs_server.request(f"/jobs/{job_id}/result")
        assert status == 200
        result = json.loads(body)["result"]
        assert len(result["seeds"]) == 4

        status, _, body = jobs_server.request("/jobs")
        assert status == 200
        listing = json.loads(body)
        assert listing["count"] >= 1
        assert any(row["id"] == job_id for row in listing["jobs"])

    def test_deduplicated_submit_is_200(self, jobs_server):
        payload = {**CELFPP, "idempotency_key": "http-dedup"}
        status, _, body = _submit(jobs_server, payload)
        assert status == 202
        job_id = json.loads(body)["id"]
        status, _, body = _submit(jobs_server, payload)
        assert status == 200
        again = json.loads(body)
        assert again["id"] == job_id
        assert again["deduplicated"] is True
        wait_terminal(jobs_server.manager, job_id)

    def test_cancel_roundtrip(self, jobs_server):
        status, _, body = _submit(jobs_server, {"model": "greedy_tc", "k": 3})
        job_id = json.loads(body)["id"]
        status, _, body = jobs_server.request(
            f"/jobs/{job_id}/cancel", method="POST"
        )
        assert status == 200
        assert json.loads(body)["state"] in ("cancelled", "running", "done")
        wait_terminal(jobs_server.manager, job_id)

    def test_jobs_metrics_exported(self, jobs_server):
        status, _, body = _submit(jobs_server, {"model": "greedy_tc", "k": 2})
        job_id = json.loads(body)["id"]
        wait_terminal(jobs_server.manager, job_id)
        status, _, body = jobs_server.request("/metrics")
        assert status == 200
        text = body.decode()
        assert "repro_jobs_total" in text
        assert "repro_jobs_running" in text

    def test_healthz_includes_jobs_section(self, jobs_server):
        status, _, body = jobs_server.request("/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["jobs"]["mode"] == "thread"
        assert "queued" in payload["jobs"]


class TestSubmitFuzz:
    @pytest.mark.parametrize(
        "payload",
        [
            [],                                   # not an object
            "celfpp",                             # not an object
            42,                                   # not an object
            {},                                   # no model/k
            {"model": "celfpp"},                  # no k
            {"k": 3},                             # no model
            {"model": "nope", "k": 3},            # unknown model
            {"model": "celfpp", "k": 0},          # k too small
            {"model": "celfpp", "k": -1},
            {"model": "celfpp", "k": "x"},
            {"model": "celfpp", "k": True},       # bool is not an int here
            {"model": "celfpp", "k": 1.5},
            {"model": "celfpp", "k": 10**9},      # k > num_nodes
            {"model": "celfpp", "k": 3, "bogus": 1},        # unknown field
            {"model": "cost_aware", "k": 3},                # budget missing
            {"model": "cost_aware", "k": 3, "budget": -1},
            {"model": "celfpp", "k": 3, "node_costs": [1]}, # not an object
            {"model": "celfpp", "k": 3, "node_costs": {"x": 1}},
            {"model": "celfpp", "k": 3, "node_costs": {"0": -2}},
            {"model": "ris", "k": 3, "num_rr_sets": 0},
            {"model": "ris", "k": 3, "num_rr_sets": 10**9},
            {"model": "ris", "k": 3, "rr_seed": -1},
            {"model": "celfpp", "k": 3, "deadline": -5},
            {"model": "celfpp", "k": 3, "max_cost": -1},
        ],
    )
    def test_bad_payloads_are_400(self, jobs_server, payload):
        status, _, body = _submit(jobs_server, payload)
        assert_clean_json_error(status, body, 400)

    @pytest.mark.parametrize(
        "key",
        [
            "has spaces",
            "",
            "x" * 129,
            "semi;colon",
            "slash/inside",
            123,
            True,
            ["k"],
        ],
    )
    def test_bad_idempotency_keys_are_400(self, jobs_server, key):
        status, _, body = _submit(
            jobs_server, {**CELFPP, "idempotency_key": key}
        )
        assert_clean_json_error(status, body, 400)

    def test_missing_body_is_400(self, jobs_server):
        status, _, body = jobs_server.request("/jobs/infmax", method="POST")
        assert_clean_json_error(status, body, 400)

    def test_invalid_json_body_is_400(self, jobs_server):
        response = jobs_server.raw(
            b"POST /jobs/infmax HTTP/1.1\r\n"
            b"Host: x\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: 9\r\n"
            b"\r\n"
            b"{model:[}"
        )
        assert b" 400 " in response.split(b"\r\n", 1)[0]
        assert b'"error"' in response

    def test_declared_oversize_body_is_413(self, jobs_server):
        response = jobs_server.raw(
            b"POST /jobs/infmax HTTP/1.1\r\n"
            b"Host: x\r\n"
            b"Content-Length: 8388608\r\n"
            b"\r\n",
            timeout=10,
        )
        assert b" 413 " in response.split(b"\r\n", 1)[0]


class TestPathFuzz:
    @pytest.mark.parametrize(
        "path",
        [
            "/jobs/j999999",
            "/jobs/j999999/result",
            "/jobs/%2e%2e",
            "/jobs/..%2f..%2fetc%2fpasswd",
            "/jobs/has%20space",
            "/jobs/" + "x" * 200,
        ],
    )
    def test_unknown_or_malformed_ids_are_404(self, jobs_server, path):
        status, _, body = jobs_server.request(path)
        assert_clean_json_error(status, body, 404)

    def test_cancel_unknown_job_is_404(self, jobs_server):
        status, _, body = jobs_server.request(
            "/jobs/j999999/cancel", method="POST"
        )
        assert_clean_json_error(status, body, 404)

    def test_result_of_unfinished_job_is_409(self, jobs_server):
        from repro.runtime.faults import FaultSpec, fault_scope

        plan = [
            FaultSpec(site="jobs.step", kind="sleep", key="j000001", seconds=5.0)
        ]
        with fault_scope(plan):
            status, _, body = _submit(jobs_server, {"model": "celfpp", "k": 3})
            job_id = json.loads(body)["id"]
            status, _, body = jobs_server.request(f"/jobs/{job_id}/result")
            assert_clean_json_error(status, body, 409)
            jobs_server.request(f"/jobs/{job_id}/cancel", method="POST")
        wait_terminal(jobs_server.manager, job_id)

    @pytest.mark.parametrize(
        "method, path",
        [
            ("GET", "/jobs/infmax"),            # submit is POST-only
            ("POST", "/jobs"),                  # list is GET-only
            ("POST", "/jobs/j000001"),          # status is GET-only
            ("POST", "/jobs/j000001/result"),   # result is GET-only
            ("GET", "/jobs/j000001/cancel"),    # cancel is POST-only
            ("GET", "/jobs/j000001/result/extra"),
        ],
    )
    def test_wrong_method_or_depth_is_404(self, jobs_server, method, path):
        kwargs = {"body": {}} if method == "POST" else {}
        status, _, body = jobs_server.request(path, method=method, **kwargs)
        assert_clean_json_error(status, body, 404)

    def test_server_still_healthy_after_fuzzing(self, jobs_server):
        status, _, body = jobs_server.request("/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"


class TestJobsDisabled:
    @pytest.fixture(scope="class")
    def plain_server(self, index):
        from tests.serve.conftest import RunningServer, make_service

        server = RunningServer(make_service(index))
        yield server
        server.close()

    @pytest.mark.parametrize(
        "method, path",
        [
            ("POST", "/jobs/infmax"),
            ("GET", "/jobs"),
            ("GET", "/jobs/j000001"),
            ("GET", "/jobs/j000001/result"),
            ("POST", "/jobs/j000001/cancel"),
        ],
    )
    def test_all_jobs_routes_are_404(self, plain_server, method, path):
        kwargs = {"body": CELFPP} if method == "POST" else {}
        status, _, body = plain_server.request(path, method=method, **kwargs)
        payload = assert_clean_json_error(status, body, 404)
        assert "not enabled" in payload["error"]["message"]
