"""Shared fixtures for the durable-jobs tests: the same small
deterministic index the serving tests use, a manager factory that always
stops its managers, and a jobs-enabled HTTP server."""

from __future__ import annotations

import time

import pytest

from repro.cascades.index import CascadeIndex
from repro.graph.generators import powerlaw_outdegree_digraph
from repro.jobs.manager import TERMINAL_STATES, JobManager
from repro.problearn.assign import assign_fixed
from repro.runtime import locksan


@pytest.fixture(autouse=True)
def _locksan_gate():
    """Fail any jobs test that produced a lock-sanitizer report (inert
    unless the suite runs with ``REPRO_LOCKSAN=1``)."""
    yield
    if locksan.enabled():
        violations = locksan.report()
        locksan.reset()
        assert violations == [], "lock sanitizer violations:\n" + "\n".join(
            violations
        )


@pytest.fixture(scope="session")
def graph():
    base = powerlaw_outdegree_digraph(60, mean_degree=5.0, seed=7)
    return assign_fixed(base, 0.15)


@pytest.fixture(scope="session")
def index(graph):
    return CascadeIndex.build(graph, 8, seed=11)


@pytest.fixture(scope="session")
def index_store_path(index, tmp_path_factory):
    path = tmp_path_factory.mktemp("jobs-index") / "idx"
    index.save(path, format="store")
    return path


def wait_terminal(manager: JobManager, job_id: str, timeout: float = 30.0):
    """Poll until the job settles; returns the final status payload."""
    deadline = time.monotonic() + timeout
    while True:
        view = manager.status(job_id)
        if view["state"] in TERMINAL_STATES:
            return view
        if time.monotonic() >= deadline:
            raise AssertionError(
                f"job {job_id} still {view['state']} after {timeout}s"
            )
        time.sleep(0.02)


def wait_state(
    manager: JobManager, job_id: str, state: str, timeout: float = 30.0
):
    """Poll until the job reaches ``state``; returns the status payload."""
    deadline = time.monotonic() + timeout
    while True:
        view = manager.status(job_id)
        if view["state"] == state:
            return view
        if time.monotonic() >= deadline:
            raise AssertionError(
                f"job {job_id} still {view['state']} after {timeout}s"
            )
        time.sleep(0.02)


def wait_drained(manager: JobManager, timeout: float = 30.0) -> None:
    """Poll until no job is queued or running."""
    deadline = time.monotonic() + timeout
    while True:
        health = manager.healthz()
        if health["queued"] == 0 and health["running"] == 0:
            return
        if time.monotonic() >= deadline:
            raise AssertionError(f"manager never drained: {health}")
        time.sleep(0.02)


@pytest.fixture
def manager_factory(index, tmp_path):
    """Build thread-mode managers over per-test jobs directories."""
    managers = []
    counter = [0]

    def make(**kwargs) -> JobManager:
        counter[0] += 1
        jobs_dir = kwargs.pop("jobs_dir", tmp_path / f"jobs-{counter[0]}")
        kwargs.setdefault("mode", "thread")
        kwargs.setdefault("backoff_base", 0.01)
        kwargs.setdefault("backoff_max", 0.05)
        manager = JobManager(index, jobs_dir, **kwargs)
        managers.append(manager)
        return manager

    yield make
    for manager in managers:
        manager.stop()


@pytest.fixture
def jobs_server(index, tmp_path):
    """A live HTTP server with a thread-mode job manager attached."""
    from tests.serve.conftest import RunningServer, make_service

    service = make_service(index)
    manager = JobManager(
        index,
        tmp_path / "jobs",
        registry=service.registry,
        mode="thread",
        backoff_base=0.01,
        backoff_max=0.05,
    )
    service.attach_jobs(manager)
    server = RunningServer(service)
    server.manager = manager
    yield server
    manager.stop()
    server.close()
