"""Journal durability contract: checksummed lines, torn tails repaired,
true corruption refused."""

from __future__ import annotations

import json

import pytest

from repro.jobs.errors import JobJournalCorrupt
from repro.jobs.journal import (
    JobJournal,
    committed_steps,
    decode_line,
    encode_record,
    summarize,
)

SUBMIT = {
    "type": "submit",
    "job_id": "j000001",
    "spec": {"model": "greedy_tc", "k": 2},
    "submitted_at": 1.0,
    "idempotency_key": None,
    "index_digest": None,
}


def _filled(tmp_path):
    journal = JobJournal(tmp_path / "job")
    journal.append(SUBMIT)
    journal.append({"type": "attempt", "attempt": 0, "at": 2.0})
    journal.append({"type": "step", "iteration": 0, "node": 5, "gain": 3.0, "at": 3.0})
    return journal


class TestRoundtrip:
    def test_append_replay_roundtrip(self, tmp_path):
        journal = _filled(tmp_path)
        records = journal.replay()
        assert [r["type"] for r in records] == ["submit", "attempt", "step"]
        assert records[0]["spec"] == SUBMIT["spec"]

    def test_encode_decode_inverse(self):
        record = {"type": "step", "iteration": 3, "node": 7, "gain": 2.5}
        line = encode_record(record)
        assert line.endswith("\n")
        assert decode_line(line) == record

    def test_decode_rejects_tampered_payload(self):
        line = encode_record({"type": "step", "iteration": 0, "node": 1, "gain": 2.0})
        tampered = line.replace('"node":1', '"node":2')
        assert decode_line(tampered) is None

    def test_committed_steps_sorted_by_iteration(self, tmp_path):
        journal = _filled(tmp_path)
        journal.append({"type": "step", "iteration": 1, "node": 9, "gain": 1.0, "at": 4.0})
        steps = committed_steps(journal.replay())
        assert [s["iteration"] for s in steps] == [0, 1]
        assert [s["node"] for s in steps] == [5, 9]


class TestTornTail:
    def test_unterminated_fragment_is_discarded(self, tmp_path):
        journal = _filled(tmp_path)
        with open(journal.path, "ab") as handle:
            handle.write(b'{"type":"step","iter')
        assert len(journal.replay()) == 3  # tolerant read drops the tail
        records = journal.recover()
        assert len(records) == 3
        # recover() truncated: the journal is appendable and clean again.
        journal.append({"type": "step", "iteration": 1, "node": 9, "gain": 1.0, "at": 4.0})
        assert [r["type"] for r in journal.replay()].count("step") == 2

    def test_valid_json_without_newline_is_still_torn(self, tmp_path):
        # The writer died between write and newline-completion: the commit
        # never finished, even though the fragment happens to checksum.
        journal = _filled(tmp_path)
        line = encode_record({"type": "cancelled", "reason": "x", "at": 5.0})
        with open(journal.path, "ab") as handle:
            handle.write(line.encode()[:-1])  # strip the trailing newline
        records = journal.recover()
        assert [r["type"] for r in records] == ["submit", "attempt", "step"]
        assert summarize(records)["state"] == "running"

    def test_unparseable_terminated_final_line_is_torn(self, tmp_path):
        journal = _filled(tmp_path)
        with open(journal.path, "ab") as handle:
            handle.write(b"garbage garbage\n")
        assert len(journal.recover()) == 3

    def test_empty_and_missing_journal(self, tmp_path):
        journal = JobJournal(tmp_path / "nothing")
        assert not journal.exists()
        assert journal.replay() == []
        assert journal.recover() == []


class TestCorruption:
    def test_checksum_mismatch_on_final_line_is_corrupt(self, tmp_path):
        # A *complete* JSON record failing its checksum is corruption
        # (bit rot, manual edit), not a torn write.
        journal = _filled(tmp_path)
        lines = journal.path.read_bytes().splitlines(keepends=True)
        last = json.loads(lines[-1])
        last["node"] = 99  # field changed, checksum kept
        lines[-1] = (json.dumps(last, sort_keys=True) + "\n").encode()
        journal.path.write_bytes(b"".join(lines))
        with pytest.raises(JobJournalCorrupt):
            journal.replay()

    def test_invalid_line_followed_by_valid_records_is_corrupt(self, tmp_path):
        journal = _filled(tmp_path)
        lines = journal.path.read_bytes().splitlines(keepends=True)
        lines[1] = b"garbage\n"
        journal.path.write_bytes(b"".join(lines))
        with pytest.raises(JobJournalCorrupt):
            journal.recover()


class TestSummarize:
    def test_states_progress(self, tmp_path):
        journal = JobJournal(tmp_path / "job")
        journal.append(SUBMIT)
        assert summarize(journal.replay())["state"] == "queued"
        journal.append({"type": "attempt", "attempt": 0, "at": 2.0})
        assert summarize(journal.replay())["state"] == "running"
        journal.append({"type": "failed", "retryable": True, "reason": "boom", "at": 3.0})
        view = summarize(journal.replay())
        assert view["state"] == "failed-retryable"
        assert view["error"] == "boom"
        # A respawned attempt clears the retryable failure.
        journal.append({"type": "attempt", "attempt": 1, "at": 4.0})
        view = summarize(journal.replay())
        assert view["state"] == "running"
        assert view["error"] is None
        assert view["attempts"] == 2
        journal.append(
            {
                "type": "result",
                "seeds": [5],
                "gains": [3.0],
                "coverage": [3.0],
                "estimate": 3.0,
                "at": 5.0,
            }
        )
        view = summarize(journal.replay())
        assert view["state"] == "done"
        assert view["result"]["seeds"] == [5]
        assert view["finished_at"] == 5.0

    def test_cancelled_and_permanent_failure(self, tmp_path):
        journal = JobJournal(tmp_path / "a")
        journal.append(SUBMIT)
        journal.append({"type": "cancelled", "reason": "user", "at": 2.0})
        assert summarize(journal.replay())["state"] == "cancelled"

        other = JobJournal(tmp_path / "b")
        other.append(SUBMIT)
        other.append({"type": "failed", "retryable": False, "reason": "no", "at": 2.0})
        view = summarize(other.replay())
        assert view["state"] == "failed-permanent"
        assert view["finished_at"] == 2.0
