"""Selection-engine contracts: pinned seed sets for every job model,
resume purity (crash/resume bit parity), and parity with the reference
batch algorithms in ``repro.influence``."""

from __future__ import annotations

import pytest

from repro.influence.celfpp import infmax_celfpp
from repro.influence.ris import infmax_ris
from repro.influence.greedy_tc import infmax_tc
from repro.jobs.select import build_selection, run_to_completion
from repro.jobs.spec import JobSpec

# Pinned on the 60-node fixture (seed=7, p=0.15, 8 worlds, seed=11).
PINNED = {
    "greedy_tc": ({"model": "greedy_tc", "k": 6}, [16, 40, 5, 38, 55, 50]),
    "celfpp": ({"model": "celfpp", "k": 6}, [16, 40, 5, 55, 14, 50]),
    "ris": (
        {"model": "ris", "k": 5, "num_rr_sets": 500, "rr_seed": 42},
        [40, 16, 5, 42, 55],
    ),
    "cost_aware": (
        {
            "model": "cost_aware",
            "k": 6,
            "budget": 4.0,
            "node_costs": {"3": 2.5},
        },
        [16, 40, 0, 5],
    ),
    "stability": ({"model": "stability", "k": 6}, [16, 40, 5, 38, 54, 12]),
}


def _spec(payload: dict, index) -> JobSpec:
    return JobSpec.from_payload(payload, index.num_nodes)


@pytest.mark.parametrize("model", sorted(PINNED))
def test_pinned_seed_sets(model, index):
    payload, seeds = PINNED[model]
    result = run_to_completion(_spec(payload, index), index)
    assert result["seeds"] == seeds
    assert len(result["gains"]) == len(result["seeds"])
    assert result["coverage"] == pytest.approx(
        [sum(result["gains"][: i + 1]) for i in range(len(result["gains"]))]
    )


@pytest.mark.parametrize("model", sorted(PINNED))
def test_resume_after_two_steps_is_bit_identical(model, index):
    """The purity contract: replaying a committed prefix into a fresh
    engine yields the exact result of the uninterrupted run."""
    payload, _ = PINNED[model]
    spec = _spec(payload, index)
    reference = run_to_completion(spec, index)

    first = build_selection(spec, index)
    prefix = []
    for _ in range(2):
        record = first.step()
        assert record is not None
        prefix.append({"type": "step", **record})

    resumed = build_selection(spec, index)
    resumed.resume(prefix)
    while resumed.step() is not None:
        pass
    assert resumed.finalize() == reference


@pytest.mark.parametrize("model", sorted(PINNED))
def test_resume_at_every_boundary(model, index):
    """Stronger form: a crash after *any* committed step resumes to the
    same result — the exact guarantee the chaos gate exercises."""
    payload, _ = PINNED[model]
    spec = _spec(payload, index)
    reference = run_to_completion(spec, index)

    full = build_selection(spec, index)
    steps = []
    while True:
        record = full.step()
        if record is None:
            break
        steps.append({"type": "step", **record})

    for cut in range(len(steps) + 1):
        resumed = build_selection(spec, index)
        resumed.resume(steps[:cut])
        while resumed.step() is not None:
            pass
        assert resumed.finalize() == reference, f"diverged resuming at step {cut}"


def test_celfpp_matches_reference_algorithm(index):
    trace = infmax_celfpp(index, 6)
    result = run_to_completion(_spec({"model": "celfpp", "k": 6}, index), index)
    assert result["seeds"] == list(trace.seeds)
    assert result["gains"] == pytest.approx(list(trace.gains))
    assert result["coverage"] == pytest.approx(list(trace.spreads))


def test_ris_matches_reference_algorithm(graph, index):
    reference = infmax_ris(graph, 5, num_rr_sets=500, seed=42)
    payload = {"model": "ris", "k": 5, "num_rr_sets": 500, "rr_seed": 42}
    result = run_to_completion(_spec(payload, index), index)
    assert result["seeds"] == list(reference.seeds)


def test_greedy_tc_matches_reference_algorithm(index):
    trace, _ = infmax_tc(index, 6)
    result = run_to_completion(_spec({"model": "greedy_tc", "k": 6}, index), index)
    assert result["seeds"] == list(trace.selected)
    assert result["coverage"] == pytest.approx(list(trace.coverage))


def test_cost_aware_respects_budget(index):
    payload = {
        "model": "cost_aware",
        "k": 6,
        "budget": 4.0,
        "node_costs": {"3": 2.5},
    }
    result = run_to_completion(_spec(payload, index), index)
    assert result["spent"] <= 4.0
    assert len(result["seeds"]) <= 6
