"""Fleet supervision with real worker processes, and the shard CLI."""

from __future__ import annotations

import json
import os
import signal
import time
import urllib.request

import pytest

from repro.cli import build_parser, main
from repro.runtime.supervisor import SupervisorConfig
from repro.shard.fleet import Fleet, WorkerHandle

FAST_BACKOFF = SupervisorConfig(backoff_base=0.05, backoff_max=0.2)


def _wait_for_address(worker, timeout=30.0) -> str:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        address = worker.address()
        if address is not None:
            return address
        time.sleep(0.05)
    raise AssertionError(f"worker {worker.shard_id} never came up")


def _healthz(address: str) -> dict:
    with urllib.request.urlopen(address + "/healthz", timeout=10) as response:
        return json.loads(response.read())


class TestWorkerHandle:
    def test_spawns_serves_and_reports_shard_id(self, fleet_dir, partition):
        worker = WorkerHandle(
            1,
            fleet_dir / partition.shards[1].dir,
            config=FAST_BACKOFF,
            on_event=lambda line: None,
        )
        worker.start()
        try:
            address = _wait_for_address(worker)
            payload = _healthz(address)
            assert payload["shard_id"] == 1
            assert payload["store_generation"] == 1
        finally:
            worker.stop()
        assert worker.address() is None

    def test_respawns_after_sigkill(self, fleet_dir, partition):
        worker = WorkerHandle(
            0,
            fleet_dir / partition.shards[0].dir,
            config=FAST_BACKOFF,
            on_event=lambda line: None,
        )
        worker.start()
        try:
            _wait_for_address(worker)
            first_pid = worker.pid()
            os.kill(first_pid, signal.SIGKILL)
            # The supervisor notices the exit, clears the address, and
            # respawns after its deterministic backoff.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if worker.pid() not in (None, first_pid) and worker.address():
                    break
                time.sleep(0.05)
            else:
                raise AssertionError("worker was not respawned")
            assert worker.spawns == 2
            assert _healthz(worker.address())["shard_id"] == 0
        finally:
            worker.stop()

    def test_stop_before_banner_terminates_cleanly(self, fleet_dir, partition):
        worker = WorkerHandle(
            2,
            fleet_dir / partition.shards[2].dir,
            config=FAST_BACKOFF,
            on_event=lambda line: None,
        )
        worker.start()
        worker.stop()
        assert worker.address() is None


class TestFleet:
    def test_start_waits_for_every_worker(self, fleet_dir):
        fleet = Fleet(
            fleet_dir, config=FAST_BACKOFF, on_event=lambda line: None
        )
        fleet.start(timeout=60.0)
        try:
            seen = set()
            for worker in fleet.workers:
                payload = _healthz(worker.address())
                seen.add(payload["shard_id"])
            assert seen == {0, 1, 2}
        finally:
            fleet.stop()


class TestReplicatedFleet:
    def test_spawns_one_worker_per_replica(self, replica_fleet_dir):
        fleet = Fleet(
            replica_fleet_dir, config=FAST_BACKOFF, on_event=lambda line: None
        )
        assert [len(group) for group in fleet.worker_groups] == [2, 2]
        fleet.start(timeout=60.0)
        try:
            for shard_id, group in enumerate(fleet.worker_groups):
                for replica, worker in enumerate(group):
                    payload = _healthz(worker.address())
                    assert payload["shard_id"] == shard_id
                    assert payload["replica_id"] == replica
        finally:
            fleet.stop()

    def test_worker_argv_carries_replica_id(self, replica_fleet_dir):
        worker = WorkerHandle(
            1, replica_fleet_dir / "shard-01.r1.cidx", replica=1,
            on_event=lambda line: None,
        )
        argv = worker._argv()
        assert argv[argv.index("--replica-id") + 1] == "1"
        assert argv[argv.index("--shard-id") + 1] == "1"

    def test_refuses_topology_mismatch(self, replica_fleet_dir):
        import shutil

        shutil.rmtree(replica_fleet_dir / "shard-00.r1.cidx")
        with pytest.raises(RuntimeError, match="fleet topology mismatch"):
            Fleet(
                replica_fleet_dir,
                config=FAST_BACKOFF,
                on_event=lambda line: None,
            )


class TestShardCLI:
    def test_index_shard_writes_a_fleet(self, store_path, tmp_path, capsys):
        out = tmp_path / "fleet"
        code = main([
            "index", "shard", str(store_path), "--shards", "2",
            "--out", str(out),
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "partitioned" in stdout and "shard 1" in stdout
        assert (out / "partition.json").is_file()
        assert (out / "shard-00.cidx").is_dir()
        assert (out / "shard-01.cidx").is_dir()

    def test_index_shard_refuses_clobber(self, store_path, tmp_path):
        target = tmp_path / "occupied"
        target.mkdir()
        with pytest.raises(SystemExit):
            main([
                "index", "shard", str(store_path), "--shards", "2",
                "--out", str(target),
            ])

    def test_parser_accepts_fleet_flags(self):
        parser = build_parser()
        args = parser.parse_args([
            "serve-fleet", "fleet/", "--port", "0", "--deadline", "2.5",
            "--worker-arg=--cache-size", "--worker-arg=4096",
        ])
        assert args.command == "serve-fleet"
        assert args.worker_args == ["--cache-size", "4096"]
        assert args.hedge_after == 0.0 and args.retry_budget is None
        args = parser.parse_args([
            "serve-fleet", "fleet/", "--hedge-after", "0.05",
            "--retry-budget", "0.3",
        ])
        assert args.hedge_after == 0.05 and args.retry_budget == 0.3
        args = parser.parse_args([
            "serve", "idx/", "--shard-id", "3", "--replica-id", "1",
        ])
        assert args.shard_id == 3 and args.replica_id == 1

    def test_index_shard_replicas_writes_replica_dirs(
        self, store_path, tmp_path, capsys
    ):
        out = tmp_path / "fleet"
        code = main([
            "index", "shard", str(store_path), "--shards", "2",
            "--out", str(out), "--replicas", "2",
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "x 2 replicas" in stdout
        for name in (
            "shard-00.cidx", "shard-00.r1.cidx",
            "shard-01.cidx", "shard-01.r1.cidx",
        ):
            assert (out / name).is_dir()
