"""Router contract tests: byte-parity with single-process serve, verbatim
refusal propagation, per-shard breakers, health aggregation, rolling
reload."""

from __future__ import annotations

import json

import pytest

from repro.runtime.faults import FaultSpec, fault_scope
from repro.shard.partition import partition_store
from repro.shard.router import ShardRouter, StaticEndpoint


class TestByteParity:
    def test_every_sphere_matches_reference(
        self, running_fleet, reference_server, partition
    ):
        fleet = running_fleet()
        for node in range(partition.num_nodes):
            ref_status, _, ref_body = reference_server.request(f"/sphere/{node}")
            status, _, body = fleet.request(f"/sphere/{node}")
            assert (status, body) == (ref_status, ref_body)

    def test_cascades_match_reference(self, running_fleet, reference_server):
        fleet = running_fleet()
        for path in ("/cascades/5", "/cascades/41?world=3", "/cascades/21"):
            ref_status, _, ref_body = reference_server.request(path)
            status, _, body = fleet.request(path)
            assert (status, body) == (ref_status, ref_body)

    def test_scatter_gather_batch_matches_reference(
        self, running_fleet, reference_server, partition
    ):
        fleet = running_fleet()
        # Touch every shard, unordered, so reassembly order is exercised.
        nodes = [41, 0, 59, 20, 7, 39, 55, 13]
        ref_status, _, ref_body = reference_server.request(
            "/spheres", method="POST", body={"nodes": nodes}
        )
        status, _, body = fleet.request(
            "/spheres", method="POST", body={"nodes": nodes}
        )
        assert ref_status == status == 200
        assert body == ref_body

    def test_not_found_matches_reference(self, running_fleet, reference_server):
        fleet = running_fleet()
        for path in ("/sphere/999", "/sphere/-1", "/cascades/999"):
            ref_status, _, ref_body = reference_server.request(path)
            status, _, body = fleet.request(path)
            assert (status, body) == (ref_status, ref_body) == (404, ref_body)

    def test_batch_validation_matches_reference(
        self, running_fleet, reference_server
    ):
        fleet = running_fleet()
        for body in (
            {"nodes": []},
            {"nodes": [3, 3]},
            {"nodes": ["x"]},
            {"nodes": [True]},
            {"wrong": 1},
        ):
            ref_status, _, ref_body = reference_server.request(
                "/spheres", method="POST", body=body
            )
            status, _, resp = fleet.request("/spheres", method="POST", body=body)
            assert (status, resp) == (ref_status, ref_body)


class TestRefusalPropagation:
    """Worker 429/503/504 refusals pass through byte-for-byte, header
    included — a client cannot tell a routed refusal from a direct hit."""

    def _direct_and_routed(self, fleet, node):
        shard = fleet.partition.shard_for_node(node)
        worker = fleet.workers[shard]
        direct = worker.request(f"/sphere/{node}")
        routed = fleet.request(f"/sphere/{node}")
        return direct, routed

    def _assert_verbatim(self, direct, routed, status):
        d_status, d_headers, d_body = direct
        r_status, r_headers, r_body = routed
        assert d_status == r_status == status
        assert r_body == d_body
        assert r_headers.get("Retry-After") == d_headers.get("Retry-After")
        assert r_headers.get("Content-Type") == d_headers.get("Content-Type")

    def test_429_shed_load_verbatim(self, running_fleet):
        # max_inflight=0 sheds every cold compute; no state is cached, so
        # the direct and routed hits produce identical refusals.
        fleet = running_fleet(
            service_kwargs={"max_inflight": 0, "retry_after": 7.5}
        )
        direct, routed = self._direct_and_routed(fleet, 21)
        self._assert_verbatim(direct, routed, 429)
        assert routed[1]["Retry-After"] == "7.5"

    def test_503_breaker_open_verbatim(self, running_fleet):
        # A frozen worker clock makes the breaker's Retry-After hint a
        # constant, so consecutive refusals are byte- and header-identical.
        fleet = running_fleet(
            service_kwargs={
                "breaker_threshold": 1,
                "breaker_reset": 9.0,
                "clock": lambda: 100.0,
            }
        )
        trip = 21
        shard = fleet.partition.shard_for_node(trip)
        probe = next(
            n
            for n in range(
                fleet.partition.shards[shard].lo,
                fleet.partition.shards[shard].hi,
            )
            if n != trip
        )
        with fault_scope([
            FaultSpec(site="serve.compute", kind="error", key=trip)
        ]):
            status, _, _ = fleet.request(f"/sphere/{trip}")
        assert status == 500  # the failure that opens the worker breaker
        direct, routed = self._direct_and_routed(fleet, probe)
        self._assert_verbatim(direct, routed, 503)
        assert routed[1]["Retry-After"] == "9"

    def test_504_deadline_verbatim(self, running_fleet):
        node = 21
        fleet = running_fleet(service_kwargs={"deadline": 0.05})
        with fault_scope([
            FaultSpec(
                site="serve.store_read",
                kind="sleep",
                key=node,
                seconds=0.2,
                attempts=(0, 1),
            )
        ]):
            direct, routed = self._direct_and_routed(fleet, node)
        self._assert_verbatim(direct, routed, 504)
        assert b"deadline exceeded" in routed[2]


class TestRouterFaults:
    def test_pick_fault_is_explicit_500(self, running_fleet):
        fleet = running_fleet()
        with fault_scope([FaultSpec(site="router.pick", kind="error")]):
            status, _, body = fleet.request("/sphere/5")
        assert status == 500
        assert json.loads(body)["error"]["message"] == (
            "internal error (InjectedFault)"
        )

    def test_forward_fault_is_explicit_502(self, running_fleet):
        fleet = running_fleet()
        with fault_scope([FaultSpec(site="router.forward", kind="error")]):
            status, _, body = fleet.request("/sphere/5")
        assert status == 502
        assert json.loads(body)["error"]["status"] == 502

    def test_repeated_forward_faults_open_the_shard_breaker(self, running_fleet):
        fleet = running_fleet(breaker_threshold=2, breaker_reset=60.0)
        shard = fleet.partition.shard_for_node(5)
        plan = [
            FaultSpec(
                site="router.forward", kind="error", key=shard, attempts=(0, 1)
            )
        ]
        with fault_scope(plan):
            assert fleet.request("/sphere/5")[0] == 502
            assert fleet.request("/sphere/5")[0] == 502
        # Breaker is now open: refused without touching the worker, with a
        # Retry-After hint, while the other shards keep serving.
        status, headers, body = fleet.request("/sphere/5")
        assert status == 503
        assert "Retry-After" in headers
        assert b"circuit breaker is open" in body
        assert fleet.router.breaker(shard).state == "open"
        other = fleet.partition.shards[(shard + 1) % 3].lo
        assert fleet.request(f"/sphere/{other}")[0] == 200

    def test_down_worker_is_503_not_a_breaker_failure(self, running_fleet):
        fleet = running_fleet(breaker_threshold=1)
        shard = 1
        fleet.workers[shard]._down = True  # address() -> None, server still up
        node = fleet.partition.shards[shard].lo
        status, headers, body = fleet.request(f"/sphere/{node}")
        assert status == 503
        assert "Retry-After" in headers
        assert b"worker is down" in body
        # An address-less worker is the supervisor's business, not the
        # breaker's: the probe slot was abandoned, not failed.
        assert fleet.router.breaker(shard).state == "closed"


class TestHealthAggregation:
    def test_healthy_fleet(self, running_fleet):
        fleet = running_fleet()
        status, _, body = fleet.request("/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["num_shards"] == 3
        for shard_id, shard in enumerate(payload["shards"]):
            assert shard["shard_id"] == shard_id
            assert shard["status"] == "ok"
            assert shard["store_generation"] == 1
            assert shard["breaker"]["state"] == "closed"
            assert shard["worker"]["shard_id"] == shard_id

    def test_one_shard_down_is_degraded(self, running_fleet):
        fleet = running_fleet()
        fleet.workers[1].kill()
        status, _, body = fleet.request("/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "degraded"
        states = [shard["status"] for shard in payload["shards"]]
        assert states == ["ok", "down", "ok"]
        assert payload["shards"][1]["store_generation"] is None

    def test_all_shards_down_is_503(self, running_fleet):
        fleet = running_fleet()
        for worker in fleet.workers:
            worker.kill()
        status, _, body = fleet.request("/healthz")
        payload = json.loads(body)
        assert status == 503
        assert payload["status"] == "down"

    def test_batch_embeds_down_shard_errors(self, running_fleet):
        fleet = running_fleet()
        fleet.workers[1].kill()
        nodes = [0, 25, 45, 999]
        status, _, body = fleet.request(
            "/spheres", method="POST", body={"nodes": nodes}
        )
        assert status == 200
        results = json.loads(body)["results"]
        assert [entry["node"] for entry in results] == nodes
        assert "members" in results[0] and "members" in results[2]
        assert results[1]["error"]["status"] in (502, 503)
        assert results[3]["error"]["status"] == 404


class TestMetricsAggregation:
    def test_worker_samples_gain_shard_labels(self, running_fleet):
        fleet = running_fleet()
        assert fleet.request("/sphere/5")[0] == 200
        status, headers, body = fleet.request("/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode()
        assert "repro_router_requests_total" in text
        for shard in range(3):
            assert f'shard="{shard}"' in text
        # Merged families keep a single HELP/TYPE header.
        assert text.count("# TYPE repro_serve_requests_total counter") == 1

    def test_breaker_state_gauge_per_shard(self, running_fleet):
        fleet = running_fleet(breaker_threshold=1)
        with fault_scope([
            FaultSpec(site="router.forward", kind="error", key=1)
        ]):
            node = fleet.partition.shards[1].lo
            assert fleet.request(f"/sphere/{node}")[0] == 502
        text = fleet.request("/metrics")[2].decode()
        assert 'repro_router_breaker_state{replica="0",shard="1"} 2' in text
        assert 'repro_router_breaker_state{replica="0",shard="0"} 0' in text


class TestRollingReload:
    def test_reload_rolls_every_shard(self, running_fleet):
        fleet = running_fleet()
        status, _, body = fleet.request("/admin/reload", method="POST", body={})
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "reloaded"
        assert [s["status"] for s in payload["shards"]] == ["reloaded"] * 3
        assert [s["generation"] for s in payload["shards"]] == [2, 2, 2]
        health = json.loads(fleet.request("/healthz")[2])
        assert [s["store_generation"] for s in health["shards"]] == [2, 2, 2]

    def test_requests_keep_succeeding_during_reload(self, running_fleet):
        fleet = running_fleet()
        assert fleet.request("/sphere/5")[0] == 200
        assert fleet.request("/admin/reload", method="POST", body={})[0] == 200
        for node in (5, 25, 45):
            assert fleet.request(f"/sphere/{node}")[0] == 200

    def test_reload_fault_stops_the_roll(self, running_fleet):
        fleet = running_fleet()
        with fault_scope([
            FaultSpec(site="router.reload", kind="error", key=1)
        ]):
            status, _, body = fleet.request(
                "/admin/reload", method="POST", body={}
            )
        payload = json.loads(body)
        assert status == 500
        assert payload["status"] == "partial"
        assert [s["status"] for s in payload["shards"]] == [
            "reloaded", "failed",
        ]
        # Shards past the failure point were never asked to swap.
        health = json.loads(fleet.request("/healthz")[2])
        assert [s["store_generation"] for s in health["shards"]] == [2, 1, 1]

    def test_reload_refuses_to_drop_below_n_minus_1(self, running_fleet):
        fleet = running_fleet()
        fleet.workers[2].kill()
        status, _, body = fleet.request("/admin/reload", method="POST", body={})
        payload = json.loads(body)
        assert status == 500
        assert payload["status"] == "partial"
        assert payload["shards"][0]["status"] == "skipped"
        assert "below N-1" in payload["shards"][0]["error"]
        health = json.loads(fleet.request("/healthz")[2])
        assert health["shards"][0]["store_generation"] == 1


class TestRouterConstruction:
    def test_refuses_world_block_partitions(self, store_path, tmp_path):
        from repro.shard.partition import load_partition

        target = tmp_path / "wb"
        partition_store(store_path, target, 2, by="world-block")
        partition = load_partition(target)
        with pytest.raises(ValueError, match="node-range"):
            ShardRouter(partition, [StaticEndpoint(None)] * 2)

    def test_refuses_mismatched_worker_count(self, partition):
        with pytest.raises(ValueError, match="worker endpoints"):
            ShardRouter(partition, [StaticEndpoint(None)] * 2)

    def test_unknown_route_is_json_404(self, running_fleet):
        fleet = running_fleet()
        status, _, body = fleet.request("/nope")
        assert status == 404
        assert json.loads(body)["error"]["status"] == 404
