"""Fixtures for the sharded-serving tests: a partitioned fleet of
in-thread workers behind a router, plus a single-process reference server
over the unsharded store for byte-parity assertions."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cascades.index import CascadeIndex
from repro.graph.generators import powerlaw_outdegree_digraph
from repro.problearn.assign import assign_fixed
from repro.runtime import locksan
from repro.serve.app import SphereService, make_server
from repro.shard.handlers import make_router_server
from repro.shard.partition import partition_store
from repro.shard.router import ShardRouter, StaticEndpoint

NUM_SHARDS = 3
NUM_REPLICAS = 2
REPLICA_SHARDS = 2


@pytest.fixture(autouse=True)
def _locksan_gate():
    """Fail any shard test that produced a lock-sanitizer report (active
    only under ``REPRO_LOCKSAN=1``, as in the CI concurrency-lint job)."""
    yield
    if locksan.enabled():
        violations = locksan.report()
        locksan.reset()
        assert violations == [], "lock sanitizer violations:\n" + "\n".join(
            violations
        )


@pytest.fixture(scope="session")
def graph():
    base = powerlaw_outdegree_digraph(60, mean_degree=5.0, seed=7)
    return assign_fixed(base, 0.15)


@pytest.fixture(scope="session")
def index(graph):
    return CascadeIndex.build(graph, 8, seed=11)


@pytest.fixture(scope="session")
def store_path(index, tmp_path_factory):
    path = tmp_path_factory.mktemp("shard-src") / "idx"
    index.save(path, format="store")
    return path


@pytest.fixture(scope="session")
def fleet_dir(store_path, tmp_path_factory):
    out = tmp_path_factory.mktemp("shard-fleet") / "fleet"
    partition_store(store_path, out, NUM_SHARDS)
    return out


@pytest.fixture(scope="session")
def partition(fleet_dir):
    from repro.shard.partition import load_partition

    return load_partition(fleet_dir)


@pytest.fixture()
def replica_fleet_dir(store_path, tmp_path):
    """A fresh REPLICA_SHARDS x NUM_REPLICAS fleet per test — repair and
    scrub tests mutate replica directories in place."""
    out = tmp_path / "replica-fleet"
    partition_store(store_path, out, REPLICA_SHARDS, replicas=NUM_REPLICAS)
    return out


@pytest.fixture()
def replica_partition(replica_fleet_dir):
    from repro.shard.partition import load_partition

    return load_partition(replica_fleet_dir)


class HttpEndpoint:
    """A tiny urllib client bound to one base URL."""

    def __init__(self, base: str):
        self.base = base

    def request(self, path: str, *, method: str = "GET", body=None):
        """(status, headers, body_bytes); HTTP errors returned, not raised."""
        data = None
        headers = {}
        if body is not None:
            data = json.dumps(body).encode("ascii")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.base + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=30) as response:
                return response.status, dict(response.headers), response.read()
        except urllib.error.HTTPError as exc:
            return exc.code, dict(exc.headers), exc.read()


class WorkerUnderTest(HttpEndpoint):
    """One in-thread worker server over a shard store directory."""

    def __init__(self, service: SphereService):
        self.service = service
        self.server = make_server(service)
        super().__init__(f"http://127.0.0.1:{self.server.server_address[1]}")
        self._thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self._thread.start()
        self._down = False

    def address(self) -> str | None:
        return None if self._down else self.base

    def kill(self):
        """Simulate a crashed worker: stop serving, report no address."""
        if not self._down:
            self._down = True
            self.server.shutdown()
            self.server.server_close()
            self._thread.join(timeout=10)

    def close(self):
        self.kill()


class RouterUnderTest(HttpEndpoint):
    """A live router server over per-shard in-thread workers."""

    def __init__(self, partition, fleet_path, *, service_kwargs=None,
                 **router_kwargs):
        self.partition = partition
        self.worker_groups = [
            [
                WorkerUnderTest(
                    SphereService(
                        fleet_path / dir_name,
                        shard_id=entry.shard_id,
                        replica_id=replica,
                        **(service_kwargs or {}),
                    )
                )
                for replica, dir_name in enumerate(entry.replica_dirs)
            ]
            for entry in partition.shards
        ]
        self.workers = [w for group in self.worker_groups for w in group]
        router_kwargs.setdefault("fleet_dir", fleet_path)
        self.router = ShardRouter(
            partition, self.worker_groups, **router_kwargs
        )
        self.server = make_router_server(self.router)
        super().__init__(f"http://127.0.0.1:{self.server.server_address[1]}")
        self._thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self._thread.start()

    def worker(self, shard_id: int, replica: int = 0) -> WorkerUnderTest:
        return self.worker_groups[shard_id][replica]

    def close(self):
        self.server.shutdown()
        self.server.server_close()
        self._thread.join(timeout=10)
        for worker in self.workers:
            worker.close()


@pytest.fixture
def running_fleet(partition, fleet_dir):
    fleets = []

    def start(**kwargs) -> RouterUnderTest:
        fleet = RouterUnderTest(partition, fleet_dir, **kwargs)
        fleets.append(fleet)
        return fleet

    yield start
    for fleet in fleets:
        fleet.close()


@pytest.fixture
def running_replica_fleet(replica_partition, replica_fleet_dir):
    """Start REPLICA_SHARDS x NUM_REPLICAS fleets (replicated routing)."""
    fleets = []

    def start(**kwargs) -> RouterUnderTest:
        fleet = RouterUnderTest(
            replica_partition, replica_fleet_dir, **kwargs
        )
        fleets.append(fleet)
        return fleet

    yield start
    for fleet in fleets:
        fleet.close()


@pytest.fixture
def reference_server(store_path):
    """Single-process serve over the unsharded store — the parity oracle."""
    service = SphereService(store_path)
    server = make_server(service)
    endpoint = HttpEndpoint(f"http://127.0.0.1:{server.server_address[1]}")
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield endpoint
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)
