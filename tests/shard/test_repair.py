"""Anti-entropy contract: scrub detects byte divergence against the map's
pinned digests, repair rebuilds a replica verify-then-atomic-rename, and
every failure path leaves the target untouched."""

from __future__ import annotations

import dataclasses
import os
import shutil

import pytest

from repro.cli import main
from repro.runtime.errors import InjectedFault
from repro.runtime.faults import FaultSpec, fault_scope
from repro.shard.fleet import check_fleet_topology
from repro.shard.repair import (
    RepairError,
    repair_replica,
    scrub_fleet,
    scrub_replica,
)
from repro.store.fingerprint import digest_file


def _corrupt_column(fleet_dir, dir_name: str) -> str:
    """Replace one column file with junk via ``os.replace`` (a new inode,
    so hard-linked peer replicas and mmap'd workers keep the old bytes)."""
    store = fleet_dir / dir_name
    column = sorted(store.glob("*.npy"))[0]
    junk = store / "junk.tmp"
    junk.write_bytes(b"these are not the bytes the map pinned")
    os.replace(junk, column)
    return column.name


class TestScrub:
    def test_clean_fleet_scrubs_clean(self, replica_fleet_dir, replica_partition):
        verdicts = scrub_fleet(replica_fleet_dir, replica_partition)
        assert verdicts.ok
        assert len(verdicts.replicas) == 2 * 2
        assert verdicts.divergent == ()

    def test_detects_replaced_column(self, replica_fleet_dir, replica_partition):
        entry = replica_partition.shards[0]
        name = _corrupt_column(replica_fleet_dir, entry.replica_dirs[1])
        verdicts = scrub_fleet(replica_fleet_dir, replica_partition)
        assert not verdicts.ok
        divergent = verdicts.divergent
        assert [(v.shard_id, v.replica) for v in divergent] == [(0, 1)]
        stem = name.removesuffix(".npy")
        assert any(problem.startswith(stem) for problem in divergent[0].problems)
        # The hard-linked peer replica kept the old inode and stays clean.
        assert scrub_replica(replica_fleet_dir, entry, 0).ok

    def test_detects_missing_directory(self, replica_fleet_dir, replica_partition):
        entry = replica_partition.shards[1]
        shutil.rmtree(replica_fleet_dir / entry.replica_dirs[1])
        verdict = scrub_replica(replica_fleet_dir, entry, 1)
        assert not verdict.ok
        assert "missing" in verdict.problems[0]

    def test_v1_map_falls_back_to_header_digests(
        self, replica_fleet_dir, replica_partition
    ):
        # A v1 map carries no column pins; the replica's self-checksummed
        # header is the authority instead.
        entry = dataclasses.replace(
            replica_partition.shards[0], column_digests=()
        )
        assert scrub_replica(replica_fleet_dir, entry, 1).ok
        _corrupt_column(replica_fleet_dir, entry.replica_dirs[1])
        assert not scrub_replica(replica_fleet_dir, entry, 1).ok


class TestRepair:
    def test_rebuilds_replaced_column(self, replica_fleet_dir, replica_partition):
        entry = replica_partition.shards[0]
        name = _corrupt_column(replica_fleet_dir, entry.replica_dirs[1])
        report = repair_replica(replica_fleet_dir, replica_partition, 0, 1)
        assert report.source_replica == 0
        assert name.removesuffix(".npy") in {
            column for column in report.columns
        }
        assert scrub_fleet(replica_fleet_dir, replica_partition).ok
        repaired = replica_fleet_dir / entry.replica_dirs[1] / name
        assert digest_file(repaired) == dict(entry.column_digests)[
            name.removesuffix(".npy")
        ]

    def test_rebuilds_missing_directory(self, replica_fleet_dir, replica_partition):
        entry = replica_partition.shards[1]
        shutil.rmtree(replica_fleet_dir / entry.replica_dirs[0])
        report = repair_replica(replica_fleet_dir, replica_partition, 1, 0)
        assert report.source_replica == 1
        assert scrub_fleet(replica_fleet_dir, replica_partition).ok

    def test_refuses_without_healthy_peer(
        self, replica_fleet_dir, replica_partition
    ):
        entry = replica_partition.shards[0]
        _corrupt_column(replica_fleet_dir, entry.replica_dirs[0])
        _corrupt_column(replica_fleet_dir, entry.replica_dirs[1])
        with pytest.raises(RepairError, match="no healthy peer"):
            repair_replica(replica_fleet_dir, replica_partition, 0, 1)

    def test_explicit_source_must_be_a_valid_peer(
        self, replica_fleet_dir, replica_partition
    ):
        with pytest.raises(RepairError, match="not a peer"):
            repair_replica(
                replica_fleet_dir, replica_partition, 0, 1, source_replica=1
            )
        with pytest.raises(RepairError, match="out of range"):
            repair_replica(replica_fleet_dir, replica_partition, 9, 0)

    def test_copy_fault_discards_staging_and_leaves_target(
        self, replica_fleet_dir, replica_partition
    ):
        entry = replica_partition.shards[0]
        _corrupt_column(replica_fleet_dir, entry.replica_dirs[1])
        before = scrub_replica(replica_fleet_dir, entry, 1)
        with fault_scope([FaultSpec(site="repair.copy", kind="error")]):
            with pytest.raises(InjectedFault):
                repair_replica(replica_fleet_dir, replica_partition, 0, 1)
        assert not (
            replica_fleet_dir / (entry.replica_dirs[1] + ".staging")
        ).exists()
        # Target untouched: still exactly as divergent as before.
        assert scrub_replica(replica_fleet_dir, entry, 1) == before

    def test_commit_fault_leaves_old_directory_in_place(
        self, replica_fleet_dir, replica_partition
    ):
        entry = replica_partition.shards[0]
        _corrupt_column(replica_fleet_dir, entry.replica_dirs[1])
        before = scrub_replica(replica_fleet_dir, entry, 1)
        with fault_scope([
            FaultSpec(site="repair.commit", kind="error", key="0/1")
        ]):
            with pytest.raises(InjectedFault):
                repair_replica(replica_fleet_dir, replica_partition, 0, 1)
        assert scrub_replica(replica_fleet_dir, entry, 1) == before
        # A retry with the fault disarmed completes the rebuild.
        repair_replica(replica_fleet_dir, replica_partition, 0, 1)
        assert scrub_fleet(replica_fleet_dir, replica_partition).ok


class TestTopologyCheck:
    def test_missing_replica_refuses_fleet_start(
        self, replica_fleet_dir, replica_partition
    ):
        entry = replica_partition.shards[0]
        shutil.rmtree(replica_fleet_dir / entry.replica_dirs[1])
        with pytest.raises(RuntimeError, match="fleet topology mismatch"):
            check_fleet_topology(replica_fleet_dir, replica_partition)
        with pytest.raises(RuntimeError, match="repro shard repair"):
            check_fleet_topology(replica_fleet_dir, replica_partition)

    def test_clean_fleet_passes(self, replica_fleet_dir, replica_partition):
        check_fleet_topology(replica_fleet_dir, replica_partition)


class TestShardCLI:
    def test_scrub_clean_exits_zero(self, replica_fleet_dir, capsys):
        assert main(["shard", "scrub", str(replica_fleet_dir)]) == 0
        assert "every replica matches" in capsys.readouterr().out

    def test_scrub_divergence_exits_two_then_repair_restores(
        self, replica_fleet_dir, replica_partition, capsys
    ):
        entry = replica_partition.shards[0]
        _corrupt_column(replica_fleet_dir, entry.replica_dirs[1])
        with pytest.raises(SystemExit) as excinfo:
            main(["shard", "scrub", str(replica_fleet_dir)])
        assert excinfo.value.code == 2
        assert "DIVERGENT" in capsys.readouterr().out
        assert main([
            "shard", "repair", str(replica_fleet_dir),
            "--shard", "0", "--replica", "1",
        ]) == 0
        assert "rebuilt shard 0 replica 1" in capsys.readouterr().out
        assert main(["shard", "scrub", str(replica_fleet_dir), "--json"]) == 0
        assert '"ok":true' in capsys.readouterr().out.replace(" ", "")

    def test_repair_without_peer_exits_with_message(
        self, replica_fleet_dir, replica_partition, capsys
    ):
        entry = replica_partition.shards[0]
        _corrupt_column(replica_fleet_dir, entry.replica_dirs[0])
        _corrupt_column(replica_fleet_dir, entry.replica_dirs[1])
        with pytest.raises(SystemExit, match="no healthy peer"):
            main([
                "shard", "repair", str(replica_fleet_dir),
                "--shard", "0", "--replica", "1",
            ])
