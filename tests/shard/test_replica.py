"""Replicated routing contract: health-aware replica selection, transparent
failover under a retry budget, hedged reads, replica-aware health/metrics
aggregation, quorum-preserving rolling reloads, and the live scrub/repair
admin surface."""

from __future__ import annotations

import json
import os

import pytest

from repro.runtime.faults import FaultSpec, fault_scope
from repro.shard.router import RetryBudget


def _corrupt_column(fleet_dir, dir_name: str) -> str:
    """os.replace one column with junk (new inode: peers and any mmap'd
    worker keep the old healthy bytes — exactly the scrub scenario)."""
    store = fleet_dir / dir_name
    column = sorted(store.glob("*.npy"))[0]
    junk = store / "junk.tmp"
    junk.write_bytes(b"divergent bytes")
    os.replace(junk, column)
    return column.name


class TestRetryBudget:
    def test_starts_at_burst_and_spends_whole_tokens(self):
        budget = RetryBudget(0.2, 2.0)
        assert budget.tokens() == 2.0
        assert budget.try_spend() and budget.try_spend()
        assert not budget.try_spend()

    def test_deposits_accrue_at_ratio_capped_at_burst(self):
        budget = RetryBudget(0.5, 1.0)
        assert budget.try_spend()
        assert not budget.try_spend()
        budget.deposit()
        assert budget.tokens() == 0.5
        for _ in range(10):
            budget.deposit()
        assert budget.tokens() == 1.0
        assert budget.try_spend()

    def test_rejects_negative_parameters(self):
        with pytest.raises(ValueError):
            RetryBudget(-0.1, 1.0)
        with pytest.raises(ValueError):
            RetryBudget(0.1, -1.0)


class TestReplicaSelection:
    def test_prefers_lower_replica_id_when_equal(self, running_replica_fleet):
        fleet = running_replica_fleet()
        order = fleet.router.replica_order(0)
        assert [r.replica_id for r in order] == [0, 1]

    def test_down_replica_sorts_last(self, running_replica_fleet):
        fleet = running_replica_fleet()
        fleet.worker(0, 0).kill()
        order = fleet.router.replica_order(0)
        assert [r.replica_id for r in order] == [1, 0]

    def test_quarantined_replica_leaves_rotation(self, running_replica_fleet):
        fleet = running_replica_fleet()
        fleet.router.replica_state(0, 0).set_quarantined(True)
        order = fleet.router.replica_order(0)
        assert [r.replica_id for r in order] == [1]


class TestFailover:
    def test_transparent_failover_on_transport_error(
        self, running_replica_fleet, reference_server, replica_partition
    ):
        fleet = running_replica_fleet()
        node = replica_partition.shards[0].lo
        with fault_scope([
            FaultSpec(site="router.forward", kind="error", key="0/0")
        ]):
            status, _, body = fleet.request(f"/sphere/{node}")
        assert status == 200
        assert body == reference_server.request(f"/sphere/{node}")[2]
        text = fleet.request("/metrics")[2].decode()
        assert 'repro_router_failovers_total{shard="0"} 1' in text
        assert (
            'repro_router_forward_failures_total'
            '{kind="injected",replica="0",shard="0"} 1'
        ) in text

    def test_down_replica_needs_no_failover(
        self, running_replica_fleet, reference_server, replica_partition
    ):
        fleet = running_replica_fleet()
        fleet.worker(0, 0).kill()
        node = replica_partition.shards[0].lo
        status, _, body = fleet.request(f"/sphere/{node}")
        assert status == 200
        assert body == reference_server.request(f"/sphere/{node}")[2]
        text = fleet.request("/metrics")[2].decode()
        # Selection already preferred the live replica: no retry spent.
        assert 'repro_router_failovers_total{shard="0"}' not in text

    def test_all_replicas_down_is_a_clean_503(
        self, running_replica_fleet, replica_partition
    ):
        fleet = running_replica_fleet()
        fleet.worker(0, 0).kill()
        fleet.worker(0, 1).kill()
        node = replica_partition.shards[0].lo
        status, headers, _ = fleet.request(f"/sphere/{node}")
        assert status == 503
        assert "Retry-After" in headers
        # The other shard keeps serving its range.
        assert fleet.request(f"/sphere/{replica_partition.shards[1].lo}")[0] == 200

    def test_exhausted_budget_suppresses_failover(
        self, running_replica_fleet, replica_partition
    ):
        fleet = running_replica_fleet(retry_budget_burst=0.0)
        node = replica_partition.shards[0].lo
        with fault_scope([
            FaultSpec(site="router.forward", kind="error", key="0/0")
        ]):
            status, _, _ = fleet.request(f"/sphere/{node}")
        assert status == 502
        text = fleet.request("/metrics")[2].decode()
        assert 'repro_router_retry_budget_exhausted_total{shard="0"} 1' in text

    def test_batches_fail_over_too(
        self, running_replica_fleet, reference_server, replica_partition
    ):
        fleet = running_replica_fleet()
        nodes = [replica_partition.shards[0].lo, replica_partition.shards[1].lo]
        with fault_scope([
            FaultSpec(site="router.forward", kind="error", key="0/0")
        ]):
            status, _, body = fleet.request(
                "/spheres", method="POST", body={"nodes": nodes}
            )
        assert status == 200
        ref = reference_server.request(
            "/spheres", method="POST", body={"nodes": nodes}
        )[2]
        assert body == ref

    def test_replica_pick_fault_is_an_explicit_500(
        self, running_replica_fleet, replica_partition
    ):
        fleet = running_replica_fleet()
        node = replica_partition.shards[0].lo
        with fault_scope([
            FaultSpec(site="router.replica_pick", kind="error", key=0)
        ]):
            status, _, body = fleet.request(f"/sphere/{node}")
        assert status == 500
        assert json.loads(body)["error"]["status"] == 500


class TestHedgedReads:
    def test_hedge_wins_when_primary_stalls(
        self, running_replica_fleet, reference_server, replica_partition
    ):
        fleet = running_replica_fleet(hedge_after=0.05)
        node = replica_partition.shards[0].lo
        with fault_scope([
            FaultSpec(
                site="router.forward", kind="sleep", key="0/0", seconds=2.0
            )
        ]):
            status, _, body = fleet.request(f"/sphere/{node}")
        assert status == 200
        assert body == reference_server.request(f"/sphere/{node}")[2]
        text = fleet.request("/metrics")[2].decode()
        assert 'repro_router_hedges_total{shard="0"} 1' in text

    def test_hedge_fault_abandons_hedge_primary_still_answers(
        self, running_replica_fleet, replica_partition
    ):
        fleet = running_replica_fleet(hedge_after=0.05)
        node = replica_partition.shards[0].lo
        with fault_scope([
            FaultSpec(
                site="router.forward", kind="sleep", key="0/0", seconds=0.3
            ),
            FaultSpec(site="router.hedge", kind="error", key=0),
        ]):
            status, _, _ = fleet.request(f"/sphere/{node}")
        assert status == 200
        text = fleet.request("/metrics")[2].decode()
        assert 'repro_router_hedges_total{shard="0"}' not in text

    def test_no_hedge_without_budget(
        self, running_replica_fleet, replica_partition
    ):
        fleet = running_replica_fleet(
            hedge_after=0.05, retry_budget_burst=0.0
        )
        node = replica_partition.shards[0].lo
        with fault_scope([
            FaultSpec(
                site="router.forward", kind="sleep", key="0/0", seconds=0.3
            )
        ]):
            status, _, _ = fleet.request(f"/sphere/{node}")
        assert status == 200
        text = fleet.request("/metrics")[2].decode()
        assert 'repro_router_hedges_total{shard="0"}' not in text
        assert 'repro_router_retry_budget_exhausted_total{shard="0"} 1' in text


class TestReplicaHealth:
    def test_full_replication_reports_ok(self, running_replica_fleet):
        fleet = running_replica_fleet()
        status, _, body = fleet.request("/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["replicas"] == 2
        for shard in payload["shards"]:
            assert shard["replicas_total"] == 2
            assert shard["replicas_healthy"] == 2
            assert [r["replica_id"] for r in shard["replicas"]] == [0, 1]
            assert all(r["status"] == "ok" for r in shard["replicas"])
            # v1-compatible roll-up fields survive replication.
            assert shard["breaker"]["state"] == "closed"
            assert shard["store_generation"] == 1
            assert shard["worker"]["status"] == "ok"

    def test_replica_down_degrades_shard_and_fleet(self, running_replica_fleet):
        fleet = running_replica_fleet()
        fleet.worker(1, 1).kill()
        status, _, body = fleet.request("/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "degraded"
        shard = payload["shards"][1]
        assert shard["status"] == "degraded"
        assert shard["replicas_healthy"] == 1
        down = shard["replicas"][1]
        assert down["status"] == "down" and "error" in down
        assert payload["shards"][0]["status"] == "ok"

    def test_down_only_when_every_shard_is_down(self, running_replica_fleet):
        fleet = running_replica_fleet()
        for worker in fleet.workers:
            worker.kill()
        status, _, body = fleet.request("/healthz")
        assert status == 503
        assert json.loads(body)["status"] == "down"

    def test_worker_metrics_carry_replica_labels(self, running_replica_fleet):
        fleet = running_replica_fleet()
        text = fleet.request("/metrics")[2].decode()
        assert 'replica="0",shard="0"' in text
        assert 'replica="1",shard="1"' in text


class TestRollingReloadQuorum:
    def test_reload_rolls_every_replica(self, running_replica_fleet):
        fleet = running_replica_fleet()
        status, _, body = fleet.request("/admin/reload", method="POST", body={})
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "reloaded"
        for shard in payload["shards"]:
            assert shard["generation"] == 2
            assert [r["status"] for r in shard["replicas"]] == [
                "reloaded", "reloaded",
            ]

    def test_reload_refuses_to_drop_range_below_quorum(
        self, running_replica_fleet
    ):
        fleet = running_replica_fleet()
        fleet.worker(0, 1).kill()
        status, _, body = fleet.request("/admin/reload", method="POST", body={})
        payload = json.loads(body)
        assert status == 500
        assert payload["status"] == "partial"
        skipped = payload["shards"][0]
        assert skipped["status"] == "skipped"
        assert "quorum" in skipped["error"]
        # The roll stopped before touching anything: every serving worker
        # still runs generation 1.
        health = json.loads(fleet.request("/healthz")[2])
        assert all(
            shard["store_generation"] == 1 for shard in health["shards"]
        )

    def test_failed_replica_reload_stops_without_touching_peers(
        self, running_replica_fleet
    ):
        fleet = running_replica_fleet()
        with fault_scope([
            FaultSpec(site="router.reload", kind="error", key=0)
        ]):
            status, _, body = fleet.request(
                "/admin/reload", method="POST", body={}
            )
        payload = json.loads(body)
        assert status == 500
        assert payload["status"] == "partial"
        assert payload["shards"][0]["status"] == "failed"
        assert len(payload["shards"]) == 1 or (
            payload["shards"][1]["replicas"] == []
        )
        health = json.loads(fleet.request("/healthz")[2])
        assert health["status"] == "ok"
        assert all(
            shard["store_generation"] == 1 for shard in health["shards"]
        )


class TestScrubAndRepairAdmin:
    def test_scrub_clean_quarantines_nothing(self, running_replica_fleet):
        fleet = running_replica_fleet()
        status, _, body = fleet.request("/admin/scrub", method="POST", body={})
        payload = json.loads(body)
        assert status == 200
        assert payload["ok"] is True
        assert payload["quarantined"] == []

    def test_scrub_quarantine_repair_lifecycle(
        self, running_replica_fleet, reference_server, replica_fleet_dir,
        replica_partition,
    ):
        fleet = running_replica_fleet()
        entry = replica_partition.shards[0]
        node = entry.lo
        _corrupt_column(replica_fleet_dir, entry.replica_dirs[1])

        status, _, body = fleet.request("/admin/scrub", method="POST", body={})
        payload = json.loads(body)
        assert status == 200 and payload["ok"] is False
        assert [(q["shard_id"], q["replica"]) for q in payload["quarantined"]] \
            == [(0, 1)]

        health = json.loads(fleet.request("/healthz")[2])
        assert health["status"] == "degraded"
        assert health["shards"][0]["replicas"][1]["status"] == "quarantined"

        # Traffic keeps flowing on the verified peer, byte-identical.
        status, _, body = fleet.request(f"/sphere/{node}")
        assert status == 200
        assert body == reference_server.request(f"/sphere/{node}")[2]

        status, _, body = fleet.request(
            "/admin/repair", method="POST", body={"shard": 0, "replica": 1}
        )
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "repaired"
        assert payload["source_replica"] == 0
        # The corruption swapped in a new inode; the worker kept serving
        # the old healthy mmap all along, so no reload was needed.
        assert payload["worker"] == "untouched"

        status, _, body = fleet.request("/admin/scrub", method="POST", body={})
        assert json.loads(body)["ok"] is True
        health = json.loads(fleet.request("/healthz")[2])
        assert health["status"] == "ok"

    def test_every_replica_quarantined_is_an_explicit_503(
        self, running_replica_fleet, replica_fleet_dir, replica_partition
    ):
        fleet = running_replica_fleet()
        entry = replica_partition.shards[0]
        _corrupt_column(replica_fleet_dir, entry.replica_dirs[0])
        _corrupt_column(replica_fleet_dir, entry.replica_dirs[1])
        fleet.request("/admin/scrub", method="POST", body={})
        status, headers, body = fleet.request(f"/sphere/{entry.lo}")
        assert status == 503
        assert "Retry-After" in headers
        assert "quarantined" in json.loads(body)["error"]["message"]
        assert fleet.request(f"/sphere/{replica_partition.shards[1].lo}")[0] == 200

    def test_repair_validates_coordinates(self, running_replica_fleet):
        fleet = running_replica_fleet()
        status, _, _ = fleet.request(
            "/admin/repair", method="POST", body={"shard": 9, "replica": 0}
        )
        assert status == 400
        status, _, _ = fleet.request(
            "/admin/repair", method="POST", body={"shard": 0}
        )
        assert status == 400
        status, _, _ = fleet.request(
            "/admin/repair", method="POST",
            body={"shard": 0, "replica": True},
        )
        assert status == 400

    def test_scrub_without_fleet_dir_is_a_400(self, running_replica_fleet):
        fleet = running_replica_fleet(fleet_dir=None)
        status, _, body = fleet.request("/admin/scrub", method="POST", body={})
        assert status == 400
        assert "offline" in json.loads(body)["error"]["message"]
