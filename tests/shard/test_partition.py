"""Partitioner contract: canonical splits, checksummed map, independent
shard stores that load and answer like the source."""

from __future__ import annotations

import json

import pytest

from repro.cascades.index import CascadeIndex
from repro.shard.partition import (
    PARTITION_NAME,
    PartitionMap,
    load_partition,
    partition_store,
    shard_ranges,
    verify_partition_stores,
)
from repro.store.errors import StoreFormatError, StoreIntegrityError
from repro.store.format import read_header


class TestShardRanges:
    def test_covers_every_unit_exactly_once(self):
        for total in (1, 7, 60, 101):
            for num_shards in (1, 2, 3, total):
                if num_shards > total:
                    continue
                ranges = shard_ranges(total, num_shards)
                units = [u for lo, hi in ranges for u in range(lo, hi)]
                assert units == list(range(total))

    def test_near_equal_sizes(self):
        sizes = [hi - lo for lo, hi in shard_ranges(100, 7)]
        assert max(sizes) - min(sizes) <= 1

    def test_rejects_empty_shards(self):
        with pytest.raises(ValueError, match="empty"):
            shard_ranges(2, 3)
        with pytest.raises(ValueError, match=">= 1"):
            shard_ranges(10, 0)


class TestPartitionStore:
    def test_map_round_trips_and_validates(self, fleet_dir, partition):
        assert partition.mode == "node-range"
        assert partition.num_shards == 3
        assert load_partition(fleet_dir) == partition

    def test_shard_stores_match_recorded_digests(self, fleet_dir, partition):
        verify_partition_stores(fleet_dir, partition)

    def test_each_shard_loads_as_full_index(self, fleet_dir, partition, index):
        for entry in partition.shards:
            shard = CascadeIndex.load(fleet_dir / entry.dir)
            assert shard.num_nodes == index.num_nodes
            assert shard.num_worlds == index.num_worlds

    def test_refuses_existing_non_fleet_dir(self, store_path, tmp_path):
        target = tmp_path / "occupied"
        target.mkdir()
        (target / "precious.txt").write_text("do not clobber")
        with pytest.raises(FileExistsError):
            partition_store(store_path, target, 2)
        with pytest.raises(StoreFormatError, match="not a fleet directory"):
            partition_store(store_path, target, 2, overwrite=True)
        assert (target / "precious.txt").exists()

    def test_overwrite_replaces_a_fleet_dir(self, store_path, tmp_path):
        target = tmp_path / "fleet"
        partition_store(store_path, target, 2)
        replaced = partition_store(store_path, target, 3, overwrite=True)
        assert replaced.num_shards == 3
        assert load_partition(target).num_shards == 3


class TestMapIntegrity:
    def test_tampered_map_is_refused(self, fleet_dir, tmp_path):
        payload = json.loads((fleet_dir / PARTITION_NAME).read_text())
        payload["num_shards"] = 99
        copy = tmp_path / "fleet"
        copy.mkdir()
        (copy / PARTITION_NAME).write_text(json.dumps(payload))
        with pytest.raises(StoreIntegrityError, match="checksum mismatch"):
            load_partition(copy)

    def test_missing_checksum_is_refused(self, fleet_dir, tmp_path):
        payload = json.loads((fleet_dir / PARTITION_NAME).read_text())
        payload.pop("map_checksum")
        copy = tmp_path / "fleet"
        copy.mkdir()
        (copy / PARTITION_NAME).write_text(json.dumps(payload))
        with pytest.raises(StoreIntegrityError, match="missing its checksum"):
            load_partition(copy)

    def test_non_canonical_ranges_are_refused(self, partition):
        shards = list(partition.shards)
        with pytest.raises(StoreIntegrityError, match="canonical split"):
            PartitionMap(
                mode=partition.mode,
                num_shards=partition.num_shards,
                num_nodes=partition.num_nodes + 1,
                num_worlds=partition.num_worlds,
                source_digest=partition.source_digest,
                shards=tuple(shards),
            )

    def test_rebuilt_shard_is_detected(self, store_path, tmp_path, index):
        target = tmp_path / "fleet"
        partition = partition_store(store_path, target, 2)
        # Rebuild shard 1 with a different world count behind the map's back.
        import shutil

        shutil.rmtree(target / partition.shards[1].dir)
        smaller = CascadeIndex(
            index.graph,
            [index.condensation(0)],
            reduced=index.reduced,
            members=[index.world_members(0)],
            node_comp=index.component_matrix[:, :1].copy(),
        )
        smaller.save(target / partition.shards[1].dir, format="store")
        with pytest.raises(StoreIntegrityError, match="rebuilt"):
            verify_partition_stores(target, partition)


class TestReplicatedPartition:
    def test_replicas_share_pinned_digests(
        self, replica_fleet_dir, replica_partition
    ):
        from repro.shard.partition import replica_dir_name
        from repro.store.fingerprint import digest_file

        assert replica_partition.replicas == 2
        for entry in replica_partition.shards:
            assert entry.replica_dirs == (
                replica_dir_name(entry.shard_id, 0),
                replica_dir_name(entry.shard_id, 1),
            )
            assert entry.dir == entry.replica_dirs[0]
            pins = entry.column_digest_map
            assert pins
            for dir_name in entry.replica_dirs:
                store = replica_fleet_dir / dir_name
                header = read_header(store)
                assert header.content_digest == entry.content_digest
                for name, want in pins.items():
                    assert digest_file(store / f"{name}.npy") == want

    def test_v2_map_round_trips(self, replica_fleet_dir, replica_partition):
        raw = json.loads((replica_fleet_dir / PARTITION_NAME).read_text())
        assert raw["format_version"] == 2
        assert raw["replicas"] == 2
        assert load_partition(replica_fleet_dir) == replica_partition
        verify_partition_stores(replica_fleet_dir, replica_partition)

    def test_v1_map_still_loads(self, partition):
        from repro.store.fingerprint import digest_text

        payload = {
            "magic": "repro-partition-map",
            "format_version": 1,
            "mode": partition.mode,
            "num_shards": partition.num_shards,
            "num_nodes": partition.num_nodes,
            "num_worlds": partition.num_worlds,
            "source_digest": partition.source_digest,
            "shards": [
                {
                    "shard_id": e.shard_id,
                    "dir": e.dir,
                    "node_lo": e.lo,
                    "node_hi": e.hi,
                    "content_digest": e.content_digest,
                }
                for e in partition.shards
            ],
        }
        body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        payload["map_checksum"] = digest_text(body)
        loaded = PartitionMap.from_json(json.dumps(payload))
        assert loaded.replicas == 1
        for entry in loaded.shards:
            assert len(entry.replica_dirs) == 1
            assert entry.column_digests == ()

    def test_unknown_version_is_refused(self, fleet_dir):
        payload = json.loads((fleet_dir / PARTITION_NAME).read_text())
        payload["format_version"] = 99
        with pytest.raises(StoreFormatError, match="version"):
            PartitionMap.from_json(json.dumps(payload))

    def test_rejects_replica_count_mismatch(self, partition):
        with pytest.raises(StoreFormatError, match="replica dirs"):
            PartitionMap(
                mode=partition.mode,
                num_shards=partition.num_shards,
                num_nodes=partition.num_nodes,
                num_worlds=partition.num_worlds,
                source_digest=partition.source_digest,
                shards=partition.shards,
                replicas=2,
            )

    def test_world_block_replication(self, store_path, tmp_path):
        target = tmp_path / "wb"
        wb = partition_store(
            store_path, target, 2, by="world-block", replicas=2
        )
        assert wb.replicas == 2
        verify_partition_stores(target, wb)


class TestShardForNode:
    def test_matches_linear_scan(self, partition):
        for node in range(partition.num_nodes):
            owner = partition.shard_for_node(node)
            entry = partition.shards[owner]
            assert entry.lo <= node < entry.hi

    def test_out_of_range_uses_worker_404_message(self, partition):
        with pytest.raises(KeyError) as excinfo:
            partition.shard_for_node(partition.num_nodes)
        # Byte-parity with the worker's own 404 text for the same node.
        assert excinfo.value.args[0] == (
            f"node {partition.num_nodes} not in index "
            f"({partition.num_nodes} nodes)"
        )
        with pytest.raises(KeyError):
            partition.shard_for_node(-1)


class TestWorldBlockMode:
    def test_slices_worlds_into_independent_stores(self, store_path, tmp_path, index):
        target = tmp_path / "wb"
        partition = partition_store(store_path, target, 2, by="world-block")
        assert partition.mode == "world-block"
        total = 0
        for entry in partition.shards:
            shard = CascadeIndex.load(target / entry.dir)
            assert shard.num_nodes == index.num_nodes
            assert shard.num_worlds == entry.hi - entry.lo
            header = read_header(target / entry.dir)
            assert header.content_digest == entry.content_digest
            import numpy as np

            for offset in range(shard.num_worlds):
                ours = list(shard.world_members(offset))
                source = list(index.world_members(entry.lo + offset))
                assert len(ours) == len(source)
                assert all(
                    np.array_equal(a, b) for a, b in zip(ours, source)
                )
            total += shard.num_worlds
        assert total == index.num_worlds

    def test_world_block_cannot_route_nodes(self, store_path, tmp_path):
        target = tmp_path / "wb"
        partition = partition_store(store_path, target, 2, by="world-block")
        with pytest.raises(StoreFormatError, match="cannot route nodes"):
            partition.shard_for_node(0)
