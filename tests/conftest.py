"""Shared fixtures and hypothesis configuration for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.graph.digraph import ProbabilisticDigraph
from repro.graph.generators import figure1_graph, gnp_digraph, path_graph

# Property tests run graph algorithms, which are slow per example; keep the
# example counts moderate and disable the per-example deadline.
settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def fig1() -> ProbabilisticDigraph:
    """The paper's Figure 1 example graph (5 nodes, v5 = node 4)."""
    return figure1_graph()


@pytest.fixture
def diamond() -> ProbabilisticDigraph:
    """0 -> {1, 2} -> 3 with mixed probabilities — a tiny DAG fixture."""
    return ProbabilisticDigraph(
        4,
        [(0, 1, 0.5), (0, 2, 0.8), (1, 3, 0.5), (2, 3, 0.4)],
    )


@pytest.fixture
def two_cycles() -> ProbabilisticDigraph:
    """Two 3-cycles joined by one arc — two SCCs when all arcs are alive."""
    edges = [
        (0, 1, 1.0),
        (1, 2, 1.0),
        (2, 0, 1.0),
        (3, 4, 1.0),
        (4, 5, 1.0),
        (5, 3, 1.0),
        (2, 3, 1.0),
    ]
    return ProbabilisticDigraph(6, edges)


@pytest.fixture
def small_random() -> ProbabilisticDigraph:
    """A 40-node random digraph with heterogeneous probabilities."""
    base = gnp_digraph(40, 0.08, p=1.0, seed=99)
    rng = np.random.default_rng(7)
    probs = rng.uniform(0.05, 0.9, size=base.num_edges)
    return base.with_probabilities(probs)


@pytest.fixture
def line10() -> ProbabilisticDigraph:
    return path_graph(10, p=0.5)
