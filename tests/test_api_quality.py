"""API-quality gates: every public item is documented, importable and
covered by ``__all__`` where one is declared."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.graph",
    "repro.cascades",
    "repro.median",
    "repro.core",
    "repro.influence",
    "repro.problearn",
    "repro.datasets",
    "repro.experiments",
    "repro.utils",
]


def _iter_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                if info.name == "__main__":
                    continue  # executes the CLI on import
                yield importlib.import_module(f"{package_name}.{info.name}")


ALL_MODULES = list(_iter_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module.__name__} lacks a module docstring"
    )


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_functions_and_classes_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its definition site
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
        if inspect.isclass(obj):
            for method_name, method in vars(obj).items():
                if method_name.startswith("_"):
                    continue
                if inspect.isfunction(method) and not (
                    method.__doc__ and method.__doc__.strip()
                ):
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"{module.__name__} has undocumented public items: {undocumented}"
    )


def test_all_exports_resolve():
    for module in ALL_MODULES:
        exported = getattr(module, "__all__", None)
        if exported is None:
            continue
        for name in exported:
            assert hasattr(module, name), f"{module.__name__}.__all__ lists {name}"


def test_top_level_all_is_sorted_sanely():
    # Not alphabetical by policy, but no duplicates.
    assert len(repro.__all__) == len(set(repro.__all__))
