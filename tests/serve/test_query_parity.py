"""CLI/server parity: ``index query --json`` and the HTTP endpoints must
return byte-identical JSON for the same query — both are thin wrappers over
:mod:`repro.serve.query`."""

import json

import pytest

from repro.cli import main

from tests.serve.conftest import WARM_NODES


def cli_json(capsys, *argv) -> bytes:
    assert main(list(argv)) == 0
    # main() prints the document; strip the trailing print() newline.
    return capsys.readouterr().out.rstrip("\n").encode("ascii")


class TestByteParity:
    def test_sphere(self, capsys, index_store_path, running_server):
        server = running_server()
        node = 5
        _, _, http_body = server.request(f"/sphere/{node}")
        cli_body = cli_json(
            capsys, "index", "query", str(index_store_path),
            "--node", str(node), "--sphere", "--json",
        )
        assert cli_body == http_body

    def test_sphere_cold_node(self, capsys, index_store_path, running_server):
        server = running_server()
        node = 33  # beyond the precomputed store: server computes on demand
        _, _, http_body = server.request(f"/sphere/{node}")
        cli_body = cli_json(
            capsys, "index", "query", str(index_store_path),
            "--node", str(node), "--sphere", "--json",
        )
        assert cli_body == http_body

    def test_cascade_stats(self, capsys, index_store_path, running_server):
        server = running_server()
        _, _, http_body = server.request("/cascades/7")
        cli_body = cli_json(
            capsys, "index", "query", str(index_store_path),
            "--node", "7", "--json",
        )
        assert cli_body == http_body

    def test_cascade_world(self, capsys, index_store_path, running_server):
        server = running_server()
        _, _, http_body = server.request("/cascades/7?world=3")
        cli_body = cli_json(
            capsys, "index", "query", str(index_store_path),
            "--node", "7", "--world", "3", "--json",
        )
        assert cli_body == http_body


class TestCliJsonValidation:
    def test_requires_node(self, index_store_path):
        with pytest.raises(SystemExit, match="--node is required"):
            main(["index", "query", str(index_store_path), "--json"])

    def test_rejects_infmax(self, index_store_path):
        with pytest.raises(SystemExit, match="--infmax is not supported"):
            main(["index", "query", str(index_store_path),
                  "--node", "1", "--infmax", "3", "--json"])

    def test_rejects_world_plus_sphere(self, index_store_path):
        with pytest.raises(SystemExit, match="exactly one"):
            main(["index", "query", str(index_store_path), "--node", "1",
                  "--world", "0", "--sphere", "--json"])

    def test_missing_node_exits_with_clear_message(self, index_store_path):
        with pytest.raises(SystemExit, match=r"node 999 not in index"):
            main(["index", "query", str(index_store_path),
                  "--node", "999", "--json"])


class TestTextPathStillWorks:
    def test_text_output_unchanged_shape(self, capsys, index_store_path):
        assert main(["index", "query", str(index_store_path),
                     "--node", "5", "--sphere"]) == 0
        out = capsys.readouterr().out
        assert "cascade sizes of node 5 over 8 worlds" in out
        assert "sphere of node 5" in out

    def test_text_missing_node_clear_error(self, index_store_path):
        with pytest.raises(SystemExit, match=r"node 999 not in index"):
            main(["index", "query", str(index_store_path), "--node", "999"])

    def test_json_is_parseable(self, capsys, index_store_path):
        body = cli_json(capsys, "index", "query", str(index_store_path),
                        "--node", "2", "--json")
        payload = json.loads(body)
        assert payload["node"] == 2
        assert payload["num_worlds"] == 8
