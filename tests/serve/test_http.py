"""End-to-end tests over a real HTTP server on an ephemeral port."""

import json

from repro.serve.query import canonical_json

from tests.serve.conftest import WARM_NODES


def get_json(server, path):
    status, headers, body = server.request(path)
    return status, json.loads(body)


class TestEndpoints:
    def test_healthz(self, running_server):
        server = running_server()
        status, payload = get_json(server, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"

    def test_sphere_warm(self, running_server):
        server = running_server()
        node = WARM_NODES[0]
        status, headers, body = server.request(f"/sphere/{node}")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert body == canonical_json(server.service.sphere(node))
        assert server.service.computes_total.value() == 0

    def test_sphere_cold_then_cached(self, running_server):
        server = running_server()
        status1, _, body1 = server.request("/sphere/30")
        status2, _, body2 = server.request("/sphere/30")
        assert (status1, status2) == (200, 200)
        assert body1 == body2
        assert server.service.computes_total.value() == 1

    def test_cascades_stats_and_world(self, running_server):
        server = running_server()
        status, payload = get_json(server, "/cascades/3")
        assert status == 200
        assert payload["num_worlds"] == 8
        assert len(payload["sizes"]) == 8
        status, world_payload = get_json(server, "/cascades/3?world=2")
        assert status == 200
        assert world_payload["world"] == 2
        assert world_payload["size"] == len(world_payload["members"])

    def test_most_reliable(self, running_server):
        server = running_server()
        status, payload = get_json(server, "/most-reliable?count=3&min-size=1")
        assert status == 200
        assert payload["nodes"] == server.service.spheres.most_reliable(
            3, min_size=1
        )

    def test_batch_post(self, running_server):
        server = running_server()
        nodes = [WARM_NODES[0], WARM_NODES[1], 999]
        status, _, body = server.request(
            "/spheres", method="POST", body={"nodes": nodes}
        )
        assert status == 200
        payload = json.loads(body)
        assert payload["count"] == 3
        assert payload["results"][2]["error"]["status"] == 404


class TestErrors:
    def test_missing_node_is_404_json(self, running_server):
        server = running_server()
        status, _, body = server.request("/sphere/999")
        assert status == 404
        payload = json.loads(body)
        assert payload["error"]["status"] == 404
        assert "not in index (60 nodes)" in payload["error"]["message"]

    def test_non_integer_node_is_400(self, running_server):
        server = running_server()
        status, payload = get_json(server, "/sphere/banana")
        assert status == 400
        assert "integer" in payload["error"]["message"]

    def test_unknown_route_is_404(self, running_server):
        server = running_server()
        status, _, _ = server.request("/nope")
        assert status == 404

    def test_bad_batch_bodies(self, running_server):
        server = running_server()
        status, _, _ = server.request("/spheres", method="POST", body=[1, 2])
        assert status == 400
        status, _, _ = server.request(
            "/spheres", method="POST", body={"nodes": "all"}
        )
        assert status == 400

    def test_world_out_of_range_is_404(self, running_server):
        server = running_server()
        status, _, _ = server.request("/cascades/3?world=99")
        assert status == 404


class TestShedding:
    def test_cold_request_sheds_with_retry_after(self, running_server):
        server = running_server(max_inflight=0, retry_after=1.5)
        # Warm request still succeeds...
        status, _, _ = server.request(f"/sphere/{WARM_NODES[0]}")
        assert status == 200
        # ...while the cold one is shed with the back-off hint.
        status, headers, body = server.request("/sphere/50")
        assert status == 429
        assert headers["Retry-After"] == "1.5"
        payload = json.loads(body)
        assert payload["error"]["status"] == 429
        assert server.service.shed_total.value() == 1


class TestMetricsEndpoint:
    def test_counters_move_and_render(self, running_server):
        server = running_server()
        server.request(f"/sphere/{WARM_NODES[0]}")
        server.request("/sphere/999")
        status, headers, body = server.request("/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode()
        assert (
            'repro_serve_requests_total{endpoint="sphere",status="200"} 1'
            in text
        )
        assert (
            'repro_serve_requests_total{endpoint="sphere",status="404"} 1'
            in text
        )
        assert "repro_serve_store_hits_total 1" in text
        assert "repro_serve_computes_total 0" in text
        assert 'repro_serve_request_seconds_bucket{endpoint="sphere"' in text


class TestGracefulShutdown:
    def test_shutdown_drains_and_socket_closes(self, running_server):
        server = running_server()
        status, _, _ = server.request("/healthz")
        assert status == 200
        server.close()
        import urllib.error
        import urllib.request

        try:
            urllib.request.urlopen(server.base + "/healthz", timeout=2)
            raise AssertionError("server still accepting after close")
        except (urllib.error.URLError, ConnectionError, OSError):
            pass
