"""Unit tests for the bounded thread-safe LRU cache."""

import threading

import pytest

from repro.serve.cache import MISSING, LRUCache


class TestBasics:
    def test_get_put_roundtrip(self):
        cache = LRUCache(4)
        assert cache.get("a") is MISSING
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert len(cache) == 1

    def test_custom_default(self):
        assert LRUCache(4).get("a", default=None) is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            LRUCache(-1)

    def test_zero_capacity_disables(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is MISSING
        assert len(cache) == 0


class TestEviction:
    def test_lru_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert cache.get("b") is MISSING
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_put_refreshes_existing_key(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not insert: no eviction
        assert cache.get("b") == 2
        assert cache.get("a") == 10

    def test_size_never_exceeds_capacity(self):
        cache = LRUCache(3)
        for i in range(50):
            cache.put(i, i)
            assert len(cache) <= 3
        assert cache.stats()["evictions"] == 47


class TestStatsAndCallbacks:
    def test_counters(self):
        cache = LRUCache(1)
        cache.get("a")
        cache.put("a", 1)
        cache.get("a")
        cache.put("b", 2)
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["evictions"] == 1
        assert stats["size"] == 1
        assert stats["capacity"] == 1

    def test_callbacks_fire(self):
        events = []
        cache = LRUCache(
            1,
            on_hit=lambda: events.append("hit"),
            on_miss=lambda: events.append("miss"),
            on_evict=lambda: events.append("evict"),
        )
        cache.get("a")
        cache.put("a", 1)
        cache.get("a")
        cache.put("b", 2)
        assert events == ["miss", "hit", "evict"]


class TestConcurrency:
    def test_hammered_cache_stays_bounded_and_consistent(self):
        cache = LRUCache(8)
        errors = []

        def spin(offset):
            try:
                for i in range(300):
                    key = (offset + i) % 20
                    cache.put(key, key * 2)
                    value = cache.get(key, default=None)
                    # Concurrent eviction may drop it, but never corrupt it.
                    assert value is None or value == key * 2
                    assert len(cache) <= 8
            except AssertionError as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=spin, args=(j,)) for j in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 8
