"""Malformed-input fuzzing of every HTTP endpoint.

The contract: no input — however wrong — produces a traceback, a hung
connection or a non-JSON error page.  Everything maps to a clean 4xx/5xx
JSON document ``{"error": {"status": ..., "message": ...}}``.
"""

import json

import pytest


def assert_clean_json_error(status, body, expected_status=None):
    assert 400 <= status < 600, f"expected an error status, got {status}"
    if expected_status is not None:
        assert status == expected_status
    payload = json.loads(body)
    assert payload["error"]["status"] == status
    message = payload["error"]["message"]
    assert message
    assert "Traceback" not in message
    return payload


@pytest.fixture(scope="module")
def server(index, sphere_store):
    from tests.serve.conftest import RunningServer, make_service

    server = RunningServer(
        make_service(index, spheres=sphere_store, max_batch=8)
    )
    yield server
    server.close()


class TestPathFuzz:
    @pytest.mark.parametrize(
        "path",
        [
            "/sphere/abc",
            "/sphere/1.5",
            "/sphere/0x10",
            "/sphere/%20",
            "/sphere/1e3",
            "/cascades/NaN",
        ],
    )
    def test_non_integer_node_is_400(self, server, path):
        status, _, body = server.request(path)
        assert_clean_json_error(status, body, 400)

    @pytest.mark.parametrize("node", [-1, -999, 10**6, 2**63, 10**30])
    def test_out_of_range_node_is_404(self, server, node):
        status, _, body = server.request(f"/sphere/{node}")
        assert_clean_json_error(status, body, 404)

    @pytest.mark.parametrize(
        "path",
        [
            "/",
            "/nope",
            "/sphere",
            "/sphere/1/extra",
            "/spheres",          # the batch route is POST-only
            "/admin/reload",     # reload is POST-only
            "/metrics/extra",
            "/../etc/passwd",
        ],
    )
    def test_unknown_get_path_is_404(self, server, path):
        status, _, body = server.request(path)
        assert_clean_json_error(status, body, 404)

    @pytest.mark.parametrize("path", ["/sphere/1", "/healthz", "/nope"])
    def test_post_to_get_route_is_404(self, server, path):
        status, _, body = server.request(path, method="POST", body={})
        assert_clean_json_error(status, body, 404)


class TestQueryParamFuzz:
    @pytest.mark.parametrize("world", ["abc", "1.5", "%00"])
    def test_non_integer_world_is_400(self, server, world):
        status, _, body = server.request(f"/cascades/1?world={world}")
        assert_clean_json_error(status, body, 400)

    def test_blank_world_means_absent(self, server):
        # keep_blank_values=False: '?world=' is the same as no parameter.
        status, _, body = server.request("/cascades/1?world=")
        assert status == 200
        assert "num_worlds" in json.loads(body)

    @pytest.mark.parametrize("world", [-1, 8, 10**9, -(2**63)])
    def test_out_of_range_world_is_404(self, server, world):
        status, _, body = server.request(f"/cascades/1?world={world}")
        assert_clean_json_error(status, body, 404)

    @pytest.mark.parametrize(
        "query", ["count=abc", "count=0", "count=-3", "min-size=0", "min-size=x"]
    )
    def test_most_reliable_bad_params_are_400(self, server, query):
        status, _, body = server.request(f"/most-reliable?{query}")
        assert_clean_json_error(status, body, 400)


class TestBatchFuzz:
    def test_missing_body_is_400(self, server):
        status, _, body = server.request("/spheres", method="POST")
        assert_clean_json_error(status, body, 400)

    @pytest.mark.parametrize(
        "payload",
        [
            [],                       # not an object
            "nodes",                  # not an object
            42,                       # not an object
            {},                       # no 'nodes'
            {"nodes": 3},             # not a list
            {"nodes": "1,2,3"},       # not a list
            {"nodes": []},            # empty
            {"nodes": [1.5]},         # float id
            {"nodes": ["1"]},         # string id
            {"nodes": [True]},        # bool id
            {"nodes": [None]},        # null id
            {"nodes": [1, 2, 1]},     # duplicate
            {"nodes": [[1]]},         # nested list
        ],
    )
    def test_bad_batch_shapes_are_400(self, server, payload):
        status, _, body = server.request("/spheres", method="POST", body=payload)
        assert_clean_json_error(status, body, 400)

    def test_oversized_batch_is_413(self, server):
        nodes = list(range(9))  # the module fixture caps max_batch at 8
        status, _, body = server.request(
            "/spheres", method="POST", body={"nodes": nodes}
        )
        assert_clean_json_error(status, body, 413)

    def test_negative_and_huge_ids_embed_404s(self, server):
        status, _, body = server.request(
            "/spheres", method="POST", body={"nodes": [-5, 0, 10**18]}
        )
        assert status == 200
        payload = json.loads(body)
        statuses = [
            entry["error"]["status"] if "error" in entry else 200
            for entry in payload["results"]
        ]
        assert statuses == [404, 200, 404]

    def test_invalid_json_body_is_400(self, server):
        response = server.raw(
            b"POST /spheres HTTP/1.1\r\n"
            b"Host: x\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: 9\r\n"
            b"\r\n"
            b"{nodes:[}"
        )
        assert b" 400 " in response.split(b"\r\n", 1)[0]
        assert b'"error"' in response

    def test_declared_oversize_body_is_413_without_reading(self, server):
        # 8 MiB declared, zero sent: the server must refuse on the header
        # alone instead of waiting for a body that never comes.
        response = server.raw(
            b"POST /spheres HTTP/1.1\r\n"
            b"Host: x\r\n"
            b"Content-Length: 8388608\r\n"
            b"\r\n",
            timeout=10,
        )
        assert b" 413 " in response.split(b"\r\n", 1)[0]

    def test_garbage_content_length_is_400(self, server):
        response = server.raw(
            b"POST /spheres HTTP/1.1\r\n"
            b"Host: x\r\n"
            b"Content-Length: banana\r\n"
            b"\r\n"
        )
        first_line = response.split(b"\r\n", 1)[0]
        assert b" 400 " in first_line


class TestReloadFuzz:
    @pytest.mark.parametrize(
        "payload", [[], "x", {"index": 1}, {"spheres": ["a"]}, {"index": None, "spheres": False}]
    )
    def test_bad_reload_bodies_are_400(self, server, payload):
        status, _, body = server.request(
            "/admin/reload", method="POST", body=payload
        )
        assert_clean_json_error(status, body, 400)

    def test_reload_of_in_memory_service_is_400(self, server):
        status, _, body = server.request("/admin/reload", method="POST")
        assert_clean_json_error(status, body, 400)

    def test_reload_nonexistent_path_is_500_rollback(self, server):
        status, _, body = server.request(
            "/admin/reload", method="POST", body={"index": "/no/such/store"}
        )
        payload = assert_clean_json_error(status, body, 500)
        assert "rolled back" in payload["error"]["message"]


class TestTransportFuzz:
    def test_unsupported_method_is_json_501(self, server):
        status, _, body = server.request("/sphere/1", method="PUT", body={})
        assert_clean_json_error(status, body, 501)

    def test_garbage_request_line_is_clean_error(self, server):
        # An unparseable request line is answered in HTTP/0.9 mode (no
        # status line) — but the body is still our JSON error document.
        response = server.raw(b"\x00\x01\x02 garbage not-http\r\n\r\n")
        assert b"Traceback" not in response
        if response:
            assert b'"error"' in response
            assert b'"status":400' in response.replace(b" ", b"")

    def test_empty_connection_is_tolerated(self, server):
        assert server.raw(b"") == b""

    def test_server_still_healthy_after_fuzzing(self, server):
        status, _, body = server.request("/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"
        status, _, body = server.request("/sphere/1")
        assert status == 200
        assert json.loads(body)["node"] == 1
