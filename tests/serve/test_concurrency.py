"""The concurrency hammer: many threads, mixed hot/cold/missing nodes.

Asserts the serving invariants end to end:

* responses are deterministic — every thread sees byte-identical JSON for
  the same node, equal to a serial reference;
* the coalescer + cache run each cold node's computation exactly once;
* warm (precomputed-store) nodes never touch the computer;
* the LRU cache never exceeds its capacity bound.
"""

import threading
from collections import Counter as TallyCounter

from repro.serve.errors import NodeNotFound
from repro.serve.query import canonical_json

from tests.serve.conftest import WARM_NODES, make_service

HOT = list(WARM_NODES[:4])
COLD = [30, 31, 32, 33, 34, 35]
MISSING = [-3, 60, 777]
NUM_THREADS = 16
ROUNDS = 8


class CountingComputer:
    """Wraps the real computer, tallying compute calls per node."""

    def __init__(self, computer):
        self._computer = computer
        self._lock = threading.Lock()
        self.calls = TallyCounter()

    def compute(self, node):
        with self._lock:
            self.calls[int(node)] += 1
        return self._computer.compute(node)


def test_hammer_mixed_workload(index, computer, sphere_store):
    service = make_service(index, spheres=sphere_store, cache_size=64,
                           max_inflight=NUM_THREADS)
    counting = CountingComputer(computer)
    service._computer = counting

    # Serial reference bodies, computed through a separate service.
    reference_service = make_service(index, spheres=sphere_store)
    reference = {
        node: canonical_json(reference_service.sphere(node))
        for node in HOT + COLD
    }

    start = threading.Barrier(NUM_THREADS)
    failures = []

    def worker(worker_id):
        start.wait(timeout=30)
        # Interleave hot/cold/missing differently per worker, so cold nodes
        # collide across threads while requests stay fully deterministic.
        plan = (HOT + COLD + MISSING) * ROUNDS
        offset = worker_id % len(plan)
        for node in plan[offset:] + plan[:offset]:
            try:
                body = canonical_json(service.sphere(node))
                if body != reference[node]:  # pragma: no cover - failure
                    failures.append((node, "nondeterministic body"))
            except NodeNotFound:
                if node not in MISSING:  # pragma: no cover - failure
                    failures.append((node, "spurious 404"))
            except Exception as exc:  # pragma: no cover - failure path
                failures.append((node, repr(exc)))

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(NUM_THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not failures, failures[:10]

    # Warm nodes never computed; every cold node computed exactly once
    # (the cache is large enough that eviction cannot force a recompute,
    # so any extra call would be a coalescing bug).
    assert all(node not in counting.calls for node in HOT)
    assert {node: counting.calls[node] for node in COLD} == {
        node: 1 for node in COLD
    }
    assert service.computes_total.value() == len(COLD)
    assert service.store_hits_total.value() == (
        NUM_THREADS * ROUNDS * len(HOT)
    )


def test_hammer_small_cache_stays_bounded(index, sphere_store):
    capacity = 4
    service = make_service(index, spheres=None, cache_size=capacity,
                           max_inflight=NUM_THREADS)
    cold_nodes = list(range(36, 48))
    start = threading.Barrier(8)
    over_capacity = []

    def worker(worker_id):
        start.wait(timeout=30)
        for i in range(3 * len(cold_nodes)):
            node = cold_nodes[(worker_id + i) % len(cold_nodes)]
            service.sphere(node)
            if len(service.cache) > capacity:  # pragma: no cover - failure
                over_capacity.append(len(service.cache))

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not over_capacity
    assert len(service.cache) <= capacity
    stats = service.cache.stats()
    assert stats["evictions"] > 0  # the bound actually bit during the run
