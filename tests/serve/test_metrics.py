"""Unit tests for the stdlib metrics registry."""

import threading

import pytest

from repro.serve.metrics import Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x_total", "help")
        assert c.value() == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value() == pytest.approx(3.5)

    def test_labelled_children_are_independent(self):
        c = Counter("x_total", "help")
        c.inc(endpoint="sphere", status="200")
        c.inc(endpoint="sphere", status="404")
        c.inc(endpoint="sphere", status="200")
        assert c.value(endpoint="sphere", status="200") == pytest.approx(2.0)
        assert c.value(endpoint="sphere", status="404") == pytest.approx(1.0)
        assert c.total() == pytest.approx(3.0)

    def test_rejects_decrease(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("x_total", "help").inc(-1)

    def test_render_sorts_label_sets(self):
        c = Counter("x_total", "help")
        c.inc(status="404")
        c.inc(status="200")
        assert list(c.render()) == [
            'x_total{status="200"} 1',
            'x_total{status="404"} 1',
        ]

    def test_concurrent_increments_all_land(self):
        c = Counter("x_total", "help")

        def spin():
            for _ in range(500):
                c.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == pytest.approx(4000.0)


class TestHistogram:
    def test_buckets_are_cumulative(self):
        h = Histogram("lat_seconds", "help", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        lines = list(h.render())
        assert 'lat_seconds_bucket{le="0.1"} 1' in lines
        assert 'lat_seconds_bucket{le="1"} 2' in lines
        assert 'lat_seconds_bucket{le="+Inf"} 3' in lines
        assert "lat_seconds_count 3" in lines

    def test_count_by_labels(self):
        h = Histogram("lat_seconds", "help", buckets=(1.0,))
        h.observe(0.1, endpoint="sphere")
        h.observe(0.2, endpoint="sphere")
        assert h.count(endpoint="sphere") == 2
        assert h.count(endpoint="other") == 0

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram("h", "help", buckets=(1.0, 0.1))


class TestRegistry:
    def test_same_name_returns_same_metric(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total", "h") is reg.counter("a_total", "h")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "h")
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("a_total", "h")

    def test_render_is_sorted_and_typed(self):
        reg = MetricsRegistry()
        reg.counter("b_total", "second").inc()
        reg.counter("a_total", "first")
        text = reg.render()
        assert text.index("a_total") < text.index("b_total")
        assert "# HELP a_total first" in text
        assert "# TYPE b_total counter" in text
        # A registered-but-never-incremented counter still renders a sample.
        assert "\na_total 0\n" in text

    def test_render_is_deterministic(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("r_total", "h").inc(status="200")
            reg.counter("r_total", "h").inc(status="404")
            reg.histogram("l_seconds", "h", buckets=(0.5,)).observe(0.1)
            return reg.render()

        assert build() == build()
