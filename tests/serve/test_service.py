"""Transport-independent tests of :class:`SphereService`."""

import threading

import numpy as np
import pytest

from repro.serve.errors import BadRequest, NodeNotFound, ShedLoad

from tests.serve.conftest import WARM_NODES, make_service


class TestWarmPath:
    def test_precomputed_nodes_never_touch_the_computer(self, index, sphere_store):
        service = make_service(index, spheres=sphere_store)

        def forbidden(node):  # pragma: no cover - failure path
            raise AssertionError("warm path must not compute")

        service._computer.compute = forbidden
        for node in WARM_NODES:
            payload = service.sphere(node)
            assert payload["node"] == node
        assert service.computes_total.value() == 0
        assert service.store_hits_total.value() == len(WARM_NODES)

    def test_store_payload_matches_computed_payload(self, index, sphere_store):
        warm = make_service(index, spheres=sphere_store)
        cold = make_service(index, spheres=None)
        assert warm.sphere(WARM_NODES[0]) == cold.sphere(WARM_NODES[0])


class TestColdPath:
    def test_cold_compute_is_cached(self, index):
        service = make_service(index)
        node = 40
        first = service.sphere(node)
        second = service.sphere(node)
        assert first == second
        assert service.computes_total.value() == 1
        assert service.cache.stats()["hits"] == 1

    def test_cache_disabled_recomputes(self, index):
        service = make_service(index, cache_size=0)
        node = 41
        service.sphere(node)
        service.sphere(node)
        assert service.computes_total.value() == 2

    def test_matches_direct_computer(self, index, computer):
        service = make_service(index)
        node = 42
        expected = computer.compute(node)
        payload = service.sphere(node)
        assert payload["members"] == expected.members.tolist()
        assert payload["cost"] == pytest.approx(expected.cost)


class TestNotFound:
    @pytest.mark.parametrize("node", [-1, 60, 10_000])
    def test_sphere_out_of_range(self, index, node):
        service = make_service(index)
        with pytest.raises(NodeNotFound, match=r"not in index \(60 nodes\)"):
            service.sphere(node)

    def test_cascades_bad_world(self, index):
        service = make_service(index)
        with pytest.raises(NodeNotFound, match=r"world 99 not in index"):
            service.cascades(3, world=99)

    def test_most_reliable_without_store(self, index):
        service = make_service(index, spheres=None)
        with pytest.raises(BadRequest, match="--spheres"):
            service.most_reliable(3)


class TestShedding:
    def test_zero_inflight_sheds_every_cold_compute(self, index, sphere_store):
        service = make_service(index, spheres=sphere_store, max_inflight=0,
                               retry_after=2.5)
        # Warm nodes still served: shedding guards only the compute path.
        assert service.sphere(WARM_NODES[0])["node"] == WARM_NODES[0]
        with pytest.raises(ShedLoad) as excinfo:
            service.sphere(45)
        assert excinfo.value.retry_after == pytest.approx(2.5)
        assert service.shed_total.value() == 1
        assert service.computes_total.value() == 0

    def test_saturated_slots_shed_other_nodes(self, index):
        service = make_service(index, max_inflight=1)
        entered = threading.Event()
        release = threading.Event()
        real_compute = service._computer.compute

        def gated_compute(node):
            entered.set()
            assert release.wait(timeout=10)
            return real_compute(node)

        service._computer.compute = gated_compute
        holder = threading.Thread(target=service.sphere, args=(46,))
        holder.start()
        assert entered.wait(timeout=10)  # node 46 holds the only slot
        try:
            with pytest.raises(ShedLoad):
                service.sphere(47)
        finally:
            release.set()
            holder.join(timeout=10)
        # After the slot frees up, node 47 computes fine.
        service._computer.compute = real_compute
        assert service.sphere(47)["node"] == 47


class TestBatch:
    def test_mixed_batch_embeds_errors(self, index, sphere_store):
        service = make_service(index, spheres=sphere_store)
        payload = service.sphere_batch([WARM_NODES[0], 999])
        assert payload["count"] == 2
        ok, bad = payload["results"]
        assert ok["node"] == WARM_NODES[0]
        assert bad["error"]["status"] == 404
        assert "not in index" in bad["error"]["message"]

    def test_empty_batch_rejected(self, index):
        with pytest.raises(BadRequest, match="non-empty"):
            make_service(index).sphere_batch([])

    def test_non_integer_ids_rejected(self, index):
        with pytest.raises(BadRequest, match="integers"):
            make_service(index).sphere_batch(["five"])

    def test_shed_recorded_per_node(self, index):
        service = make_service(index, max_inflight=0)
        payload = service.sphere_batch([50, 51])
        statuses = [entry["error"]["status"] for entry in payload["results"]]
        assert statuses == [429, 429]


class TestMostReliable:
    def test_orders_by_cost(self, index, sphere_store):
        service = make_service(index, spheres=sphere_store)
        payload = service.most_reliable(3, min_size=1)
        assert payload["nodes"] == sphere_store.most_reliable(3, min_size=1)

    def test_parameter_validation(self, index, sphere_store):
        service = make_service(index, spheres=sphere_store)
        with pytest.raises(BadRequest, match="count"):
            service.most_reliable(0)
        with pytest.raises(BadRequest, match="min-size"):
            service.most_reliable(3, min_size=0)


class TestHealthAndStoreLoading:
    def test_healthz_shape(self, index, sphere_store):
        service = make_service(index, spheres=sphere_store)
        health = service.healthz()
        assert health["status"] == "ok"
        assert health["num_nodes"] == 60
        assert health["num_worlds"] == 8
        assert health["precomputed_spheres"] == len(WARM_NODES)

    def test_loads_from_paths(self, index_store_path, sphere_store_path):
        service = make_service(
            str(index_store_path), spheres=str(sphere_store_path)
        )
        assert service.source == str(index_store_path)
        payload = service.sphere(WARM_NODES[0])
        assert payload["node"] == WARM_NODES[0]
        assert service.computes_total.value() == 0

    def test_negative_max_inflight_rejected(self, index):
        with pytest.raises(ValueError, match="max_inflight"):
            make_service(index, max_inflight=-1)


class TestSphereStoreLookups:
    """The satellite: clear KeyError messages from the store mapping."""

    def test_getitem_missing_node_message(self, sphere_store):
        with pytest.raises(KeyError, match=r"node 59 not in store \(12 nodes\)"):
            sphere_store[59]

    def test_get_returns_default(self, sphere_store):
        assert sphere_store.get(59) is None
        assert sphere_store.get(59, default="fallback") == "fallback"

    def test_get_hit_matches_getitem(self, sphere_store):
        node = WARM_NODES[0]
        assert np.array_equal(
            sphere_store.get(node).members, sphere_store[node].members
        )
