"""Unit tests for single-flight request coalescing."""

import threading
import time

import pytest

from repro.serve.coalesce import SingleFlight


def wait_for_waiters(flight: SingleFlight, key, count: int, timeout=10.0):
    """Poll until ``count`` followers are blocked on ``key`` (bounded)."""
    deadline = time.monotonic() + timeout
    while flight.waiters(key) < count:
        assert time.monotonic() < deadline, "followers never joined the flight"
        time.sleep(0.001)


class TestSerial:
    def test_runs_function_and_reports_leader(self):
        flight = SingleFlight()
        value, leader = flight.do("k", lambda: 42)
        assert value == 42
        assert leader is True
        assert flight.inflight() == 0

    def test_sequential_calls_each_run(self):
        flight = SingleFlight()
        calls = []
        for i in range(3):
            value, leader = flight.do("k", lambda i=i: calls.append(i) or i)
            assert leader is True
        assert calls == [0, 1, 2]

    def test_exception_propagates_and_clears_flight(self):
        flight = SingleFlight()
        with pytest.raises(RuntimeError, match="boom"):
            flight.do("k", self._boom)
        assert flight.inflight() == 0
        value, leader = flight.do("k", lambda: "recovered")
        assert value == "recovered"

    @staticmethod
    def _boom():
        raise RuntimeError("boom")


class TestConcurrent:
    def test_burst_runs_exactly_once(self):
        flight = SingleFlight()
        entered = threading.Event()
        release = threading.Event()
        calls = []

        def slow_compute():
            calls.append(1)
            entered.set()
            assert release.wait(timeout=10)
            return "result"

        results = []

        def worker():
            results.append(flight.do("k", slow_compute))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        threads[0].start()
        assert entered.wait(timeout=10)  # leader is inside the compute
        for t in threads[1:]:
            t.start()
        # Wait until every follower has joined the in-flight entry, then
        # release the leader — deterministic exactly-once.
        wait_for_waiters(flight, "k", 7)
        release.set()
        for t in threads:
            t.join(timeout=10)
        assert len(calls) == 1
        assert len(results) == 8
        assert all(value == "result" for value, _ in results)
        assert sum(1 for _, leader in results if leader) == 1

    def test_burst_failure_reaches_every_caller(self):
        flight = SingleFlight()
        entered = threading.Event()
        release = threading.Event()

        def failing_compute():
            entered.set()
            assert release.wait(timeout=10)
            raise RuntimeError("shared failure")

        outcomes = []

        def worker():
            try:
                flight.do("k", failing_compute)
                outcomes.append("ok")
            except RuntimeError:
                outcomes.append("error")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        threads[0].start()
        assert entered.wait(timeout=10)
        for t in threads[1:]:
            t.start()
        wait_for_waiters(flight, "k", 3)
        release.set()
        for t in threads:
            t.join(timeout=10)
        assert outcomes == ["error"] * 4
        assert flight.inflight() == 0

    def test_timed_out_follower_checks_out_of_the_flight(self):
        flight = SingleFlight()
        entered = threading.Event()
        release = threading.Event()

        def slow_compute():
            entered.set()
            assert release.wait(timeout=10)
            return "late"

        results = []
        leader = threading.Thread(
            target=lambda: results.append(flight.do("k", slow_compute))
        )
        leader.start()
        assert entered.wait(timeout=10)

        with pytest.raises(TimeoutError, match="in-flight computation"):
            flight.do("k", slow_compute, timeout=0.05)
        # Regression: the timed-out follower must decrement the waiter
        # count it incremented on the way in — it used to leak, leaving
        # the flight looking permanently occupied to diagnostics.
        assert flight.waiters("k") == 0
        assert flight.inflight() == 1  # the leader is still computing

        release.set()
        leader.join(timeout=10)
        assert results == [("late", True)]
        assert flight.inflight() == 0
        assert flight.waiters("k") == 0

    def test_timed_out_sibling_does_not_disturb_patient_followers(self):
        flight = SingleFlight()
        entered = threading.Event()
        release = threading.Event()

        def slow_compute():
            entered.set()
            assert release.wait(timeout=10)
            return "result"

        results = []

        def patient():
            results.append(flight.do("k", slow_compute))

        leader = threading.Thread(target=patient)
        leader.start()
        assert entered.wait(timeout=10)
        follower = threading.Thread(target=patient)
        follower.start()
        wait_for_waiters(flight, "k", 1)

        with pytest.raises(TimeoutError):
            flight.do("k", slow_compute, timeout=0.05)
        assert flight.waiters("k") == 1  # only the impatient one left

        release.set()
        leader.join(timeout=10)
        follower.join(timeout=10)
        assert sorted(leader for _, leader in results) == [False, True]
        assert all(value == "result" for value, _ in results)

    def test_distinct_keys_do_not_coalesce(self):
        flight = SingleFlight()
        leaders = []

        def worker(key):
            _, leader = flight.do(key, lambda: key)
            leaders.append(leader)

        threads = [threading.Thread(target=worker, args=(k,)) for k in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert leaders == [True] * 6
