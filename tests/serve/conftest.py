"""Shared fixtures for the serving tests: one small deterministic index,
a partial precomputed sphere store (so hot *and* cold paths exist), and
helpers to run a real HTTP server on an ephemeral port."""

from __future__ import annotations

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.cascades.index import CascadeIndex
from repro.runtime import locksan
from repro.core.typical_cascade import TypicalCascadeComputer
from repro.graph.generators import powerlaw_outdegree_digraph
from repro.problearn.assign import assign_fixed
from repro.serve.app import SphereService, make_server

#: Nodes whose spheres are precomputed into the store (the warm set).
WARM_NODES = tuple(range(12))


@pytest.fixture(autouse=True)
def _locksan_gate():
    """Fail any serving test that produced a lock-sanitizer report.

    Inert unless the suite runs with ``REPRO_LOCKSAN=1`` (the CI
    concurrency-lint job does): then every lock the serving stack builds
    is tracked, and a lock-order cycle, unbalanced release or missed
    ``assert_held`` observed during the test body fails it here.
    """
    yield
    if locksan.enabled():
        violations = locksan.report()
        locksan.reset()
        assert violations == [], "lock sanitizer violations:\n" + "\n".join(
            violations
        )


@pytest.fixture(scope="session")
def graph():
    base = powerlaw_outdegree_digraph(60, mean_degree=5.0, seed=7)
    return assign_fixed(base, 0.15)


@pytest.fixture(scope="session")
def index(graph):
    return CascadeIndex.build(graph, 8, seed=11)


@pytest.fixture(scope="session")
def computer(index):
    return TypicalCascadeComputer(index)


@pytest.fixture(scope="session")
def sphere_store(computer):
    return computer.compute_store(nodes=WARM_NODES)


@pytest.fixture(scope="session")
def sphere_store_path(sphere_store, tmp_path_factory):
    path = tmp_path_factory.mktemp("spheres") / "spheres.npz"
    sphere_store.save(path)
    return path


@pytest.fixture(scope="session")
def index_store_path(index, tmp_path_factory):
    path = tmp_path_factory.mktemp("index") / "idx"
    index.save(path, format="store")
    return path


def make_service(index, **kwargs) -> SphereService:
    kwargs.setdefault("cache_size", 64)
    kwargs.setdefault("max_inflight", 8)
    return SphereService(index, **kwargs)


class RunningServer:
    """A live server plus a tiny urllib client for the tests."""

    def __init__(self, service: SphereService):
        self.service = service
        self.server = make_server(service)
        self.port = self.server.server_address[1]
        self.base = f"http://127.0.0.1:{self.port}"
        self._thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self._thread.start()

    def request(self, path: str, *, method: str = "GET", body=None):
        """(status, headers, body_bytes); HTTP errors returned, not raised."""
        data = None
        headers = {}
        if body is not None:
            data = json.dumps(body).encode("ascii")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.base + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=30) as response:
                return response.status, dict(response.headers), response.read()
        except urllib.error.HTTPError as exc:
            return exc.code, dict(exc.headers), exc.read()

    def raw(self, request_bytes: bytes, timeout: float = 10.0) -> bytes:
        """Send raw bytes on a fresh socket; return everything sent back.

        For fuzzing below the urllib layer: malformed request lines, lying
        Content-Length headers, non-HTTP garbage.  Half-closes the write
        side so a well-behaved server responds and then sees EOF.
        """
        with socket.create_connection(("127.0.0.1", self.port), timeout=timeout) as sock:
            sock.sendall(request_bytes)
            sock.shutdown(socket.SHUT_WR)
            chunks = []
            try:
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    chunks.append(chunk)
            except TimeoutError:
                pass
            return b"".join(chunks)

    def close(self):
        self.server.shutdown()
        self.server.server_close()
        self._thread.join(timeout=10)


@pytest.fixture
def running_server(index, sphere_store):
    servers = []

    def start(**kwargs) -> RunningServer:
        kwargs.setdefault("spheres", sphere_store)
        service = make_service(index, **kwargs)
        server = RunningServer(service)
        servers.append(server)
        return server

    yield start
    for server in servers:
        server.close()
