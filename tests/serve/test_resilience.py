"""Deterministic tests of the serving resilience layer.

Deadline expiry and circuit-breaker scheduling are driven by an injected
fake clock, so every state transition asserted here is exact — no sleeps,
no flakiness.  The thread-based pieces (watchdog, slot hammer, follower
timeout) use events and generous real timeouts only as failure backstops.
"""

import threading
import time

import pytest

from repro.runtime.faults import FaultSpec, fault_scope
from repro.serve.errors import (
    ComputeUnavailable,
    DeadlineExceeded,
    InternalError,
    ShedLoad,
)
from repro.serve.resilience import (
    CircuitBreaker,
    Deadline,
    ReadersWriterLock,
    call_with_watchdog,
)

from tests.serve.conftest import WARM_NODES, make_service


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestDeadline:
    def test_unbounded_never_expires(self):
        for deadline in (Deadline.after(None), Deadline.after(0), Deadline.after(-1)):
            assert not deadline.bounded
            assert deadline.remaining() is None
            assert not deadline.expired()
            deadline.require("anything")  # no raise

    def test_expiry_is_a_pure_function_of_the_clock(self):
        clock = FakeClock(100.0)
        deadline = Deadline.after(2.5, clock)
        assert deadline.remaining() == pytest.approx(2.5)
        clock.advance(2.0)
        assert deadline.remaining() == pytest.approx(0.5)
        assert not deadline.expired()
        clock.advance(0.5)
        assert deadline.expired()
        assert deadline.remaining() == 0.0
        clock.advance(10.0)
        assert deadline.remaining() == 0.0  # clamped, never negative

    def test_require_names_the_refused_step(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock)
        clock.advance(2.0)
        with pytest.raises(DeadlineExceeded, match="before sphere lookup"):
            deadline.require("sphere lookup")

    def test_same_clock_same_schedule(self):
        # Determinism: two deadlines over identical clocks transition at
        # identical instants.
        histories = []
        for _ in range(2):
            clock = FakeClock()
            deadline = Deadline.after(3.0, clock)
            history = []
            for _ in range(10):
                clock.advance(0.5)
                history.append((deadline.remaining(), deadline.expired()))
            histories.append(history)
        assert histories[0] == histories[1]


class TestWatchdog:
    def test_unbounded_runs_inline(self):
        main_thread = threading.current_thread()
        seen = []
        call_with_watchdog(lambda: seen.append(threading.current_thread()),
                           Deadline.after(None))
        assert seen == [main_thread]

    def test_result_within_budget(self):
        assert call_with_watchdog(lambda: 42, Deadline.after(30.0)) == 42

    def test_error_within_budget_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            call_with_watchdog(
                lambda: (_ for _ in ()).throw(ValueError("boom")),
                Deadline.after(30.0),
            )

    def test_already_expired_refuses_before_spawning(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock)
        clock.advance(2.0)
        with pytest.raises(DeadlineExceeded, match="before compute"):
            call_with_watchdog(lambda: 1, deadline)

    def test_timeout_abandons_and_banks_the_late_result(self):
        release = threading.Event()
        banked = []
        banked_event = threading.Event()

        def slow():
            assert release.wait(timeout=30)
            return "late-value"

        def bank(value):
            banked.append(value)
            banked_event.set()

        with pytest.raises(DeadlineExceeded, match="exceeded its deadline"):
            call_with_watchdog(
                slow, Deadline.after(0.05), what="compute", on_late_result=bank
            )
        release.set()
        assert banked_event.wait(timeout=30)
        assert banked == ["late-value"]

    def test_late_error_is_dropped(self):
        release = threading.Event()
        done = threading.Event()

        def slow_fail():
            assert release.wait(timeout=30)
            done.set()
            raise RuntimeError("late failure nobody is waiting for")

        with pytest.raises(DeadlineExceeded):
            call_with_watchdog(slow_fail, Deadline.after(0.05),
                               on_late_result=lambda v: None)
        release.set()
        assert done.wait(timeout=30)  # orphan ran; its error went nowhere


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(3, 10.0, clock=clock)
        for _ in range(2):
            breaker.allow()
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        with pytest.raises(ComputeUnavailable) as excinfo:
            breaker.allow()
        assert excinfo.value.status == 503
        assert excinfo.value.retry_after == pytest.approx(10.0)

    def test_success_resets_the_streak(self):
        clock = FakeClock()
        breaker = CircuitBreaker(2, 5.0, clock=clock)
        breaker.allow(); breaker.record_failure()
        breaker.allow(); breaker.record_success()
        breaker.allow(); breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_retry_after_counts_down_deterministically(self):
        clock = FakeClock()
        breaker = CircuitBreaker(1, 10.0, clock=clock)
        breaker.allow(); breaker.record_failure()
        clock.advance(4.0)
        with pytest.raises(ComputeUnavailable) as excinfo:
            breaker.allow()
        assert excinfo.value.retry_after == pytest.approx(6.0)

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(1, 5.0, clock=clock)
        breaker.allow(); breaker.record_failure()
        clock.advance(5.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.allow()  # the probe slot
        with pytest.raises(ComputeUnavailable):
            breaker.allow()  # followers refused while the probe is out
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.allow()  # back to normal service

    def test_failed_probe_reopens_a_full_window(self):
        clock = FakeClock()
        breaker = CircuitBreaker(1, 5.0, clock=clock)
        breaker.allow(); breaker.record_failure()
        clock.advance(5.0)
        breaker.allow()  # probe
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(4.9)
        with pytest.raises(ComputeUnavailable) as excinfo:
            breaker.allow()
        assert excinfo.value.retry_after == pytest.approx(0.1)
        clock.advance(0.1)
        breaker.allow()  # next probe slot, exactly on schedule
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_schedule_is_reproducible(self):
        def drive():
            clock = FakeClock()
            breaker = CircuitBreaker(2, 3.0, clock=clock)
            observed = []
            script = [
                ("fail", 0.0), ("fail", 0.5), ("tick", 1.0), ("tick", 2.0),
                ("probe_fail", 3.5), ("tick", 5.0), ("probe_ok", 6.5),
            ]
            for action, at in script:
                clock.now = at
                if action == "tick":
                    try:
                        breaker.allow()
                        breaker.record_success()
                        outcome = "admitted"
                    except ComputeUnavailable as exc:
                        outcome = f"refused:{exc.retry_after:.3f}"
                elif action == "fail":
                    breaker.allow(); breaker.record_failure()
                    outcome = "failed"
                elif action == "probe_fail":
                    breaker.allow(); breaker.record_failure()
                    outcome = "probe-failed"
                else:
                    breaker.allow(); breaker.record_success()
                    outcome = "probe-ok"
                observed.append((at, outcome, breaker.state))
            return observed

        assert drive() == drive()

    def test_validates_parameters(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(0, 1.0)
        with pytest.raises(ValueError, match="reset_after"):
            CircuitBreaker(1, 0.0)

    def test_abandon_returns_the_probe_slot(self):
        clock = FakeClock()
        breaker = CircuitBreaker(1, 5.0, clock=clock)
        breaker.allow(); breaker.record_failure()
        clock.advance(5.0)
        breaker.allow()  # probe admitted
        breaker.abandon()  # admitted call refused before computing
        assert breaker.state == CircuitBreaker.HALF_OPEN
        # Regression: the probe slot must be admittable again — an
        # abandoned probe used to reserve it forever, wedging the breaker
        # half-open with every caller refused.
        breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_abandon_while_closed_is_a_no_op(self):
        clock = FakeClock()
        breaker = CircuitBreaker(2, 5.0, clock=clock)
        breaker.allow()
        breaker.abandon()
        breaker.allow(); breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED


class TestShedProbeRegression:
    def test_shed_probe_does_not_wedge_the_breaker(self, index):
        """A half-open probe that is immediately shed (queue full) must
        return the probe slot instead of recording an outcome.

        Before :meth:`CircuitBreaker.abandon`, the admitted-but-shed probe
        left ``_probing`` set: the breaker stayed half-open with the slot
        reserved by a request that was already gone, so every later cold
        request got 503 forever — found by the REP7xx resource audit.
        """
        clock = FakeClock()
        service = make_service(
            index,
            max_inflight=0,  # the compute queue is permanently full
            breaker_threshold=1,
            breaker_reset=5.0,
            clock=clock,
        )
        service.breaker.allow()
        service.breaker.record_failure()
        assert service.breaker.state == CircuitBreaker.OPEN
        clock.advance(5.0)
        assert service.breaker.state == CircuitBreaker.HALF_OPEN

        with pytest.raises(ShedLoad):
            service.sphere(0)  # the admitted probe sheds on the full queue

        assert service.breaker.state == CircuitBreaker.HALF_OPEN
        # The slot came back: the next probe is admitted, not refused.
        service.breaker.allow()
        service.breaker.record_success()
        assert service.breaker.state == CircuitBreaker.CLOSED


class TestReadersWriterLock:
    def test_readers_share(self):
        lock = ReadersWriterLock()
        with lock.read():
            acquired = threading.Event()

            def second_reader():
                with lock.read():
                    acquired.set()

            threading.Thread(target=second_reader).start()
            assert acquired.wait(timeout=10)

    def test_writer_excludes_and_releases(self):
        lock = ReadersWriterLock()
        order = []
        in_write = threading.Event()
        release_write = threading.Event()

        def writer():
            with lock.write():
                order.append("write")
                in_write.set()
                assert release_write.wait(timeout=10)

        t = threading.Thread(target=writer)
        t.start()
        assert in_write.wait(timeout=10)
        reader_done = threading.Event()

        def reader():
            with lock.read():
                order.append("read")
                reader_done.set()

        threading.Thread(target=reader).start()
        time.sleep(0.05)
        assert not reader_done.is_set()  # reader waits out the writer
        release_write.set()
        assert reader_done.wait(timeout=10)
        t.join(timeout=10)
        assert order == ["write", "read"]

    def test_waiting_writer_blocks_new_readers(self):
        lock = ReadersWriterLock()
        first_reader_in = threading.Event()
        release_first = threading.Event()
        wrote = threading.Event()
        second_read = threading.Event()

        def first_reader():
            with lock.read():
                first_reader_in.set()
                assert release_first.wait(timeout=10)

        def writer():
            with lock.write():
                wrote.set()

        def second_reader():
            with lock.read():
                second_read.set()

        threading.Thread(target=first_reader).start()
        assert first_reader_in.wait(timeout=10)
        threading.Thread(target=writer).start()
        time.sleep(0.05)  # let the writer queue up
        threading.Thread(target=second_reader).start()
        time.sleep(0.05)
        # Write preference: the late reader must not starve the writer.
        assert not second_read.is_set()
        release_first.set()
        assert wrote.wait(timeout=10)
        assert second_read.wait(timeout=10)


class TestServiceDeadlines:
    def test_over_deadline_compute_returns_504_and_frees_its_slot(self, index):
        service = make_service(index, deadline=0.05, max_inflight=2)
        release = threading.Event()
        real_compute = service._computer.compute

        def wedged(node):
            assert release.wait(timeout=30)
            return real_compute(node)

        service._computer.compute = wedged
        with pytest.raises(DeadlineExceeded):
            service.sphere(40)
        assert service.deadline_exceeded_total.value() == 1
        assert service.compute_failures_total.value(kind="timeout") == 1
        # The slot came back even though the orphan is still wedged.
        assert service._slots.acquire(blocking=False)
        service._slots.release()
        release.set()

    def test_fault_injected_sleep_never_leaks_a_slot(self, index):
        """The ISSUE's hammer: wedged computes (injected sleeps) across many
        requests leave the admission semaphore exactly full."""
        max_inflight = 4
        service = make_service(index, deadline=0.05, max_inflight=max_inflight)
        plan = [FaultSpec(site="serve.compute", kind="sleep", seconds=1.0)]
        outcomes = {"timeout": 0, "shed": 0}
        lock = threading.Lock()

        def hammer(node):
            try:
                service.sphere(node)
            except DeadlineExceeded:
                with lock:
                    outcomes["timeout"] += 1
            except ShedLoad:
                with lock:
                    outcomes["shed"] += 1

        with fault_scope(plan):
            threads = [
                threading.Thread(target=hammer, args=(node,))
                for node in range(30, 42)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
        # Every request timed out or was shed (the sleep outlives every
        # deadline); either way all max_inflight slots must be back.
        assert outcomes["timeout"] >= 1
        assert sum(outcomes.values()) == 12
        taken = 0
        while service._slots.acquire(blocking=False):
            taken += 1
        assert taken == max_inflight
        for _ in range(taken):
            service._slots.release()

    def test_follower_timeout_leaves_the_leader_running(self, index):
        service = make_service(index)  # unbounded default deadline
        entered = threading.Event()
        release = threading.Event()
        real_compute = service._computer.compute

        def gated(node):
            entered.set()
            assert release.wait(timeout=30)
            return real_compute(node)

        service._computer.compute = gated
        results = []
        leader = threading.Thread(
            target=lambda: results.append(service.sphere(43))
        )
        leader.start()
        assert entered.wait(timeout=30)
        with pytest.raises(DeadlineExceeded, match="waiting for the in-flight"):
            service.get_sphere(43, Deadline.after(0.05))
        assert service.deadline_exceeded_total.value() == 1
        release.set()
        leader.join(timeout=30)
        assert results and results[0]["node"] == 43

    def test_warm_store_hits_ignore_wedged_compute(self, index, sphere_store):
        service = make_service(index, spheres=sphere_store, deadline=0.2)
        service._computer.compute = lambda node: time.sleep(60)
        assert service.sphere(WARM_NODES[0])["node"] == WARM_NODES[0]
        assert service.deadline_exceeded_total.value() == 0


class TestServiceBreaker:
    def test_repeated_failures_open_and_degrade(self, index, sphere_store):
        clock = FakeClock()
        service = make_service(
            index, spheres=sphere_store,
            breaker_threshold=2, breaker_reset=10.0, clock=clock,
        )

        def poisoned(node):
            raise RuntimeError("poisoned node")

        real_compute = service._computer.compute
        service._computer.compute = poisoned
        for node in (44, 45):
            with pytest.raises(InternalError, match="poisoned"):
                service.sphere(node)
        with pytest.raises(ComputeUnavailable) as excinfo:
            service.sphere(46)
        assert excinfo.value.retry_after == pytest.approx(10.0)
        assert service.breaker_rejected_total.value() == 1
        assert service.healthz()["status"] == "degraded"
        assert service.healthz()["breaker"]["state"] == "open"
        # Store+cache-only mode: warm nodes still answered.
        assert service.sphere(WARM_NODES[1])["node"] == WARM_NODES[1]

        # Deterministic recovery: one probe after the reset window.
        clock.advance(10.0)
        service._computer.compute = real_compute
        assert service.sphere(46)["node"] == 46  # the probe, succeeds
        assert service.healthz()["status"] == "ok"
        assert service.healthz()["breaker"]["state"] == "closed"

    def test_injected_compute_errors_feed_the_breaker(self, index):
        service = make_service(index, breaker_threshold=1, breaker_reset=30.0)
        plan = [FaultSpec(site="serve.compute", kind="error", key=47)]
        with fault_scope(plan):
            with pytest.raises(InternalError, match="injected"):
                service.sphere(47)
        assert service.compute_failures_total.value(kind="error") == 1
        with pytest.raises(ComputeUnavailable):
            service.sphere(48)
        assert service.healthz()["breaker"]["state"] == "open"
