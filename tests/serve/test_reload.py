"""Verified hot-swap reload: generation swaps, rollbacks, zero drops."""

import shutil
import threading

import pytest

from repro.runtime.faults import FaultSpec, fault_scope
from repro.serve.cache import MISSING
from repro.serve.errors import BadRequest, StoreCorrupt
from repro.store import append_worlds

from tests.serve.conftest import RunningServer, make_service


@pytest.fixture
def store_copy(index_store_path, tmp_path):
    """A private mutable copy of the session index store."""
    dst = tmp_path / "idx"
    shutil.copytree(index_store_path, dst)
    return dst


def flip_byte(path, offset=-100):
    """Corrupt one byte near the end of a column file (past the npy header)."""
    data = bytearray(path.read_bytes())
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))


class TestReload:
    def test_reload_picks_up_appended_worlds(self, store_copy):
        service = make_service(str(store_copy))
        before = service.index.num_worlds
        baseline = service.sphere(20)
        append_worlds(store_copy, 3)
        assert service.index.num_worlds == before  # old generation still up

        result = service.reload()
        assert result["status"] == "reloaded"
        assert result["generation"] == 2
        assert result["num_worlds"] == before + 3
        assert service.generation == 2
        assert service.index.num_worlds == before + 3
        assert service.reloads_total.value(result="ok") == 1
        # The cache was dropped with the old generation; queries still work.
        assert service.sphere(20)["node"] == baseline["node"]
        assert service.healthz()["generation"] == 2

    def test_reload_defaults_need_a_store_path(self, index):
        service = make_service(index)  # in-memory, no path to re-open
        with pytest.raises(BadRequest, match="in-memory index"):
            service.reload()

    def test_corrupt_candidate_rolls_back(self, store_copy, tmp_path):
        service = make_service(str(store_copy))
        worlds = service.index.num_worlds
        candidate = tmp_path / "candidate"
        shutil.copytree(store_copy, candidate)
        flip_byte(candidate / "members.npy")

        with pytest.raises(StoreCorrupt, match="rolled back"):
            service.reload(index_path=candidate)
        # The old generation is untouched and keeps serving.
        assert service.generation == 1
        assert service.index.num_worlds == worlds
        assert service.sphere(21)["node"] == 21
        assert service.reloads_total.value(result="rolled_back") == 1
        assert service.healthz()["status"] == "ok"

    def test_truncated_candidate_rolls_back(self, store_copy, tmp_path):
        service = make_service(str(store_copy))
        candidate = tmp_path / "candidate"
        shutil.copytree(store_copy, candidate)
        full = (candidate / "dag_targets.npy").read_bytes()
        (candidate / "dag_targets.npy").write_bytes(full[: len(full) // 2])

        with pytest.raises(StoreCorrupt, match="rolled back"):
            service.reload(index_path=candidate)
        assert service.generation == 1
        assert service.sphere(22)["node"] == 22

    def test_injected_reload_fault_rolls_back_then_recovers(self, store_copy):
        service = make_service(str(store_copy))
        plan = [FaultSpec(site="serve.reload", kind="error")]
        with fault_scope(plan):
            with pytest.raises(StoreCorrupt, match="rolled back"):
                service.reload()
        assert service.generation == 1
        assert service.reloads_total.value(result="rolled_back") == 1
        # The fault was transient; the next reload succeeds.
        result = service.reload()
        assert result["generation"] == 2
        assert service.reloads_total.value(result="ok") == 1

    def test_reload_closes_an_open_breaker(self, store_copy):
        service = make_service(str(store_copy), breaker_threshold=1)
        service._computer.compute = lambda node: 1 / 0
        with pytest.raises(Exception, match="failed"):
            service.sphere(23)
        assert service.breaker.state == "open"
        service.reload()
        assert service.breaker.state == "closed"
        assert service.healthz()["status"] == "ok"

    def test_no_requests_dropped_across_reloads(self, store_copy):
        """Queries hammering the service while it reloads twice all succeed."""
        service = make_service(str(store_copy), max_inflight=16)
        errors = []
        stop = threading.Event()

        def hammer(node):
            while not stop.is_set():
                try:
                    payload = service.sphere(node)
                    assert payload["node"] == node
                except Exception as exc:  # noqa: BLE001 - collected for the assert
                    errors.append(exc)
                    return

        threads = [
            threading.Thread(target=hammer, args=(node,)) for node in range(24, 28)
        ]
        for t in threads:
            t.start()
        try:
            for _ in range(2):
                append_worlds(store_copy, 1)
                service.reload()
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=30)
        assert errors == []
        assert service.generation == 3

    def test_orphaned_compute_cannot_pollute_a_new_generation(self, store_copy):
        """A late result from generation N must not be banked after a reload."""
        service = make_service(str(store_copy), deadline=0.05)
        release = threading.Event()
        banked = threading.Event()
        real_compute = service._computer.compute

        def wedged(node):
            assert release.wait(timeout=30)
            result = real_compute(node)
            banked.set()
            return result

        service._computer.compute = wedged
        with pytest.raises(Exception, match="deadline"):
            service.sphere(29)
        service.reload()  # generation 2, before the orphan finishes
        release.set()
        assert banked.wait(timeout=30)
        # Give the watchdog's late-result callback a moment to run, then the
        # post-reload cache must still miss: the bank was generation-checked.
        for _ in range(50):
            if service.cache.get(29) is not MISSING:
                break
            threading.Event().wait(0.02)
        assert service.cache.get(29) is MISSING


class TestReloadHTTP:
    def test_admin_reload_roundtrip(self, store_copy):
        server = RunningServer(make_service(str(store_copy)))
        try:
            status, _, body = server.request("/sphere/30")
            assert status == 200
            append_worlds(store_copy, 2)
            status, _, body = server.request("/admin/reload", method="POST")
            assert status == 200
            assert b'"generation": 2' in body or b'"generation":2' in body
            status, _, body = server.request("/healthz")
            assert status == 200
            assert b'"generation": 2' in body or b'"generation":2' in body
        finally:
            server.close()

    def test_admin_reload_reports_rollback(self, store_copy, tmp_path):
        server = RunningServer(make_service(str(store_copy)))
        try:
            candidate = tmp_path / "candidate"
            shutil.copytree(store_copy, candidate)
            flip_byte(candidate / "node_comp.npy")
            status, _, body = server.request(
                "/admin/reload", method="POST", body={"index": str(candidate)}
            )
            assert status == 500
            assert b"rolled back" in body
            # Still serving the original generation.
            status, _, _ = server.request("/sphere/31")
            assert status == 200
        finally:
            server.close()

    def test_admin_reload_validates_body(self, store_copy):
        server = RunningServer(make_service(str(store_copy)))
        try:
            status, _, body = server.request(
                "/admin/reload", method="POST", body={"index": 7}
            )
            assert status == 400
            assert b"path string" in body
        finally:
            server.close()
