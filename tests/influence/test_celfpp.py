"""Tests for repro.influence.celfpp — CELF++ equals greedy, costs less."""

import numpy as np
import pytest

from repro.cascades.index import CascadeIndex
from repro.graph.generators import star_graph
from repro.influence.celfpp import infmax_celfpp
from repro.influence.greedy_std import infmax_std
from repro.influence.spread import SpreadOracle


class TestCorrectness:
    def test_matches_plain_greedy_value_curve(self, small_random):
        index = CascadeIndex.build(small_random, 24, seed=1)
        plain = infmax_std(index, 5, lazy=False)
        celfpp = infmax_celfpp(index, 5)
        np.testing.assert_allclose(celfpp.spreads, plain.spreads, atol=1e-9)

    def test_matches_celf_value_curve(self, small_random):
        index = CascadeIndex.build(small_random, 24, seed=2)
        celf = infmax_std(index, 6, lazy=True)
        celfpp = infmax_celfpp(index, 6)
        np.testing.assert_allclose(celfpp.spreads, celf.spreads, atol=1e-9)

    def test_star_hub_first(self):
        g = star_graph(10, p=0.9)
        index = CascadeIndex.build(g, 32, seed=3)
        assert infmax_celfpp(index, 1).seeds == [0]

    def test_k_validation(self, small_random):
        index = CascadeIndex.build(small_random, 4, seed=1)
        with pytest.raises(ValueError):
            infmax_celfpp(index, 0)
        with pytest.raises(ValueError, match="exceeds"):
            infmax_celfpp(index, 10_000)

    def test_selects_k_distinct(self, small_random):
        index = CascadeIndex.build(small_random, 16, seed=4)
        trace = infmax_celfpp(index, 7)
        assert len(trace.seeds) == 7
        assert len(set(trace.seeds)) == 7


class TestEfficiency:
    def test_no_more_evaluations_than_plain(self, small_random):
        index = CascadeIndex.build(small_random, 24, seed=5)
        plain = infmax_std(index, 5, lazy=False)
        celfpp = infmax_celfpp(index, 5)
        assert celfpp.evaluations <= plain.evaluations


class TestMarginalGainPair:
    def test_pair_consistent_with_singletons(self, small_random):
        index = CascadeIndex.build(small_random, 16, seed=6)
        oracle = SpreadOracle(index)
        mg1, mg2 = oracle.marginal_gain_pair(3, 8)
        assert mg1 == pytest.approx(oracle.marginal_gain(3))
        # mg2 is the gain after 8 joins: verify against a fresh oracle.
        other = SpreadOracle(index)
        other.add_seed(8)
        assert mg2 == pytest.approx(other.marginal_gain(3))

    def test_mg2_never_exceeds_mg1(self, small_random):
        index = CascadeIndex.build(small_random, 16, seed=7)
        oracle = SpreadOracle(index)
        for node, extra in ((0, 1), (5, 9), (20, 30)):
            mg1, mg2 = oracle.marginal_gain_pair(node, extra)
            assert mg2 <= mg1 + 1e-12
