"""Tests for repro.influence.weighted — value-weighted spread."""

import numpy as np
import pytest

from repro.cascades.index import CascadeIndex
from repro.graph.generators import star_graph
from repro.influence.greedy_std import infmax_std
from repro.influence.weighted import WeightedSpreadOracle, infmax_std_weighted


@pytest.fixture
def index(small_random) -> CascadeIndex:
    return CascadeIndex.build(small_random, 16, seed=1)


class TestOracle:
    def test_unit_values_match_plain_oracle(self, small_random, index):
        from repro.influence.spread import SpreadOracle

        weighted = WeightedSpreadOracle(index, np.ones(small_random.num_nodes))
        plain = SpreadOracle(index)
        np.testing.assert_allclose(
            weighted.initial_gains(), plain.initial_gains(), atol=1e-9
        )
        for v in (0, 9, 21):
            assert weighted.marginal_gain(v) == pytest.approx(
                plain.marginal_gain(v)
            )

    def test_zero_values_give_zero_gains(self, small_random, index):
        oracle = WeightedSpreadOracle(index, np.zeros(small_random.num_nodes))
        assert oracle.marginal_gain(3) == 0.0
        assert np.all(oracle.initial_gains() == 0.0)

    def test_add_seed_accumulates_value(self, small_random, index):
        values = np.full(small_random.num_nodes, 2.0)
        oracle = WeightedSpreadOracle(index, values)
        gain = oracle.add_seed(4)
        assert oracle.current_value() == pytest.approx(gain)
        assert gain >= 2.0  # at least the seed's own value

    def test_validation(self, small_random, index):
        with pytest.raises(ValueError, match="shape"):
            WeightedSpreadOracle(index, np.ones(3))
        with pytest.raises(ValueError, match="non-negative"):
            WeightedSpreadOracle(index, -np.ones(small_random.num_nodes))
        oracle = WeightedSpreadOracle(index, np.ones(small_random.num_nodes))
        oracle.add_seed(0)
        with pytest.raises(ValueError, match="already"):
            oracle.add_seed(0)


class TestGreedy:
    def test_unit_values_match_unweighted_greedy(self, small_random, index):
        weighted = infmax_std_weighted(index, 4, np.ones(small_random.num_nodes))
        plain = infmax_std(index, 4)
        np.testing.assert_allclose(weighted.spreads, plain.spreads, atol=1e-9)

    def test_values_steer_selection(self):
        """On a star with two hubs... simpler: make one leaf worth a lot —
        the seed that reaches it wins."""
        g = star_graph(8, p=1.0)
        index = CascadeIndex.build(g, 8, seed=2)
        values = np.ones(8)
        values[5] = 100.0
        trace = infmax_std_weighted(index, 1, values)
        # The hub reaches everything including the precious leaf.
        assert trace.seeds == [0]
        assert trace.spreads[0] == pytest.approx(107.0)

    def test_k_validation(self, index):
        with pytest.raises(ValueError):
            infmax_std_weighted(index, 0, np.ones(index.num_nodes))
        with pytest.raises(ValueError, match="exceeds"):
            infmax_std_weighted(index, 10_000, np.ones(index.num_nodes))

    def test_value_curve_nondecreasing(self, small_random, index):
        rng = np.random.default_rng(3)
        values = rng.uniform(0, 5, size=small_random.num_nodes)
        trace = infmax_std_weighted(index, 5, values)
        assert np.all(np.diff(trace.spreads) >= -1e-9)
