"""Tests for repro.influence.ris — the RIS comparator."""

import numpy as np
import pytest

from repro.graph.generators import star_graph
from repro.influence.ris import infmax_ris, sample_rr_set
from repro.utils.rng import derive_rng


class TestSampleRRSet:
    def test_contains_target(self, small_random):
        rng = derive_rng(0)
        rr = sample_rr_set(small_random, 7, rng)
        assert 7 in rr

    def test_certain_path_rr_is_all_ancestors(self):
        from repro.graph.generators import path_graph

        g = path_graph(5, p=1.0)
        rng = derive_rng(0)
        rr = sample_rr_set(g, 4, rng)
        assert rr.tolist() == [0, 1, 2, 3, 4]

    def test_leaf_rr_on_star(self):
        g = star_graph(6, p=1.0)
        rng = derive_rng(0)
        rr = sample_rr_set(g, 3, rng)
        assert set(rr.tolist()) == {0, 3}


class TestInfmaxRis:
    def test_star_hub_selected(self):
        g = star_graph(15, p=0.8)
        result = infmax_ris(g, 1, num_rr_sets=2000, seed=1)
        assert result.seeds == [0]

    def test_spread_estimate_close_to_truth(self):
        g = star_graph(11, p=0.5)
        result = infmax_ris(g, 1, num_rr_sets=8000, seed=2)
        # sigma({hub}) = 1 + 10 * 0.5 = 6.
        assert result.estimated_spreads[0] == pytest.approx(6.0, abs=0.5)

    def test_selects_k_distinct_seeds(self, small_random):
        result = infmax_ris(small_random, 4, num_rr_sets=500, seed=3)
        assert len(result.seeds) == 4
        assert len(set(result.seeds)) == 4

    def test_estimates_nondecreasing(self, small_random):
        result = infmax_ris(small_random, 5, num_rr_sets=500, seed=3)
        assert np.all(np.diff(result.estimated_spreads) >= -1e-9)

    def test_validation(self, small_random):
        with pytest.raises(ValueError):
            infmax_ris(small_random, 0)
        with pytest.raises(ValueError, match="exceeds"):
            infmax_ris(small_random, 10_000, num_rr_sets=10)

    def test_deterministic(self, small_random):
        a = infmax_ris(small_random, 3, num_rr_sets=300, seed=9)
        b = infmax_ris(small_random, 3, num_rr_sets=300, seed=9)
        assert a.seeds == b.seeds
