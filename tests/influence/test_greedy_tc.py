"""Tests for repro.influence.greedy_tc — InfMax_TC (Algorithm 3)."""

import numpy as np
import pytest

from repro.cascades.index import CascadeIndex
from repro.core.sphere import SphereOfInfluence
from repro.graph.generators import star_graph
from repro.influence.greedy_tc import infmax_tc, infmax_tc_from_spheres


def sphere(node, members) -> SphereOfInfluence:
    return SphereOfInfluence(
        sources=(node,),
        members=np.array(sorted(members), dtype=np.int64),
        cost=0.1,
        num_samples=10,
    )


class TestFromSpheres:
    def test_max_cover_over_spheres(self):
        spheres = {
            0: sphere(0, {0, 1, 2, 3}),
            1: sphere(1, {1, 2}),
            2: sphere(2, {4, 5}),
        }
        trace = infmax_tc_from_spheres(spheres, 2, 6)
        assert list(trace.selected) == [0, 2]
        assert trace.coverage[-1] == 6.0

    def test_seed_implicitly_covers_itself(self):
        spheres = {0: sphere(0, set()), 1: sphere(1, set())}
        trace = infmax_tc_from_spheres(spheres, 2, 2)
        assert trace.coverage[-1] == 2.0

    def test_accepts_raw_arrays(self):
        family = {0: np.array([0, 1]), 1: np.array([2])}
        trace = infmax_tc_from_spheres(family, 1, 3)
        assert list(trace.selected) == [0]

    def test_k_validated(self):
        with pytest.raises(ValueError):
            infmax_tc_from_spheres({0: sphere(0, {0})}, 0, 1)


class TestEndToEnd:
    def test_star_hub_first(self):
        g = star_graph(10, p=0.95)
        index = CascadeIndex.build(g, 64, seed=1)
        trace, spheres = infmax_tc(index, 1)
        assert list(trace.selected) == [0]
        assert len(spheres) == 10

    def test_returns_all_spheres(self, small_random):
        index = CascadeIndex.build(small_random, 16, seed=1)
        trace, spheres = infmax_tc(index, 3)
        assert set(spheres) == set(range(small_random.num_nodes))
        assert len(trace.selected) == 3

    def test_precomputed_spheres_reused(self, small_random):
        index = CascadeIndex.build(small_random, 16, seed=1)
        _, spheres = infmax_tc(index, 2)
        trace2, spheres2 = infmax_tc(index, 2, spheres=spheres)
        assert spheres2 == dict(spheres)
        assert len(trace2.selected) == 2

    def test_coverage_bounded_by_universe(self, small_random):
        index = CascadeIndex.build(small_random, 16, seed=1)
        trace, _ = infmax_tc(index, 5)
        assert trace.coverage[-1] <= small_random.num_nodes
