"""The (1 - 1/e) guarantee of greedy influence maximisation, checked
against brute force on exactly-evaluable instances.

Kempe et al.'s guarantee applies to the greedy on the *estimated* spread;
on the shared sampled worlds of a CascadeIndex the estimate is exact (it
is a deterministic function of the worlds), so greedy-on-index must be a
(1 - 1/e)-approximation of the best seed set *on those worlds*.
"""

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cascades.index import CascadeIndex
from repro.graph.generators import gnp_digraph
from repro.influence.greedy_std import infmax_std
from repro.influence.spread import SpreadOracle
from repro.problearn.assign import assign_fixed


def brute_force_best_spread(index: CascadeIndex, k: int) -> float:
    n = index.num_nodes
    best = 0.0
    for comb in combinations(range(n), k):
        oracle = SpreadOracle(index)
        for v in comb:
            oracle.add_seed(v)
        best = max(best, oracle.current_spread())
    return best


@pytest.mark.parametrize("k", [1, 2, 3])
def test_greedy_guarantee_small_graph(k):
    graph = assign_fixed(gnp_digraph(10, 0.18, seed=5), 0.4)
    index = CascadeIndex.build(graph, 24, seed=1)
    greedy = infmax_std(index, k)
    optimal = brute_force_best_spread(index, k)
    assert greedy.spreads[-1] >= (1 - 1 / np.e) * optimal - 1e-9


@settings(max_examples=10)
@given(st.integers(0, 1000), st.floats(0.1, 0.3))
def test_greedy_guarantee_property(seed, density):
    graph = assign_fixed(gnp_digraph(8, density, seed=seed), 0.5)
    index = CascadeIndex.build(graph, 12, seed=seed)
    greedy = infmax_std(index, 2)
    optimal = brute_force_best_spread(index, 2)
    assert greedy.spreads[-1] >= (1 - 1 / np.e) * optimal - 1e-9


def test_greedy_k1_is_exactly_optimal():
    """For k = 1 greedy IS optimal on the sampled worlds."""
    graph = assign_fixed(gnp_digraph(12, 0.15, seed=8), 0.35)
    index = CascadeIndex.build(graph, 16, seed=2)
    greedy = infmax_std(index, 1)
    assert greedy.spreads[0] == pytest.approx(brute_force_best_spread(index, 1))
