"""Tie-break determinism across the influence algorithms.

The job service's resume purity contract (see ``repro.jobs.select``)
rests on the selection argmax being a *total* order: whenever marginal
gains tie, the winner must be a deterministic function of the node ids —
never of dict insertion order, heap internals or ``repr`` string order
(where ``"10" < "2"``).  These tests pin that contract for every greedy
engine a job model can route through.
"""

from __future__ import annotations

import numpy as np

from repro.cascades.index import CascadeIndex
from repro.graph.digraph import ProbabilisticDigraph
from repro.influence.celfpp import infmax_celfpp
from repro.influence.maxcover import (
    budgeted_greedy_max_cover,
    greedy_max_cover,
    ordered_keys,
    weighted_greedy_max_cover,
)
from repro.influence.ris import infmax_ris


def arr(*xs):
    return np.array(xs, dtype=np.int64)


class TestOrderedKeys:
    def test_integer_keys_sort_numerically_not_by_repr(self):
        family = {10: arr(0), 2: arr(1), 1: arr(2)}
        assert ordered_keys(family) == [1, 2, 10]  # repr order would be [1, 10, 2]

    def test_numpy_integer_keys_sort_numerically(self):
        family = {np.int64(10): arr(0), np.int64(2): arr(1)}
        assert [int(k) for k in ordered_keys(family)] == [2, 10]

    def test_insertion_order_is_irrelevant(self):
        a = {3: arr(0), 1: arr(1), 2: arr(2)}
        b = {2: arr(2), 3: arr(0), 1: arr(1)}
        assert ordered_keys(a) == ordered_keys(b)

    def test_non_integer_keys_fall_back_to_repr(self):
        family = {"b": arr(0), "a": arr(1)}
        assert ordered_keys(family) == ["a", "b"]


class TestMaxCoverTies:
    def test_equal_gains_pick_smallest_node_id(self):
        # All sets are singletons: every gain ties, so selection must walk
        # node ids in numeric order — 2 before 10.
        family = {10: arr(0), 2: arr(1), 7: arr(2)}
        trace = greedy_max_cover(family, 3, 3)
        assert trace.selected == [2, 7, 10]

    def test_priorities_override_id_ties(self):
        family = {1: arr(0), 2: arr(1)}
        trace = greedy_max_cover(family, 2, 2, priorities={1: 0.0, 2: 5.0})
        assert trace.selected == [2, 1]

    def test_weighted_equal_gains_pick_smallest_id(self):
        family = {10: arr(0), 2: arr(1)}
        values = np.ones(2)
        trace = weighted_greedy_max_cover(family, 2, 2, values)
        assert trace.selected == [2, 10]

    def test_budgeted_equal_ratios_keep_first_in_id_order(self):
        # Same gain, same cost: the strictly-greater comparison keeps the
        # first candidate seen, which is the numerically smallest id.
        family = {10: arr(0), 2: arr(1)}
        trace = budgeted_greedy_max_cover(family, 2.0, 2, {10: 1.0, 2: 1.0})
        assert trace.selected == [2, 10]

    def test_budgeted_best_single_tie_keeps_smallest_id(self):
        # Greedy is priced out; both singles tie, so the fallback must
        # return the first key in tie-break order.
        family = {10: arr(0, 1), 2: arr(1, 2)}
        trace = budgeted_greedy_max_cover(family, 1.0, 3, {10: 1.0, 2: 1.0})
        assert trace.selected == [2]


class TestCelfppTies:
    def test_equal_spreads_pick_ascending_node_ids(self):
        # No edges: every node's spread is exactly itself, so all marginal
        # gains tie at 1.0 and CELF++'s (-gain, node) heap must emit
        # ascending ids.
        graph = ProbabilisticDigraph(6)
        index = CascadeIndex.build(graph, 4, seed=0)
        trace = infmax_celfpp(index, 4)
        assert trace.seeds == [0, 1, 2, 3]

    def test_repeated_runs_identical(self, small_random):
        index = CascadeIndex.build(small_random, 16, seed=9)
        first = infmax_celfpp(index, 5)
        second = infmax_celfpp(index, 5)
        assert first.seeds == second.seeds
        assert first.gains == second.gains


class TestRisTies:
    def test_same_seed_same_selection(self, small_random):
        first = infmax_ris(small_random, 4, num_rr_sets=300, seed=13)
        second = infmax_ris(small_random, 4, num_rr_sets=300, seed=13)
        assert first.seeds == second.seeds
        assert first.estimated_spreads == second.estimated_spreads

    def test_edgeless_graph_ties_break_by_node_id(self):
        # Every RR set is its own target, so coverage counts are the
        # multiset of sampled targets; ties must resolve by node id.
        graph = ProbabilisticDigraph(5)
        first = infmax_ris(graph, 3, num_rr_sets=50, seed=21)
        second = infmax_ris(graph, 3, num_rr_sets=50, seed=21)
        assert first.seeds == second.seeds
        assert len(set(first.seeds)) == 3
