"""Tests for the TIM-style RR-sample budget estimation."""

import pytest

from repro.graph.generators import gnp_digraph, star_graph
from repro.influence.ris import estimate_num_rr_sets, infmax_ris
from repro.problearn.assign import assign_fixed


class TestEstimate:
    def test_positive_and_capped(self, small_random):
        theta = estimate_num_rr_sets(small_random, 3, seed=1, max_rr_sets=5000)
        assert 1 <= theta <= 5000

    def test_tighter_epsilon_needs_more_samples(self, small_random):
        loose = estimate_num_rr_sets(
            small_random, 3, epsilon=0.5, seed=2, max_rr_sets=10**9
        )
        tight = estimate_num_rr_sets(
            small_random, 3, epsilon=0.1, seed=2, max_rr_sets=10**9
        )
        assert tight >= loose

    def test_high_influence_graph_needs_fewer(self):
        """Larger KPT (easier instances) => smaller theta."""
        weak = assign_fixed(gnp_digraph(60, 0.08, seed=3), 0.02)
        strong = assign_fixed(gnp_digraph(60, 0.08, seed=3), 0.6)
        theta_weak = estimate_num_rr_sets(weak, 2, seed=4, max_rr_sets=10**9)
        theta_strong = estimate_num_rr_sets(strong, 2, seed=4, max_rr_sets=10**9)
        assert theta_strong <= theta_weak

    def test_validation(self, small_random):
        with pytest.raises(ValueError):
            estimate_num_rr_sets(small_random, 0)
        with pytest.raises(ValueError, match="epsilon"):
            estimate_num_rr_sets(small_random, 1, epsilon=1.5)

    def test_tiny_graph(self):
        g = star_graph(2, p=0.5)
        assert estimate_num_rr_sets(g, 1, seed=5) >= 1

    def test_budget_usable_end_to_end(self):
        g = star_graph(12, p=0.7)
        theta = estimate_num_rr_sets(g, 1, seed=6, max_rr_sets=4000)
        result = infmax_ris(g, 1, num_rr_sets=theta, seed=7)
        assert result.seeds == [0]
