"""Tests for repro.influence.maxcover and its weighted/budgeted variants."""

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.influence.maxcover import (
    budgeted_greedy_max_cover,
    greedy_max_cover,
    weighted_greedy_max_cover,
)


def arr(*xs):
    return np.array(xs, dtype=np.int64)


class TestGreedyMaxCover:
    def test_picks_largest_first(self):
        sets = {"a": arr(0, 1, 2), "b": arr(3), "c": arr(4, 5)}
        trace = greedy_max_cover(sets, 2, 6)
        assert trace.selected == ["a", "c"]
        assert trace.coverage == [3.0, 5.0]

    def test_marginal_not_raw_size(self):
        # "b" is bigger but overlaps "a"; "c" adds more marginally.
        sets = {"a": arr(0, 1, 2, 3), "b": arr(0, 1, 2), "c": arr(7, 8)}
        trace = greedy_max_cover(sets, 2, 9)
        assert trace.selected == ["a", "c"]

    def test_k_larger_than_family(self):
        trace = greedy_max_cover({"a": arr(0)}, 5, 2)
        assert trace.selected == ["a"]

    def test_empty_family_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            greedy_max_cover({}, 1, 3)

    def test_out_of_universe_rejected(self):
        with pytest.raises(ValueError, match="universe"):
            greedy_max_cover({"a": arr(5)}, 1, 3)

    def test_deterministic_tie_breaking(self):
        sets = {1: arr(0), 2: arr(1), 3: arr(2)}
        a = greedy_max_cover(sets, 2, 3).selected
        b = greedy_max_cover(sets, 2, 3).selected
        assert a == b

    @given(
        st.dictionaries(
            st.integers(0, 9),
            st.frozensets(st.integers(0, 11), max_size=6),
            min_size=1,
            max_size=8,
        ),
        st.integers(1, 4),
    )
    def test_greedy_guarantee(self, family, k):
        """Coverage >= (1 - 1/e) * OPT on brute-forceable instances."""
        sets = {key: np.fromiter(sorted(s), dtype=np.int64) for key, s in family.items()}
        trace = greedy_max_cover(sets, k, 12)
        achieved = trace.coverage[-1] if trace.coverage else 0.0
        best = 0
        keys = list(sets)
        for comb in combinations(keys, min(k, len(keys))):
            covered = set()
            for key in comb:
                covered |= set(sets[key].tolist())
            best = max(best, len(covered))
        assert achieved >= (1 - 1 / np.e) * best - 1e-9


class TestWeighted:
    def test_values_steer_selection(self):
        sets = {"small": arr(0), "big": arr(1, 2)}
        values = np.array([10.0, 1.0, 1.0])
        trace = weighted_greedy_max_cover(sets, 1, 3, values)
        assert trace.selected == ["small"]

    def test_uniform_values_match_unweighted(self):
        sets = {"a": arr(0, 1), "b": arr(2, 3, 4), "c": arr(0, 4)}
        uw = greedy_max_cover(sets, 2, 5)
        w = weighted_greedy_max_cover(sets, 2, 5, np.ones(5))
        assert uw.selected == w.selected
        assert uw.coverage == pytest.approx(w.coverage)

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            weighted_greedy_max_cover({"a": arr(0)}, 1, 1, np.array([-1.0]))

    def test_shape_checked(self):
        with pytest.raises(ValueError, match="shape"):
            weighted_greedy_max_cover({"a": arr(0)}, 1, 2, np.array([1.0]))


class TestBudgeted:
    def test_respects_budget(self):
        sets = {"a": arr(0, 1), "b": arr(2, 3), "c": arr(4)}
        costs = {"a": 2.0, "b": 2.0, "c": 1.0}
        trace = budgeted_greedy_max_cover(sets, 3.0, 5, costs)
        spent = sum(costs[k] for k in trace.selected)
        assert spent <= 3.0

    def test_cost_benefit_ordering(self):
        # "cheap" covers 2 per unit cost; "dear" covers 1.5 per unit.
        sets = {"cheap": arr(0, 1), "dear": arr(2, 3, 4)}
        costs = {"cheap": 1.0, "dear": 2.0}
        trace = budgeted_greedy_max_cover(sets, 1.0, 5, costs)
        assert trace.selected == ["cheap"]

    def test_single_set_fallback(self):
        # Greedy-by-ratio takes tiny sets and exhausts the budget; the best
        # single affordable set covers more.
        sets = {"t1": arr(0), "t2": arr(1), "huge": arr(2, 3, 4, 5, 6)}
        costs = {"t1": 0.1, "t2": 0.1, "huge": 5.0}
        trace = budgeted_greedy_max_cover(sets, 5.0, 7, costs)
        assert trace.coverage[-1] >= 5.0

    def test_missing_cost_rejected(self):
        with pytest.raises(ValueError, match="missing cost"):
            budgeted_greedy_max_cover({"a": arr(0)}, 1.0, 1, {})

    def test_non_positive_budget_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            budgeted_greedy_max_cover({"a": arr(0)}, 0.0, 1, {"a": 1.0})

    def test_non_positive_cost_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            budgeted_greedy_max_cover({"a": arr(0)}, 1.0, 1, {"a": 0.0})
