"""Tests for repro.influence.spread — the incremental spread oracle."""

import numpy as np
import pytest

from repro.cascades.index import CascadeIndex
from repro.influence.spread import (
    SpreadOracle,
    evaluate_spread_curve,
    monte_carlo_spread,
)


@pytest.fixture
def oracle(small_random) -> SpreadOracle:
    return SpreadOracle(CascadeIndex.build(small_random, 32, seed=3))


class TestOracle:
    def test_initial_state(self, oracle):
        assert oracle.current_spread() == 0.0
        assert oracle.seeds == []

    def test_initial_gains_match_singleton_spread(self, oracle):
        gains = oracle.initial_gains()
        for v in (0, 7, 21):
            assert gains[v] == pytest.approx(oracle.spread_of([v]))

    def test_add_seed_realises_gain(self, oracle):
        gain = oracle.add_seed(5)
        assert oracle.current_spread() == pytest.approx(gain)
        assert oracle.seeds == [5]

    def test_marginal_gain_decreases_after_overlap(self, oracle):
        g_before = oracle.marginal_gain(7)
        oracle.add_seed(7)
        assert oracle.marginal_gain(7) == 0.0
        assert g_before > 0.0

    def test_duplicate_seed_rejected(self, oracle):
        oracle.add_seed(2)
        with pytest.raises(ValueError, match="already"):
            oracle.add_seed(2)

    def test_spread_of_matches_committed_spread(self, oracle):
        seeds = [1, 9, 14]
        expected = oracle.spread_of(seeds)
        for s in seeds:
            oracle.add_seed(s)
        assert oracle.current_spread() == pytest.approx(expected)

    def test_submodularity_of_marginal_gains(self, small_random):
        """gain(w | S) >= gain(w | T) whenever S subset of T — on the same
        sampled worlds this holds exactly, not just in expectation."""
        index = CascadeIndex.build(small_random, 16, seed=4)
        for w in (3, 12, 25):
            small = SpreadOracle(index)
            small.add_seed(0)
            big = SpreadOracle(index)
            big.add_seed(0)
            big.add_seed(1)
            big.add_seed(2)
            if w in (0, 1, 2):
                continue
            assert small.marginal_gain(w) >= big.marginal_gain(w) - 1e-12


class TestSpreadAgreement:
    def test_oracle_agrees_with_direct_mc(self, fig1):
        index = CascadeIndex.build(fig1, 4000, seed=1)
        oracle = SpreadOracle(index)
        via_index = oracle.spread_of([4])
        via_mc = monte_carlo_spread(fig1, [4], 4000, seed=2)
        assert via_index == pytest.approx(via_mc, abs=0.1)


class TestSpreadCurve:
    def test_curve_monotone_nondecreasing(self, small_random):
        curve = evaluate_spread_curve(
            small_random, [0, 5, 10, 15], num_worlds=32, seed=6
        )
        assert np.all(np.diff(curve) >= -1e-12)

    def test_curve_length(self, small_random):
        curve = evaluate_spread_curve(small_random, [0, 1], num_worlds=8, seed=6)
        assert curve.shape == (2,)

    def test_shared_index_reused(self, small_random):
        index = CascadeIndex.build(small_random, 16, seed=6, reduce=False)
        a = evaluate_spread_curve(small_random, [0, 1], index=index)
        b = evaluate_spread_curve(small_random, [0, 1], index=index)
        assert np.array_equal(a, b)
