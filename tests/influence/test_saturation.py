"""Tests for repro.influence.saturation — the MG_10/MG_1 machinery."""

import numpy as np
import pytest

from repro.cascades.index import CascadeIndex
from repro.core.sphere import SphereOfInfluence
from repro.influence.saturation import (
    _ratio_from_ranking,
    coverage_gain_ratios,
    marginal_gain_ratios,
)


class TestRatio:
    def test_basic_ratio(self):
        ranking = np.array([10.0, 9, 8, 7, 6, 5, 4, 3, 2, 1])
        assert _ratio_from_ranking(ranking, 10) == pytest.approx(0.1)

    def test_short_ranking_is_saturated(self):
        assert _ratio_from_ranking(np.array([5.0, 4.0]), 10) == 1.0

    def test_zero_best_gain_is_saturated(self):
        assert _ratio_from_ranking(np.zeros(20), 10) == 1.0

    def test_flat_ranking_ratio_one(self):
        assert _ratio_from_ranking(np.full(20, 3.0), 10) == 1.0


class TestMarginalGainRatios:
    def test_curve_shape_and_range(self, small_random):
        index = CascadeIndex.build(small_random, 16, seed=1)
        curve = marginal_gain_ratios(index, 4, first_iteration=1)
        assert curve.method == "InfMax_std"
        assert curve.first_iteration == 1
        assert curve.ratios.shape == (4,)
        assert np.all((curve.ratios >= 0) & (curve.ratios <= 1))

    def test_validation(self, small_random):
        index = CascadeIndex.build(small_random, 4, seed=1)
        with pytest.raises(ValueError):
            marginal_gain_ratios(index, 0)


class TestCoverageGainRatios:
    def _spheres(self, n, members_fn):
        return {
            v: SphereOfInfluence(
                sources=(v,),
                members=np.array(sorted(members_fn(v)), dtype=np.int64),
                cost=0.1,
                num_samples=4,
            )
            for v in range(n)
        }

    def test_distinct_sizes_stay_discriminative(self):
        # Sphere sizes 1..n: the ratio stays < 1 early on.
        spheres = self._spheres(30, lambda v: set(range(v + 1)))
        curve = coverage_gain_ratios(spheres, 30, 3, first_iteration=0)
        assert curve.method == "InfMax_TC"
        assert curve.ratios[0] < 1.0

    def test_identical_spheres_saturate_immediately(self):
        spheres = self._spheres(15, lambda v: {0, 1})
        curve = coverage_gain_ratios(spheres, 15, 2, first_iteration=0)
        assert curve.ratios[0] == 1.0

    def test_runs_out_of_candidates_gracefully(self):
        spheres = self._spheres(3, lambda v: {v})
        curve = coverage_gain_ratios(spheres, 3, 10, first_iteration=0)
        assert len(curve.ratios) <= 3
