"""Tests for infmax_std_mc — the paper-era noisy spread estimator."""

import numpy as np
import pytest

from repro.graph.generators import path_graph, star_graph
from repro.influence.greedy_std import infmax_std_mc


class TestBasics:
    def test_selects_k_distinct_seeds(self, small_random):
        trace = infmax_std_mc(small_random, 4, num_simulations=16, seed=1,
                              pool_size=64)
        assert len(trace.seeds) == 4
        assert len(set(trace.seeds)) == 4

    def test_spreads_nondecreasing(self, small_random):
        trace = infmax_std_mc(small_random, 5, num_simulations=16, seed=1,
                              pool_size=64)
        assert np.all(np.diff(trace.spreads) >= -1e-9)

    def test_deterministic_in_seed(self, small_random):
        a = infmax_std_mc(small_random, 3, num_simulations=16, seed=7,
                          pool_size=64)
        b = infmax_std_mc(small_random, 3, num_simulations=16, seed=7,
                          pool_size=64)
        assert a.seeds == b.seeds

    def test_star_hub_first_with_ample_samples(self):
        g = star_graph(12, p=0.9)
        trace = infmax_std_mc(g, 1, num_simulations=128, seed=2, pool_size=512)
        assert trace.seeds == [0]

    def test_deterministic_graph_matches_truth(self):
        """With p=1 everywhere there is no estimation noise at all."""
        g = path_graph(6, p=1.0)
        trace = infmax_std_mc(g, 1, num_simulations=8, seed=3, pool_size=16)
        assert trace.seeds == [0]
        assert trace.spreads[0] == 6.0


class TestValidation:
    def test_k_bounds(self, small_random):
        with pytest.raises(ValueError):
            infmax_std_mc(small_random, 0)
        with pytest.raises(ValueError, match="exceeds"):
            infmax_std_mc(small_random, 10_000, num_simulations=4, pool_size=8)

    def test_pool_must_cover_simulations(self, small_random):
        with pytest.raises(ValueError, match="pool_size"):
            infmax_std_mc(small_random, 1, num_simulations=32, pool_size=16)

    def test_bad_simulations(self, small_random):
        with pytest.raises(ValueError):
            infmax_std_mc(small_random, 1, num_simulations=0)


class TestNoiseRegime:
    def test_noisier_than_crn_on_late_gains(self, small_random):
        """The realised spread of the noisy variant never exceeds the CRN
        greedy's by more than evaluation tolerance (CRN is the stronger
        estimator on the same budget) — checked on a fresh-world curve."""
        from repro.cascades.index import CascadeIndex
        from repro.influence.greedy_std import infmax_std
        from repro.influence.spread import evaluate_spread_curve

        k = 6
        noisy = infmax_std_mc(small_random, k, num_simulations=8, seed=5,
                              pool_size=32)
        index = CascadeIndex.build(small_random, 32, seed=5)
        crn = infmax_std(index, k)
        eval_index = CascadeIndex.build(small_random, 128, seed=99, reduce=False)
        curve_noisy = evaluate_spread_curve(
            small_random, noisy.seeds, index=eval_index
        )
        curve_crn = evaluate_spread_curve(small_random, crn.seeds, index=eval_index)
        assert curve_noisy[-1] <= curve_crn[-1] + 2.0
