"""Tests for repro.influence.greedy_std — CELF vs plain greedy."""

import numpy as np
import pytest

from repro.cascades.index import CascadeIndex
from repro.graph.generators import star_graph
from repro.influence.greedy_std import infmax_std


class TestBasics:
    def test_selects_k_seeds(self, small_random):
        index = CascadeIndex.build(small_random, 16, seed=1)
        trace = infmax_std(index, 4)
        assert len(trace.seeds) == 4
        assert len(set(trace.seeds)) == 4
        assert len(trace.spreads) == 4

    def test_spread_curve_nondecreasing(self, small_random):
        index = CascadeIndex.build(small_random, 16, seed=1)
        trace = infmax_std(index, 6)
        assert np.all(np.diff(trace.spreads) >= -1e-12)

    def test_star_hub_selected_first(self):
        g = star_graph(12, p=0.9)
        index = CascadeIndex.build(g, 64, seed=2)
        trace = infmax_std(index, 1)
        assert trace.seeds == [0]

    def test_k_validation(self, small_random):
        index = CascadeIndex.build(small_random, 4, seed=1)
        with pytest.raises(ValueError):
            infmax_std(index, 0)
        with pytest.raises(ValueError, match="exceeds"):
            infmax_std(index, 10_000)

    def test_gains_match_spread_deltas(self, small_random):
        index = CascadeIndex.build(small_random, 16, seed=1)
        trace = infmax_std(index, 5)
        deltas = np.diff([0.0, *trace.spreads])
        np.testing.assert_allclose(trace.gains, deltas, atol=1e-9)


class TestCelfEquivalence:
    def test_lazy_and_plain_agree_on_spread(self, small_random):
        """CELF must produce the same greedy value curve as exhaustive
        re-evaluation (it may differ in tie-broken seeds)."""
        index = CascadeIndex.build(small_random, 24, seed=7)
        lazy = infmax_std(index, 5, lazy=True)
        plain = infmax_std(index, 5, lazy=False)
        np.testing.assert_allclose(lazy.spreads, plain.spreads, atol=1e-9)

    def test_lazy_uses_fewer_evaluations(self, small_random):
        index = CascadeIndex.build(small_random, 24, seed=7)
        lazy = infmax_std(index, 5, lazy=True)
        plain = infmax_std(index, 5, lazy=False)
        assert lazy.evaluations <= plain.evaluations


class TestRankings:
    def test_rankings_only_in_plain_mode(self, small_random):
        index = CascadeIndex.build(small_random, 8, seed=7)
        with pytest.raises(ValueError, match="lazy=False"):
            infmax_std(index, 2, lazy=True, record_rankings=True)

    def test_rankings_recorded_and_sorted(self, small_random):
        index = CascadeIndex.build(small_random, 8, seed=7)
        trace = infmax_std(index, 3, lazy=False, record_rankings=True)
        assert len(trace.gain_rankings) == 3
        for ranking in trace.gain_rankings:
            assert np.all(np.diff(ranking) <= 1e-12)

    def test_top_of_ranking_is_realised_gain(self, small_random):
        index = CascadeIndex.build(small_random, 8, seed=7)
        trace = infmax_std(index, 3, lazy=False, record_rankings=True)
        for j in range(3):
            assert trace.gain_rankings[j][0] == pytest.approx(trace.gains[j])
