"""Failure injection and adversarial-input robustness.

Production code meets corrupted files, degenerate graphs and hostile
arguments; these tests pin down that every such case fails loudly (a clear
exception) or degrades gracefully — never silently wrong.
"""

import numpy as np
import pytest

from repro.cascades.index import CascadeIndex
from repro.core.store import SphereStore
from repro.core.typical_cascade import TypicalCascadeComputer
from repro.graph.digraph import ProbabilisticDigraph
from repro.graph.io import read_edge_list, write_edge_list
from repro.median.samples import SampleCollection
from repro.store.errors import StoreFormatError


class TestCorruptedFiles:
    def test_truncated_index_file(self, small_random, tmp_path):
        index = CascadeIndex.build(small_random, 4, seed=1)
        path = tmp_path / "index.npz"
        index.save(path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(StoreFormatError, match="not a readable"):
            CascadeIndex.load(path)

    def test_wrong_format_index_file(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(StoreFormatError, match="not a readable"):
            CascadeIndex.load(path)

    def test_missing_index_file_stays_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            CascadeIndex.load(tmp_path / "never-written.npz")

    def test_truncated_sphere_store(self, small_random, tmp_path):
        index = CascadeIndex.build(small_random, 4, seed=1)
        store = TypicalCascadeComputer(index).compute_store([0, 1])
        path = tmp_path / "spheres.npz"
        store.save(path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(StoreFormatError, match="not a readable"):
            SphereStore.load(path)

    def test_garbage_sphere_store(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"\x00\x01 definitely not a zip")
        with pytest.raises(StoreFormatError, match="not a readable"):
            SphereStore.load(path)

    def test_npz_with_missing_arrays(self, tmp_path):
        path = tmp_path / "partial.npz"
        np.savez(path, graph_indptr=np.array([0, 0]))
        with pytest.raises(StoreFormatError, match="missing array"):
            CascadeIndex.load(path)

    def test_corrupted_sphere_store(self, tmp_path):
        path = tmp_path / "spheres.npz"
        np.savez(path, nodes=np.array([0]))  # missing everything else
        with pytest.raises(StoreFormatError, match="missing array"):
            SphereStore.load(path)

    def test_malformed_edge_list(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1 not_a_number\n")
        with pytest.raises(ValueError, match="line 1"):
            read_edge_list(path)

    def test_edge_list_roundtrip_survives_rewrites(self, small_random, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(small_random, path)
        write_edge_list(read_edge_list(path), path)  # write-read-write
        assert read_edge_list(path) == small_random


class TestDegenerateGraphs:
    def test_single_node_graph(self):
        g = ProbabilisticDigraph(1)
        index = CascadeIndex.build(g, 4, seed=1)
        sphere = TypicalCascadeComputer(index).compute(0)
        assert sphere.as_set() == {0}
        assert sphere.cost == 0.0

    def test_graph_with_all_isolated_nodes(self):
        g = ProbabilisticDigraph(6)
        index = CascadeIndex.build(g, 4, seed=1)
        spheres = TypicalCascadeComputer(index).compute_all()
        for node, sphere in spheres.items():
            assert sphere.as_set() == {node}

    def test_two_node_minimal_edge(self):
        g = ProbabilisticDigraph(2, [(0, 1, 1e-9 + 1e-4)])
        index = CascadeIndex.build(g, 8, seed=1)
        sphere = TypicalCascadeComputer(index).compute(0)
        assert 0 in sphere.as_set()

    def test_near_certain_probabilities(self):
        g = ProbabilisticDigraph(3, [(0, 1, 1.0 - 1e-12), (1, 2, 1.0)])
        index = CascadeIndex.build(g, 8, seed=1)
        sphere = TypicalCascadeComputer(index).compute(0)
        assert sphere.as_set() == {0, 1, 2}

    def test_complete_bidirectional_graph(self):
        edges = [(u, v, 0.9) for u in range(5) for v in range(5) if u != v]
        g = ProbabilisticDigraph(5, edges)
        index = CascadeIndex.build(g, 16, seed=2)
        sphere = TypicalCascadeComputer(index).compute(0)
        assert sphere.size >= 4  # nearly always everything


class TestHostileArguments:
    def test_sample_collection_rejects_2d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            SampleCollection(4, [np.zeros((2, 2), dtype=np.int64)])

    def test_float_node_ids_rejected_by_graph(self):
        with pytest.raises((TypeError, ValueError)):
            ProbabilisticDigraph(3, [(0.5, 1, 0.5)])

    def test_negative_universe(self):
        with pytest.raises(ValueError):
            SampleCollection(-1, [np.zeros(0, dtype=np.int64)])

    def test_index_on_zero_node_graph(self):
        g = ProbabilisticDigraph(0)
        index = CascadeIndex.build(g, 2, seed=1)
        assert index.num_nodes == 0
        with pytest.raises(ValueError):
            index.cascade(0, 0)
