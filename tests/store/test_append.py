"""Tests for repro.store.append — incremental growth of a saved index."""

import numpy as np
import pytest

from repro.cascades.index import CascadeIndex
from repro.runtime.errors import InjectedFault
from repro.runtime.faults import FaultPlan, FaultSpec, fault_scope
from repro.store import append_worlds, read_header, read_index, write_index
from repro.store.append import FAULT_SITE_STAGE
from repro.store.errors import StoreError, StoreIntegrityError
from repro.store.fingerprint import digest_of_index


def _dir_bytes(root):
    """Every file under ``root`` with its exact bytes — the identity check."""
    return {
        p.relative_to(root).as_posix(): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


@pytest.fixture
def store_path(small_random, tmp_path):
    index = CascadeIndex.build(small_random, 5, seed=31)
    path = tmp_path / "idx"
    write_index(index, path)
    return path


class TestAppend:
    def test_append_equals_direct_build(self, small_random, store_path):
        header = append_worlds(store_path, 3, verify="full")
        assert header.num_worlds == 8
        direct = CascadeIndex.build(small_random, 8, seed=31)
        appended = read_index(store_path, verify="full")
        assert digest_of_index(appended) == digest_of_index(direct)
        np.testing.assert_array_equal(
            appended.component_matrix, direct.component_matrix
        )

    def test_append_twice_equals_append_once(self, small_random, tmp_path):
        once = tmp_path / "once"
        twice = tmp_path / "twice"
        index = CascadeIndex.build(small_random, 4, seed=8)
        write_index(index, once)
        write_index(index, twice)
        append_worlds(once, 6)
        append_worlds(twice, 2)
        append_worlds(twice, 4)
        assert (
            read_header(once).content_digest == read_header(twice).content_digest
        )

    def test_appended_cascades_queryable(self, store_path):
        append_worlds(store_path, 3)
        index = read_index(store_path)
        for world in range(8):
            cascade = index.cascade(0, world)
            assert 0 in cascade

    def test_parallel_append_identical(self, small_random, tmp_path):
        serial = tmp_path / "serial"
        parallel = tmp_path / "parallel"
        index = CascadeIndex.build(small_random, 4, seed=8)
        write_index(index, serial)
        write_index(index, parallel)
        append_worlds(serial, 4, n_jobs=1)
        append_worlds(parallel, 4, n_jobs=2)
        assert (
            read_header(serial).content_digest
            == read_header(parallel).content_digest
        )

    def test_header_provenance_updated(self, store_path):
        before = read_header(store_path)
        after = append_worlds(store_path, 2)
        assert after.num_worlds == before.num_worlds + 2
        assert after.seed_entropy == before.seed_entropy
        assert after.graph_fingerprint == before.graph_fingerprint
        assert after.content_digest != before.content_digest

    def test_invalid_count_rejected(self, store_path):
        with pytest.raises(ValueError):
            append_worlds(store_path, 0)


class TestAppendGuards:
    def test_store_without_entropy_refuses(self, small_random, tmp_path):
        index = CascadeIndex.build(small_random, 4, seed=3)
        npz = tmp_path / "legacy.npz"
        index.save(npz)
        reloaded = CascadeIndex.load(npz)  # npz drops the sampler seed
        path = tmp_path / "no-entropy"
        write_index(reloaded, path)
        with pytest.raises(StoreError, match="no seed entropy"):
            append_worlds(path, 2)

    def test_torn_store_detected_before_append(self, store_path):
        victim = store_path / "members.npy"
        victim.write_bytes(victim.read_bytes()[:-8])
        with pytest.raises(StoreIntegrityError):
            append_worlds(store_path, 2)


class TestFailedAppendCleanup:
    @pytest.mark.parametrize("victim", ["node_comp", "dag_targets", "members"])
    def test_failed_append_leaves_store_byte_identical(self, store_path, victim):
        """An exception mid-staging must leave no trace: same files, same
        bytes, no ``*.npy.tmp`` leftovers — satellite of the fault-tolerant
        runtime (see ``append_worlds``'s try/finally)."""
        before = _dir_bytes(store_path)
        plan = FaultPlan.of(
            FaultSpec(site=FAULT_SITE_STAGE, kind="error", key=victim)
        )
        with fault_scope(plan), pytest.raises(InjectedFault):
            append_worlds(store_path, 2)
        assert _dir_bytes(store_path) == before
        # and the cleaned-up store still appends fine afterwards
        header = append_worlds(store_path, 2)
        assert header.num_worlds == 7

    def test_cleaned_after_failure_matches_direct_build(
        self, small_random, store_path
    ):
        plan = FaultPlan.of(
            FaultSpec(site=FAULT_SITE_STAGE, kind="error", key="members_offsets")
        )
        with fault_scope(plan), pytest.raises(InjectedFault):
            append_worlds(store_path, 3)
        append_worlds(store_path, 3)
        direct = CascadeIndex.build(small_random, 8, seed=31)
        appended = read_index(store_path, verify="full")
        assert digest_of_index(appended) == digest_of_index(direct)


class TestLoadedIndexExtend:
    def test_extend_of_loaded_matches_direct_build(self, small_random, store_path):
        loaded = read_index(store_path)
        loaded.extend(3)
        direct = CascadeIndex.build(small_random, 8, seed=31)
        assert loaded.num_worlds == 8
        assert digest_of_index(loaded) == digest_of_index(direct)
