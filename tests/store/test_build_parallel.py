"""Tests for repro.store.build — the parallel deterministic build pipeline."""

import numpy as np
import pytest

from repro.cascades.index import CascadeIndex
from repro.store import build_index
from repro.store.build import _chunk_bounds, resolve_jobs, sampled_condensations
from repro.store.fingerprint import digest_of_index


class TestChunking:
    def test_bounds_cover_range_exactly(self):
        for count, chunks in [(7, 3), (1, 1), (16, 16), (5, 8)]:
            bounds = _chunk_bounds(0, count, chunks)
            assert bounds[0][0] == 0
            assert bounds[-1][1] == count
            for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                assert stop == start

    def test_bounds_respect_start_offset(self):
        bounds = _chunk_bounds(10, 6, 2)
        assert bounds[0][0] == 10
        assert bounds[-1][1] == 16

    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1


class TestParallelParity:
    def test_parallel_build_bit_identical_to_serial(self, small_random):
        serial = CascadeIndex.build(small_random, 6, seed=2016)
        parallel = CascadeIndex.build(small_random, 6, seed=2016, n_jobs=2)
        np.testing.assert_array_equal(
            parallel.component_matrix, serial.component_matrix
        )
        for w in range(6):
            s, p = serial.condensation(w), parallel.condensation(w)
            np.testing.assert_array_equal(p.node_comp, s.node_comp)
            np.testing.assert_array_equal(p.indptr, s.indptr)
            np.testing.assert_array_equal(p.targets, s.targets)
            np.testing.assert_array_equal(p.comp_sizes, s.comp_sizes)
        assert digest_of_index(parallel) == digest_of_index(serial)

    def test_parity_without_reduction(self, small_random):
        serial = CascadeIndex.build(small_random, 4, seed=9, reduce=False)
        parallel = CascadeIndex.build(
            small_random, 4, seed=9, reduce=False, n_jobs=2
        )
        assert digest_of_index(parallel) == digest_of_index(serial)

    def test_build_index_helper_matches_classmethod(self, small_random):
        via_helper = build_index(small_random, 4, seed=77, n_jobs=2)
        via_method = CascadeIndex.build(small_random, 4, seed=77)
        assert digest_of_index(via_helper) == digest_of_index(via_method)

    def test_sampled_condensations_start_offset(self, small_random):
        full = sampled_condensations(small_random, 6, entropy=55)
        tail = sampled_condensations(small_random, 2, entropy=55, start=4)
        for got, want in zip(tail, full[4:]):
            np.testing.assert_array_equal(got.node_comp, want.node_comp)
            np.testing.assert_array_equal(got.targets, want.targets)

    def test_spawned_entropy_tuple_survives_roundtrip(self, small_random, tmp_path):
        child = np.random.SeedSequence(4).spawn(1)[0]  # tuple-valued spawn_key
        index = CascadeIndex.build(small_random, 3, seed=child)
        assert index.seed_entropy == 4
        index.save(tmp_path / "idx")
        loaded = CascadeIndex.load(tmp_path / "idx")
        assert loaded.seed_entropy == 4

    def test_invalid_sample_count_rejected(self, small_random):
        with pytest.raises(ValueError):
            sampled_condensations(small_random, 0, entropy=1)
