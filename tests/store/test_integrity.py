"""Read-time corruption quarantine and the offline store scrub."""

import pytest

from repro.cascades.index import CascadeIndex
from repro.store import read_index, scrub_store, write_index
from repro.store.errors import (
    CorruptColumnError,
    StoreFormatError,
    StoreIntegrityError,
)
from repro.store.format import ARRAY_DTYPES
from repro.store.integrity import ColumnIntegrity
from repro.store.header import IndexStoreHeader


@pytest.fixture
def index(small_random) -> CascadeIndex:
    return CascadeIndex.build(small_random, 6, seed=321)


@pytest.fixture
def store_path(index, tmp_path):
    path = tmp_path / "idx"
    write_index(index, path)
    return path


def flip_byte(path, offset=-40):
    data = bytearray(path.read_bytes())
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))


class TestScrubStore:
    def test_clean_store_scrubs_clean(self, store_path):
        report = scrub_store(store_path)
        assert report.ok
        assert report.corrupt == ()
        assert sorted(c.name for c in report.columns) == sorted(ARRAY_DTYPES)
        for column in report.columns:
            assert column.ok
            assert column.actual_sha256 == column.expected_sha256
            assert column.problem is None

    def test_flipped_bit_is_reported(self, store_path):
        flip_byte(store_path / "members.npy")
        report = scrub_store(store_path)
        assert not report.ok
        assert report.corrupt == ("members",)
        damaged = {c.name: c for c in report.columns}["members"]
        assert damaged.problem == "sha256 mismatch"
        assert damaged.actual_sha256 != damaged.expected_sha256

    def test_truncation_and_missing_file_both_reported(self, store_path):
        full = (store_path / "dag_targets.npy").read_bytes()
        (store_path / "dag_targets.npy").write_bytes(full[: len(full) // 2])
        (store_path / "graph_probs.npy").unlink()
        report = scrub_store(store_path)
        assert report.corrupt == ("dag_targets", "graph_probs")
        by_name = {c.name: c for c in report.columns}
        assert "size mismatch" in by_name["dag_targets"].problem
        assert by_name["graph_probs"].problem == "missing"
        # The scrub continues past failures: every column got a verdict.
        assert len(report.columns) == len(ARRAY_DTYPES)

    def test_to_dict_is_json_shaped(self, store_path):
        flip_byte(store_path / "node_comp.npy")
        payload = scrub_store(store_path).to_dict()
        assert payload["ok"] is False
        assert payload["corrupt"] == ["node_comp"]
        assert {c["name"] for c in payload["columns"]} == set(ARRAY_DTYPES)

    def test_non_store_path_raises(self, tmp_path):
        with pytest.raises(StoreFormatError, match="not a cascade-index store"):
            scrub_store(tmp_path / "nowhere")


class TestLazyVerification:
    def test_lazy_open_defers_payload_columns(self, store_path, index):
        loaded = read_index(store_path, verify="lazy")
        guard = loaded.store_integrity
        assert guard is not None
        # Graph and offset columns were hashed at open; payloads were not.
        assert "graph_targets" in guard.verified()
        assert "members" not in guard.verified()
        loaded.world_members(0)
        assert "members" in guard.verified()

    def test_lazy_results_match_eager(self, store_path):
        import numpy as np

        lazy = read_index(store_path, verify="lazy")
        full = read_index(store_path, verify="full")
        for world in range(lazy.num_worlds):
            np.testing.assert_array_equal(
                lazy.cascade(1, world), full.cascade(1, world)
            )

    def test_corrupt_payload_column_opens_then_quarantines(self, store_path):
        flip_byte(store_path / "members.npy")
        loaded = read_index(store_path, verify="lazy")  # open succeeds
        with pytest.raises(CorruptColumnError) as excinfo:
            loaded.world_members(0)
        assert excinfo.value.column == "members"
        assert loaded.store_integrity.quarantined() == ("members",)
        # Second touch fast-fails from the quarantine set, no re-hash.
        with pytest.raises(CorruptColumnError):
            loaded.world_members(1)
        # Columns the damage does not reach still serve.
        assert loaded.condensation(0).num_components > 0

    def test_corrupt_graph_column_fails_the_open(self, store_path):
        flip_byte(store_path / "graph_targets.npy")
        with pytest.raises(CorruptColumnError, match="graph_targets"):
            read_index(store_path, verify="lazy")

    def test_truncated_column_fails_the_open_fast(self, store_path):
        full = (store_path / "members.npy").read_bytes()
        (store_path / "members.npy").write_bytes(full[: len(full) // 2])
        with pytest.raises(StoreIntegrityError, match="truncated"):
            read_index(store_path, verify="lazy")

    def test_full_verify_still_rejects_upfront(self, store_path):
        flip_byte(store_path / "members.npy")
        with pytest.raises(StoreIntegrityError):
            read_index(store_path, verify="full")

    def test_unknown_verify_regime_rejected(self, store_path):
        with pytest.raises(ValueError, match="verify must be"):
            read_index(store_path, verify="paranoid")


class TestColumnIntegrity:
    def test_mark_verified_skips_hashing(self, store_path):
        header = IndexStoreHeader.from_json(
            (store_path / "header.json").read_text()
        )
        flip_byte(store_path / "members.npy")
        guard = ColumnIntegrity(store_path, header)
        guard.mark_verified(["members"])
        guard.verify("members")  # trusted by fiat, no exception

    def test_on_quarantine_callback_fires_once(self, store_path):
        header = IndexStoreHeader.from_json(
            (store_path / "header.json").read_text()
        )
        flip_byte(store_path / "members.npy")
        seen = []
        guard = ColumnIntegrity(store_path, header, on_quarantine=seen.append)
        for _ in range(3):
            with pytest.raises(CorruptColumnError):
                guard.verify("members")
        assert seen == ["members"]

    def test_unknown_column_is_quarantined(self, store_path):
        header = IndexStoreHeader.from_json(
            (store_path / "header.json").read_text()
        )
        guard = ColumnIntegrity(store_path, header)
        with pytest.raises(CorruptColumnError, match="not in the header"):
            guard.verify("no_such_column")

    def test_hashing_happens_outside_the_guard_lock(
        self, store_path, monkeypatch
    ):
        """Health probes must not stall behind a first-touch column hash.

        ``_verify_one`` used to stream the SHA-256 while holding the guard
        lock, so ``quarantined()`` (the /healthz path) blocked for the
        duration of a multi-megabyte hash — found by the REP703
        blocking-under-lock checker and restructured to hash unlocked.
        """
        import threading

        from repro.store import integrity as integrity_mod

        header = IndexStoreHeader.from_json(
            (store_path / "header.json").read_text()
        )
        guard = ColumnIntegrity(store_path, header)
        hashing = threading.Event()
        release = threading.Event()
        real_digest = integrity_mod.digest_file

        def slow_digest(path):
            hashing.set()
            assert release.wait(timeout=10)
            return real_digest(path)

        monkeypatch.setattr(integrity_mod, "digest_file", slow_digest)
        toucher = threading.Thread(target=guard.verify, args=("members",))
        toucher.start()
        try:
            assert hashing.wait(timeout=10)
            probed = threading.Event()

            def probe():
                guard.quarantined()
                guard.verified()
                probed.set()

            threading.Thread(target=probe).start()
            assert probed.wait(timeout=2.0), (
                "quarantined()/verified() stalled behind an in-flight "
                "column hash"
            )
        finally:
            release.set()
            toucher.join(timeout=10)
        assert "members" in guard.verified()
