"""Tests for repro.store.format — the on-disk columnar index store."""

import json

import numpy as np
import pytest

from repro.cascades.index import CascadeIndex
from repro.store import (
    FORMAT_VERSION,
    check_files,
    read_header,
    read_index,
    write_index,
)
from repro.store.errors import StoreFormatError, StoreIntegrityError
from repro.store.fingerprint import digest_of_index, graph_fingerprint
from repro.store.format import ARRAY_DTYPES, _LazyWorldList


@pytest.fixture
def index(small_random) -> CascadeIndex:
    return CascadeIndex.build(small_random, 8, seed=123)


@pytest.fixture
def store_path(index, tmp_path):
    path = tmp_path / "idx"
    write_index(index, path)
    return path


class TestRoundtrip:
    def test_every_cascade_identical(self, index, store_path):
        loaded = CascadeIndex.load(store_path)
        assert loaded.num_worlds == index.num_worlds
        assert loaded.num_nodes == index.num_nodes
        for node in range(index.num_nodes):
            for world in range(index.num_worlds):
                np.testing.assert_array_equal(
                    loaded.cascade(node, world), index.cascade(node, world)
                )

    def test_cascade_sizes_identical(self, index, store_path):
        loaded = CascadeIndex.load(store_path)
        np.testing.assert_array_equal(
            loaded.all_cascade_sizes(), index.all_cascade_sizes()
        )

    def test_seed_set_cascades_identical(self, index, store_path):
        loaded = CascadeIndex.load(store_path)
        for world in range(index.num_worlds):
            np.testing.assert_array_equal(
                loaded.seed_set_cascade([0, 3, 7], world),
                index.seed_set_cascade([0, 3, 7], world),
            )

    def test_logical_digest_stable(self, index, store_path):
        loaded = CascadeIndex.load(store_path)
        assert digest_of_index(loaded) == digest_of_index(index)

    def test_resave_is_digest_stable(self, store_path, tmp_path):
        loaded = CascadeIndex.load(store_path)
        second = tmp_path / "resaved"
        write_index(loaded, second)
        assert (
            read_header(second).content_digest
            == read_header(store_path).content_digest
        )

    def test_graph_roundtrips(self, index, store_path):
        loaded = CascadeIndex.load(store_path)
        assert graph_fingerprint(loaded.graph) == graph_fingerprint(index.graph)


class TestHeader:
    def test_fields(self, index, store_path):
        header = read_header(store_path)
        assert header.format_version == FORMAT_VERSION
        assert header.num_nodes == index.num_nodes
        assert header.num_edges == index.graph.num_edges
        assert header.num_worlds == 8
        assert header.reduced is True
        assert header.seed_entropy == 123
        assert header.graph_fingerprint == graph_fingerprint(index.graph)
        assert header.content_digest == digest_of_index(index)
        assert set(header.arrays) == set(ARRAY_DTYPES)

    def test_loaded_index_exposes_header(self, store_path):
        loaded = CascadeIndex.load(store_path)
        assert loaded.store_header is not None
        assert loaded.store_header.num_worlds == 8
        assert loaded.seed_entropy == 123

    def test_edited_header_detected(self, store_path):
        header_file = store_path / "header.json"
        payload = json.loads(header_file.read_text())
        payload["num_worlds"] = 999
        header_file.write_text(json.dumps(payload))
        with pytest.raises(StoreIntegrityError, match="self-checksum"):
            read_header(store_path)

    def test_bad_magic_rejected(self, store_path):
        header_file = store_path / "header.json"
        payload = json.loads(header_file.read_text())
        payload["magic"] = "something-else"
        header_file.write_text(json.dumps(payload))
        with pytest.raises(StoreFormatError, match="magic"):
            read_header(store_path)

    def test_future_version_rejected(self, store_path):
        header_file = store_path / "header.json"
        payload = json.loads(header_file.read_text())
        payload["format_version"] = FORMAT_VERSION + 1
        header_file.write_text(json.dumps(payload))
        with pytest.raises(StoreFormatError, match="version"):
            read_header(store_path)

    def test_not_a_store_directory(self, tmp_path):
        with pytest.raises(StoreFormatError, match="not a cascade-index store"):
            read_header(tmp_path / "nowhere")


class TestIntegrity:
    def test_full_verify_passes_on_clean_store(self, store_path):
        check_files(store_path, read_header(store_path), verify="full")

    def test_truncated_array_detected_fast(self, store_path):
        victim = store_path / "members.npy"
        raw = victim.read_bytes()
        victim.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(StoreIntegrityError, match="truncated or was torn"):
            read_index(store_path)

    def test_missing_array_detected(self, store_path):
        (store_path / "dag_targets.npy").unlink()
        with pytest.raises(StoreIntegrityError, match="missing array file"):
            read_index(store_path)

    def test_flipped_byte_detected_by_full_verify(self, store_path):
        victim = store_path / "node_comp.npy"
        raw = bytearray(victim.read_bytes())
        raw[-1] ^= 0xFF  # same size, different content
        victim.write_bytes(bytes(raw))
        read_index(store_path, verify="fast")  # size check cannot see it
        with pytest.raises(StoreIntegrityError, match="SHA-256"):
            read_index(store_path, verify="full")

    def test_bad_verify_mode_rejected(self, store_path):
        with pytest.raises(ValueError, match="verify"):
            read_index(store_path, verify="paranoid")


class TestWriteGuards:
    def test_refuses_to_overwrite_by_default(self, index, store_path):
        with pytest.raises(FileExistsError, match="overwrite=True"):
            write_index(index, store_path)

    def test_overwrite_flag_replaces_store(self, index, store_path):
        write_index(index, store_path, overwrite=True)
        assert read_header(store_path).num_worlds == 8

    def test_never_clobbers_foreign_directory(self, index, tmp_path):
        foreign = tmp_path / "precious"
        foreign.mkdir()
        (foreign / "data.txt").write_text("do not delete")
        with pytest.raises(StoreFormatError, match="refusing to overwrite"):
            write_index(index, foreign, overwrite=True)
        assert (foreign / "data.txt").read_text() == "do not delete"

    def test_npz_suffix_dispatches_to_legacy_format(self, index, tmp_path):
        path = tmp_path / "legacy.npz"
        index.save(path)
        assert path.is_file()
        loaded = CascadeIndex.load(path)
        np.testing.assert_array_equal(loaded.cascade(0, 0), index.cascade(0, 0))


class TestLaziness:
    def test_worlds_materialise_on_first_touch_only(self):
        calls: list[int] = []

        def factory(i: int) -> int:
            calls.append(i)
            return i * 10

        lazy = _LazyWorldList(4, factory)
        assert calls == []
        assert lazy[2] == 20
        assert lazy[2] == 20  # cached: factory not re-invoked
        assert calls == [2]
        assert lazy[1:3] == [10, 20]
        assert calls == [2, 1]

    def test_append_extends_past_stored_count(self):
        lazy = _LazyWorldList(2, lambda i: i)
        lazy.append(99)
        assert len(lazy) == 3
        assert lazy[2] == 99
        assert lazy[-1] == 99

    def test_load_touches_no_condensation(self, store_path, monkeypatch):
        from repro.graph import condensation as cond_mod

        loaded = read_index(store_path)

        def boom(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("condensation materialised eagerly")

        monkeypatch.setattr(cond_mod.Condensation, "__init__", boom)
        assert loaded.num_worlds == 8  # header-only metadata stays available
