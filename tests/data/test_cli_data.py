"""Tests for the ``repro data`` CLI surface and ``index build --dataset``."""

import pytest

from repro.cli import main


@pytest.fixture
def data_env(tmp_path, monkeypatch):
    """Point REPRO_DATA_DIR at an isolated root; return it."""
    root = tmp_path / "data"
    monkeypatch.setenv("REPRO_DATA_DIR", str(root))
    return tmp_path


class TestDataFetch:
    def test_offline_fetch(self, data_env, capsys):
        assert main(["data", "fetch", "epinions", "--offline"]) == 0
        out = capsys.readouterr().out
        assert "bundled offline fixture" in out
        assert "sha256:" in out

    def test_cache_hit_reported(self, data_env, capsys):
        assert main(["data", "fetch", "digg"]) == 0
        capsys.readouterr()
        assert main(["data", "fetch", "digg"]) == 0
        assert "already cached" in capsys.readouterr().out

    def test_unknown_source_exits_2(self, data_env, capsys):
        assert main(["data", "fetch", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown dataset source" in err and "epinions" in err


class TestDataIngest:
    def test_ingest_and_info_and_verify(self, data_env, capsys):
        assert main(["data", "ingest", "epinions", "--offline"]) == 0
        out = capsys.readouterr().out
        assert "ingested epinions-W" in out
        assert "manifest digest: sha256:" in out

        assert main(["data", "info", "epinions-W"]) == 0
        out = capsys.readouterr().out
        assert "offline fixture" in out and "assignment" in out

        assert main(["data", "verify", "epinions-W", "--full"]) == 0
        assert "OK (full array re-hash)" in capsys.readouterr().out

    def test_info_listing(self, data_env, capsys):
        assert main(["data", "info"]) == 0
        out = capsys.readouterr().out
        assert "catalogue sources:" in out
        assert "(none — run 'repro data ingest <source>')" in out

    def test_info_json(self, data_env, capsys):
        import json

        assert main(["data", "info", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "epinions" in payload["sources"]
        assert payload["ingested"] == []

    def test_double_ingest_refused_without_force(self, data_env, capsys):
        assert main(["data", "ingest", "digg"]) == 0
        capsys.readouterr()
        assert main(["data", "ingest", "digg"]) == 2
        assert "already ingested" in capsys.readouterr().err

    def test_verify_unknown_exits_2(self, data_env, capsys):
        assert main(["data", "verify", "ghost"]) == 2
        assert "no dataset.json" in capsys.readouterr().err

    def test_custom_name_and_assignment(self, data_env, capsys):
        assert main([
            "data", "ingest", "digg", "--assignment", "fixed",
            "--p", "0.05", "--name", "digg-small",
        ]) == 0
        out = capsys.readouterr().out
        assert "ingested digg-small" in out


class TestIndexBuildDataset:
    def test_build_from_ingested(self, data_env, capsys):
        assert main(["data", "ingest", "epinions", "--offline"]) == 0
        capsys.readouterr()
        out_dir = data_env / "idx"
        code = main([
            "index", "build", "--dataset", "epinions-W",
            "--samples", "4", "--out", str(out_dir),
        ])
        assert code == 0
        assert "cascade-index store" in capsys.readouterr().out
        assert (out_dir / "manifest.json").exists() or any(out_dir.iterdir())

    def test_setting_and_dataset_mutually_exclusive(self, data_env):
        with pytest.raises(SystemExit, match="exactly one"):
            main([
                "index", "build", "--setting", "NetHEPT-W",
                "--dataset", "epinions-W", "--out", "x",
            ])
        with pytest.raises(SystemExit, match="exactly one"):
            main(["index", "build", "--out", "x"])

    def test_unknown_dataset_lists_candidates(self, data_env):
        with pytest.raises(SystemExit, match="unknown setting"):
            main([
                "index", "build", "--dataset", "ghost",
                "--samples", "4", "--out", "x",
            ])
