"""Tests for repro.data.parse — streaming SNAP parser and CSR assembly.

Covers the ISSUE's malformed-input battery: bad column counts, NaN and
out-of-range probabilities, huge ids, CRLF line endings, truncated gzip
streams, duplicate-arc and self-loop policies — plus chunk-boundary
equivalence (tiny ``chunk_edges`` must produce byte-identical output).
"""

import gzip

import numpy as np
import pytest

from repro.data.errors import ParseError
from repro.data.parse import (
    LABELS_NAME,
    assemble_csr,
    parse_edge_file,
)


def run_pipeline(tmp_path, text, *, on_self_loop="drop", on_duplicate="first",
                 chunk_edges=1 << 17, gz=False, name="edges.txt"):
    """Parse + assemble ``text`` and return the staged arrays."""
    tmp_path.mkdir(parents=True, exist_ok=True)
    if gz:
        name += ".gz"
        path = tmp_path / name
        path.write_bytes(gzip.compress(text.encode("utf-8")))
    else:
        path = tmp_path / name
        path.write_text(text)
    staging = tmp_path / "staging"
    result = parse_edge_file(
        path, staging, on_self_loop=on_self_loop, chunk_edges=chunk_edges
    )
    stats = assemble_csr(
        staging,
        num_nodes=result.num_nodes,
        has_probs=result.has_probs,
        on_duplicate=on_duplicate,
        chunk_edges=chunk_edges,
    )
    out = {
        "result": result,
        "assemble": stats,
        "indptr": np.load(staging / "indptr.npy"),
        "targets": np.load(staging / "targets.npy"),
        "labels": np.load(staging / LABELS_NAME),
    }
    if result.has_probs:
        out["probs"] = np.load(staging / "probs.npy")
    return out


def csr_edges(out):
    """(source_label, target_label[, prob]) triples from staged arrays."""
    indptr, targets, labels = out["indptr"], out["targets"], out["labels"]
    triples = []
    for u in range(len(indptr) - 1):
        for j in range(indptr[u], indptr[u + 1]):
            edge = (labels[u], labels[targets[j]])
            if "probs" in out:
                edge += (out["probs"][j],)
            triples.append(edge)
    return triples


class TestHappyPath:
    def test_small_two_column(self, tmp_path):
        out = run_pipeline(tmp_path, "# snap header\n10 20\n20 30\n10 30\n")
        assert out["result"].num_nodes == 3
        assert list(out["labels"]) == [10, 20, 30]
        assert csr_edges(out) == [(10, 20), (10, 30), (20, 30)]
        assert out["result"].stats.comment_lines == 1

    def test_three_column_probabilities(self, tmp_path):
        out = run_pipeline(tmp_path, "1 2 0.5\n2 3 0.25\n")
        assert out["result"].has_probs
        assert csr_edges(out) == [(1, 2, 0.5), (2, 3, 0.25)]

    def test_noncontiguous_ids_densify_in_sorted_order(self, tmp_path):
        out = run_pipeline(tmp_path, "1000000 3\n3 7\n")
        assert list(out["labels"]) == [3, 7, 1000000]
        assert csr_edges(out) == [(3, 7), (1000000, 3)]

    def test_gzip_transparent(self, tmp_path):
        out = run_pipeline(tmp_path, "0 1\n1 2\n", gz=True)
        assert csr_edges(out) == [(0, 1), (1, 2)]

    def test_crlf_lines_tolerated(self, tmp_path):
        out = run_pipeline(tmp_path, "0 1\r\n1 2\r\n2 0\n")
        assert out["result"].stats.data_lines == 3
        assert csr_edges(out) == [(0, 1), (1, 2), (2, 0)]

    def test_tabs_and_blank_lines(self, tmp_path):
        out = run_pipeline(tmp_path, "0\t1\n\n\n1\t2\n")
        assert out["result"].stats.blank_lines == 2
        assert csr_edges(out) == [(0, 1), (1, 2)]

    def test_huge_ids_survive(self, tmp_path):
        big = 2**40
        out = run_pipeline(tmp_path, f"{big} 1\n1 {big + 7}\n")
        assert list(out["labels"]) == [1, big, big + 7]
        assert csr_edges(out) == [(1, big + 7), (big, 1)]

    def test_empty_file_is_empty_graph(self, tmp_path):
        out = run_pipeline(tmp_path, "# only comments\n\n")
        assert out["result"].num_nodes == 0
        assert len(out["targets"]) == 0

    def test_no_trailing_newline(self, tmp_path):
        out = run_pipeline(tmp_path, "0 1\n1 2")
        assert csr_edges(out) == [(0, 1), (1, 2)]


class TestChunkBoundaries:
    def test_tiny_chunks_match_one_chunk(self, tmp_path):
        rng = np.random.default_rng(7)
        lines = [
            f"{rng.integers(0, 40)} {rng.integers(0, 40)} "
            f"{float(rng.uniform(0.01, 1.0)):.6f}"
            for _ in range(500)
        ]
        text = "\n".join(lines) + "\n"
        big = run_pipeline(tmp_path / "a", text, on_duplicate="max")
        small = run_pipeline(tmp_path / "b", text, on_duplicate="max", chunk_edges=7)
        assert np.array_equal(big["indptr"], small["indptr"])
        assert np.array_equal(big["targets"], small["targets"])
        assert np.array_equal(big["probs"], small["probs"])
        assert np.array_equal(big["labels"], small["labels"])

    def test_tiny_chunks_first_policy(self, tmp_path):
        text = "5 6 0.1\n5 6 0.9\n5 6 0.5\n1 2 0.3\n"
        for chunk in (1, 2, 1024):
            out = run_pipeline(
                tmp_path / f"c{chunk}", text, on_duplicate="first", chunk_edges=chunk
            )
            assert csr_edges(out) == [(1, 2, 0.3), (5, 6, 0.1)]

    def test_tiny_chunks_max_policy_across_boundary(self, tmp_path):
        text = "5 6 0.1\n5 6 0.9\n5 6 0.5\n"
        for chunk in (1, 2, 3):
            out = run_pipeline(
                tmp_path / f"m{chunk}", text, on_duplicate="max", chunk_edges=chunk
            )
            assert csr_edges(out) == [(5, 6, 0.9)]


class TestDuplicatePolicies:
    def test_first_keeps_first(self, tmp_path):
        out = run_pipeline(tmp_path, "0 1 0.2\n0 1 0.8\n")
        assert csr_edges(out) == [(0, 1, 0.2)]
        assert out["assemble"].duplicate_edges == 1

    def test_max_keeps_max(self, tmp_path):
        out = run_pipeline(tmp_path, "0 1 0.2\n0 1 0.8\n0 1 0.5\n", on_duplicate="max")
        assert csr_edges(out) == [(0, 1, 0.8)]

    def test_error_names_the_duplicate(self, tmp_path):
        with pytest.raises(ParseError, match=r"duplicate arc \(0, 1\)"):
            run_pipeline(tmp_path, "0 1\n0 1\n", on_duplicate="error")

    def test_bad_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="on_duplicate"):
            run_pipeline(tmp_path, "0 1\n", on_duplicate="overwrite")


class TestSelfLoops:
    def test_dropped_and_counted(self, tmp_path):
        out = run_pipeline(tmp_path, "0 0\n0 1\n1 1\n")
        assert out["result"].stats.self_loops_dropped == 2
        assert csr_edges(out) == [(0, 1)]

    def test_error_policy_has_line_number(self, tmp_path):
        with pytest.raises(ParseError, match="line 2: self-loop on node 7"):
            run_pipeline(tmp_path, "0 1\n7 7\n", on_self_loop="error")

    def test_bad_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="on_self_loop"):
            run_pipeline(tmp_path, "0 1\n", on_self_loop="keep")


class TestMalformedInputs:
    @pytest.mark.parametrize(
        "text,lineno,match",
        [
            ("0 1\n0 1 2 3\n", 2, "expected 2 columns, got 4"),
            ("0 1 0.5\n2\n", 2, "expected 3 columns, got 1"),
            ("0 1 0.5\n1 2 nan\n", 2, "outside"),
            ("0 1 0.5\n1 2 1.5\n", 2, "outside"),
            ("0 1 0.5\n1 2 0\n", 2, "outside"),
            ("0 1 0.5\n1 2 -0.25\n", 2, "outside"),
            ("0 1 0.5\n1 2 inf\n", 2, "outside"),
            ("0 1 0.5\n1 2 oops\n", 2, "bad probability 'oops'"),
            ("0 1\n-3 1\n", 2, "negative node id -3"),
        ],
    )
    def test_bad_line_is_pinpointed(self, tmp_path, text, lineno, match):
        with pytest.raises(ParseError, match=f"line {lineno}: .*{match}"):
            run_pipeline(tmp_path, text)

    def test_lineno_accounts_for_comments_and_blanks(self, tmp_path):
        with pytest.raises(ParseError, match="line 5"):
            run_pipeline(tmp_path, "# h\n\n0 1\n# c\n0 1 2 3\n")

    def test_four_column_first_line(self, tmp_path):
        with pytest.raises(ParseError, match="expected 2 or 3 columns, got 4"):
            run_pipeline(tmp_path, "0 1 0.5 9\n")

    def test_truncated_gzip(self, tmp_path):
        payload = gzip.compress(("0 1\n" * 50_000).encode())
        path = tmp_path / "t.txt.gz"
        path.write_bytes(payload[: len(payload) // 2])
        with pytest.raises(ParseError, match="unreadable or truncated"):
            parse_edge_file(path, tmp_path / "staging")

    def test_string_id_after_integer_prefix(self, tmp_path):
        # The id mode is fixed by the first data block (blocks are ~1 MiB
        # of text); a stray alpha token in a later block of an integer
        # file is corruption, not a mode switch.
        text = "0 1\n" * 300_000 + "alice bob\n"
        with pytest.raises(ParseError, match="non-integer node id"):
            run_pipeline(tmp_path, text)


class TestStringLabels:
    def test_string_ids_first_appearance_order(self, tmp_path):
        out = run_pipeline(tmp_path, "carol dave\nalice carol\n")
        assert list(out["labels"]) == ["carol", "dave", "alice"]
        assert csr_edges(out) == [("carol", "dave"), ("alice", "carol")]
        assert not out["result"].stats.int_labels

    def test_string_ids_with_probs_and_errors(self, tmp_path):
        with pytest.raises(ParseError, match="line 2: .*outside"):
            run_pipeline(tmp_path, "a b 0.5\nb c 2.0\n")

    def test_string_self_loop_policies(self, tmp_path):
        out = run_pipeline(tmp_path, "a a\na b\n")
        assert out["result"].stats.self_loops_dropped == 1
        with pytest.raises(ParseError, match="self-loop on node 'a'"):
            run_pipeline(
                tmp_path / "e", "a a\na b\n", on_self_loop="error"
            )
