"""Chaos gate for the ETL pipeline: crash at every ``data.*`` site, resume,
and prove the committed manifest digest is bit-identical to a clean run.

``crash`` faults ``os._exit`` the process, so each interrupted ingest runs
in a subprocess with the plan armed through ``REPRO_FAULTS``.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.runtime.faults import CRASH_EXIT_CODE, KNOWN_SITES

_INGEST_SNIPPET = """
import sys
from repro.data import ingest
report = ingest("epinions", root=sys.argv[1], assignment="wc", offline=True)
print(report.manifest["manifest_digest"])
"""


def run_ingest(root, plan=None, chunk_edges=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    if plan is not None:
        env["REPRO_FAULTS"] = json.dumps({"faults": plan})
    else:
        env.pop("REPRO_FAULTS", None)
    snippet = _INGEST_SNIPPET
    if chunk_edges is not None:
        snippet = snippet.replace(
            'offline=True)', f"offline=True, chunk_edges={chunk_edges})"
        )
    return subprocess.run(
        [sys.executable, "-c", snippet, str(root)],
        env=env,
        capture_output=True,
        text=True,
        cwd=os.getcwd(),
    )


def spec(site, kind, key):
    return {"site": site, "kind": kind, "key": key, "attempts": [0], "seconds": 0}


@pytest.fixture(scope="module")
def clean_digest(tmp_path_factory):
    result = run_ingest(tmp_path_factory.mktemp("clean"))
    assert result.returncode == 0, result.stderr
    return result.stdout.strip()


class TestCrashResume:
    def test_data_sites_are_registered(self):
        for site in ("data.fetch", "data.parse", "data.commit"):
            assert site in KNOWN_SITES

    @pytest.mark.parametrize(
        "plan,expect_crash",
        [
            ([spec("data.fetch", "torn", "epinions")], False),
            ([spec("data.parse", "crash", 0)], True),
            ([spec("data.parse", "crash", "sort-by-target")], True),
            ([spec("data.parse", "crash", "sort-by-source")], True),
            ([spec("data.parse", "crash", "dedup")], True),
            ([spec("data.commit", "torn", "epinions-W")], False),
        ],
        ids=["fetch-torn", "spill-crash", "sort-t-crash", "sort-s-crash",
             "dedup-crash", "commit-torn"],
    )
    def test_interrupt_then_resume_bit_identical(
        self, tmp_path, clean_digest, plan, expect_crash
    ):
        interrupted = run_ingest(tmp_path, plan)
        assert interrupted.returncode != 0, "fault did not fire"
        if expect_crash:
            assert interrupted.returncode == CRASH_EXIT_CODE
        resumed = run_ingest(tmp_path)
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.stdout.strip() == clean_digest

    def test_resume_skips_completed_stages(self, tmp_path, clean_digest):
        # Crash after the parse stage journalled: the resume must reuse it
        # (the journal records completed stages keyed by a param digest).
        interrupted = run_ingest(tmp_path, [spec("data.parse", "crash", "dedup")])
        assert interrupted.returncode == CRASH_EXIT_CODE
        staging = tmp_path / "ingested" / "epinions-W.staging"
        journal = json.loads((staging / "ingest.journal.json").read_text())
        assert "parse" in journal["stages"]
        resumed = run_ingest(tmp_path)
        assert resumed.returncode == 0
        assert resumed.stdout.strip() == clean_digest

    def test_resume_with_different_chunking_converges(
        self, tmp_path, clean_digest
    ):
        # chunk_edges is a performance knob, not a semantic parameter:
        # resuming with different chunking still reaches the same digest.
        interrupted = run_ingest(tmp_path, [spec("data.parse", "crash", "dedup")])
        assert interrupted.returncode == CRASH_EXIT_CODE
        resumed = run_ingest(tmp_path, chunk_edges=1024)
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.stdout.strip() == clean_digest

    def test_double_interrupt_still_converges(self, tmp_path, clean_digest):
        first = run_ingest(tmp_path, [spec("data.parse", "crash", 0)])
        assert first.returncode == CRASH_EXIT_CODE
        second = run_ingest(tmp_path, [spec("data.commit", "torn", "epinions-W")])
        assert second.returncode != 0
        final = run_ingest(tmp_path)
        assert final.returncode == 0, final.stderr
        assert final.stdout.strip() == clean_digest
