"""Tests for repro.data.fetch — the checksummed, resumable download cache."""

import gzip

import pytest

import repro.data.fetch as fetch_mod
from repro.data.errors import FetchError, NetworkUnavailableError
from repro.data.fetch import data_root, fetch_source
from repro.data.fixtures import render_fixture
from repro.data.sources import FixtureSpec, SourceSpec
from repro.runtime.faults import FaultSpec, fault_scope
from repro.store.fingerprint import digest_file


class TestDataRoot:
    def test_explicit_argument_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DATA_DIR", "/elsewhere")
        assert data_root(tmp_path) == tmp_path

    def test_env_var(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path))
        assert data_root() == tmp_path

    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_DATA_DIR", raising=False)
        assert str(data_root()) == "data"


class TestOfflineFixture:
    def test_materialise_verifies_pinned_digest(self, tmp_path):
        result = fetch_source("fixture-social", root=tmp_path, offline=True)
        assert result.offline_fixture
        assert not result.cached
        assert result.path.exists()
        assert digest_file(result.path) == result.sha256

    def test_second_fetch_is_cache_hit(self, tmp_path):
        first = fetch_source("epinions", root=tmp_path, offline=True)
        second = fetch_source("epinions", root=tmp_path, offline=True)
        assert not first.cached and second.cached
        assert first.sha256 == second.sha256

    def test_corrupted_cache_is_rewritten(self, tmp_path):
        result = fetch_source("digg", root=tmp_path, offline=True)
        result.path.write_text("tampered\n")
        again = fetch_source("digg", root=tmp_path, offline=True)
        assert not again.cached  # re-materialised, not trusted
        assert digest_file(again.path) == again.sha256

    def test_offline_only_source_never_needs_offline_flag(self, tmp_path):
        result = fetch_source("nethept", root=tmp_path)
        assert result.offline_fixture

    def test_torn_write_then_refetch_recovers(self, tmp_path):
        plan = [FaultSpec(site="data.fetch", kind="torn", key="digg")]
        with fault_scope(plan):
            with pytest.raises(Exception, match="torn write"):
                fetch_source("digg", root=tmp_path, offline=True)
        # The .part file holds half the payload; the clean retry replaces it.
        result = fetch_source("digg", root=tmp_path, offline=True)
        assert digest_file(result.path) == result.sha256


def file_url_spec(tmp_path, name="epinions", *, max_bytes=1 << 20, sha256=None,
                  payload=None):
    """A SourceSpec whose 'download' is a local file:// URL."""
    if payload is None:
        payload = render_fixture(name, gz=True, columns=2)
    remote = tmp_path / "remote.bin"
    remote.write_bytes(payload)
    return SourceSpec(
        name=name,
        url=remote.as_uri(),
        filename="downloaded.txt.gz",
        sha256=sha256,
        license="test",
        gz=True,
        columns=2,
        max_bytes=max_bytes,
        fixture=FixtureSpec(filename=f"{name}.fixture.txt.gz", sha256="sha256:unused"),
    )


class TestDownloadPath:
    def test_file_url_download_records_tofu_sidecar(self, tmp_path, monkeypatch):
        spec = file_url_spec(tmp_path)
        monkeypatch.setattr(fetch_mod, "get_source", lambda name: spec)
        result = fetch_source("epinions", root=tmp_path / "root")
        assert not result.offline_fixture
        sidecar = result.path.with_name(result.path.name + ".sha256")
        assert sidecar.read_text().strip() == result.sha256

    def test_tofu_digest_enforced_on_refetch(self, tmp_path, monkeypatch):
        spec = file_url_spec(tmp_path)
        monkeypatch.setattr(fetch_mod, "get_source", lambda name: spec)
        root = tmp_path / "root"
        fetch_source("epinions", root=root)
        # The upstream silently changes: the pinned TOFU digest must refuse.
        (tmp_path / "remote.bin").write_bytes(b"different payload entirely")
        with pytest.raises(FetchError, match="digest mismatch"):
            fetch_source("epinions", root=root, force=True)

    def test_pinned_digest_mismatch_refuses(self, tmp_path, monkeypatch):
        spec = file_url_spec(tmp_path, sha256="sha256:" + "0" * 64)
        monkeypatch.setattr(fetch_mod, "get_source", lambda name: spec)
        with pytest.raises(FetchError, match="digest mismatch"):
            fetch_source("epinions", root=tmp_path / "root")

    def test_size_bound_aborts_not_falls_back(self, tmp_path, monkeypatch):
        spec = file_url_spec(tmp_path, max_bytes=64)
        monkeypatch.setattr(fetch_mod, "get_source", lambda name: spec)
        with pytest.raises(FetchError, match="exceeded the 64-byte bound") as err:
            fetch_source("epinions", root=tmp_path / "root")
        assert not isinstance(err.value, NetworkUnavailableError)

    def test_cli_max_bytes_tightens_bound(self, tmp_path, monkeypatch):
        spec = file_url_spec(tmp_path)
        monkeypatch.setattr(fetch_mod, "get_source", lambda name: spec)
        with pytest.raises(FetchError, match="exceeded the 32-byte bound"):
            fetch_source("epinions", root=tmp_path / "root", max_bytes=32)

    def test_network_failure_falls_back_to_fixture(self, tmp_path, monkeypatch):
        spec = file_url_spec(tmp_path)
        # Point at a port nothing listens on: transport-level failure.
        broken = SourceSpec(
            name=spec.name,
            url="http://127.0.0.1:1/nope.gz",
            filename=spec.filename,
            sha256=None,
            license=spec.license,
            gz=True,
            columns=2,
            max_bytes=spec.max_bytes,
            fixture=FixtureSpec(
                filename="epinions.fixture.txt.gz",
                sha256="sha256:"
                + __import__("hashlib")
                .sha256(render_fixture("epinions", gz=True, columns=2))
                .hexdigest(),
            ),
        )
        monkeypatch.setattr(fetch_mod, "get_source", lambda name: broken)
        result = fetch_source("epinions", root=tmp_path / "root", timeout=2.0)
        assert result.offline_fixture

    def test_gz_payload_parses_after_download(self, tmp_path, monkeypatch):
        spec = file_url_spec(tmp_path)
        monkeypatch.setattr(fetch_mod, "get_source", lambda name: spec)
        result = fetch_source("epinions", root=tmp_path / "root")
        text = gzip.decompress(result.path.read_bytes()).decode("utf-8")
        assert text.startswith("#")
