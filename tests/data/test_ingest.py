"""Tests for repro.data.ingest — stage orchestration, manifest, verification."""

import json

import numpy as np
import pytest

from repro.data.errors import DataError, ManifestError
from repro.data.ingest import (
    MANIFEST_NAME,
    default_dataset_name,
    ingest,
    load_graph,
    load_labels,
    read_manifest,
    verify_dataset,
)
from repro.data.registry import (
    describe_dataset,
    has_dataset,
    list_ingested,
    load_dataset,
)
from repro.problearn.assign import assign_trivalency


class TestIngestAssignments:
    def test_wc_matches_streaming_indegree(self, tmp_path):
        report = ingest("epinions", root=tmp_path, assignment="wc", offline=True)
        graph, _ = load_dataset("epinions-W", root=tmp_path)
        indeg = np.bincount(graph.targets, minlength=graph.num_nodes)
        assert np.array_equal(graph.probs, 1.0 / indeg[graph.targets])
        assert report.manifest["assignment"] == {"method": "wc"}

    def test_fixed_constant(self, tmp_path):
        ingest("digg", root=tmp_path, assignment="fixed", p=0.05)
        graph, manifest = load_dataset("digg-F", root=tmp_path)
        assert bool(np.all(graph.probs == 0.05))
        assert manifest["assignment"] == {"method": "fixed", "p": 0.05}

    def test_fixed_validates_probability(self, tmp_path):
        with pytest.raises(ValueError):
            ingest("digg", root=tmp_path, assignment="fixed", p=1.5)

    def test_trivalency_matches_reference_semantics(self, tmp_path):
        ingest("nethept", root=tmp_path, assignment="trivalency", seed=99)
        graph, manifest = load_dataset("nethept-T", root=tmp_path)
        assert set(np.unique(graph.probs)) <= {0.1, 0.01, 0.001}
        assert manifest["assignment"]["seed"] == 99
        # Same seed, same arc order => identical draws as the in-memory
        # reference assignment (both consume one derive_rng(seed) stream).
        reference = assign_trivalency(graph, seed=99)
        assert np.array_equal(graph.probs, reference.probs)

    def test_file_carried_probabilities(self, tmp_path):
        ingest("fixture-social", root=tmp_path, assignment="file")
        graph, _ = load_dataset("fixture-social-P", root=tmp_path)
        assert float(graph.probs.min()) > 0.0
        assert len(np.unique(graph.probs)) > 3  # not a constant assignment

    def test_file_assignment_requires_prob_column(self, tmp_path):
        with pytest.raises(DataError, match="3-column"):
            ingest("digg", root=tmp_path, assignment="file")

    def test_unknown_assignment(self, tmp_path):
        with pytest.raises(ValueError, match="assignment"):
            ingest("digg", root=tmp_path, assignment="uniform")

    def test_default_names_follow_paper_suffixes(self):
        assert default_dataset_name("epinions", "wc") == "epinions-W"
        assert default_dataset_name("digg", "fixed") == "digg-F"
        assert default_dataset_name("x", "trivalency") == "x-T"
        assert default_dataset_name("x", "file") == "x-P"


class TestIngestLifecycle:
    def test_refuses_to_replace_without_force(self, tmp_path):
        ingest("digg", root=tmp_path)
        with pytest.raises(DataError, match="already ingested"):
            ingest("digg", root=tmp_path)
        ingest("digg", root=tmp_path, force=True)  # force replaces

    def test_deterministic_manifest_digest(self, tmp_path):
        first = ingest("digg", root=tmp_path)
        second = ingest("digg", root=tmp_path, force=True)
        assert (
            first.manifest["manifest_digest"] == second.manifest["manifest_digest"]
        )

    def test_local_file_ingest(self, tmp_path):
        src = tmp_path / "mine.txt"
        src.write_text("0 1\n1 2\n2 0\n")
        report = ingest(
            "local", file=src, root=tmp_path, name="mine-W", assignment="wc"
        )
        assert report.name == "mine-W"
        graph, manifest = load_dataset("mine-W", root=tmp_path)
        assert graph.num_nodes == 3 and graph.num_edges == 3
        assert manifest["source"]["name"] == "local"

    def test_missing_local_file(self, tmp_path):
        with pytest.raises(DataError, match="does not exist"):
            ingest("local", file=tmp_path / "nope.txt", root=tmp_path)

    def test_labels_sidecar_round_trips(self, tmp_path):
        src = tmp_path / "sparse.txt"
        src.write_text("1000 7\n7 42\n")
        report = ingest("local", file=src, root=tmp_path, name="sparse-W")
        labels = load_labels(report.directory)
        assert list(labels) == [7, 42, 1000]

    def test_staging_invisible_until_commit(self, tmp_path):
        ingest("digg", root=tmp_path)
        assert list_ingested(tmp_path) == ["digg-W"]
        assert not (tmp_path / "ingested" / "digg-W.staging").exists()


class TestManifestRefusal:
    def ingest_one(self, tmp_path):
        report = ingest("digg", root=tmp_path)
        return report.directory

    def test_verify_clean(self, tmp_path):
        directory = self.ingest_one(tmp_path)
        manifest = verify_dataset(directory, full=True)
        assert manifest["magic"] == "repro-dataset"

    def test_torn_manifest_refused(self, tmp_path):
        directory = self.ingest_one(tmp_path)
        path = directory / MANIFEST_NAME
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(ManifestError, match="torn write"):
            read_manifest(directory)

    def test_edited_manifest_refused(self, tmp_path):
        directory = self.ingest_one(tmp_path)
        path = directory / MANIFEST_NAME
        payload = json.loads(path.read_text())
        payload["graph"]["num_nodes"] += 1
        path.write_text(json.dumps(payload, sort_keys=True, indent=2))
        with pytest.raises(ManifestError, match="checksum mismatch"):
            read_manifest(directory)

    def test_missing_manifest_refused(self, tmp_path):
        directory = self.ingest_one(tmp_path)
        (directory / MANIFEST_NAME).unlink()
        with pytest.raises(ManifestError, match="no dataset.json"):
            load_graph(directory)

    def test_tampered_array_refused_by_full_verify(self, tmp_path):
        directory = self.ingest_one(tmp_path)
        probs = np.load(directory / "probs.npy")
        probs[0] = 0.123456
        np.save(directory / "probs.npy", probs)
        with pytest.raises(ManifestError, match="fails its recorded checksum"):
            verify_dataset(directory, full=True)

    def test_truncated_array_refused_by_fast_verify(self, tmp_path):
        directory = self.ingest_one(tmp_path)
        path = directory / "targets.npy"
        path.write_bytes(path.read_bytes()[:-8])
        with pytest.raises(ManifestError, match="bytes"):
            verify_dataset(directory, full=False)

    def test_wrong_magic_refused(self, tmp_path):
        directory = self.ingest_one(tmp_path)
        (directory / MANIFEST_NAME).write_text('{"magic": "other"}')
        with pytest.raises(ManifestError, match="bad magic"):
            read_manifest(directory)


class TestRegistrySurface:
    def test_list_and_has(self, tmp_path):
        assert list_ingested(tmp_path) == []
        ingest("digg", root=tmp_path)
        ingest("nethept", root=tmp_path, assignment="fixed")
        assert list_ingested(tmp_path) == ["digg-W", "nethept-F"]
        assert has_dataset("digg-W", tmp_path)
        assert not has_dataset("digg-T", tmp_path)

    def test_load_unknown_lists_available(self, tmp_path):
        ingest("digg", root=tmp_path)
        with pytest.raises(ManifestError, match=r"digg-W"):
            load_dataset("missing", root=tmp_path)

    def test_load_unknown_when_empty(self, tmp_path):
        with pytest.raises(ManifestError, match="no datasets have been ingested"):
            load_dataset("missing", root=tmp_path)

    def test_describe_provenance(self, tmp_path):
        report = ingest("digg", root=tmp_path)
        info = describe_dataset("digg-W", tmp_path)
        assert info["source"]["name"] == "digg"
        assert info["source"]["sha256"].startswith("sha256:")
        assert info["assignment"] == {"method": "wc"}
        assert info["manifest_digest"] == report.manifest["manifest_digest"]
