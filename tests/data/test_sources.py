"""Tests for repro.data.sources and repro.data.fixtures — the pinned catalogue."""

import gzip

import pytest

from repro.data.errors import SourceUnknownError
from repro.data.fixtures import FIXTURE_SHAPES, fixture_seed, render_fixture
from repro.data.sources import get_source, list_sources, load_sources


class TestCatalogue:
    def test_every_source_parses(self):
        sources = load_sources()
        assert len(sources) >= 6
        for name, spec in sources.items():
            assert spec.name == name
            assert spec.columns in (2, 3)
            assert spec.max_bytes > 0
            assert spec.license

    def test_listing_is_sorted(self):
        names = list_sources()
        assert names == sorted(names)

    def test_unknown_source_lists_catalogue(self):
        with pytest.raises(SourceUnknownError, match="epinions"):
            get_source("definitely-not-a-source")

    def test_offline_only_sources_have_no_url(self):
        for name in ("digg", "flixster", "nethept", "fixture-social"):
            assert get_source(name).offline_only
        for name in ("epinions", "slashdot", "twitter"):
            assert not get_source(name).offline_only

    def test_every_fixture_digest_is_pinned_and_real(self):
        # The catalogue must never ship un-pinned ("PENDING") fixtures, and
        # every pinned digest must match what the generator produces today.
        import hashlib

        for name, spec in sorted(load_sources().items()):
            assert spec.fixture.sha256.startswith("sha256:"), name
            payload = render_fixture(name, gz=spec.gz, columns=spec.columns)
            actual = "sha256:" + hashlib.sha256(payload).hexdigest()
            assert actual == spec.fixture.sha256, name


class TestFixtures:
    def test_deterministic_bytes(self):
        a = render_fixture("epinions", gz=True, columns=2)
        b = render_fixture("epinions", gz=True, columns=2)
        assert a == b

    def test_gzip_header_is_reproducible(self):
        # mtime=0 keeps the gzip container deterministic.
        payload = render_fixture("epinions", gz=True, columns=2)
        assert payload[:2] == b"\x1f\x8b"
        assert payload[4:8] == b"\x00\x00\x00\x00"  # MTIME field

    def test_fixture_exercises_snap_quirks(self):
        text = gzip.decompress(
            render_fixture("epinions", gz=True, columns=2)
        ).decode("utf-8")
        lines = text.split("\n")
        assert lines[0].startswith("#")  # comment header
        assert any(line.endswith("\r") for line in lines)  # CRLF lines
        data = [ln.strip() for ln in lines if ln.strip() and not ln.startswith("#")]
        pairs = [tuple(ln.split()) for ln in data]
        assert len(pairs) > len(set(pairs))  # duplicate arcs present
        assert any(u == v for u, v in pairs)  # self-loops present
        assert "\t" in data[0]  # tab-separated like real SNAP dumps

    def test_known_shapes(self):
        assert set(FIXTURE_SHAPES) >= {
            "epinions",
            "slashdot",
            "twitter",
            "digg",
            "flixster",
            "nethept",
            "fixture-social",
        }

    def test_seed_is_name_derived(self):
        assert fixture_seed("epinions") != fixture_seed("slashdot")
