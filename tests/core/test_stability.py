"""Tests for repro.core.stability."""

import pytest

from repro.cascades.index import CascadeIndex
from repro.core.stability import seed_set_stability, sphere_stability
from repro.core.typical_cascade import TypicalCascadeComputer
from repro.median.cost import exact_expected_cost


class TestSphereStability:
    def test_matches_exact_on_figure1(self, fig1):
        index = CascadeIndex.build(fig1, 300, seed=42)
        sphere = TypicalCascadeComputer(index).compute(4)
        stability = sphere_stability(fig1, sphere, num_samples=6000, seed=7)
        exact = exact_expected_cost(fig1, 4, sphere.members)
        assert stability == pytest.approx(exact, abs=0.02)

    def test_deterministic_sphere_is_perfectly_stable(self, diamond):
        import numpy as np

        certain = diamond.with_probabilities(np.ones(diamond.num_edges))
        index = CascadeIndex.build(certain, 20, seed=1)
        sphere = TypicalCascadeComputer(index).compute(0)
        assert sphere_stability(certain, sphere, num_samples=50, seed=2) == 0.0


class TestSeedSetStability:
    def test_returns_sphere_and_cost(self, fig1):
        index = CascadeIndex.build(fig1, 200, seed=5)
        sphere, cost = seed_set_stability(fig1, [4, 3], index, 400, seed=6)
        assert {3, 4} <= sphere.as_set()
        assert 0.0 <= cost <= 1.0

    def test_larger_seed_sets_tend_more_stable(self, small_random):
        """The paper's observation 3 (Section 5): stability improves as the
        seed set grows (checked on a hand-picked growing chain)."""
        index = CascadeIndex.build(small_random, 64, seed=8)
        seeds = [0, 5, 11, 17, 23, 29, 35]
        _, cost_small = seed_set_stability(
            small_random, seeds[:1], index, 300, seed=9
        )
        _, cost_large = seed_set_stability(
            small_random, seeds, index, 300, seed=9
        )
        assert cost_large <= cost_small + 0.05
