"""Tests for repro.core.store — sphere persistence."""

import numpy as np
import pytest

from repro.cascades.index import CascadeIndex
from repro.core.sphere import SphereOfInfluence
from repro.core.store import SphereStore
from repro.core.typical_cascade import TypicalCascadeComputer
from repro.store.errors import StoreFormatError


def sphere(node, members, cost=0.2, size_stats=(2.0, 1.0, 4)) -> SphereOfInfluence:
    return SphereOfInfluence(
        sources=(node,),
        members=np.array(sorted(members), dtype=np.int64),
        cost=cost,
        num_samples=16,
        sample_size_mean=size_stats[0],
        sample_size_std=size_stats[1],
        sample_size_max=size_stats[2],
    )


@pytest.fixture
def store() -> SphereStore:
    return SphereStore(
        {
            0: sphere(0, {0, 1, 2}, cost=0.1),
            1: sphere(1, {1}, cost=0.05),
            2: sphere(2, {2, 3}, cost=0.3),
        }
    )


class TestMapping:
    def test_len_contains_getitem(self, store):
        assert len(store) == 3
        assert 1 in store
        assert 9 not in store
        assert store[0].as_set() == {0, 1, 2}

    def test_iteration_sorted(self, store):
        assert list(store) == [0, 1, 2]

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            SphereStore({})

    def test_mismatched_key_rejected(self):
        with pytest.raises(ValueError, match="keyed by source"):
            SphereStore({5: sphere(0, {0})})

    def test_seed_set_sphere_rejected(self):
        bad = SphereOfInfluence(
            sources=(0, 1), members=np.array([0, 1]), cost=0.1, num_samples=4
        )
        with pytest.raises(ValueError, match="single-node"):
            SphereStore({0: bad})


class TestViews:
    def test_members_family(self, store):
        family = store.members_family()
        assert set(family) == {0, 1, 2}
        assert family[2].tolist() == [2, 3]

    def test_costs_and_sizes_aligned(self, store):
        np.testing.assert_allclose(store.costs(), [0.1, 0.05, 0.3])
        assert store.sizes().tolist() == [3, 1, 2]

    def test_most_reliable_skips_singletons(self, store):
        assert store.most_reliable(2) == [0, 2]

    def test_most_reliable_min_size(self, store):
        assert store.most_reliable(3, min_size=1) == [1, 0, 2]


class TestPersistence:
    def test_roundtrip(self, store, tmp_path):
        path = tmp_path / "spheres.npz"
        store.save(path)
        loaded = SphereStore.load(path)
        assert list(loaded) == list(store)
        for node in store:
            a, b = store[node], loaded[node]
            assert np.array_equal(a.members, b.members)
            assert a.cost == pytest.approx(b.cost)
            assert a.num_samples == b.num_samples
            assert a.sample_size_max == b.sample_size_max

    def test_roundtrip_from_real_computation(self, small_random, tmp_path):
        index = CascadeIndex.build(small_random, 16, seed=1)
        spheres = TypicalCascadeComputer(index).compute_all(nodes=range(10))
        store = SphereStore(spheres)
        path = tmp_path / "real.npz"
        store.save(path)
        loaded = SphereStore.load(path)
        assert len(loaded) == 10
        for node in range(10):
            assert np.array_equal(loaded[node].members, spheres[node].members)

    def test_empty_members_sphere_roundtrip(self, tmp_path):
        store = SphereStore({3: sphere(3, set(), cost=1.0)})
        path = tmp_path / "empty.npz"
        store.save(path)
        assert SphereStore.load(path)[3].size == 0

    def test_single_node_store_roundtrip(self, tmp_path):
        store = SphereStore({0: sphere(0, {0}, cost=0.0)})
        path = tmp_path / "one.npz"
        store.save(path)
        loaded = SphereStore.load(path)
        assert len(loaded) == 1
        assert loaded[0].as_set() == {0}
        assert loaded.most_reliable(1, min_size=1) == [0]

    def test_truncated_archive_clear_error(self, store, tmp_path):
        path = tmp_path / "spheres.npz"
        store.save(path)
        partial = tmp_path / "partial.npz"
        with np.load(path) as data:
            np.savez(partial, nodes=data["nodes"], indptr=data["indptr"])
        with pytest.raises(StoreFormatError, match="missing array — members"):
            SphereStore.load(partial)

    def test_non_store_archive_clear_error(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, whatever=np.arange(3))
        with pytest.raises(StoreFormatError, match="not a complete sphere store"):
            SphereStore.load(path)


class TestProvenance:
    def test_roundtrip_preserves_provenance(self, small_random, tmp_path):
        index = CascadeIndex.build(small_random, 8, seed=5)
        store = TypicalCascadeComputer(index).compute_store(nodes=range(6))
        assert store.provenance is not None
        assert store.provenance.num_worlds == 8
        path = tmp_path / "prov.npz"
        store.save(path)
        loaded = SphereStore.load(path)
        assert loaded.provenance == store.provenance

    def test_provenance_matches_store_header(self, small_random, tmp_path):
        index = CascadeIndex.build(small_random, 8, seed=5)
        index.save(tmp_path / "idx")
        reloaded = CascadeIndex.load(tmp_path / "idx")
        from_memory = TypicalCascadeComputer(index).compute_store(nodes=[0])
        from_disk = TypicalCascadeComputer(reloaded).compute_store(nodes=[0])
        assert from_memory.provenance.matches(from_disk.provenance)

    def test_absent_provenance_loads_as_none(self, store, tmp_path):
        path = tmp_path / "plain.npz"
        store.save(path)
        assert SphereStore.load(path).provenance is None
