"""Tests for repro.core.typical_cascade — Algorithm 2 end to end."""

from itertools import combinations

import numpy as np
import pytest

from repro.cascades.index import CascadeIndex
from repro.core.typical_cascade import TypicalCascadeComputer, compute_typical_cascade
from repro.median.cost import exact_expected_cost


@pytest.fixture
def fig1_computer(fig1) -> TypicalCascadeComputer:
    index = CascadeIndex.build(fig1, 400, seed=42)
    return TypicalCascadeComputer(index)


class TestCompute:
    def test_figure1_matches_brute_force(self, fig1, fig1_computer):
        """With enough samples the sphere of v5 is the exact optimal median
        {v1, v2, v5} (verified by exhaustive search over all 32 subsets)."""
        sphere = fig1_computer.compute(4)
        best_cost, best_set = min(
            (exact_expected_cost(fig1, 4, comb), comb)
            for r in range(6)
            for comb in combinations(range(5), r)
        )
        assert sphere.as_set() == set(best_set) == {0, 1, 4}
        assert exact_expected_cost(fig1, 4, sphere.members) == pytest.approx(
            best_cost
        )

    def test_sink_node_sphere_is_itself(self, fig1_computer):
        sphere = fig1_computer.compute(2)  # v3 has no out-arcs
        assert sphere.as_set() == {2}
        assert sphere.cost == 0.0

    def test_sample_statistics_populated(self, fig1_computer):
        sphere = fig1_computer.compute(4)
        assert sphere.num_samples == 400
        assert sphere.sample_size_max >= sphere.sample_size_mean >= 1.0
        assert sphere.sample_size_std >= 0.0

    def test_invalid_node(self, fig1_computer):
        with pytest.raises(ValueError):
            fig1_computer.compute(9)

    def test_refine_never_hurts(self, fig1):
        index = CascadeIndex.build(fig1, 64, seed=2)
        plain = TypicalCascadeComputer(index, refine=False).compute(4)
        refined = TypicalCascadeComputer(index, refine=True).compute(4)
        assert refined.cost <= plain.cost + 1e-12


class TestComputeAll:
    def test_all_nodes_present(self, small_random):
        index = CascadeIndex.build(small_random, 16, seed=5)
        spheres = TypicalCascadeComputer(index).compute_all()
        assert set(spheres) == set(range(small_random.num_nodes))

    def test_subset_of_nodes(self, small_random):
        index = CascadeIndex.build(small_random, 16, seed=5)
        spheres = TypicalCascadeComputer(index).compute_all(nodes=[3, 8])
        assert set(spheres) == {3, 8}

    def test_progress_callback(self, small_random):
        index = CascadeIndex.build(small_random, 8, seed=5)
        seen = []
        TypicalCascadeComputer(index).compute_all(
            nodes=[0, 1], on_progress=lambda v, s: seen.append(v)
        )
        assert seen == [0, 1]

    def test_consistent_with_single_compute(self, small_random):
        index = CascadeIndex.build(small_random, 16, seed=5)
        computer = TypicalCascadeComputer(index)
        spheres = computer.compute_all(nodes=[7])
        assert np.array_equal(spheres[7].members, computer.compute(7).members)


class TestSeedSets:
    def test_seed_set_sphere_contains_reliable_core(self, fig1):
        index = CascadeIndex.build(fig1, 300, seed=3)
        computer = TypicalCascadeComputer(index)
        sphere = computer.compute_seed_set([4, 2])
        # Both seeds are in every sampled cascade of the set.
        assert {2, 4} <= sphere.as_set()

    def test_empty_seed_set_rejected(self, fig1):
        index = CascadeIndex.build(fig1, 10, seed=3)
        with pytest.raises(ValueError, match="empty"):
            TypicalCascadeComputer(index).compute_seed_set([])

    def test_sources_recorded(self, fig1):
        index = CascadeIndex.build(fig1, 10, seed=3)
        sphere = TypicalCascadeComputer(index).compute_seed_set([4, 0])
        assert sphere.sources == (0, 4)


class TestConvenience:
    def test_one_shot_helper(self, fig1):
        sphere = compute_typical_cascade(fig1, 4, num_samples=300, seed=42)
        assert sphere.as_set() == {0, 1, 4}

    def test_one_shot_validates_samples(self, fig1):
        with pytest.raises(ValueError):
            compute_typical_cascade(fig1, 4, num_samples=0)
