"""Tests for repro.core.sphere."""

import numpy as np

from repro.core.sphere import SphereOfInfluence


def make(members=(1, 3, 5), sources=(0,), cost=0.2) -> SphereOfInfluence:
    return SphereOfInfluence(
        sources=sources,
        members=np.array(members, dtype=np.int64),
        cost=cost,
        num_samples=10,
    )


class TestSphere:
    def test_size(self):
        assert make().size == 3

    def test_as_set(self):
        assert make().as_set() == {1, 3, 5}

    def test_contains(self):
        s = make()
        assert s.contains(3)
        assert not s.contains(2)

    def test_contains_on_empty(self):
        s = make(members=())
        assert not s.contains(0)

    def test_sources_sorted_tuple(self):
        s = make(sources=(5, 1, 3))
        assert s.sources == (1, 3, 5)

    def test_repr_single_source(self):
        assert "source=0" in repr(make())

    def test_repr_seed_set(self):
        s = make(sources=(2, 1))
        assert "source=(1, 2)" in repr(s)

    def test_members_coerced_to_int64(self):
        s = SphereOfInfluence(
            sources=(0,), members=[4, 2], cost=0.0, num_samples=1
        )
        assert s.members.dtype == np.int64
