"""Tests for repro.core.planning — Theorem 2's sample-size formulas."""

import pytest

from repro.core.planning import (
    accuracy_for_samples,
    samples_for_accuracy,
    samples_for_all_nodes,
)


class TestForward:
    def test_formula_values(self):
        import math

        alpha = 0.2
        expected = math.ceil(math.log(1 / alpha) / alpha**2)
        assert samples_for_accuracy(alpha) == expected

    def test_smaller_alpha_needs_more(self):
        assert samples_for_accuracy(0.1) > samples_for_accuracy(0.3)

    def test_all_nodes_needs_more_than_single(self):
        assert samples_for_all_nodes(0.2, 10_000) > samples_for_accuracy(0.2)

    def test_independent_of_n_for_single_query(self):
        # The point of Theorem 2: no n anywhere.
        assert samples_for_accuracy(0.25) == samples_for_accuracy(0.25)

    def test_grows_logarithmically_with_n(self):
        small = samples_for_all_nodes(0.2, 100)
        large = samples_for_all_nodes(0.2, 100_000)
        assert small < large < small * 3

    @pytest.mark.parametrize("alpha", [0.0, 1.0, -0.1, 2.0])
    def test_alpha_validated(self, alpha):
        with pytest.raises(ValueError):
            samples_for_accuracy(alpha)


class TestInverse:
    def test_roundtrip(self):
        alpha = accuracy_for_samples(500)
        assert samples_for_accuracy(alpha) <= 500
        # And a slightly better alpha would not fit.
        assert samples_for_accuracy(alpha * 0.9) > 500 or alpha < 2e-4

    def test_all_nodes_roundtrip(self):
        alpha = accuracy_for_samples(1000, num_nodes=5000)
        assert samples_for_all_nodes(alpha, 5000) <= 1000

    def test_tiny_budget(self):
        # One sample only supports a very coarse alpha.
        assert 0.5 < accuracy_for_samples(1) <= 1.0

    def test_more_samples_better_accuracy(self):
        assert accuracy_for_samples(10_000) < accuracy_for_samples(100)

    def test_validation(self):
        with pytest.raises((ValueError, TypeError)):
            accuracy_for_samples(0)
