"""Tests for repro.core.vaccination — the DAVA-style application."""

import numpy as np
import pytest

from repro.core.vaccination import (
    degree_vaccination_baseline,
    greedy_vaccination,
)
from repro.graph.generators import path_graph, star_graph


class TestGreedyVaccination:
    def test_cut_vertex_is_obvious_choice(self):
        """On a certain path 0->1->2->3->4 with 0 infected, vaccinating
        node 1 saves everyone downstream."""
        g = path_graph(5, p=1.0)
        result = greedy_vaccination(g, [0], 1, num_worlds=8, seed=1)
        assert result.vaccinated == [1]
        assert result.expected_infections[-1] == 1.0
        assert result.saved == 4.0

    def test_curve_monotone_nonincreasing(self, small_random):
        result = greedy_vaccination(small_random, [0, 5], 3, num_worlds=24, seed=2)
        assert np.all(np.diff(result.expected_infections) <= 1e-9)

    def test_baseline_matches_first_entry(self, small_random):
        result = greedy_vaccination(small_random, [1], 2, num_worlds=16, seed=3)
        assert result.expected_infections[0] == result.baseline_infections

    def test_infected_nodes_never_vaccinated(self, small_random):
        infected = [0, 5, 9]
        result = greedy_vaccination(small_random, infected, 3, num_worlds=16, seed=4)
        assert not set(result.vaccinated) & set(infected)

    def test_star_vaccination_targets_hub_if_leaf_infected(self):
        # Leaf 3 infected on a star pointing outward: nothing spreads from
        # a leaf, so vaccination saves at most 0; greedy stops gracefully.
        g = star_graph(6, p=1.0)
        result = greedy_vaccination(g, [3], 1, num_worlds=8, seed=5)
        assert result.saved >= 0.0

    def test_validation(self, small_random):
        with pytest.raises(ValueError, match="empty"):
            greedy_vaccination(small_random, [], 1)
        with pytest.raises(ValueError, match="cannot vaccinate"):
            greedy_vaccination(small_random, [0], small_random.num_nodes)

    def test_deterministic(self, small_random):
        a = greedy_vaccination(small_random, [2], 2, num_worlds=16, seed=6)
        b = greedy_vaccination(small_random, [2], 2, num_worlds=16, seed=6)
        assert a.vaccinated == b.vaccinated


class TestDegreeBaseline:
    def test_selects_top_degree_healthy_nodes(self, small_random):
        result = degree_vaccination_baseline(
            small_random, [0], 3, num_worlds=8, seed=7
        )
        degrees = small_random.out_degrees()
        healthy_sorted = [
            int(v) for v in np.argsort(degrees)[::-1] if int(v) != 0
        ]
        assert result.vaccinated == healthy_sorted[:3]

    def test_greedy_at_least_matches_degree_baseline(self):
        """Greedy should never be worse than the naive heuristic on the
        same worlds (same seed => same sampled worlds)."""
        g = path_graph(8, p=0.9)
        greedy = greedy_vaccination(g, [0], 2, num_worlds=32, seed=8)
        naive = degree_vaccination_baseline(g, [0], 2, num_worlds=32, seed=8)
        assert (
            greedy.expected_infections[-1]
            <= naive.expected_infections[-1] + 1e-9
        )
