"""Tests for repro.cascades.reliability, including a numeric verification of
the Theorem 1 reduction (s-t reliability from two expected costs)."""

import pytest

from repro.cascades.reliability import (
    exact_cascade_distribution,
    exact_reliability,
    monte_carlo_reliability,
    reachability_probabilities,
)
from repro.graph.digraph import ProbabilisticDigraph
from repro.graph.generators import path_graph
from repro.median.cost import exact_expected_cost


class TestExactReliability:
    def test_single_edge(self):
        g = ProbabilisticDigraph(2, [(0, 1, 0.3)])
        assert exact_reliability(g, 0, 1) == pytest.approx(0.3)

    def test_two_parallel_paths(self, diamond):
        # 0->1->3 (0.5*0.5) and 0->2->3 (0.8*0.4); inclusion-exclusion.
        p1, p2 = 0.25, 0.32
        expected = p1 + p2 - p1 * p2
        assert exact_reliability(diamond, 0, 3) == pytest.approx(expected)

    def test_series_path(self):
        g = path_graph(4, p=0.5)
        assert exact_reliability(g, 0, 3) == pytest.approx(0.125)

    def test_source_to_itself(self, diamond):
        assert exact_reliability(diamond, 0, 0) == pytest.approx(1.0)

    def test_unreachable_target(self, diamond):
        assert exact_reliability(diamond, 3, 0) == 0.0


class TestMonteCarloReliability:
    def test_converges_to_exact(self, diamond):
        exact = exact_reliability(diamond, 0, 3)
        mc = monte_carlo_reliability(diamond, 0, 3, 5000, seed=0)
        assert mc == pytest.approx(exact, abs=0.03)

    def test_bounds(self, fig1):
        mc = monte_carlo_reliability(fig1, 4, 2, 500, seed=1)
        assert 0.0 <= mc <= 1.0


class TestExactCascadeDistribution:
    def test_paper_example1_values(self, fig1):
        """The worked probabilities of Example 1."""
        dist = exact_cascade_distribution(fig1, 4)
        assert dist[frozenset({4, 0})] == pytest.approx(0.2646)
        assert dist[frozenset({4, 1, 3})] == pytest.approx(0.036936)
        # {v1, v3, v4} (plus the source) is impossible: v3 needs v2.
        assert frozenset({4, 0, 2, 3}) not in dist

    def test_distribution_sums_to_one(self, fig1):
        assert sum(exact_cascade_distribution(fig1, 4).values()) == pytest.approx(1.0)

    def test_source_in_every_cascade(self, fig1):
        for cascade in exact_cascade_distribution(fig1, 4):
            assert 4 in cascade

    def test_multi_source(self, diamond):
        dist = exact_cascade_distribution(diamond, [1, 2])
        for cascade in dist:
            assert {1, 2} <= cascade


class TestReachabilityProbabilities:
    def test_matches_exact_reliability(self, diamond):
        probs = reachability_probabilities(diamond, 0, 4000, seed=2)
        assert probs[0] == 1.0
        assert probs[3] == pytest.approx(exact_reliability(diamond, 0, 3), abs=0.03)

    def test_vector_shape(self, fig1):
        probs = reachability_probabilities(fig1, 4, 100, seed=0)
        assert probs.shape == (5,)


class TestTheorem1Reduction:
    def test_reliability_recovered_from_expected_costs(self):
        """Numerically replay the #P-hardness reduction of Theorem 1.

        Build G' from G by adding certain arcs from t to every other node;
        then, with H1 = V and H2 = V \\ {t},

            rel(G, s, t) = (1 - n rho(H1) + (n-1) rho(H2)) / (2 - 1/n).

        Note: the paper's printed formula carries an extra "-1/n" in the
        numerator; re-deriving from its own case analysis (and this numeric
        check) shows the expression above is the correct one.
        """
        g = ProbabilisticDigraph(
            4, [(0, 1, 0.6), (1, 2, 0.5), (0, 2, 0.3), (2, 3, 0.7)]
        )
        s, t, n = 0, 3, 4
        expected_rel = exact_reliability(g, s, t)

        # G': add t -> every other node with probability 1.
        edges = list(g.edges())
        for v in range(n):
            if v != t:
                edges.append((t, v, 1.0))
        g_prime = ProbabilisticDigraph(n, edges)

        h1 = list(range(n))
        h2 = [v for v in range(n) if v != t]
        rho1 = exact_expected_cost(g_prime, s, h1)
        rho2 = exact_expected_cost(g_prime, s, h2)
        recovered = (1 - n * rho1 + (n - 1) * rho2) / (2 - 1 / n)
        assert recovered == pytest.approx(expected_rel, abs=1e-9)
