"""Tests for CascadeIndex.extend — deterministic incremental sampling."""

import numpy as np
import pytest

from repro.cascades.index import CascadeIndex


class TestExtend:
    def test_extension_matches_direct_build(self, small_random):
        grown = CascadeIndex.build(small_random, 4, seed=9)
        grown.extend(4)
        direct = CascadeIndex.build(small_random, 8, seed=9)
        assert grown.num_worlds == 8
        for node in (0, 13, 39):
            for world in range(8):
                assert np.array_equal(
                    grown.cascade(node, world), direct.cascade(node, world)
                )

    def test_matrix_and_stats_grow(self, small_random):
        index = CascadeIndex.build(small_random, 3, seed=1)
        index.extend(2)
        assert index.stats()["num_worlds"] == 5
        assert index._node_comp.shape == (small_random.num_nodes, 5)

    def test_all_cascade_sizes_after_extend(self, small_random):
        index = CascadeIndex.build(small_random, 3, seed=1)
        index.extend(3)
        sizes = index.all_cascade_sizes()
        assert sizes.shape == (small_random.num_nodes, 6)
        assert sizes[5, 4] == index.cascade_size(5, 4)

    def test_loaded_index_not_extendable(self, small_random, tmp_path):
        index = CascadeIndex.build(small_random, 3, seed=1)
        path = tmp_path / "idx.npz"
        index.save(path)
        loaded = CascadeIndex.load(path)
        with pytest.raises(RuntimeError, match="rebuild"):
            loaded.extend(1)

    def test_invalid_count(self, small_random):
        index = CascadeIndex.build(small_random, 3, seed=1)
        with pytest.raises(ValueError):
            index.extend(0)

    def test_reduced_flag_respected(self, small_random):
        reduced = CascadeIndex.build(small_random, 3, seed=2, reduce=True)
        reduced.extend(2)
        unreduced = CascadeIndex.build(small_random, 5, seed=2, reduce=False)
        # Reduced index has at most as many DAG arcs.
        assert (
            reduced.stats()["total_dag_edges"]
            <= unreduced.stats()["total_dag_edges"]
        )
