"""Tests for repro.cascades.distance_reliability."""

import numpy as np
import pytest

from repro.cascades.distance_reliability import (
    distance_reliability_profile,
    exact_distance_reliability,
    hop_distances,
    monte_carlo_distance_reliability,
)
from repro.cascades.reliability import exact_reliability
from repro.graph.generators import path_graph


class TestHopDistances:
    def test_path_distances(self):
        g = path_graph(5, p=1.0)
        dist = hop_distances(g, 0)
        assert dist.tolist() == [0, 1, 2, 3, 4]

    def test_unreachable_marked(self, diamond):
        dist = hop_distances(diamond, 3)
        assert dist[3] == 0
        assert dist[0] == -1

    def test_max_hops_truncates(self):
        g = path_graph(5, p=1.0)
        dist = hop_distances(g, 0, max_hops=2)
        assert dist.tolist() == [0, 1, 2, -1, -1]

    def test_masked_world(self, diamond):
        mask = np.array([True, False, True, False])  # keep (0,1), (1,3)
        dist = hop_distances(diamond, 0, mask)
        assert dist[1] == 1
        assert dist[2] == -1
        assert dist[3] == 2

    def test_shortest_path_chosen(self, diamond):
        # 0 -> 3 via either middle node: always 2 hops.
        dist = hop_distances(diamond, 0)
        assert dist[3] == 2


class TestExact:
    def test_series_path_probability(self):
        g = path_graph(3, p=0.5)
        assert exact_distance_reliability(g, 0, 2, 2) == pytest.approx(0.25)
        assert exact_distance_reliability(g, 0, 2, 1) == 0.0

    def test_unbounded_hops_equals_plain_reliability(self, diamond):
        bounded = exact_distance_reliability(diamond, 0, 3, diamond.num_nodes)
        assert bounded == pytest.approx(exact_reliability(diamond, 0, 3))

    def test_zero_hops_is_identity(self, diamond):
        assert exact_distance_reliability(diamond, 0, 0, 0) == pytest.approx(1.0)
        assert exact_distance_reliability(diamond, 0, 3, 0) == 0.0

    def test_monotone_in_hops(self, fig1):
        values = [
            exact_distance_reliability(fig1, 4, 2, d) for d in range(4)
        ]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))


class TestMonteCarlo:
    def test_converges_to_exact(self, diamond):
        exact = exact_distance_reliability(diamond, 0, 3, 2)
        mc = monte_carlo_distance_reliability(diamond, 0, 3, 2, 5000, seed=1)
        assert mc == pytest.approx(exact, abs=0.03)

    def test_deterministic(self, diamond):
        a = monte_carlo_distance_reliability(diamond, 0, 3, 2, 300, seed=2)
        b = monte_carlo_distance_reliability(diamond, 0, 3, 2, 300, seed=2)
        assert a == b


class TestProfile:
    def test_profile_monotone_and_ends_at_reliability(self, diamond):
        profile = distance_reliability_profile(diamond, 0, 3, 4000, seed=3)
        assert np.all(np.diff(profile) >= -1e-12)
        assert profile[-1] == pytest.approx(
            exact_reliability(diamond, 0, 3), abs=0.03
        )

    def test_profile_zero_before_shortest_path(self):
        g = path_graph(4, p=0.9)
        profile = distance_reliability_profile(g, 0, 3, 500, seed=4)
        assert profile[0] == 0.0
        assert profile[2] == 0.0  # needs at least 3 hops
