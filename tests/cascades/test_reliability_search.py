"""Tests for repro.cascades.reliability_search."""

import numpy as np
import pytest

from repro.cascades.index import CascadeIndex
from repro.cascades.reliability_search import (
    majority_reachable_set,
    reachability_frequencies,
    reliability_search,
)
from repro.graph.generators import path_graph


class TestFrequencies:
    def test_source_frequency_is_one(self, small_random):
        index = CascadeIndex.build(small_random, 32, seed=1)
        freq = reachability_frequencies(index, 4)
        assert freq[4] == 1.0
        assert np.all((freq >= 0) & (freq <= 1))

    def test_path_frequencies_decay_geometrically(self):
        g = path_graph(5, p=0.5)
        index = CascadeIndex.build(g, 4000, seed=2)
        freq = reachability_frequencies(index, 0)
        for hop in range(1, 5):
            assert freq[hop] == pytest.approx(0.5**hop, abs=0.05)

    def test_multi_source_union(self, small_random):
        index = CascadeIndex.build(small_random, 32, seed=1)
        f_union = reachability_frequencies(index, [2, 7])
        f2 = reachability_frequencies(index, 2)
        f7 = reachability_frequencies(index, 7)
        # Union reachability dominates each single source.
        assert np.all(f_union >= np.maximum(f2, f7) - 1e-12)

    def test_empty_sources_rejected(self, small_random):
        index = CascadeIndex.build(small_random, 8, seed=1)
        with pytest.raises(ValueError, match="empty"):
            reachability_frequencies(index, [])


class TestSearch:
    def test_threshold_monotone(self, small_random):
        index = CascadeIndex.build(small_random, 32, seed=3)
        low = reliability_search(index, 0, 0.2)
        high = reliability_search(index, 0, 0.8)
        assert set(high.tolist()) <= set(low.tolist())

    def test_eta_one_gives_certain_nodes_only(self):
        g = path_graph(4, p=1.0)
        index = CascadeIndex.build(g, 16, seed=4)
        certain = reliability_search(index, 0, 1.0)
        assert certain.tolist() == [0, 1, 2, 3]

    def test_source_always_included(self, small_random):
        index = CascadeIndex.build(small_random, 16, seed=5)
        result = reliability_search(index, 9, 1.0)
        assert 9 in result

    def test_eta_validated(self, small_random):
        index = CascadeIndex.build(small_random, 8, seed=5)
        with pytest.raises(ValueError):
            reliability_search(index, 0, 1.5)


class TestMajoritySet:
    def test_is_half_threshold(self, small_random):
        index = CascadeIndex.build(small_random, 32, seed=6)
        assert np.array_equal(
            majority_reachable_set(index, 3), reliability_search(index, 3, 0.5)
        )

    def test_monotone_in_sources(self, small_random):
        """Observation 4 of Section 5: the majority set grows with S."""
        index = CascadeIndex.build(small_random, 64, seed=7)
        single = majority_reachable_set(index, 3)
        double = majority_reachable_set(index, [3, 11])
        assert set(single.tolist()) <= set(double.tolist())
