"""Tests for repro.cascades.lt (extension model)."""

import numpy as np
import pytest

from repro.cascades.lt import expected_spread_lt, normalized_lt_weights, simulate_lt
from repro.graph.digraph import ProbabilisticDigraph
from repro.graph.generators import path_graph, star_graph


class TestWeights:
    def test_incoming_sums_capped_at_one(self, small_random):
        weights = normalized_lt_weights(small_random)
        sums = np.zeros(small_random.num_nodes)
        np.add.at(sums, np.asarray(small_random.targets, dtype=np.int64), weights)
        assert np.all(sums <= 1.0 + 1e-9)

    def test_under_capacity_weights_untouched(self):
        g = ProbabilisticDigraph(3, [(0, 2, 0.3), (1, 2, 0.4)])
        np.testing.assert_allclose(normalized_lt_weights(g), [0.3, 0.4])

    def test_over_capacity_rescaled(self):
        g = ProbabilisticDigraph(3, [(0, 2, 0.9), (1, 2, 0.9)])
        np.testing.assert_allclose(normalized_lt_weights(g), [0.5, 0.5])


class TestSimulate:
    def test_seeds_always_active(self, small_random):
        active = simulate_lt(small_random, [3], seed=0)
        assert 3 in active

    def test_full_weight_edge_always_fires(self):
        # Single incoming arc with weight 1.0 >= any threshold in (0, 1].
        g = path_graph(4, p=1.0)
        active = simulate_lt(g, 0, seed=5)
        assert active == {0, 1, 2, 3}

    def test_empty_seed_rejected(self, small_random):
        with pytest.raises(ValueError, match="empty"):
            simulate_lt(small_random, [], seed=0)

    def test_weights_shape_checked(self, small_random):
        with pytest.raises(ValueError, match="shape"):
            simulate_lt(small_random, [0], seed=0, weights=np.array([0.5]))

    def test_deterministic_in_seed(self, small_random):
        a = simulate_lt(small_random, [0], seed=9)
        b = simulate_lt(small_random, [0], seed=9)
        assert a == b


class TestSpread:
    def test_star_spread_matches_weights(self):
        """Each leaf of the star has one incoming arc of weight 0.3, so it
        activates iff its threshold <= 0.3: expected spread 1 + 10 * 0.3."""
        g = star_graph(11, p=0.3)
        spread = expected_spread_lt(g, [0], 3000, seed=1)
        assert spread == pytest.approx(4.0, abs=0.25)

    def test_monotone_in_seeds(self, small_random):
        s1 = expected_spread_lt(small_random, [0], 200, seed=2)
        s2 = expected_spread_lt(small_random, [0, 1], 200, seed=2)
        assert s2 >= s1 - 0.2  # MC noise tolerance
