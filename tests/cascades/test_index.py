"""Tests for repro.cascades.index — Algorithm 1's cascade index.

The central correctness property: for every node and world, the cascade
extracted through the SCC/condensation machinery equals direct BFS
reachability in that world.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cascades.index import CascadeIndex
from repro.graph.generators import gnp_digraph
from repro.graph.reachability import reachable_array
from repro.graph.sampling import WorldSampler


@pytest.fixture
def index(small_random) -> CascadeIndex:
    return CascadeIndex.build(small_random, 12, seed=7)


class TestBuild:
    def test_dimensions(self, index, small_random):
        assert index.num_worlds == 12
        assert index.num_nodes == small_random.num_nodes
        assert index.graph is small_random

    def test_invalid_sample_count(self, small_random):
        with pytest.raises(ValueError):
            CascadeIndex.build(small_random, 0)

    def test_deterministic_in_seed(self, small_random):
        a = CascadeIndex.build(small_random, 5, seed=1)
        b = CascadeIndex.build(small_random, 5, seed=1)
        for v in (0, 10):
            for w in range(5):
                assert np.array_equal(a.cascade(v, w), b.cascade(v, w))

    def test_reduce_flag_recorded(self, small_random):
        assert CascadeIndex.build(small_random, 3, reduce=True).reduced
        assert not CascadeIndex.build(small_random, 3, reduce=False).reduced


class TestExtractionCorrectness:
    def test_matches_direct_reachability(self, small_random):
        """The core invariant, against the same world stream."""
        sampler = WorldSampler(small_random, seed=7)
        index = CascadeIndex.build(small_random, 12, seed=7)
        for world in range(12):
            mask = sampler.world_mask(world)
            for node in range(0, small_random.num_nodes, 7):
                expected = reachable_array(small_random, node, mask)
                assert np.array_equal(index.cascade(node, world), expected)

    def test_reduced_and_unreduced_agree(self, small_random):
        a = CascadeIndex.build(small_random, 8, seed=3, reduce=True)
        b = CascadeIndex.build(small_random, 8, seed=3, reduce=False)
        for node in (0, 13, 39):
            for world in range(8):
                assert np.array_equal(a.cascade(node, world), b.cascade(node, world))

    def test_node_always_in_own_cascade(self, index):
        for node in (0, 5, 20):
            for world in (0, 6):
                assert node in index.cascade(node, world)

    def test_cascades_returns_all_worlds(self, index):
        cascades = index.cascades(3)
        assert len(cascades) == index.num_worlds
        for world, c in enumerate(cascades):
            assert np.array_equal(c, index.cascade(3, world))

    def test_cascade_size_matches_extraction(self, index):
        for node in (1, 17):
            for world in (2, 9):
                assert index.cascade_size(node, world) == index.cascade(
                    node, world
                ).size

    def test_bounds_checked(self, index):
        with pytest.raises(ValueError):
            index.cascade(0, 99)
        with pytest.raises(ValueError):
            index.cascade(999, 0)


class TestSeedSetCascades:
    def test_union_semantics(self, index):
        for world in (0, 5):
            joint = index.seed_set_cascade([2, 8], world)
            expected = np.union1d(index.cascade(2, world), index.cascade(8, world))
            assert np.array_equal(joint, expected)

    def test_empty_seed_set_rejected(self, index):
        with pytest.raises(ValueError, match="empty"):
            index.seed_set_cascade([], 0)

    def test_seed_set_cascades_all_worlds(self, index):
        all_cascades = index.seed_set_cascades([1, 2])
        assert len(all_cascades) == index.num_worlds


class TestAllCascadeSizes:
    def test_matches_per_query_sizes(self, small_random):
        index = CascadeIndex.build(small_random, 6, seed=11)
        sizes = index.all_cascade_sizes()
        assert sizes.shape == (small_random.num_nodes, 6)
        for node in range(0, small_random.num_nodes, 11):
            for world in range(6):
                assert sizes[node, world] == index.cascade_size(node, world)

    def test_fallback_path_agrees(self, small_random):
        index = CascadeIndex.build(small_random, 4, seed=2)
        fast = index.all_cascade_sizes()
        slow = index.all_cascade_sizes(max_closure_components=0)
        assert np.array_equal(fast, slow)


class TestComponentLookup:
    def test_component_of_matches_condensation(self, index):
        for node in (0, 9):
            for world in (1, 4):
                cond = index.condensation(world)
                assert index.component_of(node, world) == int(cond.node_comp[node])


class TestStats:
    def test_stats_keys_and_sanity(self, index):
        stats = index.stats()
        assert stats["num_worlds"] == 12
        assert stats["avg_components"] > 0
        assert stats["matrix_cells"] == index.num_nodes * 12


class TestSerialisation:
    def test_save_load_roundtrip(self, small_random, tmp_path):
        index = CascadeIndex.build(small_random, 6, seed=4)
        path = tmp_path / "index.npz"
        index.save(path)
        loaded = CascadeIndex.load(path)
        assert loaded.num_worlds == 6
        assert loaded.num_nodes == index.num_nodes
        assert loaded.reduced == index.reduced
        for node in (0, 15, 39):
            for world in range(6):
                assert np.array_equal(
                    loaded.cascade(node, world), index.cascade(node, world)
                )

    def test_loaded_graph_equal(self, small_random, tmp_path):
        index = CascadeIndex.build(small_random, 3, seed=4)
        path = tmp_path / "index.npz"
        index.save(path)
        assert CascadeIndex.load(path).graph == small_random


@given(st.integers(0, 10_000), st.floats(0.03, 0.3))
def test_extraction_equals_reachability_property(seed, density):
    """Property form of the core invariant on small random graphs."""
    graph = gnp_digraph(15, density, p=0.5, seed=seed % 997)
    index = CascadeIndex.build(graph, 3, seed=seed)
    sampler = WorldSampler(graph, seed=seed)
    for world in range(3):
        mask = sampler.world_mask(world)
        for node in range(0, 15, 4):
            assert np.array_equal(
                index.cascade(node, world), reachable_array(graph, node, mask)
            )
