"""Tests for repro.cascades.ic — the IC model and the live-edge equivalence."""

import numpy as np
import pytest

from repro.cascades.ic import (
    cascade_sizes,
    expected_spread_monte_carlo,
    sample_cascade,
    sample_cascades,
    simulate_ic,
)
from repro.graph.digraph import ProbabilisticDigraph
from repro.graph.generators import path_graph, star_graph


class TestSimulateIC:
    def test_seeds_always_active(self, fig1):
        active, rounds = simulate_ic(fig1, 4, seed=0)
        assert 4 in active
        assert rounds[0] == [4]

    def test_deterministic_graph_full_spread(self):
        g = path_graph(5, p=1.0)
        active, rounds = simulate_ic(g, 0, seed=0)
        assert active == {0, 1, 2, 3, 4}
        # Node k activates exactly at time k on a certain path.
        assert [sorted(r) for r in rounds] == [[0], [1], [2], [3], [4]]

    def test_rounds_partition_active_set(self, small_random):
        active, rounds = simulate_ic(small_random, [0, 5], seed=3)
        flattened = [v for r in rounds for v in r]
        assert sorted(flattened) == sorted(active)
        assert len(set(flattened)) == len(flattened)

    def test_multi_seed_deduplicated(self, fig1):
        active, rounds = simulate_ic(fig1, [4, 4], seed=0)
        assert rounds[0] == [4]

    def test_empty_seed_set_rejected(self, fig1):
        with pytest.raises(ValueError, match="empty"):
            simulate_ic(fig1, [], seed=0)

    def test_invalid_seed_rejected(self, fig1):
        with pytest.raises(ValueError):
            simulate_ic(fig1, 99, seed=0)


class TestLiveEdgeView:
    def test_sample_cascade_contains_seeds(self, fig1):
        cascade = sample_cascade(fig1, 4, seed=0)
        assert 4 in cascade

    def test_sample_cascades_sorted_arrays(self, fig1):
        cascades = sample_cascades(fig1, 4, 10, seed=1)
        assert len(cascades) == 10
        for c in cascades:
            assert np.all(np.diff(c) > 0) if c.size > 1 else True
            assert 4 in c

    def test_star_graph_leaf_activation_rate(self):
        """On a star with p=0.3, each leaf is active with probability 0.3."""
        g = star_graph(11, p=0.3)
        cascades = sample_cascades(g, 0, 3000, seed=2)
        rate = np.mean([c.size - 1 for c in cascades]) / 10
        assert rate == pytest.approx(0.3, abs=0.03)

    def test_distribution_equivalence_with_time_stepped(self, fig1):
        """Kempe et al.'s equivalence: both views give the same distribution
        over final active sets (checked on cascade-size moments)."""
        rng = np.random.default_rng(0)
        live_sizes = np.array(
            [len(sample_cascade(fig1, 4, rng)) for _ in range(4000)]
        )
        sim_sizes = np.array(
            [len(simulate_ic(fig1, 4, rng)[0]) for _ in range(4000)]
        )
        assert live_sizes.mean() == pytest.approx(sim_sizes.mean(), abs=0.1)
        assert live_sizes.std() == pytest.approx(sim_sizes.std(), abs=0.1)

    def test_cascade_sizes_shape(self, fig1):
        sizes = cascade_sizes(fig1, 4, 25, seed=0)
        assert sizes.shape == (25,)
        assert np.all(sizes >= 1)


class TestExpectedSpread:
    def test_exact_on_deterministic_graph(self):
        g = path_graph(6, p=1.0)
        assert expected_spread_monte_carlo(g, [0], 10, seed=0) == 6.0

    def test_monotone_in_seeds(self, small_random):
        s1 = expected_spread_monte_carlo(small_random, [0], 300, seed=1)
        s2 = expected_spread_monte_carlo(small_random, [0, 1, 2], 300, seed=1)
        assert s2 >= s1

    def test_two_node_graph_closed_form(self):
        g = ProbabilisticDigraph(2, [(0, 1, 0.4)])
        spread = expected_spread_monte_carlo(g, [0], 5000, seed=3)
        assert spread == pytest.approx(1.4, abs=0.05)
