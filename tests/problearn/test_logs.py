"""Tests for repro.problearn.logs."""

import pytest

from repro.problearn.logs import Action, ActionLog, generate_action_log


class TestActionLog:
    def test_add_and_counts(self):
        log = ActionLog()
        log.add(1, 100, 0)
        log.add(2, 100, 1)
        log.add(1, 200, 0)
        assert log.num_actions == 3
        assert log.num_items == 2

    def test_earliest_time_kept(self):
        log = ActionLog()
        log.add(1, 100, 5)
        log.add(1, 100, 2)
        log.add(1, 100, 9)
        assert log.episode(100) == {1: 2}
        assert log.num_actions == 1

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            ActionLog().add(1, 1, -1)

    def test_episode_missing_item(self):
        with pytest.raises(KeyError):
            ActionLog().episode(42)

    def test_episode_returns_copy(self):
        log = ActionLog()
        log.add(1, 5, 0)
        episode = log.episode(5)
        episode[99] = 0
        assert 99 not in log.episode(5)

    def test_episodes_iteration_ordered(self):
        log = ActionLog()
        log.add(1, 30, 0)
        log.add(1, 10, 0)
        assert [item for item, _ in log.episodes()] == [10, 30]

    def test_construct_from_actions(self):
        log = ActionLog([Action(1, 2, 3), Action(4, 2, 1)])
        assert log.episode(2) == {1: 3, 4: 1}

    def test_user_action_counts(self):
        log = ActionLog()
        log.add(0, 1, 0)
        log.add(0, 2, 0)
        log.add(1, 1, 1)
        counts = log.user_action_counts(3)
        assert counts.tolist() == [2, 1, 0]

    def test_len(self):
        log = ActionLog()
        log.add(1, 1, 0)
        assert len(log) == 1


class TestGenerateActionLog:
    def test_every_item_has_an_episode(self, small_random):
        log = generate_action_log(small_random, 10, seed=1)
        assert log.num_items == 10

    def test_seeds_at_time_zero(self, small_random):
        log = generate_action_log(small_random, 5, seed=1, initial_adopters=2)
        for _, episode in log.episodes():
            assert sum(1 for t in episode.values() if t == 0) == 2

    def test_activation_times_consistent_with_edges(self, small_random):
        """Every non-seed activation at time t has an in-neighbour active at
        time t-1 — the IC episode structure the learners rely on."""
        log = generate_action_log(small_random, 8, seed=2)
        reverse = small_random.reverse()
        for _, episode in log.episodes():
            for user, t in episode.items():
                if t == 0:
                    continue
                parents = [
                    int(u)
                    for u in reverse.successors(user)
                    if episode.get(int(u)) == t - 1
                ]
                assert parents, f"user {user} at t={t} has no parent"

    def test_deterministic(self, small_random):
        a = generate_action_log(small_random, 5, seed=3)
        b = generate_action_log(small_random, 5, seed=3)
        assert dict(a.episodes()) == dict(b.episodes())

    def test_validation(self, small_random):
        with pytest.raises(ValueError):
            generate_action_log(small_random, 0)
        with pytest.raises(ValueError, match="exceeds"):
            generate_action_log(small_random, 1, initial_adopters=10_000)
