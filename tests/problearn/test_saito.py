"""Tests for repro.problearn.saito — the EM learner."""

import numpy as np
import pytest

from repro.graph.digraph import ProbabilisticDigraph
from repro.graph.generators import path_graph
from repro.problearn.logs import ActionLog, generate_action_log
from repro.problearn.saito import learn_saito


def chain2() -> ProbabilisticDigraph:
    return ProbabilisticDigraph(2, [(0, 1, 0.5)])


class TestClosedFormCases:
    def test_single_parent_mle_is_success_rate(self):
        """With one potential parent, EM reduces to the exact MLE
        successes / attempts."""
        log = ActionLog()
        # 10 episodes: u at t=0 always; v at t=1 in 3 of them.
        for item in range(10):
            log.add(0, item, 0)
            if item < 3:
                log.add(1, item, 1)
        fit = learn_saito(chain2(), log)
        assert fit.graph.edge_probability(0, 1) == pytest.approx(0.3, abs=1e-6)

    def test_never_activated_drops_edge(self):
        log = ActionLog()
        log.add(0, 0, 0)
        fit = learn_saito(chain2(), log)
        assert fit.graph.num_edges == 0
        assert fit.probabilities.tolist() == [0.0]

    def test_always_activated_gives_one(self):
        log = ActionLog()
        for item in range(5):
            log.add(0, item, 0)
            log.add(1, item, 1)
        fit = learn_saito(chain2(), log)
        assert fit.graph.edge_probability(0, 1) == pytest.approx(1.0, abs=1e-6)

    def test_two_parents_split_credit(self):
        """Both parents always active when v activates: by symmetry EM gives
        both edges the same probability p with 1-(1-p)^2 = 1, i.e. p -> 1,
        unless there are failures. Add failures to pin p below 1."""
        g = ProbabilisticDigraph(3, [(0, 2, 0.5), (1, 2, 0.5)])
        log = ActionLog()
        # 4 episodes where both parents act and v follows; 4 where both act
        # and v does not.
        for item in range(8):
            log.add(0, item, 0)
            log.add(1, item, 0)
            if item < 4:
                log.add(2, item, 1)
        fit = learn_saito(g, log)
        p0 = fit.graph.edge_probability(0, 2)
        p1 = fit.graph.edge_probability(1, 2)
        assert p0 == pytest.approx(p1, abs=1e-9)
        # Fixed point: P(v) = 1 - (1-p)^2 must equal the success rate 0.5
        # at the symmetric MLE.
        assert 1 - (1 - p0) ** 2 == pytest.approx(0.5, abs=1e-3)

    def test_gap_in_timestamps_is_failed_attempt(self):
        """v active at t=2 after u at t=0 is NOT credited to u (the Saito
        model only allows infection one step later) and counts as a failed
        attempt of u."""
        log = ActionLog()
        log.add(0, 0, 0)
        log.add(1, 0, 2)
        fit = learn_saito(chain2(), log)
        assert fit.graph.num_edges == 0


class TestFitDiagnostics:
    def test_iterations_bounded(self, small_random):
        log = generate_action_log(small_random, 20, seed=1)
        fit = learn_saito(small_random, log, max_iterations=7)
        assert 1 <= fit.iterations <= 7

    def test_probabilities_aligned_with_input_arcs(self, small_random):
        log = generate_action_log(small_random, 20, seed=1)
        fit = learn_saito(small_random, log)
        assert fit.probabilities.shape == (small_random.num_edges,)
        assert np.all((fit.probabilities >= 0) & (fit.probabilities <= 1))

    def test_log_likelihood_finite(self, small_random):
        log = generate_action_log(small_random, 20, seed=1)
        fit = learn_saito(small_random, log)
        assert np.isfinite(fit.log_likelihood)

    def test_validation(self):
        with pytest.raises(ValueError):
            learn_saito(chain2(), ActionLog(), tolerance=0.0)
        with pytest.raises(ValueError):
            learn_saito(chain2(), ActionLog(), max_iterations=0)


class TestRecovery:
    def test_recovers_planted_probability_on_chain(self):
        """Many episodes on a certain-structure chain: EM should land near
        the planted 0.6 for mid-chain edges with enough data."""
        g = path_graph(5, p=0.6)
        log = generate_action_log(g, 1500, seed=3)
        fit = learn_saito(g, log)
        if fit.graph.has_edge(1, 2):
            assert fit.graph.edge_probability(1, 2) == pytest.approx(0.6, abs=0.1)

    def test_em_estimates_at_most_goyal_on_shared_log(self, small_random):
        """EM splits credit among co-parents, so on average its estimates do
        not exceed the frequentist ones (the Figure 3 ordering)."""
        from repro.problearn.goyal import learn_goyal

        log = generate_action_log(small_random, 60, seed=5)
        saito_fit = learn_saito(small_random, log)
        goyal_graph = learn_goyal(small_random, log)
        saito_mean = (
            saito_fit.graph.probs.mean() if saito_fit.graph.num_edges else 0.0
        )
        goyal_mean = goyal_graph.probs.mean() if goyal_graph.num_edges else 0.0
        assert saito_mean <= goyal_mean + 0.1
