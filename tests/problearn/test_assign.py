"""Tests for repro.problearn.assign."""

import numpy as np
import pytest

from repro.graph.digraph import ProbabilisticDigraph
from repro.problearn.assign import (
    assign_fixed,
    assign_trivalency,
    assign_weighted_cascade,
)


@pytest.fixture
def g() -> ProbabilisticDigraph:
    return ProbabilisticDigraph(
        4, [(0, 1, 0.9), (2, 1, 0.9), (3, 1, 0.9), (0, 2, 0.9), (1, 3, 0.9)]
    )


class TestWeightedCascade:
    def test_probability_is_inverse_indegree(self, g):
        wc = assign_weighted_cascade(g)
        # Node 1 has in-degree 3.
        assert wc.edge_probability(0, 1) == pytest.approx(1 / 3)
        assert wc.edge_probability(2, 1) == pytest.approx(1 / 3)
        # Node 2 has in-degree 1.
        assert wc.edge_probability(0, 2) == 1.0

    def test_incoming_probabilities_sum_to_one(self, g):
        wc = assign_weighted_cascade(g)
        sums = np.zeros(4)
        np.add.at(sums, np.asarray(wc.targets, dtype=np.int64), wc.probs)
        for v in range(4):
            if g.in_degrees()[v] > 0:
                assert sums[v] == pytest.approx(1.0)

    def test_topology_unchanged(self, g):
        wc = assign_weighted_cascade(g)
        assert wc.num_edges == g.num_edges
        assert np.array_equal(wc.targets, g.targets)


class TestFixed:
    def test_constant(self, g):
        fixed = assign_fixed(g, 0.1)
        assert all(p == 0.1 for _, _, p in fixed.edges())

    def test_default_is_point_one(self, g):
        assert assign_fixed(g).edge_probability(0, 1) == 0.1

    def test_validation(self, g):
        with pytest.raises(ValueError):
            assign_fixed(g, 0.0)


class TestTrivalency:
    def test_values_from_palette(self, g):
        tri = assign_trivalency(g, seed=1)
        assert set(np.unique(tri.probs)) <= {0.1, 0.01, 0.001}

    def test_deterministic(self, g):
        a = assign_trivalency(g, seed=2)
        b = assign_trivalency(g, seed=2)
        assert a == b

    def test_custom_values(self, g):
        tri = assign_trivalency(g, values=(0.5,), seed=0)
        assert all(p == 0.5 for _, _, p in tri.edges())

    def test_empty_values_rejected(self, g):
        with pytest.raises(ValueError, match="empty"):
            assign_trivalency(g, values=())
