"""Tests for repro.problearn.streaming — the STRIP-style learner."""

import pytest

from repro.graph.digraph import ProbabilisticDigraph
from repro.problearn.goyal import learn_goyal
from repro.problearn.logs import generate_action_log
from repro.problearn.streaming import StreamingInfluenceLearner


def chain2() -> ProbabilisticDigraph:
    return ProbabilisticDigraph(2, [(0, 1, 0.5)])


class TestBasics:
    def test_simple_credit(self):
        learner = StreamingInfluenceLearner(chain2())
        for item in range(4):
            learner.process(0, item, 0)
        for item in range(3):
            learner.process(1, item, 1)
        learnt = learner.estimates()
        assert learnt.edge_probability(0, 1) == pytest.approx(0.75)

    def test_duplicate_actions_ignored(self):
        learner = StreamingInfluenceLearner(chain2())
        learner.process(0, 0, 0)
        learner.process(0, 0, 5)  # same user+item again
        learner.process(1, 0, 1)
        assert learner.num_processed == 2
        assert learner.estimates().edge_probability(0, 1) == 1.0

    def test_same_time_no_credit(self):
        learner = StreamingInfluenceLearner(chain2())
        learner.process(0, 0, 3)
        learner.process(1, 0, 3)
        assert learner.estimates().num_edges == 0

    def test_unknown_user_ignored(self):
        learner = StreamingInfluenceLearner(chain2())
        learner.process(99, 0, 0)
        assert learner.num_processed == 0

    def test_min_probability_clamp(self):
        learner = StreamingInfluenceLearner(chain2())
        learner.process(0, 0, 0)
        learnt = learner.estimates(min_probability=0.05)
        assert learnt.edge_probability(0, 1) == 0.05


class TestWindow:
    def test_window_expires_old_credit(self):
        learner = StreamingInfluenceLearner(chain2(), window=2)
        learner.process(0, 0, 0)
        learner.process(1, 0, 5)  # 5 steps later: outside the window
        assert learner.estimates().num_edges == 0

    def test_window_keeps_recent_credit(self):
        learner = StreamingInfluenceLearner(chain2(), window=2)
        learner.process(0, 0, 0)
        learner.process(1, 0, 2)
        assert learner.estimates().edge_probability(0, 1) == 1.0

    def test_memory_bounded_by_finish_item(self):
        learner = StreamingInfluenceLearner(chain2(), window=1)
        for item in range(50):
            learner.process(0, item, 0)
            learner.finish_item(item)
        assert learner.memory_footprint() == 0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            StreamingInfluenceLearner(chain2(), window=0)


class TestBatchEquivalence:
    def test_unbounded_window_matches_batch_goyal(self, small_random):
        """The correctness anchor: one pass over the full log reproduces
        the batch frequentist estimates exactly."""
        log = generate_action_log(small_random, 40, seed=1)
        learner = StreamingInfluenceLearner(small_random)
        learner.process_log(log)
        streamed = learner.estimates()
        batch = learn_goyal(small_random, log)
        assert streamed == batch

    def test_windowed_matches_batch_with_time_window(self, small_random):
        log = generate_action_log(small_random, 30, seed=2)
        learner = StreamingInfluenceLearner(small_random, window=2)
        learner.process_log(log)
        streamed = learner.estimates()
        batch = learn_goyal(small_random, log, time_window=2)
        assert streamed == batch
