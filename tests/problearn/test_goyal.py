"""Tests for repro.problearn.goyal — the frequentist learner."""

import pytest

from repro.graph.digraph import ProbabilisticDigraph
from repro.graph.generators import path_graph
from repro.problearn.goyal import learn_goyal
from repro.problearn.logs import ActionLog, generate_action_log


def chain2() -> ProbabilisticDigraph:
    return ProbabilisticDigraph(2, [(0, 1, 0.5)])


class TestHandComputed:
    def test_simple_credit(self):
        """u acts on 4 items; v follows on 3 of them: p = 3/4."""
        log = ActionLog()
        for item in range(4):
            log.add(0, item, 0)
        for item in range(3):
            log.add(1, item, 1)
        learnt = learn_goyal(chain2(), log)
        assert learnt.edge_probability(0, 1) == pytest.approx(0.75)

    def test_no_credit_drops_edge(self):
        log = ActionLog()
        log.add(0, 1, 0)  # u acts, v never does
        learnt = learn_goyal(chain2(), log)
        assert learnt.num_edges == 0
        assert learnt.num_nodes == 2

    def test_min_probability_clamps_instead(self):
        log = ActionLog()
        log.add(0, 1, 0)
        learnt = learn_goyal(chain2(), log, min_probability=0.01)
        assert learnt.edge_probability(0, 1) == 0.01

    def test_simultaneous_actions_get_no_credit(self):
        log = ActionLog()
        log.add(0, 1, 3)
        log.add(1, 1, 3)  # same timestamp: no direction of influence
        learnt = learn_goyal(chain2(), log)
        assert learnt.num_edges == 0

    def test_earlier_v_gets_no_credit(self):
        log = ActionLog()
        log.add(0, 1, 5)
        log.add(1, 1, 2)
        learnt = learn_goyal(chain2(), log)
        assert learnt.num_edges == 0

    def test_time_window_cuts_late_credit(self):
        log = ActionLog()
        log.add(0, 1, 0)
        log.add(1, 1, 10)
        with_window = learn_goyal(chain2(), log, time_window=3)
        without = learn_goyal(chain2(), log)
        assert with_window.num_edges == 0
        assert without.edge_probability(0, 1) == 1.0

    def test_probability_capped_at_one(self):
        # v acts after u on the only item; A_u = 1, A_u2v = 1.
        log = ActionLog()
        log.add(0, 0, 0)
        log.add(1, 0, 1)
        learnt = learn_goyal(chain2(), log)
        assert learnt.edge_probability(0, 1) == 1.0


class TestValidation:
    def test_bad_window(self):
        with pytest.raises(ValueError, match="time_window"):
            learn_goyal(chain2(), ActionLog(), time_window=0)

    def test_bad_min_probability(self):
        with pytest.raises(ValueError, match="min_probability"):
            learn_goyal(chain2(), ActionLog(), min_probability=2.0)


class TestOnSyntheticLogs:
    def test_recovers_rough_magnitude_on_chain(self):
        """On a long chain with many episodes the frequentist estimate of a
        mid-chain edge is in the neighbourhood of the ground truth."""
        g = path_graph(6, p=0.6)
        log = generate_action_log(g, 800, seed=0)
        learnt = learn_goyal(g, log)
        if learnt.has_edge(2, 3):
            assert 0.3 < learnt.edge_probability(2, 3) < 0.9

    def test_learnt_graph_is_subgraph(self, small_random):
        log = generate_action_log(small_random, 50, seed=1)
        learnt = learn_goyal(small_random, log)
        for u, v, _ in learnt.edges():
            assert small_random.has_edge(u, v)
