"""Runner: discovery, syntax errors, ordering."""

from pathlib import Path

import pytest

from repro.analysis import analyze_paths, analyze_source
from repro.analysis.runner import discover_files


def test_syntax_error_reported_not_raised():
    diagnostics = analyze_source("def broken(:\n", path="src/repro/graph/x.py")
    assert len(diagnostics) == 1
    assert diagnostics[0].checker_id == "REP001"
    assert "syntax error" in diagnostics[0].message


def test_discover_skips_cache_dirs(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "mod.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "notes.txt").write_text("not python\n")
    found = discover_files([tmp_path])
    assert [p.name for p in found] == ["mod.py"]


def test_discover_accepts_explicit_files(tmp_path):
    target = tmp_path / "one.py"
    target.write_text("x = 1\n")
    assert discover_files([target]) == [target]


def test_discover_missing_path_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        discover_files([tmp_path / "absent.py"])


def test_analyze_paths_sorted_across_files(tmp_path):
    package = tmp_path / "src" / "repro" / "graph"
    package.mkdir(parents=True)
    bad = "import numpy as np\nrng = np.random.default_rng()\n"
    (package / "b_mod.py").write_text(bad)
    (package / "a_mod.py").write_text(bad)
    diagnostics = analyze_paths([tmp_path])
    paths = [Path(d.path).name for d in diagnostics]
    assert paths == sorted(paths)
