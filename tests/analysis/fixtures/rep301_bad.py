"""REP301 positive fixture: exact float comparisons."""


def classify(prob: float, cost):
    if prob == 0.0:  # flagged: float literal equality
        return "impossible"
    if cost != 1.0:  # flagged
        return "partial"
    if float(cost) == prob:  # flagged: float() cast operand
        return "tie"
    ratio = cost / 2
    if ratio == prob:  # flagged: true-division operand
        return "half"
    return "other"
