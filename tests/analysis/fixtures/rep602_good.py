"""REP602 negative fixture: batch parts, concatenate once."""

import numpy as np


def accumulate(chunks):
    parts = []
    for chunk in chunks:
        parts.append(chunk)  # ok: amortised list growth
    return np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)


def widen(rows):
    collected = [row for row in rows]
    return np.vstack(collected) if collected else np.zeros((0, 4))
