"""REP601 positive fixture: linear list scans inside loops."""


def align(sources, targets):
    order = list(targets)
    positions = []
    for s in sources:
        positions.append(order.index(s))  # flagged: repeated linear scan
    return positions


def intersect(frontier, visited_nodes):
    visited = [v for v in visited_nodes]
    hits = 0
    while frontier:
        node = frontier.pop()
        if node in visited:  # flagged: list membership in loop
            hits += 1
    return hits
