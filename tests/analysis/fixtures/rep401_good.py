"""REP401 negative fixture: None defaults constructed in the body."""


def gather(items, acc=None):
    acc = [] if acc is None else acc
    acc.extend(items)
    return acc


def tally(counts=None, *, seen=frozenset()):  # frozenset is immutable: ok
    counts = {} if counts is None else counts
    return counts, seen


def label(name: str = "default", scale: float = 1.0, flag: bool = False):
    return name, scale, flag
