"""REP502 positive fixture: probability param computed with, unvalidated."""


def edge_weight(base: float, p: float):
    return base * (1.0 - p)  # flagged: p used in arithmetic, never validated


class Assigner:
    def __init__(self, p: float):
        self.scaled = p * 0.5  # flagged: constructor computes with raw p
