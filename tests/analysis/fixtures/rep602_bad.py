"""REP602 positive fixture: per-iteration array reallocation."""

import numpy as np


def accumulate(chunks):
    acc = np.zeros(0, dtype=np.int64)
    for chunk in chunks:
        acc = np.concatenate((acc, chunk))  # flagged: O(total) per iteration
    return acc


def widen(rows):
    table = np.zeros((0, 4))
    for row in rows:
        table = np.vstack([table, row])  # flagged
    return table
