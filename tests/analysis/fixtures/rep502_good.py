"""REP502 negative fixture: validated, forwarded, or private."""

from repro.utils.validation import check_probability


def edge_weight(base: float, p: float):
    p = check_probability(p, "p")  # ok: validated before use
    return base * (1.0 - p)


def add_both_directions(builder, u, v, p: float):
    builder.add_edge(u, v, p)  # ok: forwarded — callee validates
    builder.add_edge(v, u, p)


def _internal_weight(base: float, p: float):
    return base * p  # ok: private helper, caller validated


class Assigner:
    def __init__(self, p: float):
        self.p = check_probability(p, "p")  # ok
