"""REP102 positive fixture: derived randomness with no injectable seed."""

from repro.utils.rng import derive_rng


def shuffle_nodes(nodes):
    rng = derive_rng()  # flagged: no seed parameter anywhere
    order = rng.permutation(len(nodes))
    return [nodes[int(i)] for i in order]
