"""REP501 positive fixture: literal probabilities outside [0, 1]."""


def build_fixture(assign):
    high = assign(p=1.5)  # flagged
    negative = assign(copy_prob=-0.25)  # flagged
    return high, negative


def spread_model(graph, p: float = 2.0):  # flagged: default outside [0, 1]
    return graph, p
