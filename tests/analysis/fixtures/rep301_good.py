"""REP301 negative fixture: tolerant or integer comparisons."""

import math


def classify(prob: float, cost, count: int):
    if prob <= 0.0:  # ok: inequality
        return "impossible"
    if math.isclose(cost, 1.0):  # ok: tolerant comparison
        return "full"
    if count == 0:  # ok: int equality is exact
        return "empty"
    if count != 1:  # ok
        return "many"
    return "other"
