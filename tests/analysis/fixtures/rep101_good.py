"""REP101 negative fixture: randomness routed through the rng contract."""

import numpy as np

from repro.utils.rng import SeedLike, derive_rng


def sample_sizes(n, seed: SeedLike = None):
    rng = derive_rng(seed)
    child = np.random.SeedSequence(entropy=7, spawn_key=(1,))  # explicit entropy: ok
    follower = derive_rng(child)
    return rng.integers(0, n), follower.random(n)


def typed_helper(rng: np.random.Generator) -> float:  # type reference: ok
    return float(rng.random())
