"""REP102 negative fixture: seeds injectable in every supported shape."""

from repro.utils.rng import SeedLike, derive_rng, spawn_rngs


def shuffle_nodes(nodes, seed: SeedLike = None):
    rng = derive_rng(seed)  # ok: seed parameter
    order = rng.permutation(len(nodes))
    return [nodes[int(i)] for i in order]


def fixed_stream():
    return derive_rng(1234)  # ok: constant seed is deterministic


def fan_out(config, count):
    return spawn_rngs(config.seed + 5, count)  # ok: seed attribute expression


class Sampler:
    def __init__(self, seed: SeedLike = None):
        self._seed = seed

    def draw(self, n):
        return derive_rng(self._seed).random(n)  # ok: injected via constructor
