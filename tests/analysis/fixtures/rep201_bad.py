"""REP201 positive fixture: set order reaching ordered output."""

import numpy as np


def collect(edges):
    targets = {v for _, v in edges}
    out = []
    for v in targets:  # flagged: hash order reaches the returned list
        out.append(v)
    return out


def materialise(nodes):
    pending = set(nodes)
    return list(pending)  # flagged: list() freezes hash order


def as_array(nodes):
    return np.array({n + 1 for n in nodes})  # flagged: array freezes hash order


def emit(nodes):
    seen = set(nodes)
    for v in seen:  # flagged: yield order is hash order
        yield v
