"""REP501 negative fixture: in-range literals, non-probability names."""


def build_fixture(assign, resize):
    edge = assign(p=0.35)  # ok: in range
    full = assign(probability=1.0)  # ok: boundary included
    scaled = resize(factor=2.5)  # ok: not a probability name
    return edge, full, scaled


def spread_model(graph, p: float = 0.1):  # ok
    return graph, p
