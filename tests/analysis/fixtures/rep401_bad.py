"""REP401 positive fixture: mutable defaults."""

import numpy as np


def gather(items, acc=[]):  # flagged: list literal default
    acc.extend(items)
    return acc


def tally(counts={}, *, seen=set()):  # flagged twice
    return counts, seen


def buffer(values, out=np.zeros(4)):  # flagged: shared array default
    out[: len(values)] = values
    return out
