"""REP201 negative fixture: sorted iteration or order-insensitive folds."""


def collect(edges):
    targets = {v for _, v in edges}
    out = []
    for v in sorted(targets):  # ok: explicit ordering
        out.append(v)
    return out


def total(nodes):
    pending = set(nodes)
    return sum(x * 2 for x in pending)  # ok: order-insensitive fold


def biggest(nodes):
    pending = set(nodes)
    count = 0
    for v in pending:  # ok: commutative accumulation, no ordered output
        count += v
    return count


def over_list(nodes):
    ordered = list(nodes)
    out = []
    for v in ordered:  # ok: lists preserve their order
        out.append(v)
    return out
