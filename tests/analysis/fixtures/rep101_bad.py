"""REP101 positive fixture: direct RNG construction outside utils/rng."""

import random

import numpy as np


def sample_sizes(n):
    rng = np.random.default_rng()  # flagged: direct construction
    legacy = np.random.random(n)  # flagged: legacy global distribution
    jitter = random.random()  # flagged: stdlib global state
    seq = np.random.SeedSequence()  # flagged: OS-entropy SeedSequence
    return rng.integers(0, n), legacy, jitter, seq
