"""REP601 negative fixture: constant-time lookups inside loops."""


def align(sources, targets):
    position_of = {t: i for i, t in enumerate(targets)}
    positions = []
    for s in sources:
        positions.append(position_of[s])  # ok: dict lookup
    return positions


def intersect(frontier, visited_nodes):
    visited = set(visited_nodes)
    hits = 0
    while frontier:
        node = frontier.pop()
        if node in visited:  # ok: set membership
            hits += 1
    return hits


def once(sources, targets):
    order = list(targets)
    return order.index(sources[0])  # ok: not inside a loop
