"""CLI behaviour: exit codes, formats, selection."""

import io
import json
from contextlib import redirect_stdout

import pytest

from repro.analysis.cli import main

CLEAN = "def add(a: int, b: int) -> int:\n    return a + b\n"
DIRTY = "import numpy as np\nrng = np.random.default_rng()\n"


def run_cli(argv):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(argv)
    return code, buffer.getvalue()


@pytest.fixture
def tree(tmp_path):
    package = tmp_path / "src" / "repro" / "graph"
    package.mkdir(parents=True)
    (package / "clean.py").write_text(CLEAN)
    (package / "dirty.py").write_text(DIRTY)
    return tmp_path / "src" / "repro"


def test_clean_file_exits_zero(tmp_path):
    target = tmp_path / "clean.py"
    target.write_text(CLEAN)
    code, out = run_cli([str(target)])
    assert code == 0
    assert "reprolint: clean" in out


def test_violations_exit_one_with_report(tree):
    code, out = run_cli([str(tree)])
    assert code == 1
    assert "REP101" in out
    assert "dirty.py" in out
    assert "finding(s)" in out


def test_json_format(tree):
    code, out = run_cli([str(tree), "--format", "json"])
    assert code == 1
    payload = json.loads(out)
    assert payload and payload[0]["checker_id"] == "REP101"
    assert payload[0]["severity"] == "error"


def test_select_limits_checkers(tree):
    code, out = run_cli([str(tree), "--select", "REP301"])
    assert code == 0
    assert "REP101" not in out


def test_ignore_drops_checker(tree):
    code, _ = run_cli([str(tree), "--ignore", "REP101,REP102"])
    assert code == 0


def test_unknown_checker_id_is_usage_error(tree):
    with pytest.raises(SystemExit) as exc:
        run_cli([str(tree), "--select", "REP123"])
    assert exc.value.code == 2


def test_missing_path_is_usage_error():
    with pytest.raises(SystemExit) as exc:
        run_cli(["definitely/not/a/path"])
    assert exc.value.code == 2


def test_list_checkers(tmp_path):
    code, out = run_cli(["--list-checkers"])
    assert code == 0
    for checker_id in ("REP101", "REP201", "REP301", "REP401", "REP501", "REP601"):
        assert checker_id in out


def test_list_checkers_includes_project_pass(tmp_path):
    _code, out = run_cli(["--list-checkers"])
    for checker_id in ("REP701", "REP702", "REP703", "REP704", "REP705"):
        assert checker_id in out


def test_json_shorthand_flag(tree):
    code, out = run_cli([str(tree), "--json"])
    assert code == 1
    payload = json.loads(out)
    assert payload and payload[0]["checker_id"] == "REP101"


PROJECT_DIRTY = (
    "import threading\n"
    "\n"
    "class Box:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self._value = 0  # guarded-by: _lock\n"
    "\n"
    "    def peek(self):\n"
    "        return self._value\n"
)


def test_project_flag_runs_rep7xx_pass(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(PROJECT_DIRTY)
    # The module pass does not know REP701 …
    code, out = run_cli([str(target)])
    assert code == 0
    # … the project pass does.
    code, out = run_cli(["--project", str(target)])
    assert code == 1
    assert "REP701" in out


def test_project_json_output(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(PROJECT_DIRTY)
    code, out = run_cli(["--project", "--json", str(target)])
    assert code == 1
    payload = json.loads(out)
    assert [d["checker_id"] for d in payload] == ["REP701"]
    assert payload[0]["severity"] == "error"


def test_explain_prints_the_catalogue():
    from repro.analysis.explain import render_catalogue

    code, out = run_cli(["--explain"])
    assert code == 0
    assert out == render_catalogue()
    for checker_id in ("REP001", "REP002", "REP101", "REP701", "REP705"):
        assert f"### {checker_id}" in out


def test_no_suppress_flag(tmp_path):
    target = tmp_path / "suppressed.py"
    target.write_text(
        "import numpy as np\n"
        "rng = np.random.default_rng()  # reprolint: disable=REP101\n"
    )
    assert run_cli([str(target)])[0] == 0
    assert run_cli([str(target), "--no-suppress"])[0] == 1


def test_module_entry_point_runs():
    import subprocess
    import sys

    result = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--list-checkers"],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0
    assert "REP101" in result.stdout
