"""Whole-program (REP7xx) pass: lock model, call graph, checkers.

Each test builds a tiny in-memory project via
:meth:`ProjectContext.from_sources` and runs exactly one checker, so a
failure names the broken invariant rather than a fixture file.
"""

import textwrap

from repro.analysis import analyze_project, project_registry
from repro.analysis.project import ProjectContext, module_name_for_path


def _run(checker_id, sources):
    project = ProjectContext.from_sources(
        {path: textwrap.dedent(src) for path, src in sources.items()}
    )
    checker = next(c for c in project_registry() if c.id == checker_id)
    return sorted(checker.check(project))


# -- model plumbing -----------------------------------------------------------


def test_module_name_strips_src_prefix():
    assert module_name_for_path("src/repro/serve/cache.py") == "repro.serve.cache"


def test_module_name_for_package_init():
    assert module_name_for_path("src/repro/serve/__init__.py") == "repro.serve"


def test_lock_attrs_and_guards_collected():
    project = ProjectContext.from_sources(
        {
            "src/repro/mod.py": textwrap.dedent(
                """
                import threading

                class Box:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._value = 0  # guarded-by: _lock
                """
            )
        }
    )
    cls = project.classes["repro.mod.Box"]
    assert cls.locks["_lock"].kind == "mutex"
    assert cls.guarded == {"_value": "_lock"}
    assert cls.guard_key("_value") == "Box._lock"


# -- REP701: guarded-by -------------------------------------------------------


_GUARDED = """
    import threading

    class Box:
        def __init__(self):
            self._lock = threading.Lock()
            self._value = 0  # guarded-by: _lock

        def locked_read(self):
            with self._lock:
                return self._value

        def unlocked_read(self):
            return self._value
"""


def test_rep701_flags_unguarded_access():
    diagnostics = _run("REP701", {"src/repro/mod.py": _GUARDED})
    assert len(diagnostics) == 1
    assert "unlocked_read" in diagnostics[0].message
    assert "Box._lock" in diagnostics[0].message


def test_rep701_init_is_exempt():
    # __init__ assigns the guarded attribute with no lock held; the object
    # is not shared yet, so the sole finding must be the unlocked_read one.
    diagnostics = _run("REP701", {"src/repro/mod.py": _GUARDED})
    assert all(d.line > 7 for d in diagnostics)


def test_rep701_requires_lock_annotation_covers_helper_body():
    source = """
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self._n = 0  # guarded-by: _lock

            def _bump(self):  # requires-lock: _lock
                self._n += 1

            def locked_caller(self):
                with self._lock:
                    self._bump()

            def unlocked_caller(self):
                self._bump()
    """
    diagnostics = _run("REP701", {"src/repro/mod.py": source})
    # The helper body is covered by its annotation; the one finding is the
    # call site that does not hold the promised lock.
    assert len(diagnostics) == 1
    assert "requires lock" in diagnostics[0].message
    assert "unlocked_caller" in diagnostics[0].message


def test_rep701_write_under_shared_read_hold():
    source = """
        from repro.serve.resilience import ReadersWriterLock

        class Snap:
            def __init__(self):
                self._rw = ReadersWriterLock()
                self._data = None  # guarded-by: _rw

            def bad(self):
                with self._rw.read():
                    self._data = {}

            def good(self):
                with self._rw.write():
                    self._data = {}
    """
    diagnostics = _run("REP701", {"src/repro/mod.py": source})
    assert len(diagnostics) == 1
    assert "shared (read) hold" in diagnostics[0].message


# -- REP702: lock-order -------------------------------------------------------


def test_rep702_flags_inverted_acquisition_order():
    source = """
        import threading

        class Pair:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()

            def forward(self):
                with self._a:
                    with self._b:
                        pass

            def backward(self):
                with self._b:
                    with self._a:
                        pass
    """
    diagnostics = _run("REP702", {"src/repro/mod.py": source})
    assert len(diagnostics) == 1
    assert "Pair._a" in diagnostics[0].message
    assert "Pair._b" in diagnostics[0].message


def test_rep702_consistent_order_is_clean():
    source = """
        import threading

        class Pair:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()

            def one(self):
                with self._a:
                    with self._b:
                        pass

            def two(self):
                with self._a:
                    with self._b:
                        pass
    """
    assert _run("REP702", {"src/repro/mod.py": source}) == []


def test_rep702_sees_inversion_through_the_call_graph():
    source = """
        import threading

        class Pair:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()

            def _take_b(self):
                with self._b:
                    pass

            def _take_a(self):
                with self._a:
                    pass

            def forward(self):
                with self._a:
                    self._take_b()

            def backward(self):
                with self._b:
                    self._take_a()
    """
    diagnostics = _run("REP702", {"src/repro/mod.py": source})
    assert len(diagnostics) == 1


# -- REP703: blocking-under-lock ----------------------------------------------


def test_rep703_flags_sleep_under_exclusive_lock():
    source = """
        import threading
        import time

        class S:
            def __init__(self):
                self._lock = threading.Lock()

            def bad(self):
                with self._lock:
                    time.sleep(0.1)
    """
    diagnostics = _run("REP703", {"src/repro/mod.py": source})
    assert len(diagnostics) == 1
    assert "time.sleep" in diagnostics[0].message


def test_rep703_condition_wait_on_held_condition_is_exempt():
    source = """
        import threading

        class S:
            def __init__(self):
                self._cond = threading.Condition()

            def waiter(self):
                with self._cond:
                    self._cond.wait()
    """
    assert _run("REP703", {"src/repro/mod.py": source}) == []


def test_rep703_shared_read_region_is_exempt():
    source = """
        from repro.serve.resilience import ReadersWriterLock

        class S:
            def __init__(self):
                self._rw = ReadersWriterLock()

            def reader(self, path):
                with self._rw.read():
                    return open(path)
    """
    assert _run("REP703", {"src/repro/mod.py": source}) == []


def test_rep703_flags_transitively_blocking_callee():
    source = """
        import threading
        import time

        class S:
            def __init__(self):
                self._lock = threading.Lock()

            def _slow(self):
                time.sleep(1.0)

            def bad(self):
                with self._lock:
                    self._slow()
    """
    diagnostics = _run("REP703", {"src/repro/mod.py": source})
    assert len(diagnostics) == 1
    assert "blocks transitively" in diagnostics[0].message


def test_rep703_anchors_on_the_with_statement():
    source = """
        import threading
        import time

        class S:
            def __init__(self):
                self._lock = threading.Lock()

            def bad(self):
                with self._lock:
                    time.sleep(0.1)
    """
    diagnostics = _run("REP703", {"src/repro/mod.py": source})
    # Line 10 is the ``with`` — where a justified disable comment must go.
    assert diagnostics[0].line == 10


# -- REP704: resource-release -------------------------------------------------


def test_rep704_flags_memmap_without_finally():
    source = """
        import numpy as np

        def write(path):
            out = np.lib.format.open_memmap(path, mode="w+")
            out.flush()
            del out
    """
    diagnostics = _run("REP704", {"src/repro/mod.py": source})
    assert len(diagnostics) == 1
    assert "memmap handle 'out'" in diagnostics[0].message


def test_rep704_finally_release_is_clean():
    source = """
        import numpy as np

        def write(path):
            out = np.lib.format.open_memmap(path, mode="w+")
            try:
                out.flush()
            finally:
                del out
    """
    assert _run("REP704", {"src/repro/mod.py": source}) == []


def test_rep704_returned_handle_is_clean():
    source = """
        import numpy as np

        def open_for_caller(path):
            out = np.lib.format.open_memmap(path, mode="r")
            return out
    """
    assert _run("REP704", {"src/repro/mod.py": source}) == []


def test_rep704_flags_acquire_without_finally_release():
    source = """
        import threading

        class Pool:
            def __init__(self):
                self._slots = threading.Semaphore(2)

            def bad(self, fn):
                self._slots.acquire()
                fn()
                self._slots.release()

            def good(self, fn):
                self._slots.acquire()
                try:
                    fn()
                finally:
                    self._slots.release()
    """
    diagnostics = _run("REP704", {"src/repro/mod.py": source})
    assert len(diagnostics) == 1
    assert "self._slots.acquire" in diagnostics[0].message
    assert diagnostics[0].severity.name == "WARNING"


# -- REP705: fault-site-registry ----------------------------------------------


_FAULTS = """
    KNOWN_SITES = {
        "append.stage": "fires before each staged column",
    }

    def maybe_fire(site, key=None, attempt=0):
        pass
"""


def test_rep705_flags_unregistered_site():
    sources = {
        "src/repro/runtime/faults.py": _FAULTS,
        "src/repro/mod.py": """
            from repro.runtime.faults import maybe_fire

            def staged():
                maybe_fire("append.stage")

            def ghost():
                maybe_fire("no.such.site")
        """,
    }
    diagnostics = _run("REP705", sources)
    assert len(diagnostics) == 1
    assert "'no.such.site'" in diagnostics[0].message


def test_rep705_resolves_module_constant_sites():
    sources = {
        "src/repro/runtime/faults.py": _FAULTS,
        "src/repro/mod.py": """
            from repro.runtime.faults import maybe_fire

            FAULT_SITE = "append.stage"
            BAD_SITE = "not.registered"

            def staged():
                maybe_fire(FAULT_SITE)

            def ghost():
                maybe_fire(BAD_SITE)
        """,
    }
    diagnostics = _run("REP705", sources)
    assert len(diagnostics) == 1
    assert "'not.registered'" in diagnostics[0].message


def test_rep705_silent_without_a_fault_registry():
    sources = {
        "src/repro/mod.py": """
            from repro.runtime.faults import maybe_fire

            def ghost():
                maybe_fire("no.such.site")
        """
    }
    assert _run("REP705", sources) == []


# -- project-mode runner integration ------------------------------------------


def _write_module(tmp_path, name, source):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def test_analyze_project_respects_inline_disable(tmp_path):
    _write_module(
        tmp_path,
        "mod.py",
        """
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self._value = 0  # guarded-by: _lock

            def snapshot(self):
                return self._value  # reprolint: disable=REP701
        """,
    )
    assert analyze_project([tmp_path]) == []


def test_analyze_project_reports_syntax_errors_as_rep001(tmp_path):
    _write_module(tmp_path, "broken.py", "def f(:\n")
    diagnostics = analyze_project([tmp_path])
    assert [d.checker_id for d in diagnostics] == ["REP001"]


def test_analyze_project_warns_on_unknown_suppression_id(tmp_path):
    _write_module(
        tmp_path,
        "mod.py",
        """
        x = 1  # reprolint: disable=REP999
        """,
    )
    diagnostics = analyze_project([tmp_path])
    assert [d.checker_id for d in diagnostics] == ["REP002"]
    assert "'REP999'" in diagnostics[0].message
