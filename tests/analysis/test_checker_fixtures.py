"""Fixture-backed proof that every checker fires and stays silent correctly.

Each checker id has a ``repNNN_bad.py`` / ``repNNN_good.py`` pair under
``fixtures/``.  The bad fixture must produce at least one diagnostic *from
that checker*; the good fixture must produce none.  Fixtures are analyzed
under a virtual ``src/repro/graph/...`` path so that package-scoped
checkers (REP502, REP601/602) and the test-module exclusions apply the
same way they do on the real tree.
"""

from pathlib import Path

import pytest

from repro.analysis import analyze_source, default_registry
from repro.analysis.registry import CheckerRegistry

FIXTURES = Path(__file__).parent / "fixtures"

#: Virtual path applying graph-package scoping to the fixture source.
VIRTUAL_PATH = "src/repro/graph/fixture_module.py"

CHECKER_IDS = sorted(
    path.stem.removeprefix("rep").removesuffix("_bad")
    for path in FIXTURES.glob("rep*_bad.py")
)


def run_single_checker(checker_id: str, source: str) -> list:
    registry = CheckerRegistry([default_registry().get(checker_id)])
    return analyze_source(source, path=VIRTUAL_PATH, registry=registry)


def fixture_source(checker_id: str, kind: str) -> str:
    return (FIXTURES / f"rep{checker_id}_{kind}.py").read_text(encoding="utf-8")


@pytest.mark.parametrize("number", CHECKER_IDS)
def test_every_checker_has_a_fixture_pair(number):
    assert (FIXTURES / f"rep{number}_bad.py").exists()
    assert (FIXTURES / f"rep{number}_good.py").exists()


@pytest.mark.parametrize("number", CHECKER_IDS)
def test_checker_fires_on_bad_fixture(number):
    checker_id = f"REP{number}"
    diagnostics = run_single_checker(checker_id, fixture_source(number, "bad"))
    assert diagnostics, f"{checker_id} produced no diagnostics on its bad fixture"
    assert all(d.checker_id == checker_id for d in diagnostics)


@pytest.mark.parametrize("number", CHECKER_IDS)
def test_checker_silent_on_good_fixture(number):
    checker_id = f"REP{number}"
    diagnostics = run_single_checker(checker_id, fixture_source(number, "good"))
    assert diagnostics == [], (
        f"{checker_id} fired on its good fixture: "
        + "; ".join(d.format() for d in diagnostics)
    )


def test_fixture_catalogue_covers_all_registered_checkers():
    registered = {checker.id for checker in default_registry()}
    covered = {f"REP{number}" for number in CHECKER_IDS}
    assert covered == registered


# -- targeted behaviours beyond fire/silent ----------------------------------


def test_rep101_flag_count_matches_bad_sites():
    diagnostics = run_single_checker("REP101", fixture_source("101", "bad"))
    assert len(diagnostics) == 4  # default_rng, legacy global, stdlib, SeedSequence()


def test_rep101_exempts_rng_module_itself():
    source = "import numpy as np\nrng = np.random.default_rng(3)\n"
    registry = CheckerRegistry([default_registry().get("REP101")])
    diagnostics = analyze_source(
        source, path="src/repro/utils/rng.py", registry=registry
    )
    assert diagnostics == []


def test_rep301_skips_test_modules():
    source = "def check(x: float):\n    assert x == 0.25\n"
    registry = CheckerRegistry([default_registry().get("REP301")])
    assert analyze_source(source, path="tests/graph/test_x.py", registry=registry) == []
    assert analyze_source(source, path=VIRTUAL_PATH, registry=registry) != []


def test_rep502_scoped_to_graph_and_cascades():
    source = fixture_source("502", "bad")
    registry = CheckerRegistry([default_registry().get("REP502")])
    assert analyze_source(source, path="src/repro/median/mod.py", registry=registry) == []
    assert analyze_source(source, path="src/repro/cascades/mod.py", registry=registry) != []


def test_rep601_scoped_to_hot_packages():
    source = fixture_source("601", "bad")
    registry = CheckerRegistry([default_registry().get("REP601")])
    assert analyze_source(source, path="src/repro/median/mod.py", registry=registry) == []
    assert analyze_source(source, path="src/repro/influence/mod.py", registry=registry) != []


def test_diagnostics_carry_location_and_sort_stably():
    diagnostics = run_single_checker("REP301", fixture_source("301", "bad"))
    assert diagnostics == sorted(diagnostics)
    assert all(d.line > 0 and d.col > 0 for d in diagnostics)
    assert all(d.path == VIRTUAL_PATH for d in diagnostics)
