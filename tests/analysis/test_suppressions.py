"""Inline ``# reprolint: disable`` mechanics."""

from repro.analysis import analyze_source
from repro.analysis.suppress import scan_suppressions

BAD_LINE = "rng = np.random.default_rng()"
PATH = "src/repro/graph/mod.py"


def _analyze(source: str, **kwargs):
    return analyze_source("import numpy as np\n" + source, path=PATH, **kwargs)


def test_unsuppressed_violation_reported():
    assert any(d.checker_id == "REP101" for d in _analyze(BAD_LINE + "\n"))


def test_same_line_disable_by_id():
    assert _analyze(BAD_LINE + "  # reprolint: disable=REP101\n") == []


def test_disable_with_multiple_ids():
    source = BAD_LINE + "  # reprolint: disable=REP999, REP101\n"
    assert _analyze(source) == []


def test_bare_disable_suppresses_everything_on_line():
    assert _analyze(BAD_LINE + "  # reprolint: disable\n") == []


def test_disable_of_other_id_does_not_suppress():
    diagnostics = _analyze(BAD_LINE + "  # reprolint: disable=REP301\n")
    assert any(d.checker_id == "REP101" for d in diagnostics)


def test_disable_on_other_line_does_not_suppress():
    source = "# reprolint: disable=REP101 applies here only\n" + BAD_LINE + "\n"
    diagnostics = _analyze(source)
    assert any(d.checker_id == "REP101" for d in diagnostics)


def test_file_wide_disable():
    source = "# reprolint: disable-file=REP101\n" + BAD_LINE + "\n"
    assert _analyze(source) == []


def test_no_suppress_flag_reveals_suppressed():
    source = BAD_LINE + "  # reprolint: disable=REP101\n"
    diagnostics = _analyze(source, respect_suppressions=False)
    assert any(d.checker_id == "REP101" for d in diagnostics)


def test_directive_inside_string_literal_is_inert():
    source = 'msg = "# reprolint: disable=REP101"\n' + BAD_LINE + "\n"
    diagnostics = _analyze(source)
    assert any(d.checker_id == "REP101" for d in diagnostics)


def test_scan_reports_line_numbers():
    table = scan_suppressions("x = 1\ny = 2  # reprolint: disable=REP301\n")
    assert 2 in table.by_line
    assert table.by_line[2] == frozenset({"REP301"})
    assert table.file_wide == frozenset()
