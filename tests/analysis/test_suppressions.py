"""Inline ``# reprolint: disable`` mechanics."""

from repro.analysis import analyze_source
from repro.analysis.suppress import scan_suppressions

BAD_LINE = "rng = np.random.default_rng()"
PATH = "src/repro/graph/mod.py"


def _analyze(source: str, **kwargs):
    return analyze_source("import numpy as np\n" + source, path=PATH, **kwargs)


def test_unsuppressed_violation_reported():
    assert any(d.checker_id == "REP101" for d in _analyze(BAD_LINE + "\n"))


def test_same_line_disable_by_id():
    assert _analyze(BAD_LINE + "  # reprolint: disable=REP101\n") == []


def test_disable_with_multiple_ids():
    source = BAD_LINE + "  # reprolint: disable=REP301, REP101\n"
    assert _analyze(source) == []


def test_bare_disable_suppresses_everything_on_line():
    assert _analyze(BAD_LINE + "  # reprolint: disable\n") == []


def test_disable_of_other_id_does_not_suppress():
    diagnostics = _analyze(BAD_LINE + "  # reprolint: disable=REP301\n")
    assert any(d.checker_id == "REP101" for d in diagnostics)


def test_disable_on_other_line_does_not_suppress():
    source = "# reprolint: disable=REP101 applies here only\n" + BAD_LINE + "\n"
    diagnostics = _analyze(source)
    assert any(d.checker_id == "REP101" for d in diagnostics)


def test_file_wide_disable():
    source = "# reprolint: disable-file=REP101\n" + BAD_LINE + "\n"
    assert _analyze(source) == []


def test_no_suppress_flag_reveals_suppressed():
    source = BAD_LINE + "  # reprolint: disable=REP101\n"
    diagnostics = _analyze(source, respect_suppressions=False)
    assert any(d.checker_id == "REP101" for d in diagnostics)


def test_directive_inside_string_literal_is_inert():
    source = 'msg = "# reprolint: disable=REP101"\n' + BAD_LINE + "\n"
    diagnostics = _analyze(source)
    assert any(d.checker_id == "REP101" for d in diagnostics)


def test_scan_reports_line_numbers():
    table = scan_suppressions("x = 1\ny = 2  # reprolint: disable=REP301\n")
    assert 2 in table.by_line
    assert table.by_line[2] == frozenset({"REP301"})
    assert table.file_wide == frozenset()


def test_scan_records_every_directive_with_its_line():
    table = scan_suppressions(
        "# reprolint: disable-file=REP601\n"
        "y = 2  # reprolint: disable=REP301\n"
    )
    assert table.directives == [
        (1, frozenset({"REP601"})),
        (2, frozenset({"REP301"})),
    ]


# -- multi-line statements ----------------------------------------------------


def test_disable_on_reported_line_of_multiline_statement():
    # Diagnostics anchor on the line the violating expression *starts*;
    # the directive belongs on that physical line even when the statement
    # continues below it.
    source = "rng = np.random.default_rng(  # reprolint: disable=REP101\n)\n"
    assert _analyze(source) == []


def test_disable_on_closing_line_of_multiline_statement_is_inert():
    source = "rng = np.random.default_rng(\n)  # reprolint: disable=REP101\n"
    diagnostics = _analyze(source)
    assert any(d.checker_id == "REP101" for d in diagnostics)


# -- unknown ids warn (REP002) ------------------------------------------------


def test_unknown_id_suppression_warns_instead_of_silently_passing():
    diagnostics = _analyze(BAD_LINE + "  # reprolint: disable=REP999\n")
    ids = [d.checker_id for d in diagnostics]
    # The typo'd directive silences nothing (REP101 survives) *and* the
    # author is told about the typo (REP002).
    assert "REP101" in ids
    assert "REP002" in ids
    rep002 = next(d for d in diagnostics if d.checker_id == "REP002")
    assert "'REP999'" in rep002.message
    assert rep002.severity.name == "WARNING"


def test_unknown_id_mixed_with_known_id_still_warns():
    source = BAD_LINE + "  # reprolint: disable=REP999, REP101\n"
    diagnostics = _analyze(source)
    assert [d.checker_id for d in diagnostics] == ["REP002"]


def test_file_wide_unknown_id_warns():
    source = "# reprolint: disable-file=REP999\n" + BAD_LINE + "\n"
    ids = [d.checker_id for d in _analyze(source)]
    assert "REP002" in ids
    assert "REP101" in ids


def test_known_project_checker_id_does_not_warn():
    # REP7xx ids belong to the project pass but are legal in any file.
    source = BAD_LINE + "  # reprolint: disable=REP101,REP701\n"
    assert _analyze(source) == []


def test_rep002_itself_can_be_suppressed():
    source = BAD_LINE + "  # reprolint: disable=REP101, REP999, REP002\n"
    assert _analyze(source) == []
