"""The permanent regression barrier: ``src/repro`` stays reprolint-clean.

If this test fails, either fix the violation or add an inline
``# reprolint: disable=<id>`` with a justification — see README
"Determinism contract & static analysis".
"""

from pathlib import Path

from repro.analysis import (
    analyze_paths,
    analyze_project,
    default_registry,
    project_registry,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
SOURCE_TREE = REPO_ROOT / "src" / "repro"
DOCS_FILE = REPO_ROOT / "docs" / "reprolint.md"


def test_source_tree_exists():
    assert SOURCE_TREE.is_dir()


def test_at_least_six_checkers_gate_the_tree():
    assert len(default_registry()) >= 6


def test_five_concurrency_checkers_gate_the_tree():
    assert {c.id for c in project_registry()} >= {
        "REP701",
        "REP702",
        "REP703",
        "REP704",
        "REP705",
    }


def test_src_repro_is_violation_clean():
    diagnostics = analyze_paths([SOURCE_TREE])
    assert diagnostics == [], "reprolint violations:\n" + "\n".join(
        d.format() for d in diagnostics
    )


def test_src_repro_is_concurrency_clean():
    """The whole-program REP7xx pass gates the tree, like the module pass."""
    diagnostics = analyze_project([SOURCE_TREE])
    assert diagnostics == [], "reprolint --project violations:\n" + "\n".join(
        d.format() for d in diagnostics
    )


def test_docs_catalogue_is_current():
    """``docs/reprolint.md`` must match ``--explain`` output exactly.

    Regenerate with::

        PYTHONPATH=src python -m repro.analysis --explain > docs/reprolint.md
    """
    from repro.analysis.explain import render_catalogue

    assert DOCS_FILE.is_file(), "docs/reprolint.md is missing"
    assert DOCS_FILE.read_text() == render_catalogue()
