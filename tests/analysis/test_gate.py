"""The permanent regression barrier: ``src/repro`` stays reprolint-clean.

If this test fails, either fix the violation or add an inline
``# reprolint: disable=<id>`` with a justification — see README
"Determinism contract & static analysis".
"""

from pathlib import Path

from repro.analysis import analyze_paths, default_registry

REPO_ROOT = Path(__file__).resolve().parents[2]
SOURCE_TREE = REPO_ROOT / "src" / "repro"


def test_source_tree_exists():
    assert SOURCE_TREE.is_dir()


def test_at_least_six_checkers_gate_the_tree():
    assert len(default_registry()) >= 6


def test_src_repro_is_violation_clean():
    diagnostics = analyze_paths([SOURCE_TREE])
    assert diagnostics == [], "reprolint violations:\n" + "\n".join(
        d.format() for d in diagnostics
    )
