"""Registry construction, validation and selection."""

import pytest

from repro.analysis import Checker, default_registry
from repro.analysis.registry import CheckerRegistry, validate_checker_class


class _Dummy(Checker):
    id = "XYZ901"
    name = "dummy"
    description = "test checker"

    def check(self, ctx):
        return []


def test_default_registry_has_at_least_six_checkers():
    registry = default_registry()
    assert len(registry) >= 6
    families = {checker.id[:4] for checker in registry}
    # One family per hundred: REP1 rng, REP2 iteration, REP3 float-eq,
    # REP4 mutable defaults, REP5 probability, REP6 quadratic.
    assert {"REP1", "REP2", "REP3", "REP4", "REP5", "REP6"} <= families


def test_default_registry_is_fresh_per_call():
    a, b = default_registry(), default_registry()
    assert a is not b
    assert a.ids() == b.ids()


def test_get_unknown_id_raises_with_catalogue():
    with pytest.raises(KeyError, match="REP101"):
        default_registry().get("NOPE999")


def test_duplicate_id_rejected():
    registry = CheckerRegistry([_Dummy()])
    with pytest.raises(ValueError, match="duplicate"):
        registry.add(_Dummy())


def test_malformed_checker_rejected():
    class NoId(Checker):
        name = "x"
        description = "y"

        def check(self, ctx):
            return []

    with pytest.raises(TypeError, match="id"):
        validate_checker_class(NoId)

    class BadId(NoId):
        id = "lowercase1"

    with pytest.raises(ValueError, match="BadId|look like"):
        validate_checker_class(BadId)


def test_select_subset():
    registry = default_registry().select(["REP101", "REP301"])
    assert registry.ids() == ["REP101", "REP301"]


def test_ignore_subset():
    registry = default_registry()
    trimmed = registry.select(ignore=["REP601", "REP602"])
    assert "REP601" not in trimmed.ids()
    assert len(trimmed) == len(registry) - 2


def test_select_unknown_id_fails_loudly():
    with pytest.raises(KeyError):
        default_registry().select(["REP123"])
    with pytest.raises(KeyError):
        default_registry().select(ignore=["REP123"])


def test_third_party_checker_pluggable():
    registry = CheckerRegistry([_Dummy()])
    assert "XYZ901" in registry
    assert registry.get("XYZ901").name == "dummy"
