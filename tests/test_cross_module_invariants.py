"""Cross-module invariants: properties that tie the subsystems together.

Each test here spans at least two packages and pins down a consistency
guarantee the system as a whole relies on (the per-module suites cover the
local behaviour).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cascades.index import CascadeIndex
from repro.cascades.reliability_search import reachability_frequencies
from repro.core.typical_cascade import TypicalCascadeComputer
from repro.graph.generators import gnp_digraph
from repro.graph.sampling import WorldSampler
from repro.influence.spread import SpreadOracle
from repro.median.chierichetti import best_of_samples, jaccard_median
from repro.median.samples import SampleCollection
from repro.problearn.assign import assign_fixed


def random_graph(seed: int, n: int = 20, density: float = 0.12, p: float = 0.4):
    return assign_fixed(gnp_digraph(n, density, seed=seed), p)


@settings(max_examples=15)
@given(st.integers(0, 10_000))
def test_spread_oracle_consistent_with_index_sizes(seed):
    """sigma({v}) from the oracle == mean cascade size from the index."""
    graph = random_graph(seed)
    index = CascadeIndex.build(graph, 8, seed=seed)
    oracle = SpreadOracle(index)
    gains = oracle.initial_gains()
    sizes = index.all_cascade_sizes()
    np.testing.assert_allclose(gains, sizes.mean(axis=1), atol=1e-12)


@settings(max_examples=15)
@given(st.integers(0, 10_000))
def test_seed_set_cascade_is_union_of_member_cascades(seed):
    graph = random_graph(seed)
    index = CascadeIndex.build(graph, 4, seed=seed)
    for world in range(4):
        joint = index.seed_set_cascade([1, 3, 7], world)
        union = np.union1d(
            np.union1d(index.cascade(1, world), index.cascade(3, world)),
            index.cascade(7, world),
        )
        assert np.array_equal(joint, union)


@settings(max_examples=10)
@given(st.integers(0, 10_000))
def test_typical_cascade_cost_bounded_by_best_sample(seed):
    """The median never does worse than the best input cascade."""
    graph = random_graph(seed)
    index = CascadeIndex.build(graph, 12, seed=seed)
    samples = SampleCollection(graph.num_nodes, index.cascades(0))
    median = jaccard_median(samples)
    best = best_of_samples(samples)
    assert median.cost <= best.cost + 1e-12


@settings(max_examples=10)
@given(st.integers(0, 10_000))
def test_reachability_frequencies_consistent_with_cascades(seed):
    """freq[v] equals the fraction of worlds whose cascade contains v."""
    graph = random_graph(seed)
    index = CascadeIndex.build(graph, 6, seed=seed)
    freq = reachability_frequencies(index, 2)
    counts = np.zeros(graph.num_nodes)
    for world in range(6):
        counts[index.cascade(2, world)] += 1
    np.testing.assert_allclose(freq, counts / 6, atol=1e-12)


@settings(max_examples=10)
@given(st.integers(0, 10_000))
def test_world_sampler_and_index_share_worlds(seed):
    """CascadeIndex.build(seed) indexes exactly WorldSampler(seed)'s worlds."""
    graph = random_graph(seed)
    index = CascadeIndex.build(graph, 3, seed=seed)
    sampler = WorldSampler(graph, seed=seed)
    from repro.graph.reachability import reachable_array

    for world in range(3):
        mask = sampler.world_mask(world)
        assert np.array_equal(
            index.cascade(5, world), reachable_array(graph, 5, mask)
        )


def test_sphere_members_subset_of_ever_reached():
    """A typical cascade only contains nodes that some sampled cascade
    reached (the median never invents members)."""
    graph = random_graph(77, n=30)
    index = CascadeIndex.build(graph, 16, seed=77)
    computer = TypicalCascadeComputer(index)
    for node in range(0, 30, 7):
        sphere = computer.compute(node)
        union = np.unique(np.concatenate(index.cascades(node)))
        assert set(sphere.members.tolist()) <= set(union.tolist())


def test_lt_and_ic_agree_on_deterministic_trees():
    """On a certain path (every node has in-degree <= 1, so the LT weight
    of the single incoming arc is 1.0) both models activate exactly the
    reachability set; on general certain graphs only IC does (LT divides
    incoming weight among parents)."""
    from repro.cascades.ic import simulate_ic
    from repro.cascades.lt import simulate_lt
    from repro.graph.generators import path_graph
    from repro.graph.reachability import reachable_set

    path = path_graph(12, p=1.0)
    for source in (0, 5, 11):
        expected = reachable_set(path, source)
        ic_result, _ = simulate_ic(path, source, seed=1)
        lt_result = simulate_lt(path, source, seed=1)
        assert ic_result == expected
        assert lt_result == expected

    dense = assign_fixed(gnp_digraph(25, 0.1, seed=5), 1.0)
    for source in (0, 7, 19):
        ic_result, _ = simulate_ic(dense, source, seed=1)
        assert ic_result == reachable_set(dense, source)


def test_cli_and_harness_agree():
    """The CLI's table2 output matches a direct harness call."""
    import io
    from contextlib import redirect_stdout

    from repro.cli import main
    from repro.datasets.registry import clear_cache
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.table2 import format_table2, run_table2

    clear_cache()
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        main(
            [
                "table2",
                "--scale",
                "0.03",
                "--samples",
                "8",
                "--settings",
                "NetHEPT-W",
                "--max-nodes",
                "10",
            ]
        )
    direct = format_table2(
        run_table2(
            ExperimentConfig(scale=0.03, num_samples=8, num_eval_samples=8, k=5),
            settings=("NetHEPT-W",),
            max_nodes=10,
        )
    )
    assert buffer.getvalue().strip() == direct.strip()
    clear_cache()
