"""Tests for repro.datasets.registry — the 12 experiment settings."""

import numpy as np
import pytest

from repro.datasets.registry import (
    ASSIGNED_SETTINGS,
    LEARNT_SETTINGS,
    SETTING_NAMES,
    clear_cache,
    load_all_settings,
    load_base_topology,
    load_setting,
)

SCALE = 0.03  # tiny graphs for test speed


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestNames:
    def test_twelve_settings(self):
        assert len(SETTING_NAMES) == 12
        assert len(LEARNT_SETTINGS) == 6
        assert len(ASSIGNED_SETTINGS) == 6

    def test_unknown_setting_rejected(self):
        with pytest.raises(ValueError, match="unknown setting"):
            load_setting("Facebook-S")

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown family"):
            load_base_topology("Facebook")


class TestLoadSetting:
    @pytest.mark.parametrize("name", SETTING_NAMES)
    def test_all_settings_materialise(self, name):
        setting = load_setting(name, scale=SCALE)
        assert setting.name == name
        assert setting.graph.num_nodes >= 30
        assert setting.graph.num_edges > 0
        assert np.all(setting.graph.probs > 0)

    def test_fixed_setting_probability(self):
        setting = load_setting("NetHEPT-F", scale=SCALE)
        assert np.all(setting.graph.probs == 0.1)

    def test_wc_setting_probabilities(self):
        setting = load_setting("Epinions-W", scale=SCALE)
        indeg = setting.graph.in_degrees().astype(float)
        targets = np.asarray(setting.graph.targets, dtype=np.int64)
        np.testing.assert_allclose(setting.graph.probs, 1.0 / indeg[targets])

    def test_learnt_graph_is_subgraph_of_base(self):
        setting = load_setting("Digg-S", scale=SCALE)
        base = load_base_topology("Digg", scale=SCALE)
        assert setting.graph.num_edges <= base.num_edges
        assert setting.graph.num_nodes == base.num_nodes

    def test_saito_and_goyal_share_the_log(self):
        """-S and -G of the same family must be fitted on the same log, so
        their arc sets are subsets of the same base and Goyal's estimates
        are (weakly) larger on average (the Figure 3 ordering)."""
        s = load_setting("Digg-S", scale=SCALE)
        g = load_setting("Digg-G", scale=SCALE)
        assert s.graph.num_nodes == g.graph.num_nodes
        if s.graph.num_edges and g.graph.num_edges:
            assert g.graph.probs.mean() >= s.graph.probs.mean() - 0.1

    def test_cache_returns_same_object(self):
        a = load_setting("Digg-S", scale=SCALE)
        b = load_setting("Digg-S", scale=SCALE)
        assert a is b

    def test_deterministic_across_cache_clears(self):
        a = load_setting("NetHEPT-W", scale=SCALE)
        clear_cache()
        b = load_setting("NetHEPT-W", scale=SCALE)
        assert a.graph == b.graph

    def test_metadata_fields(self):
        setting = load_setting("Slashdot-F", scale=SCALE)
        assert setting.family == "Slashdot"
        assert setting.method == "fixed"
        assert setting.directed
        assert "fixed" in setting.probability_source


def test_load_all_settings_order():
    settings = load_all_settings(scale=SCALE)
    assert [s.name for s in settings] == [
        "Digg-S", "Flixster-S", "Twitter-S",
        "Digg-G", "Flixster-G", "Twitter-G",
        "NetHEPT-W", "Epinions-W", "Slashdot-W",
        "NetHEPT-F", "Epinions-F", "Slashdot-F",
    ]


class TestExtensionSettings:
    @pytest.mark.parametrize("name", ("NetHEPT-T", "Epinions-T", "Slashdot-T"))
    def test_trivalency_settings_materialise(self, name):
        from repro.datasets.registry import EXTENSION_SETTINGS

        assert name in EXTENSION_SETTINGS
        setting = load_setting(name, scale=SCALE)
        assert setting.method == "trivalency"
        assert set(np.unique(setting.graph.probs)) <= {0.1, 0.01, 0.001}

    def test_extension_not_in_paper_twelve(self):
        from repro.datasets.registry import EXTENSION_SETTINGS

        assert not set(EXTENSION_SETTINGS) & set(SETTING_NAMES)

    def test_trivalency_deterministic(self):
        a = load_setting("NetHEPT-T", scale=SCALE)
        clear_cache()
        b = load_setting("NetHEPT-T", scale=SCALE)
        assert a.graph == b.graph


class TestIngestedResolution:
    """load_setting() resolves real datasets ingested by repro.data."""

    @pytest.fixture
    def data_root(self, tmp_path):
        from repro.data import ingest

        ingest("digg", root=tmp_path, assignment="wc")
        return tmp_path

    def test_ingested_name_resolves(self, data_root):
        setting = load_setting("digg-W", data_root=data_root)
        assert setting.method == "wc"
        assert setting.family == "digg"
        assert setting.provenance is not None
        assert setting.graph.num_edges > 0

    def test_describe_reports_provenance(self, data_root):
        info = load_setting("digg-W", data_root=data_root).describe()
        assert info["origin"] == "ingested"
        assert info["source"]["sha256"].startswith("sha256:")
        assert info["manifest_digest"].startswith("sha256:")

    def test_synthetic_describe_has_no_provenance(self):
        info = load_setting("NetHEPT-W", scale=SCALE).describe()
        assert info["origin"] == "synthetic"
        assert "manifest_digest" not in info

    def test_unknown_name_lists_both_worlds(self, data_root):
        with pytest.raises(ValueError) as err:
            load_setting("ghost", data_root=data_root)
        message = str(err.value)
        assert "Digg-S" in message and "digg-W" in message

    def test_unknown_name_empty_root_hints_at_ingest(self, tmp_path):
        with pytest.raises(ValueError, match="repro data ingest"):
            load_setting("ghost", data_root=tmp_path)
