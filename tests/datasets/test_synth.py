"""Tests for repro.datasets.synth — dataset stand-in builders."""

import numpy as np
import pytest

from repro.datasets.synth import (
    build_digg_like,
    build_epinions_like,
    build_flixster_like,
    build_nethept_like,
    build_slashdot_like,
    build_twitter_like,
    plant_ground_truth,
)

BUILDERS = [
    build_digg_like,
    build_flixster_like,
    build_twitter_like,
    build_nethept_like,
    build_epinions_like,
    build_slashdot_like,
]


class TestBuilders:
    @pytest.mark.parametrize("builder", BUILDERS)
    def test_deterministic(self, builder):
        assert builder(scale=0.03) == builder(scale=0.03)

    @pytest.mark.parametrize("builder", BUILDERS)
    def test_scale_changes_size(self, builder):
        small = builder(scale=0.02)
        large = builder(scale=0.06)
        assert large.num_nodes > small.num_nodes

    @pytest.mark.parametrize("builder", BUILDERS)
    def test_minimum_size_floor(self, builder):
        tiny = builder(scale=1e-6)
        assert tiny.num_nodes >= 30

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            build_digg_like(scale=0.0)

    @pytest.mark.parametrize(
        "builder,reciprocal",
        [(build_flixster_like, True), (build_twitter_like, True),
         (build_nethept_like, True), (build_digg_like, False)],
    )
    def test_reciprocity_matches_dataset_type(self, builder, reciprocal):
        g = builder(scale=0.03)
        symmetric = all(g.has_edge(v, u) for u, v, _ in g.edges())
        assert symmetric == reciprocal


class TestPlantGroundTruth:
    def test_probabilities_replaced(self):
        g = build_digg_like(scale=0.03)
        planted = plant_ground_truth(g, mean=0.2, seed=1)
        assert planted.num_edges == g.num_edges
        assert not np.array_equal(planted.probs, g.probs)
        assert np.all((planted.probs > 0) & (planted.probs <= 1))

    def test_mean_roughly_respected(self):
        g = build_flixster_like(scale=0.05)
        planted = plant_ground_truth(g, mean=0.3, seed=2)
        assert planted.probs.mean() == pytest.approx(0.3, abs=0.08)

    def test_heterogeneous(self):
        g = build_digg_like(scale=0.03)
        planted = plant_ground_truth(g, mean=0.2, seed=3)
        assert planted.probs.std() > 0.01

    def test_validation(self):
        g = build_digg_like(scale=0.03)
        with pytest.raises(ValueError, match="mean"):
            plant_ground_truth(g, mean=1.0)
        with pytest.raises(ValueError, match="concentration"):
            plant_ground_truth(g, concentration=0.0)
