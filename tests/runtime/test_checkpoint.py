"""Tests for repro.runtime.checkpoint — journaled sphere-sweep durability."""

import json

import pytest

from repro.cascades.index import CascadeIndex
from repro.core.typical_cascade import TypicalCascadeComputer
from repro.graph.generators import gnp_digraph
from repro.runtime.checkpoint import (
    FAULT_SITE_SHARD,
    JOURNAL_NAME,
    SphereCheckpoint,
    _shard_name,
)
from repro.runtime.errors import CheckpointError, InjectedFault
from repro.runtime.faults import FaultPlan, FaultSpec, fault_scope


@pytest.fixture(scope="module")
def computer() -> TypicalCascadeComputer:
    graph = gnp_digraph(18, 0.15, p=0.5, seed=3)
    return TypicalCascadeComputer(CascadeIndex.build(graph, 6, seed=5))


@pytest.fixture(scope="module")
def clean_digest(computer) -> str:
    return computer.compute_store().digest()


@pytest.fixture
def checkpoint(computer, tmp_path) -> SphereCheckpoint:
    return SphereCheckpoint(tmp_path / "ck", computer._provenance())


class TestShardCycle:
    def test_fresh_directory_recovers_nothing(self, checkpoint):
        assert checkpoint.load() == {}
        assert checkpoint.num_shards == 0

    def test_write_then_load_round_trips(self, computer, checkpoint):
        spheres = {n: computer.compute(n) for n in (0, 1, 2)}
        name = checkpoint.write_shard(spheres)
        assert name == _shard_name(0)
        recovered = checkpoint.load()
        assert set(recovered) == {0, 1, 2}
        assert recovered[1].as_set() == spheres[1].as_set()
        assert checkpoint.num_shards == 1

    def test_shards_accumulate(self, computer, checkpoint):
        checkpoint.write_shard({0: computer.compute(0)})
        checkpoint.write_shard({1: computer.compute(1)})
        assert set(checkpoint.load()) == {0, 1}
        assert checkpoint.num_shards == 2

    def test_empty_shard_rejected(self, checkpoint):
        with pytest.raises(ValueError, match="at least one sphere"):
            checkpoint.write_shard({})


class TestCorruptionDetection:
    def test_garbage_journal_refused(self, computer, checkpoint):
        checkpoint.write_shard({0: computer.compute(0)})
        (checkpoint.directory / JOURNAL_NAME).write_text("{not json")
        with pytest.raises(CheckpointError, match="not readable JSON"):
            checkpoint.load()

    def test_hand_edited_journal_fails_self_checksum(self, computer, checkpoint):
        checkpoint.write_shard({0: computer.compute(0)})
        path = checkpoint.directory / JOURNAL_NAME
        payload = json.loads(path.read_text())
        payload["shards"][0]["num_spheres"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="self-checksum"):
            checkpoint.load()

    def test_journaled_shard_truncation_detected(self, computer, checkpoint):
        name = checkpoint.write_shard({0: computer.compute(0)})
        shard = checkpoint.directory / name
        shard.write_bytes(shard.read_bytes()[:-10])
        with pytest.raises(CheckpointError, match="corrupted"):
            checkpoint.load()

    def test_journaled_shard_missing_detected(self, computer, checkpoint):
        name = checkpoint.write_shard({0: computer.compute(0)})
        (checkpoint.directory / name).unlink()
        with pytest.raises(CheckpointError, match="missing"):
            checkpoint.load()

    def test_unjournaled_debris_is_ignored(self, computer, checkpoint):
        checkpoint.write_shard({0: computer.compute(0)})
        # a torn write that died before journaling: half a shard under the
        # final name of the *next* shard
        (checkpoint.directory / _shard_name(1)).write_bytes(b"half a shard")
        assert set(checkpoint.load()) == {0}

    def test_checkpoint_of_other_index_refused(self, checkpoint):
        graph = gnp_digraph(18, 0.15, p=0.5, seed=777)
        other = TypicalCascadeComputer(CascadeIndex.build(graph, 6, seed=5))
        other_ck = SphereCheckpoint(checkpoint.directory, other._provenance())
        other_ck.write_shard({0: other.compute(0)})
        with pytest.raises(CheckpointError, match="different cascade index"):
            checkpoint.load()


class TestComputeStoreResume:
    def test_without_checkpoint_dir_unchanged(self, computer, clean_digest):
        assert computer.compute_store().digest() == clean_digest

    def test_checkpointed_sweep_matches_clean(self, computer, clean_digest, tmp_path):
        store = computer.compute_store(
            checkpoint_dir=tmp_path / "ck", checkpoint_every=5
        )
        assert store.digest() == clean_digest

    def test_fully_recovered_rerun_matches_clean(
        self, computer, clean_digest, tmp_path
    ):
        computer.compute_store(checkpoint_dir=tmp_path / "ck", checkpoint_every=5)
        rerun = computer.compute_store(
            checkpoint_dir=tmp_path / "ck", checkpoint_every=5
        )
        assert rerun.digest() == clean_digest

    def test_checkpoint_every_validated(self, computer, tmp_path):
        with pytest.raises(ValueError):
            computer.compute_store(checkpoint_dir=tmp_path / "ck", checkpoint_every=0)

    def test_node_subset_resumes_too(self, computer, tmp_path):
        subset = [4, 2, 9, 0]
        clean = computer.compute_store(subset)
        plan = FaultPlan.of(
            FaultSpec(site=FAULT_SITE_SHARD, kind="error", key=_shard_name(1))
        )
        with fault_scope(plan), pytest.raises(InjectedFault):
            computer.compute_store(
                subset, checkpoint_dir=tmp_path / "ck", checkpoint_every=2
            )
        resumed = computer.compute_store(
            subset, checkpoint_dir=tmp_path / "ck", checkpoint_every=2
        )
        assert resumed.digest() == clean.digest()

    @pytest.mark.parametrize("kind", ["error", "torn"])
    def test_killed_at_every_shard_boundary_resumes_identically(
        self, computer, clean_digest, tmp_path, kind
    ):
        """Satellite property test: for EVERY checkpoint boundary, a sweep
        killed exactly there (clean kill or torn shard write) and then
        resumed produces a store digest equal to an uninterrupted run's."""
        every = 5
        num_nodes = computer.index.num_nodes
        boundaries = range((num_nodes + every - 1) // every)
        for boundary in boundaries:
            ck = tmp_path / f"{kind}-{boundary}"
            plan = FaultPlan.of(
                FaultSpec(
                    site=FAULT_SITE_SHARD, kind=kind, key=_shard_name(boundary)
                )
            )
            with fault_scope(plan), pytest.raises(InjectedFault):
                computer.compute_store(checkpoint_dir=ck, checkpoint_every=every)
            resumed = computer.compute_store(
                checkpoint_dir=ck, checkpoint_every=every
            )
            assert resumed.digest() == clean_digest, (
                f"resume after {kind} kill at shard boundary {boundary} "
                "diverged from the uninterrupted sweep"
            )
