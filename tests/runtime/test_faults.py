"""Tests for repro.runtime.faults — the deterministic injection harness."""

import json
import os

import pytest

from repro.runtime.errors import InjectedFault
from repro.runtime.faults import (
    ENV_VAR,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    fault_scope,
    faulty_write_bytes,
    maybe_fire,
    take_fault,
)


class TestFaultSpec:
    def test_defaults_fire_on_first_attempt_any_key(self):
        spec = FaultSpec(site="s", kind="error")
        assert spec.matches("s", None, 0)
        assert spec.matches("s", "anything", 0)
        assert not spec.matches("s", None, 1)
        assert not spec.matches("other", None, 0)

    def test_key_narrows_match(self):
        spec = FaultSpec(site="s", kind="error", key=3)
        assert spec.matches("s", 3, 0)
        assert not spec.matches("s", 4, 0)

    def test_attempts_tuple_controls_when(self):
        spec = FaultSpec(site="s", kind="error", attempts=(1, 2))
        assert not spec.matches("s", None, 0)
        assert spec.matches("s", None, 1)
        assert spec.matches("s", None, 2)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"site": "", "kind": "error"},
            {"site": "s", "kind": "explode"},
            {"site": "s", "kind": "error", "attempts": ()},
            {"site": "s", "kind": "error", "attempts": (-1,)},
            {"site": "s", "kind": "sleep", "seconds": -1.0},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(**kwargs)


class TestFaultPlanSerialisation:
    def test_json_round_trip(self):
        plan = FaultPlan.of(
            FaultSpec(site="build.chunk", kind="crash", key=8, attempts=(0, 1)),
            FaultSpec(site="checkpoint.shard", kind="torn", key="shard-00001.npz"),
            FaultSpec(site="s", kind="sleep", seconds=0.25),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    @pytest.mark.parametrize(
        "text",
        [
            "not json",
            "[]",
            json.dumps({"no_faults": []}),
            json.dumps({"faults": "nope"}),
            json.dumps({"faults": [{"site": "s", "kind": "bogus"}]}),
            json.dumps({"faults": [{"site": "s", "kind": "error", "key": [1]}]}),
        ],
    )
    def test_malformed_json_rejected(self, text):
        with pytest.raises(ValueError, match="malformed fault plan"):
            FaultPlan.from_json(text)

    def test_match_returns_first_firing_spec(self):
        first = FaultSpec(site="s", kind="error")
        second = FaultSpec(site="s", kind="crash")
        plan = FaultPlan.of(first, second)
        assert plan.match("s", None, 0) is first
        assert plan.match("s", None, 9) is None


class TestFaultScope:
    def test_unarmed_is_a_no_op(self):
        maybe_fire("anywhere", key=1)  # must not raise
        assert take_fault("anywhere") is None

    def test_armed_plan_fires_then_restores(self):
        plan = FaultPlan.of(FaultSpec(site="s", kind="error"))
        with fault_scope(plan):
            assert os.environ[ENV_VAR] == plan.to_json()
            with pytest.raises(InjectedFault):
                maybe_fire("s")
        assert ENV_VAR not in os.environ
        maybe_fire("s")  # disarmed again

    def test_scope_accepts_bare_spec_sequence(self):
        with fault_scope([FaultSpec(site="s", kind="error")]):
            with pytest.raises(InjectedFault):
                maybe_fire("s")

    def test_none_disarms_inside_scope(self):
        outer = FaultPlan.of(FaultSpec(site="s", kind="error"))
        with fault_scope(outer):
            with fault_scope(None):
                maybe_fire("s")  # no plan armed here
            with pytest.raises(InjectedFault):
                maybe_fire("s")  # outer plan restored

    def test_consecutive_scopes_reset_occurrence_counters(self):
        plan = FaultPlan.of(FaultSpec(site="s", kind="error", attempts=(0,)))
        for _ in range(2):  # second scope must fire again from attempt 0
            with fault_scope(plan):
                with pytest.raises(InjectedFault):
                    maybe_fire("s")


class TestInjectorCounters:
    def test_implicit_attempts_count_per_site_and_key(self):
        injector = FaultInjector()
        plan = FaultPlan.of(FaultSpec(site="s", kind="error", attempts=(1,)))
        with fault_scope(plan):
            assert injector.take("s", key="a") is None  # attempt 0
            spec = injector.take("s", key="a")  # attempt 1 fires
            assert spec is not None and spec.kind == "error"
            assert injector.take("s", key="b") is None  # separate counter

    def test_explicit_attempt_bypasses_counter(self):
        injector = FaultInjector()
        plan = FaultPlan.of(FaultSpec(site="s", kind="error", attempts=(2,)))
        with fault_scope(plan):
            assert injector.take("s", attempt=0) is None
            assert injector.take("s", attempt=2) is not None
            assert injector.take("s", attempt=2) is not None  # stateless

    def test_sleep_spec_delays_then_continues(self):
        plan = FaultPlan.of(FaultSpec(site="s", kind="sleep", seconds=0.0))
        with fault_scope(plan):
            maybe_fire("s")  # must return normally, not raise


class TestTornWrites:
    def test_torn_write_persists_half_and_raises(self, tmp_path):
        target = tmp_path / "payload.bin"
        payload = bytes(range(64))
        plan = FaultPlan.of(FaultSpec(site="w", kind="torn", key="payload"))
        with fault_scope(plan):
            with pytest.raises(InjectedFault, match="torn"):
                faulty_write_bytes(target, payload, site="w", key="payload")
        assert target.read_bytes() == payload[:32]

    def test_untorn_write_is_exact(self, tmp_path):
        target = tmp_path / "payload.bin"
        payload = b"intact"
        faulty_write_bytes(target, payload, site="w", key="payload")
        assert target.read_bytes() == payload

    def test_same_plan_fires_at_same_points_every_run(self, tmp_path):
        """Determinism pin: two identical runs tear identically."""
        plan = FaultPlan.of(
            FaultSpec(site="w", kind="torn", key="k", attempts=(1,))
        )
        outcomes = []
        for run in range(2):
            torn_at = []
            with fault_scope(plan):
                for i in range(3):
                    target = tmp_path / f"run{run}-{i}.bin"
                    try:
                        faulty_write_bytes(target, b"12345678", site="w", key="k")
                    except InjectedFault:
                        torn_at.append(i)
            outcomes.append(torn_at)
        assert outcomes[0] == outcomes[1] == [1]
