"""Runtime lock sanitizer (``repro.runtime.locksan``).

The crucial negative test here is the deliberate lock-order inversion:
CI gates on ``report() == []``, which is only meaningful if the sanitizer
demonstrably catches a real inversion when one is staged.
"""

import threading

import pytest

from repro.runtime import locksan
from repro.runtime.locksan import (
    assert_held,
    enabled,
    held_names,
    make_condition,
    make_lock,
    report,
    sanitizer_scope,
)


@pytest.fixture()
def scope():
    with sanitizer_scope():
        yield


def _in_thread(fn):
    error = []

    def runner():
        try:
            fn()
        except BaseException as exc:  # pragma: no cover - test plumbing
            error.append(exc)

    thread = threading.Thread(target=runner)
    thread.start()
    thread.join()
    if error:
        raise error[0]


# -- construction-time switching ----------------------------------------------


def test_disabled_make_lock_is_a_plain_primitive(monkeypatch):
    monkeypatch.delenv(locksan.ENV_VAR, raising=False)
    assert not enabled()
    lock = make_lock("test.plain")
    assert type(lock) is type(threading.Lock())


def test_scope_forces_sanitized_locks(scope):
    assert enabled()
    lock = make_lock("test.sanitized")
    assert lock.__class__.__name__ == "_SanLock"


def test_env_var_enables_sanitizer(monkeypatch):
    monkeypatch.setenv(locksan.ENV_VAR, "1")
    assert enabled()
    lock = make_lock("test.env")
    assert lock.__class__.__name__ == "_SanLock"
    locksan.reset()


# -- held stacks and balanced accounting --------------------------------------


def test_held_names_tracks_the_calling_thread(scope):
    lock = make_lock("test.a")
    assert held_names() == ()
    with lock:
        assert held_names() == ("test.a",)
    assert held_names() == ()


def test_consistent_nesting_produces_no_report(scope):
    a = make_lock("test.a")
    b = make_lock("test.b")
    for _ in range(3):
        with a:
            with b:
                pass
    assert report() == []


def test_same_name_nesting_is_not_an_inversion(scope):
    # Two instances of one class share a role name; sibling nesting must
    # not create a self-edge (matches the static checker's convention).
    first = make_lock("test.sibling")
    second = make_lock("test.sibling")
    with first:
        with second:
            pass
    assert report() == []


def test_condition_wait_stays_balanced(scope):
    cond = make_condition("test.cond")
    done = []

    def producer():
        with cond:
            done.append(True)
            cond.notify()

    with cond:
        threading.Thread(target=producer).start()
        assert cond.wait(timeout=5.0)
    assert done == [True]
    assert held_names() == ()
    assert report() == []


def test_unbalanced_release_is_reported(scope):
    lock = make_lock("test.unbalanced")
    lock.acquire()
    _in_thread(lock.release)
    assert any("unbalanced-release" in line for line in report())


# -- the deliberate inversion (negative test for the CI gate) -----------------


def test_deliberate_lock_order_inversion_is_detected(scope):
    a = make_lock("test.inv_a")
    b = make_lock("test.inv_b")

    def forward():
        with a:
            with b:
                pass

    def backward():
        with b:
            with a:
                pass

    _in_thread(forward)
    _in_thread(backward)

    violations = report()
    assert len(violations) == 1
    assert "lock-order-cycle" in violations[0]
    assert "test.inv_a" in violations[0]
    assert "test.inv_b" in violations[0]


def test_three_lock_cycle_is_detected(scope):
    a = make_lock("test.c1")
    b = make_lock("test.c2")
    c = make_lock("test.c3")

    def pair(first, second):
        def run():
            with first:
                with second:
                    pass

        return run

    _in_thread(pair(a, b))
    _in_thread(pair(b, c))
    _in_thread(pair(c, a))
    assert any("lock-order-cycle" in line for line in report())


# -- assert_held --------------------------------------------------------------


def test_assert_held_passes_when_held(scope):
    lock = make_lock("test.guard")
    with lock:
        assert_held("test.guard")
    assert report() == []


def test_assert_held_records_a_violation_when_not_held(scope):
    make_lock("test.guard2")
    assert_held("test.guard2")
    violations = report()
    assert len(violations) == 1
    assert "guarded-by" in violations[0]


def test_assert_held_is_inert_for_untracked_names(scope):
    # A lock constructed before the sanitizer was enabled is a plain
    # primitive the sanitizer never saw; asserting on it must not fire.
    assert_held("test.never_constructed")
    assert report() == []


def test_assert_held_is_free_when_disabled(monkeypatch):
    monkeypatch.delenv(locksan.ENV_VAR, raising=False)
    assert_held("test.whatever")
    assert report() == []


# -- scope hygiene ------------------------------------------------------------


def test_scope_resets_state_on_exit():
    with sanitizer_scope():
        lock = make_lock("test.scoped")
        lock.acquire()
        _in_thread(lock.release)
        assert report() != []
    assert report() == []


def test_nested_scopes_keep_sanitizer_enabled():
    with sanitizer_scope():
        with sanitizer_scope():
            assert enabled()
        assert enabled()
    # Only true when the environment variable is not set for this run.
    import os

    if not os.environ.get(locksan.ENV_VAR):
        assert not enabled()
