"""Tests for repro.runtime.supervisor — chunk-granular fault-tolerant pools.

Worker functions live at module level so pool workers can import them
regardless of the multiprocessing start method.
"""

import os
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.runtime.errors import SupervisorError
from repro.runtime.supervisor import (
    DEFAULT_CONFIG,
    SupervisorConfig,
    backoff_delay,
    supervise_chunks,
)

#: Fast-retry config for tests: no real waiting between attempts.
FAST = SupervisorConfig(backoff_base=0.0, backoff_max=0.0)


def _pool() -> ProcessPoolExecutor:
    return ProcessPoolExecutor(max_workers=2)


def square(x, attempt):
    return x * x


def square_serial(x, attempt):
    return x * x


def flaky_square(x, attempt):
    """Raises on the first attempt of payload 2 — a transient worker error."""
    if x == 2 and attempt == 0:
        raise RuntimeError("transient")
    return x * x


def crash_once(x, attempt):
    """Hard-exits the worker on the first attempt of payload 3."""
    if x == 3 and attempt == 0:
        os._exit(87)
    return x * x


def always_crash(x, attempt):
    os._exit(87)


def always_raise(x, attempt):
    raise RuntimeError("poison")


def sleep_once(x, attempt):
    """Hangs payload 1's first attempt long enough to trip a stall deadline."""
    if x == 1 and attempt == 0:
        import time

        time.sleep(30.0)
    return x * x


class TestHappyPath:
    def test_results_in_payload_order(self):
        payloads = list(range(7))
        out = supervise_chunks(payloads, _pool, square, square_serial, config=FAST)
        assert out == [x * x for x in payloads]

    def test_empty_payloads(self):
        assert supervise_chunks([], _pool, square, square_serial, config=FAST) == []


class TestRecovery:
    def test_transient_worker_error_is_retried(self):
        payloads = [1, 2, 3]
        out = supervise_chunks(
            payloads, _pool, flaky_square, square_serial, config=FAST
        )
        assert out == [1, 4, 9]

    def test_crashed_worker_gets_fresh_pool(self):
        payloads = [1, 2, 3, 4]
        out = supervise_chunks(
            payloads, _pool, crash_once, square_serial, config=FAST
        )
        assert out == [1, 4, 9, 16]

    def test_poison_chunk_degrades_to_serial(self):
        config = SupervisorConfig(
            max_chunk_retries=1, backoff_base=0.0, backoff_max=0.0
        )
        out = supervise_chunks(
            [1, 2], _pool, always_raise, square_serial, config=config
        )
        assert out == [1, 4]

    def test_repeated_pool_loss_falls_back_to_serial(self):
        config = SupervisorConfig(
            max_pool_restarts=1, backoff_base=0.0, backoff_max=0.0
        )
        out = supervise_chunks(
            [1, 2, 3], _pool, always_crash, square_serial, config=config
        )
        assert out == [1, 4, 9]

    def test_stalled_pool_is_recycled(self):
        config = SupervisorConfig(
            stall_timeout=0.5, backoff_base=0.0, backoff_max=0.0
        )
        out = supervise_chunks(
            [1, 2], _pool, sleep_once, square_serial, config=config
        )
        assert out == [1, 4]

    def test_serial_failure_raises_supervisor_error(self):
        config = SupervisorConfig(
            max_chunk_retries=0, backoff_base=0.0, backoff_max=0.0
        )
        with pytest.raises(SupervisorError, match="serial fallback"):
            supervise_chunks([1], _pool, always_raise, always_raise, config=config)


class TestBackoff:
    def test_deterministic_bounded_exponential(self):
        config = SupervisorConfig(backoff_base=0.1, backoff_max=0.5)
        assert backoff_delay(config, 0) == 0.0
        assert backoff_delay(config, 1) == pytest.approx(0.1)
        assert backoff_delay(config, 2) == pytest.approx(0.2)
        assert backoff_delay(config, 3) == pytest.approx(0.4)
        assert backoff_delay(config, 4) == pytest.approx(0.5)  # capped
        assert backoff_delay(config, 10) == pytest.approx(0.5)

    def test_retry_sleeps_use_injected_clock(self):
        slept = []
        config = SupervisorConfig(
            max_chunk_retries=2, backoff_base=0.25, backoff_max=1.0
        )
        out = supervise_chunks(
            [1, 2, 3],
            _pool,
            flaky_square,
            square_serial,
            config=config,
            sleep=slept.append,
        )
        assert out == [1, 4, 9]
        assert slept == [0.25]  # exactly one retry of payload 2, attempt 1


class TestConfigValidation:
    def test_defaults_are_sane(self):
        assert DEFAULT_CONFIG.max_chunk_retries == 3
        assert DEFAULT_CONFIG.max_pool_restarts == 2
        assert DEFAULT_CONFIG.stall_timeout is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"stall_timeout": 0.0},
            {"stall_timeout": -1.0},
            {"max_chunk_retries": -1},
            {"max_pool_restarts": -1},
            {"backoff_base": -0.1},
            {"backoff_max": -0.1},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SupervisorConfig(**kwargs)
