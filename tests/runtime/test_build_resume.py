"""Tests for repro.runtime.build_resume — batched, resumable index builds."""

import numpy as np
import pytest

from repro.cascades.index import CascadeIndex
from repro.runtime.build_resume import resumable_index_build
from repro.runtime.errors import InjectedFault
from repro.runtime.faults import FaultPlan, FaultSpec, fault_scope
from repro.runtime.supervisor import SupervisorConfig
from repro.store import read_header, read_index
from repro.store.append import FAULT_SITE_STAGE
from repro.store.build import FAULT_SITE_CHUNK
from repro.store.errors import StoreError, StoreFormatError
from repro.store.fingerprint import digest_of_index


@pytest.fixture
def direct_digest(small_random):
    return digest_of_index(CascadeIndex.build(small_random, 10, seed=31))


class TestBatchedBuild:
    @pytest.mark.parametrize("batch_size", [0, 1, 3, 10, 64])
    def test_every_batch_size_matches_monolithic(
        self, small_random, tmp_path, direct_digest, batch_size
    ):
        header = resumable_index_build(
            small_random,
            10,
            seed=31,
            out=tmp_path / "idx",
            batch_size=batch_size,
        )
        assert header.num_worlds == 10
        assert header.content_digest == direct_digest

    def test_seed_required(self, small_random, tmp_path):
        with pytest.raises(ValueError, match="explicit seed"):
            resumable_index_build(small_random, 4, seed=None, out=tmp_path / "idx")

    def test_negative_batch_size_rejected(self, small_random, tmp_path):
        with pytest.raises(ValueError, match="batch_size"):
            resumable_index_build(
                small_random, 4, seed=1, out=tmp_path / "idx", batch_size=-1
            )


class TestResume:
    def test_resume_extends_partial_store(
        self, small_random, tmp_path, direct_digest
    ):
        out = tmp_path / "idx"
        resumable_index_build(small_random, 4, seed=31, out=out)
        header = resumable_index_build(
            small_random, 10, seed=31, out=out, batch_size=3, resume=True
        )
        assert header.num_worlds == 10
        assert header.content_digest == direct_digest

    def test_resume_of_complete_store_is_a_no_op(self, small_random, tmp_path):
        out = tmp_path / "idx"
        first = resumable_index_build(small_random, 6, seed=31, out=out)
        again = resumable_index_build(
            small_random, 6, seed=31, out=out, resume=True
        )
        assert again.content_digest == first.content_digest

    def test_killed_mid_batch_then_resumed_matches_direct(
        self, small_random, tmp_path, direct_digest
    ):
        out = tmp_path / "idx"
        plan = FaultPlan.of(
            FaultSpec(site=FAULT_SITE_STAGE, kind="error", key="dag_targets")
        )
        with fault_scope(plan), pytest.raises(InjectedFault):
            resumable_index_build(
                small_random, 10, seed=31, out=out, batch_size=4
            )
        # the kill hit the second batch; the first survived durably
        assert read_header(out).num_worlds == 4
        header = resumable_index_build(
            small_random, 10, seed=31, out=out, batch_size=4, resume=True
        )
        assert header.content_digest == direct_digest

    def test_first_batch_debris_is_cleared(
        self, small_random, tmp_path, direct_digest
    ):
        out = tmp_path / "idx"
        out.mkdir()
        # a first-batch crash leaves bare column files and no header
        np.save(out / "node_comp.npy", np.zeros((3, 2), dtype=np.int32))
        (out / "members.npy.tmp").write_bytes(b"partial")
        header = resumable_index_build(
            small_random, 10, seed=31, out=out, batch_size=5, resume=True
        )
        assert header.content_digest == direct_digest

    def test_foreign_directory_refused(self, small_random, tmp_path):
        out = tmp_path / "idx"
        out.mkdir()
        (out / "precious-notes.txt").write_text("not ours to delete")
        with pytest.raises(StoreFormatError):
            resumable_index_build(
                small_random, 4, seed=31, out=out, resume=True
            )
        assert (out / "precious-notes.txt").exists()


class TestResumeGuards:
    @pytest.fixture
    def partial(self, small_random, tmp_path):
        out = tmp_path / "idx"
        resumable_index_build(small_random, 4, seed=31, out=out)
        return out

    def test_different_seed_refused(self, small_random, partial):
        with pytest.raises(StoreError, match="seed entropy differs"):
            resumable_index_build(
                small_random, 10, seed=32, out=partial, resume=True
            )

    def test_different_reduce_flag_refused(self, small_random, partial):
        with pytest.raises(StoreError, match="reduction flag differs"):
            resumable_index_build(
                small_random, 10, seed=31, out=partial, reduce=False, resume=True
            )

    def test_different_graph_refused(self, fig1, partial):
        with pytest.raises(StoreError, match="different graph"):
            resumable_index_build(fig1, 10, seed=31, out=partial, resume=True)

    def test_shrinking_refused(self, small_random, partial):
        with pytest.raises(StoreError, match="more than the requested"):
            resumable_index_build(
                small_random, 2, seed=31, out=partial, resume=True
            )


class TestSupervisedParallelResume:
    def test_injected_worker_crashes_keep_digest(
        self, small_random, tmp_path, direct_digest
    ):
        """Acceptance-shaped: two injected worker crashes (attempts 0 and 1
        of one chunk) during a parallel batched build must not change the
        store's content digest."""
        out = tmp_path / "idx"
        plan = FaultPlan.of(
            FaultSpec(site=FAULT_SITE_CHUNK, kind="crash", key=0, attempts=(0, 1))
        )
        with fault_scope(plan):
            header = resumable_index_build(
                small_random,
                10,
                seed=31,
                out=out,
                batch_size=5,
                n_jobs=2,
                supervisor=SupervisorConfig(backoff_base=0.01),
            )
        assert header.content_digest == direct_digest
        read_index(out, verify="full")  # every array validates
