"""End-to-end pipeline integration over representative dataset settings.

One setting per probability source (learnt-Saito, learnt-Goyal, WC, fixed)
runs the complete flow at tiny scale: build index -> all spheres -> both
influence maximisers -> fresh-world evaluation -> seed-set stability.
"""

import numpy as np
import pytest

from repro.cascades.index import CascadeIndex
from repro.core.stability import seed_set_stability
from repro.core.typical_cascade import TypicalCascadeComputer
from repro.datasets.registry import clear_cache, load_setting
from repro.influence.greedy_std import infmax_std
from repro.influence.greedy_tc import infmax_tc
from repro.influence.spread import evaluate_spread_curve

SCALE = 0.04
SAMPLES = 16
K = 4

REPRESENTATIVES = ("Digg-S", "Twitter-G", "Epinions-W", "NetHEPT-F")


@pytest.fixture(scope="module", autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


@pytest.mark.parametrize("setting_name", REPRESENTATIVES)
def test_full_pipeline(setting_name):
    setting = load_setting(setting_name, scale=SCALE)
    graph = setting.graph
    assert graph.num_nodes >= 30

    index = CascadeIndex.build(graph, SAMPLES, seed=1)
    spheres = TypicalCascadeComputer(index).compute_all()
    assert len(spheres) == graph.num_nodes
    for node, sphere in spheres.items():
        assert sphere.contains(node)
        assert 0.0 <= sphere.cost <= 1.0

    trace_std = infmax_std(index, K)
    trace_tc, _ = infmax_tc(index, K, spheres=spheres)
    assert len(trace_std.seeds) == K
    assert len(trace_tc.selected) == K

    eval_index = CascadeIndex.build(graph, SAMPLES, seed=99, reduce=False)
    curve_std = evaluate_spread_curve(graph, trace_std.seeds, index=eval_index)
    curve_tc = evaluate_spread_curve(
        graph, [int(v) for v in trace_tc.selected], index=eval_index
    )
    assert np.all(np.diff(curve_std) >= -1e-9)
    assert np.all(np.diff(curve_tc) >= -1e-9)
    assert curve_std[-1] >= K * 0.9  # seeds at least roughly count themselves

    _, cost = seed_set_stability(
        graph, trace_tc.selected, eval_index, num_eval_samples=16, seed=2
    )
    assert 0.0 <= cost <= 1.0


def test_sphere_store_roundtrip_in_pipeline(tmp_path):
    """Spheres survive persistence and still drive InfMax_TC identically."""
    from repro.core.store import SphereStore
    from repro.influence.greedy_tc import infmax_tc_from_spheres

    setting = load_setting("Epinions-W", scale=SCALE)
    graph = setting.graph
    index = CascadeIndex.build(graph, SAMPLES, seed=3)
    spheres = TypicalCascadeComputer(index).compute_all()

    store = SphereStore(spheres)
    path = tmp_path / "spheres.npz"
    store.save(path)
    loaded = SphereStore.load(path)

    direct = infmax_tc_from_spheres(spheres, K, graph.num_nodes)
    replayed = infmax_tc_from_spheres(loaded.members_family(), K, graph.num_nodes)
    assert list(direct.selected) == list(replayed.selected)
    assert direct.coverage == replayed.coverage
