"""CELF++ (Goyal, Lu, Lakshmanan, WWW 2011) — the optimised lazy greedy.

The paper's InfMax_std uses "the implementation provided by [18]", i.e.
CELF++.  Beyond CELF's lazy re-evaluation, CELF++ tracks for every heap
entry the marginal gain *with respect to the previously best candidate*
(``mg2``): when the node that was best during ``u``'s evaluation ends up
selected, ``u``'s cached ``mg2`` is already its exact current gain and a
re-evaluation is skipped entirely.

This implementation runs on the same :class:`SpreadOracle` common-world
machinery as :func:`~repro.influence.greedy_std.infmax_std`; both produce
an identical greedy value curve, CELF++ with fewer oracle evaluations.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass


from repro.cascades.index import CascadeIndex
from repro.influence.greedy_std import GreedyTrace
from repro.influence.spread import SpreadOracle
from repro.utils.validation import check_positive_int


@dataclass
class _Entry:
    """Mutable CELF++ heap payload for one candidate node."""

    node: int
    mg1: float  # marginal gain w.r.t. the current seed set S
    mg2: float  # marginal gain w.r.t. S + {prev_best}
    prev_best: int  # best-seen candidate at evaluation time (-1: none)
    flag: int  # iteration at which mg1 was computed


def infmax_celfpp(index: CascadeIndex, k: int) -> GreedyTrace:
    """CELF++ influence maximisation over the index's sampled worlds."""
    check_positive_int(k, "k")
    n = index.num_nodes
    if k > n:
        raise ValueError(f"k={k} exceeds the number of nodes {n}")

    oracle = SpreadOracle(index)
    trace = GreedyTrace()

    initial = oracle.initial_gains()
    trace.evaluations += n

    entries: dict[int, _Entry] = {}
    heap: list[tuple[float, int]] = []
    # First pass: mg1 = sigma({v}).  mg2 starts as the (valid) upper bound
    # mg1 with prev_best = -1, so the exact-shortcut can never fire before
    # a full pairwise evaluation has refined it.
    for v in range(n):
        entries[v] = _Entry(
            node=v,
            mg1=float(initial[v]),
            mg2=float(initial[v]),
            prev_best=-1,
            flag=0,
        )
        heapq.heappush(heap, (-entries[v].mg1, v))

    iteration = 0
    last_seed = -1
    while iteration < k and heap:
        neg_gain, node = heapq.heappop(heap)
        entry = entries[node]
        if -neg_gain != entry.mg1:
            continue  # stale heap copy
        if entry.flag == iteration:
            realized = oracle.add_seed(node)
            trace.seeds.append(node)
            trace.gains.append(realized)
            trace.spreads.append(oracle.current_spread())
            last_seed = node
            iteration += 1
            continue
        if entry.prev_best == last_seed and entry.flag == iteration - 1:
            # CELF++ shortcut: mg2 was computed w.r.t. S' = S + {last_seed},
            # which is exactly the current seed set — no oracle call needed.
            entry.mg1 = entry.mg2
            entry.mg2 = entry.mg1  # refined on the next full evaluation
            entry.prev_best = -1
        else:
            front = entries[heap[0][1]].node if heap else -1
            if front >= 0 and front != node:
                entry.mg1, entry.mg2 = oracle.marginal_gain_pair(node, front)
                entry.prev_best = front
            else:
                entry.mg1 = oracle.marginal_gain(node)
                entry.mg2 = entry.mg1
                entry.prev_best = -1
            trace.evaluations += 1
        entry.flag = iteration
        heapq.heappush(heap, (-entry.mg1, node))

    return trace
