"""Greedy maximum coverage, plus the weighted and budgeted variants the
paper's Section 8 sketches as future work.

All variants operate on a family of sets given as ``{key: sorted int array}``
over a universe ``0..n-1``, and use lazy (CELF-style) gain evaluation —
coverage is submodular, so cached gains are valid upper bounds.

* :func:`greedy_max_cover` — classical (1 - 1/e) greedy; the engine behind
  InfMax_TC (Algorithm 3).
* :func:`weighted_greedy_max_cover` — elements carry values (the "different
  market segments have different values" scenario of Section 8).
* :func:`budgeted_greedy_max_cover` — sets carry costs and selection is
  limited by a budget; runs the cost-benefit greedy and the best-single-set
  fallback that restores a constant-factor guarantee.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Hashable, Mapping

import numpy as np

from repro.utils.validation import check_positive_int


@dataclass
class CoverTrace:
    """Selection order and coverage curve of a greedy cover run."""

    selected: list[Hashable] = field(default_factory=list)
    coverage: list[float] = field(default_factory=list)
    gains: list[float] = field(default_factory=list)
    evaluations: int = 0


def _validate_family(
    sets: Mapping[Hashable, np.ndarray], universe_size: int
) -> dict[Hashable, np.ndarray]:
    family: dict[Hashable, np.ndarray] = {}
    for key, members in sets.items():
        arr = np.asarray(members, dtype=np.int64)
        if arr.size and (int(arr.min()) < 0 or int(arr.max()) >= universe_size):
            raise ValueError(
                f"set {key!r} has elements outside universe 0..{universe_size - 1}"
            )
        family[key] = arr
    if not family:
        raise ValueError("the set family must not be empty")
    return family


def ordered_keys(family: Mapping[Hashable, np.ndarray]) -> list:
    """The deterministic tie-break order of a set family's keys.

    Integer keys (the influence-maximisation case, where keys are node
    ids) sort *numerically*, so coverage ties break by node id — never by
    ``repr`` order (where ``"10" < "2"``) or dict insertion order.  This
    ordering is part of the resume purity contract of the job service:
    a selection resumed from a journaled prefix re-derives the exact same
    argmax only because ties are a deterministic function of the keys.
    Mixed or non-integer key families fall back to ``repr`` order.
    """
    keys = list(family.keys())
    if all(
        isinstance(key, (int, np.integer)) and not isinstance(key, bool)
        for key in keys
    ):
        return sorted(keys, key=int)
    return sorted(keys, key=repr)


def greedy_max_cover(
    sets: Mapping[Hashable, np.ndarray],
    k: int,
    universe_size: int,
    priorities: Mapping[Hashable, float] | None = None,
) -> CoverTrace:
    """Lazy greedy max-cover: pick ``k`` sets maximising |union|.

    ``priorities`` optionally breaks coverage ties: among sets with equal
    marginal coverage, the one with the *higher* priority wins.  InfMax_TC
    passes each node's mean sampled-cascade size here, so that once
    coverage saturates the selection still prefers genuinely influential
    nodes (Algorithm 3's arg max leaves tie order unspecified).  Without
    priorities, ties break by key order, keeping runs reproducible.
    """
    check_positive_int(k, "k")
    family = _validate_family(sets, universe_size)
    covered = np.zeros(universe_size, dtype=bool)
    trace = CoverTrace()

    keys = ordered_keys(family)
    key_rank = {key: i for i, key in enumerate(keys)}
    if priorities is None:
        tie_rank = {key: 0.0 for key in keys}
    else:
        tie_rank = {key: -float(priorities.get(key, 0.0)) for key in keys}

    heap: list[tuple[float, float, int, int]] = []
    for key in keys:
        gain = float(np.unique(family[key]).size)
        heap.append((-gain, tie_rank[key], key_rank[key], 0))
        trace.evaluations += 1
    heapq.heapify(heap)

    iteration = 0
    total = 0.0
    while iteration < min(k, len(keys)) and heap:
        neg_gain, tie, rank, stamp = heapq.heappop(heap)
        key = keys[rank]
        if stamp == iteration:
            members = family[key]
            fresh = members[~covered[members]]
            covered[np.unique(fresh)] = True
            gain = float(np.unique(fresh).size)
            total += gain
            trace.selected.append(key)
            trace.gains.append(gain)
            trace.coverage.append(total)
            iteration += 1
        else:
            members = family[key]
            gain = float(np.count_nonzero(~covered[np.unique(members)]))
            trace.evaluations += 1
            heapq.heappush(heap, (-gain, tie, rank, iteration))
    return trace


def weighted_greedy_max_cover(
    sets: Mapping[Hashable, np.ndarray],
    k: int,
    universe_size: int,
    element_values: np.ndarray,
) -> CoverTrace:
    """Greedy max-cover where element ``v`` is worth ``element_values[v]``."""
    check_positive_int(k, "k")
    family = _validate_family(sets, universe_size)
    values = np.asarray(element_values, dtype=np.float64)
    if values.shape != (universe_size,):
        raise ValueError(
            f"element_values must have shape ({universe_size},), got {values.shape}"
        )
    if np.any(values < 0):
        raise ValueError("element_values must be non-negative")

    covered = np.zeros(universe_size, dtype=bool)
    trace = CoverTrace()
    keys = ordered_keys(family)
    key_rank = {key: i for i, key in enumerate(keys)}

    def gain_of(key: Hashable) -> float:
        members = np.unique(family[key])
        return float(values[members[~covered[members]]].sum())

    heap = []
    for key in keys:
        heap.append((-gain_of(key), key_rank[key], 0))
        trace.evaluations += 1
    heapq.heapify(heap)

    iteration = 0
    total = 0.0
    while iteration < min(k, len(keys)) and heap:
        neg_gain, rank, stamp = heapq.heappop(heap)
        key = keys[rank]
        if stamp == iteration:
            members = np.unique(family[key])
            fresh = members[~covered[members]]
            covered[fresh] = True
            gain = float(values[fresh].sum())
            total += gain
            trace.selected.append(key)
            trace.gains.append(gain)
            trace.coverage.append(total)
            iteration += 1
        else:
            trace.evaluations += 1
            heapq.heappush(heap, (-gain_of(key), rank, iteration))
    return trace


def budgeted_greedy_max_cover(
    sets: Mapping[Hashable, np.ndarray],
    budget: float,
    universe_size: int,
    set_costs: Mapping[Hashable, float],
) -> CoverTrace:
    """Budgeted max-cover ("different nodes have different costs", §8).

    Runs the cost-benefit greedy (pick the affordable set with the best
    gain/cost ratio) and compares against the single best affordable set,
    returning whichever covers more — the standard constant-factor recipe
    for budgeted maximum coverage.
    """
    if budget <= 0:
        raise ValueError(f"budget must be positive, got {budget}")
    family = _validate_family(sets, universe_size)
    for key in family:
        if key not in set_costs:
            raise ValueError(f"missing cost for set {key!r}")
        if set_costs[key] <= 0:
            raise ValueError(f"cost of set {key!r} must be positive")

    # Cost-benefit greedy.
    covered = np.zeros(universe_size, dtype=bool)
    trace = CoverTrace()
    remaining = dict(family)
    spent = 0.0
    total = 0.0
    while remaining:
        best_key = None
        best_ratio = 0.0
        best_gain = 0.0
        for key in ordered_keys(remaining):
            members = remaining[key]
            cost = float(set_costs[key])
            if spent + cost > budget:
                continue
            uniq = np.unique(members)
            gain = float(np.count_nonzero(~covered[uniq]))
            trace.evaluations += 1
            ratio = gain / cost
            if ratio > best_ratio:
                best_ratio, best_key, best_gain = ratio, key, gain
        if best_key is None or best_gain <= 0:
            break
        members = np.unique(remaining.pop(best_key))
        covered[members] = True
        spent += float(set_costs[best_key])
        total += best_gain
        trace.selected.append(best_key)
        trace.gains.append(best_gain)
        trace.coverage.append(total)

    # Best single affordable set (ties keep the first key in tie-break order).
    best_single = None
    best_single_gain = 0.0
    for key in ordered_keys(family):
        if float(set_costs[key]) <= budget:
            gain = float(np.unique(family[key]).size)
            if gain > best_single_gain:
                best_single, best_single_gain = key, gain

    if best_single is not None and best_single_gain > total:
        single = CoverTrace()
        single.selected = [best_single]
        single.gains = [best_single_gain]
        single.coverage = [best_single_gain]
        single.evaluations = trace.evaluations + len(family)
        return single
    return trace
