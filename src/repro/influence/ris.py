"""Reverse-reachable-set influence maximisation (Borgs et al. / TIM-style).

Related-work comparator (Section 7 of the paper): sample random
reverse-reachable (RR) sets — the set of nodes that *could have influenced*
a uniformly random target under one random world — and greedily pick the
``k`` nodes covering the most RR sets.  The fraction of RR sets covered,
scaled by ``n``, is an unbiased spread estimate.

Edges are flipped lazily during the reverse BFS (each arc's coin is tossed
at most once per RR sample), so a sample costs time proportional to the RR
set it produces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.digraph import ProbabilisticDigraph
from repro.influence.maxcover import greedy_max_cover
from repro.utils.rng import SeedLike, derive_rng
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class RisResult:
    """Outcome of an RIS run.

    Attributes:
        seeds: the selected seed nodes, in selection order.
        estimated_spreads: spread estimate after each selection
            (``n * covered_fraction``).
        num_rr_sets: how many RR sets were sampled.
    """

    seeds: list[int]
    estimated_spreads: list[float]
    num_rr_sets: int


def sample_rr_set(
    graph: ProbabilisticDigraph, target: int, rng: np.random.Generator
) -> np.ndarray:
    """One RR set for ``target``: reverse BFS with lazy edge coins."""
    reverse = graph.reverse()
    indptr, sources, probs = reverse.indptr, reverse.targets, reverse.probs
    visited = np.zeros(graph.num_nodes, dtype=bool)
    visited[target] = True
    frontier = [int(target)]
    while frontier:
        v = frontier.pop()
        lo, hi = int(indptr[v]), int(indptr[v + 1])
        if lo == hi:
            continue
        alive = rng.random(hi - lo) < probs[lo:hi]
        for u in sources[lo:hi][alive]:
            u = int(u)
            if not visited[u]:
                visited[u] = True
                frontier.append(u)
    return np.flatnonzero(visited).astype(np.int64)


def estimate_num_rr_sets(
    graph: ProbabilisticDigraph,
    k: int,
    epsilon: float = 0.2,
    seed: SeedLike = None,
    max_rr_sets: int = 200_000,
) -> int:
    """TIM-style first phase: choose an RR-sample budget for a target
    accuracy.

    Implements the KPT* estimation idea of Tang et al. (SIGMOD 2014):
    sample RR sets in doubling rounds until their average *width* (the
    expected fraction of an RR set a random node hits) reveals the
    influence scale ``KPT``, then return
    ``theta = (8 + 2 eps) * n * (log n + log C(n,k) + log 2) / (eps^2 KPT)``
    clipped to ``max_rr_sets``.  Exposed separately so callers can budget
    consciously; :func:`infmax_ris` takes a plain count.
    """
    check_positive_int(k, "k")
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    n = graph.num_nodes
    if n < 2:
        return 1
    rng = derive_rng(seed)

    log_n = np.log(n)
    log_binom = float(
        sum(np.log(n - i) - np.log(i + 1) for i in range(min(k, n - 1)))
    )
    kpt = 1.0
    for round_index in range(1, int(np.ceil(np.log2(n))) + 1):
        c_i = int(np.ceil((6 * log_n + np.log(np.log2(max(n, 2)))) * 2**round_index))
        c_i = max(c_i, 1)
        widths = []
        for _ in range(min(c_i, max_rr_sets)):
            target = int(rng.integers(0, n))
            rr = sample_rr_set(graph, target, rng)
            # Width proxy: probability a uniformly random node's out-arcs
            # touch this RR set, approximated by |RR| / n.
            widths.append(rr.size / n)
        mean_width = float(np.mean(widths)) if widths else 0.0
        kpt_candidate = n * mean_width
        if kpt_candidate >= 2 ** (-round_index) * n / 2 or round_index >= int(
            np.ceil(np.log2(n))
        ):
            kpt = max(kpt_candidate, 1.0)
            break
    theta = (8 + 2 * epsilon) * n * (log_n + log_binom + np.log(2)) / (
        epsilon**2 * kpt
    )
    return int(np.clip(np.ceil(theta), 1, max_rr_sets))


def infmax_ris(
    graph: ProbabilisticDigraph,
    k: int,
    num_rr_sets: int = 10_000,
    seed: SeedLike = None,
) -> RisResult:
    """RIS influence maximisation with a fixed RR-sample budget."""
    check_positive_int(k, "k")
    check_positive_int(num_rr_sets, "num_rr_sets")
    n = graph.num_nodes
    if k > n:
        raise ValueError(f"k={k} exceeds the number of nodes {n}")
    rng = derive_rng(seed)

    # Each RR set becomes an element of a coverage universe; node v's
    # "set" is the collection of RR-set ids containing v.
    member_lists: dict[int, list[int]] = {v: [] for v in range(n)}
    for rr_id in range(num_rr_sets):
        target = int(rng.integers(0, n))
        for v in sample_rr_set(graph, target, rng):
            member_lists[int(v)].append(rr_id)

    family = {
        v: np.asarray(ids, dtype=np.int64) for v, ids in member_lists.items()
    }
    trace = greedy_max_cover(family, k, num_rr_sets)
    scale = n / num_rr_sets
    return RisResult(
        seeds=[int(v) for v in trace.selected],
        estimated_spreads=[c * scale for c in trace.coverage],
        num_rr_sets=num_rr_sets,
    )
