"""InfMax_std — the classic greedy influence maximiser (Kempe et al.).

Greedy with CELF lazy evaluation [Leskovec et al. 2007; Goyal et al. 2011]:
marginal gains are submodular, so a node's cached gain from an earlier
iteration upper-bounds its current gain, and most re-evaluations can be
skipped.  A ``lazy=False`` mode re-evaluates every candidate each iteration
— quadratically slower, but it exposes the full marginal-gain ranking that
Figure 7's saturation analysis needs.

Two spread-estimation regimes are provided:

* :func:`infmax_std` — **common random numbers**: every candidate is scored
  against the same pre-sampled worlds of a :class:`CascadeIndex`.  This is
  a *variance-reduced improvement* over the implementations of the paper's
  era; comparisons between candidates are exact on the shared worlds.
* :func:`infmax_std_mc` — **fresh Monte Carlo per estimate**, the protocol
  of the CELF/CELF++ implementations the paper benchmarks against [18]:
  every (re-)evaluation runs its own independent simulations.  Late-stage
  marginal gains (a fraction of a node) drown in the independent noise,
  which is precisely the saturation phenomenon of Figure 7 and the reason
  InfMax_TC overtakes it for large seed sets in Figure 6.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.cascades.ic import cascade_sizes
from repro.cascades.index import CascadeIndex
from repro.graph.digraph import ProbabilisticDigraph
from repro.influence.spread import SpreadOracle
from repro.utils.rng import SeedLike, derive_rng
from repro.utils.validation import check_positive_int


@dataclass
class GreedyTrace:
    """Everything a greedy run records.

    Attributes:
        seeds: selected nodes, in selection order.
        spreads: sigma(S_j) after each selection (in-sample estimate over
            the oracle's worlds).
        gains: realised marginal gain of each selection.
        evaluations: number of marginal-gain evaluations performed (CELF
            efficiency diagnostic).
        gain_rankings: only in non-lazy mode — for each iteration, the
            sorted (descending) marginal gains of all candidates, feeding
            the MG_10/MG_1 saturation ratio.
    """

    seeds: list[int] = field(default_factory=list)
    spreads: list[float] = field(default_factory=list)
    gains: list[float] = field(default_factory=list)
    evaluations: int = 0
    gain_rankings: list[np.ndarray] = field(default_factory=list)


def infmax_std(
    index: CascadeIndex,
    k: int,
    lazy: bool = True,
    record_rankings: bool = False,
) -> GreedyTrace:
    """Greedy influence maximisation on the worlds of ``index``.

    Returns a :class:`GreedyTrace` with the chosen seeds and the per-
    iteration spread curve.  ``lazy`` switches between CELF and exhaustive
    re-evaluation; ``record_rankings`` (non-lazy only) stores the full gain
    ranking per iteration.
    """
    check_positive_int(k, "k")
    n = index.num_nodes
    if k > n:
        raise ValueError(f"k={k} exceeds the number of nodes {n}")
    if record_rankings and lazy:
        raise ValueError("record_rankings requires lazy=False (full re-evaluation)")

    oracle = SpreadOracle(index)
    trace = GreedyTrace()

    if lazy:
        _run_celf(oracle, k, trace)
    else:
        _run_plain(oracle, k, trace, record_rankings)
    return trace


def _run_celf(oracle: SpreadOracle, k: int, trace: GreedyTrace) -> None:
    n = oracle.index.num_nodes
    initial = oracle.initial_gains()
    trace.evaluations += n
    # Heap of (-gain, node, iteration-at-which-gain-was-computed).
    heap: list[tuple[float, int, int]] = [
        (-float(initial[v]), v, 0) for v in range(n)
    ]
    heapq.heapify(heap)

    iteration = 0
    while iteration < k and heap:
        neg_gain, node, stamp = heapq.heappop(heap)
        if stamp == iteration:
            realized = oracle.add_seed(node)
            trace.seeds.append(node)
            trace.gains.append(realized)
            trace.spreads.append(oracle.current_spread())
            iteration += 1
        else:
            gain = oracle.marginal_gain(node)
            trace.evaluations += 1
            heapq.heappush(heap, (-gain, node, iteration))


def infmax_std_mc(
    graph: ProbabilisticDigraph,
    k: int,
    num_simulations: int = 1000,
    seed: SeedLike = None,
    pool_size: int | None = None,
) -> GreedyTrace:
    """CELF with *independent* spread estimates per evaluation — the
    protocol of the paper's InfMax_std implementation [18].

    Historical implementations estimate the marginal gain as
    ``sigma_hat(S + w) - sigma_hat(S)`` where the two spread estimates come
    from *independent* Monte Carlo runs, so every evaluation carries noise
    ``~ sd(|cascade|) * sqrt(2 / num_simulations)`` — enormous on
    heavy-tailed cascade-size distributions.  This function reproduces that
    estimator faithfully and cheaply: worlds are pre-sampled into a pool
    (``pool_size``, default ``4 * num_simulations``) and each evaluation
    draws two fresh independent subsets of ``num_simulations`` worlds, one
    for each term of the difference.  Unlike :func:`infmax_std`, whose
    common-random-numbers oracle compares candidates on identical worlds,
    late-stage gains here drown in the independent noise — the saturation
    regime behind Figure 6's crossover; see EXPERIMENTS.md.
    """
    check_positive_int(k, "k")
    check_positive_int(num_simulations, "num_simulations")
    n = graph.num_nodes
    if k > n:
        raise ValueError(f"k={k} exceeds the number of nodes {n}")
    if pool_size is None:
        pool_size = 4 * num_simulations
    if pool_size < num_simulations:
        raise ValueError(
            f"pool_size={pool_size} must be >= num_simulations={num_simulations}"
        )
    rng = derive_rng(seed)
    index = CascadeIndex.build(
        graph, pool_size, seed=int(rng.integers(0, 2**62)), reduce=False
    )
    # Per-world covered masks and |R_S(G_i)| counts for the committed seeds.
    covered = [np.zeros(n, dtype=bool) for _ in range(pool_size)]
    covered_counts = np.zeros(pool_size, dtype=np.float64)

    def estimate_gain(node: int) -> float:
        """sigma_hat(S + node) - sigma_hat(S), the two estimates over
        independent world subsets (the historical two-run protocol)."""
        worlds_with = rng.choice(pool_size, size=num_simulations, replace=False)
        worlds_base = rng.choice(pool_size, size=num_simulations, replace=False)
        total_with = 0.0
        for w in worlds_with:
            w = int(w)
            total_with += covered_counts[w]
            mask = covered[w]
            if mask[node]:
                continue
            cascade = index.cascade(node, w)
            total_with += int(cascade.size) - int(np.count_nonzero(mask[cascade]))
        total_base = float(covered_counts[worlds_base].sum())
        return (total_with - total_base) / num_simulations

    trace = GreedyTrace()
    sizes = index.all_cascade_sizes()

    def initial_estimate(node: int) -> float:
        # sigma(empty set) is exactly 0, so the first round has single-run
        # noise only.
        worlds = rng.choice(pool_size, size=num_simulations, replace=False)
        return float(sizes[node, worlds].mean())

    heap: list[tuple[float, int, int]] = []
    for v in range(n):
        heap.append((-initial_estimate(v), v, 0))
        trace.evaluations += 1
    heapq.heapify(heap)

    covered_total = 0
    iteration = 0
    while iteration < k and heap:
        neg_gain, node, stamp = heapq.heappop(heap)
        if stamp == iteration:
            # Commit: update every pool world exactly.
            gained = 0
            for w in range(pool_size):
                mask = covered[w]
                if mask[node]:
                    continue
                cascade = index.cascade(node, w)
                fresh = cascade[~mask[cascade]]
                mask[fresh] = True
                covered_counts[w] += int(fresh.size)
                gained += int(fresh.size)
            covered_total += gained
            trace.seeds.append(node)
            trace.gains.append(gained / pool_size)
            trace.spreads.append(covered_total / pool_size)
            iteration += 1
        else:
            gain = estimate_gain(node)
            trace.evaluations += 1
            heapq.heappush(heap, (-gain, node, iteration))
    return trace


def _run_plain(
    oracle: SpreadOracle, k: int, trace: GreedyTrace, record_rankings: bool
) -> None:
    n = oracle.index.num_nodes
    chosen: set[int] = set()
    gains = oracle.initial_gains().astype(np.float64)
    trace.evaluations += n
    for _ in range(k):
        candidates = [v for v in range(n) if v not in chosen]
        if not candidates:
            break
        current = np.empty(len(candidates), dtype=np.float64)
        for i, v in enumerate(candidates):
            if not chosen:
                current[i] = gains[v]
            else:
                current[i] = oracle.marginal_gain(v)
                trace.evaluations += 1
        order = np.argsort(current)[::-1]
        if record_rankings:
            trace.gain_rankings.append(current[order].copy())
        best = candidates[int(order[0])]
        realized = oracle.add_seed(best)
        chosen.add(best)
        trace.seeds.append(best)
        trace.gains.append(realized)
        trace.spreads.append(oracle.current_spread())
