"""Saturation analysis (Figure 7): the marginal-gain ratio MG_10 / MG_1.

At greedy iteration ``j`` let ``MG_i^j`` be the ``i``-th largest marginal
gain among the remaining candidates.  The ratio ``MG_10^j / MG_1^j`` lies in
[0, 1]; values near 1 mean the greedy can no longer distinguish the best
candidate from the 10th best — its choices have become essentially random
("saturation").  The paper shows InfMax_std saturates far earlier than
InfMax_TC.

Both analyses run the *plain* (non-lazy) greedy, because CELF never
materialises the full ranking — this is why the paper restricts Figure 7 to
its two smallest datasets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cascades.index import CascadeIndex
from repro.core.sphere import SphereOfInfluence
from repro.influence.greedy_std import infmax_std
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class SaturationCurve:
    """MG ratios per iteration for one method.

    ``ratios[j]`` is MG_rank / MG_1 at iteration ``first_iteration + j``.
    """

    method: str
    first_iteration: int
    ratios: np.ndarray
    rank: int = 10


def _ratio_from_ranking(ranking: np.ndarray, rank: int) -> float:
    """MG_rank / MG_1 with the edge cases pinned down.

    A ranking shorter than ``rank`` (or one whose best gain is zero) means
    the greedy cannot distinguish candidates at all: ratio 1.
    """
    if ranking.size < rank or ranking[0] <= 0:
        return 1.0
    return float(ranking[rank - 1] / ranking[0])


def marginal_gain_ratios(
    index: CascadeIndex,
    num_iterations: int,
    first_iteration: int = 0,
    rank: int = 10,
) -> SaturationCurve:
    """Figure 7 for InfMax_std: plain greedy, full ranking per iteration."""
    check_positive_int(num_iterations, "num_iterations")
    check_positive_int(rank, "rank")
    total = first_iteration + num_iterations
    trace = infmax_std(index, total, lazy=False, record_rankings=True)
    ratios = np.array(
        [
            _ratio_from_ranking(trace.gain_rankings[j], rank)
            for j in range(first_iteration, len(trace.gain_rankings))
        ],
        dtype=np.float64,
    )
    return SaturationCurve("InfMax_std", first_iteration, ratios, rank)


def coverage_gain_ratios(
    spheres: dict[int, SphereOfInfluence],
    universe_size: int,
    num_iterations: int,
    first_iteration: int = 0,
    rank: int = 10,
) -> SaturationCurve:
    """Figure 7 for InfMax_TC: the same ratio on coverage marginal gains.

    Coverage gains are cheap to re-rank exhaustively (each is one masked
    count over the sphere's members), so no index is needed here.
    """
    check_positive_int(num_iterations, "num_iterations")
    check_positive_int(rank, "rank")
    family = {
        int(v): np.asarray(s.members, dtype=np.int64) for v, s in spheres.items()
    }
    covered = np.zeros(universe_size, dtype=bool)
    chosen: set[int] = set()
    total = first_iteration + num_iterations
    ratios: list[float] = []
    for iteration in range(total):
        gains = []
        for v, members in family.items():
            if v in chosen:
                continue
            uniq = np.unique(members)
            gains.append((float(np.count_nonzero(~covered[uniq])), v))
        if not gains:
            break
        gains.sort(reverse=True)
        ranking = np.array([g for g, _ in gains], dtype=np.float64)
        if iteration >= first_iteration:
            ratios.append(_ratio_from_ranking(ranking, rank))
        best_v = gains[0][1]
        members = np.unique(family[best_v])
        covered[members] = True
        chosen.add(best_v)
    return SaturationCurve(
        "InfMax_TC", first_iteration, np.array(ratios, dtype=np.float64), rank
    )
