"""Influence maximisation: the classic greedy baseline (InfMax_std), the
paper's max-cover method over spheres of influence (InfMax_TC, Algorithm 3),
spread estimation, the RIS comparator, and the saturation analysis of
Figure 7.
"""

from repro.influence.spread import SpreadOracle, evaluate_spread_curve
from repro.influence.greedy_std import infmax_std, infmax_std_mc, GreedyTrace
from repro.influence.greedy_tc import infmax_tc
from repro.influence.maxcover import (
    greedy_max_cover,
    weighted_greedy_max_cover,
    budgeted_greedy_max_cover,
)
from repro.influence.ris import infmax_ris
from repro.influence.saturation import marginal_gain_ratios
from repro.influence.celfpp import infmax_celfpp
from repro.influence.weighted import WeightedSpreadOracle, infmax_std_weighted

__all__ = [
    "SpreadOracle",
    "evaluate_spread_curve",
    "infmax_std",
    "infmax_std_mc",
    "GreedyTrace",
    "infmax_tc",
    "greedy_max_cover",
    "weighted_greedy_max_cover",
    "budgeted_greedy_max_cover",
    "infmax_ris",
    "marginal_gain_ratios",
    "infmax_celfpp",
    "WeightedSpreadOracle",
    "infmax_std_weighted",
]
