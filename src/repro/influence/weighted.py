"""Value-weighted influence maximisation (Section 8's market segments).

When node ``v`` is worth ``value[v]`` to the campaign, the objective
becomes the expected *value* reached, ``sigma_w(S) = E[sum_{v in R_S} w_v]``
— still monotone and submodular, so lazy greedy retains the (1 - 1/e)
guarantee.  ``WeightedSpreadOracle`` mirrors
:class:`~repro.influence.spread.SpreadOracle` with per-node values, and
:func:`infmax_std_weighted` is the corresponding CELF greedy.

The sphere-based counterpart is
:func:`~repro.influence.maxcover.weighted_greedy_max_cover` over the
typical cascades — the pairing the paper's conclusions propose.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.cascades.index import CascadeIndex
from repro.influence.greedy_std import GreedyTrace
from repro.utils.validation import check_node, check_positive_int


class WeightedSpreadOracle:
    """Incremental expected-value estimator over an index's worlds."""

    def __init__(self, index: CascadeIndex, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (index.num_nodes,):
            raise ValueError(
                f"values must have shape ({index.num_nodes},), got {values.shape}"
            )
        if np.any(values < 0):
            raise ValueError("values must be non-negative")
        self._index = index
        self._values = values
        self._covered = [
            np.zeros(index.num_nodes, dtype=bool) for _ in range(index.num_worlds)
        ]
        self._covered_value = 0.0
        self._seeds: list[int] = []

    @property
    def index(self) -> CascadeIndex:
        return self._index

    @property
    def seeds(self) -> list[int]:
        return list(self._seeds)

    def current_value(self) -> float:
        """sigma_w(S) estimate for the committed seed set."""
        return self._covered_value / self._index.num_worlds

    def initial_gains(self) -> np.ndarray:
        """sigma_w({v}) for every node, in bulk.

        Uses per-world component closures weighted by component *values*
        instead of sizes — the same trick as
        :meth:`CascadeIndex.all_cascade_sizes`.
        """
        n = self._index.num_nodes
        totals = np.zeros(n, dtype=np.float64)
        for world in range(self._index.num_worlds):
            cond = self._index.condensation(world)
            k = cond.num_components
            comp_value = np.zeros(k, dtype=np.float64)
            np.add.at(comp_value, cond.node_comp, self._values)
            closure = np.zeros((k, k), dtype=bool)
            indptr, targets = cond.indptr, cond.targets
            for c in range(k):
                row = closure[c]
                for d in targets[indptr[c] : indptr[c + 1]]:
                    np.logical_or(row, closure[int(d)], out=row)
                row[c] = True
            reach_value = closure @ comp_value
            totals += reach_value[cond.node_comp]
        return totals / self._index.num_worlds

    def marginal_gain(self, node: int) -> float:
        """Expected *value* of the new nodes ``node`` would activate."""
        node = check_node(node, self._index.num_nodes)
        gained = 0.0
        for world in range(self._index.num_worlds):
            covered = self._covered[world]
            if covered[node]:
                continue
            cascade = self._index.cascade(node, world)
            fresh = cascade[~covered[cascade]]
            gained += float(self._values[fresh].sum())
        return gained / self._index.num_worlds

    def add_seed(self, node: int) -> float:
        """Commit ``node``; returns the realised value gain."""
        node = check_node(node, self._index.num_nodes)
        if node in self._seeds:
            raise ValueError(f"node {node} is already a seed")
        gained = 0.0
        for world in range(self._index.num_worlds):
            covered = self._covered[world]
            if covered[node]:
                continue
            cascade = self._index.cascade(node, world)
            fresh = cascade[~covered[cascade]]
            covered[fresh] = True
            gained += float(self._values[fresh].sum())
        self._covered_value += gained
        self._seeds.append(node)
        return gained / self._index.num_worlds


def infmax_std_weighted(
    index: CascadeIndex, k: int, values: np.ndarray
) -> GreedyTrace:
    """CELF greedy maximising the expected reached *value*."""
    check_positive_int(k, "k")
    n = index.num_nodes
    if k > n:
        raise ValueError(f"k={k} exceeds the number of nodes {n}")
    oracle = WeightedSpreadOracle(index, values)
    trace = GreedyTrace()

    initial = oracle.initial_gains()
    trace.evaluations += n
    heap = [(-float(initial[v]), v, 0) for v in range(n)]
    heapq.heapify(heap)

    iteration = 0
    while iteration < k and heap:
        neg_gain, node, stamp = heapq.heappop(heap)
        if stamp == iteration:
            realized = oracle.add_seed(node)
            trace.seeds.append(node)
            trace.gains.append(realized)
            trace.spreads.append(oracle.current_value())
            iteration += 1
        else:
            gain = oracle.marginal_gain(node)
            trace.evaluations += 1
            heapq.heappush(heap, (-gain, node, iteration))
    return trace
