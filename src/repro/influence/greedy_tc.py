"""InfMax_TC (Algorithm 3): influence maximisation via max-cover over the
spheres of influence.

Given the typical cascade ``C_v`` of every node, the method greedily picks
the ``k`` nodes whose spheres' union ``Phi(S) = U_{v in S} C_v`` is largest.
Section 5 of the paper justifies using the union of singleton spheres in
place of the seed set's own typical cascade.
"""

from __future__ import annotations

import os
from typing import Mapping, Union

import numpy as np

from repro.cascades.index import CascadeIndex
from repro.core.sphere import SphereOfInfluence
from repro.core.typical_cascade import TypicalCascadeComputer
from repro.influence.maxcover import CoverTrace, greedy_max_cover
from repro.utils.validation import check_positive_int


def infmax_tc_from_spheres(
    spheres: Mapping[int, SphereOfInfluence] | Mapping[int, np.ndarray],
    k: int,
    universe_size: int,
    priorities: Mapping[int, float] | None = None,
) -> CoverTrace:
    """Algorithm 3 on precomputed spheres (or raw member arrays).

    Every node's sphere implicitly contains the node itself (a node
    trivially infects itself); the union is taken accordingly so that
    coverage never under-counts the seeds.  ``priorities`` breaks coverage
    ties (see :func:`~repro.influence.maxcover.greedy_max_cover`).
    """
    check_positive_int(k, "k")
    family: dict[int, np.ndarray] = {}
    for node, sphere in spheres.items():
        members = sphere.members if isinstance(sphere, SphereOfInfluence) else sphere
        members = np.asarray(members, dtype=np.int64)
        node = int(node)
        # Ensure the seed itself is covered.
        if members.size == 0 or not np.any(members == node):
            members = np.union1d(members, np.array([node], dtype=np.int64))
        family[node] = members
    return greedy_max_cover(family, k, universe_size, priorities=priorities)


def infmax_tc(
    index: Union[CascadeIndex, str, os.PathLike],
    k: int,
    size_grid_ratio: float = 1.15,
    spheres: Mapping[int, SphereOfInfluence] | None = None,
) -> tuple[CoverTrace, dict[int, SphereOfInfluence]]:
    """End-to-end InfMax_TC: compute all spheres from ``index`` (unless
    supplied) and run greedy max-cover over them.

    ``index`` may also be the path of a saved index (store directory or
    ``.npz``); it is loaded with :meth:`CascadeIndex.load`, so a single
    precomputed index on disk can serve many campaigns.

    Coverage ties are broken by each node's mean sampled-cascade size —
    statistics the index already holds — so that in the late, saturated
    regime the method keeps preferring genuinely influential nodes
    (Algorithm 3's arg max leaves tie order unspecified).

    Returns ``(trace, spheres)`` so callers can reuse the spheres for the
    stability analysis (Figure 8) without recomputing them.
    """
    check_positive_int(k, "k")
    if not isinstance(index, CascadeIndex):
        index = CascadeIndex.load(index)
    if spheres is None:
        computer = TypicalCascadeComputer(index, size_grid_ratio=size_grid_ratio)
        spheres = computer.compute_all()
    mean_sizes = index.all_cascade_sizes().mean(axis=1)
    priorities = {v: float(mean_sizes[v]) for v in spheres}
    trace = infmax_tc_from_spheres(
        spheres, k, index.num_nodes, priorities=priorities
    )
    return trace, dict(spheres)
