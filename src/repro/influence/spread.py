"""Expected-spread estimation over pooled sampled worlds.

``SpreadOracle`` wraps a :class:`~repro.cascades.index.CascadeIndex` and
maintains, per world, the set of nodes already covered by the current seed
set.  This turns the two operations every greedy influence maximiser needs
into cheap incremental queries:

* ``marginal_gain(w)`` — expected number of *new* nodes w would activate;
* ``add_seed(w)`` — commit w and update the per-world coverage.

Because all candidate seeds are scored against the *same* sampled worlds,
comparisons between seeds are low-variance even with modest sample counts
(common random numbers), which is exactly how the paper runs both methods
with 1000 shared samples.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.cascades.index import CascadeIndex
from repro.graph.digraph import ProbabilisticDigraph
from repro.utils.rng import SeedLike
from repro.utils.validation import check_node, check_positive_int


class SpreadOracle:
    """Incremental expected-spread estimator over an index's worlds."""

    def __init__(self, index: CascadeIndex) -> None:
        self._index = index
        self._covered = [
            np.zeros(index.num_nodes, dtype=bool) for _ in range(index.num_worlds)
        ]
        self._covered_total = 0
        self._seeds: list[int] = []

    @property
    def index(self) -> CascadeIndex:
        return self._index

    @property
    def seeds(self) -> list[int]:
        return list(self._seeds)

    @property
    def num_worlds(self) -> int:
        return self._index.num_worlds

    def current_spread(self) -> float:
        """sigma(S) estimate for the committed seed set."""
        return self._covered_total / self._index.num_worlds

    def initial_gains(self) -> np.ndarray:
        """sigma({v}) for every node — the first greedy iteration, computed
        in bulk from the index's all-sizes matrix."""
        sizes = self._index.all_cascade_sizes()
        return sizes.mean(axis=1)

    def marginal_gain(self, node: int) -> float:
        """Expected number of new nodes activated if ``node`` joined S."""
        node = check_node(node, self._index.num_nodes)
        new_nodes = 0
        for world in range(self._index.num_worlds):
            covered = self._covered[world]
            if covered[node]:
                continue
            cascade = self._index.cascade(node, world)
            new_nodes += int(cascade.size) - int(np.count_nonzero(covered[cascade]))
        return new_nodes / self._index.num_worlds

    def marginal_gain_pair(self, node: int, extra: int) -> tuple[float, float]:
        """``(gain(node | S), gain(node | S + {extra}))`` in one pass.

        The second value is CELF++'s ``mg2``: what ``node`` would add if the
        current front-runner ``extra`` were selected first.  Both counts
        share the candidate-cascade extraction per world.
        """
        node = check_node(node, self._index.num_nodes)
        extra = check_node(extra, self._index.num_nodes, "extra")
        gain1 = 0
        gain2 = 0
        for world in range(self._index.num_worlds):
            covered = self._covered[world]
            if covered[node]:
                continue
            cascade = self._index.cascade(node, world)
            fresh = cascade[~covered[cascade]]
            gain1 += int(fresh.size)
            if fresh.size:
                extra_cascade = self._index.cascade(extra, world)
                extra_mask = np.zeros(self._index.num_nodes, dtype=bool)
                extra_mask[extra_cascade] = True
                gain2 += int(np.count_nonzero(~extra_mask[fresh]))
        worlds = self._index.num_worlds
        return gain1 / worlds, gain2 / worlds

    def add_seed(self, node: int) -> float:
        """Commit ``node`` to the seed set; returns the realised gain."""
        node = check_node(node, self._index.num_nodes)
        if node in self._seeds:
            raise ValueError(f"node {node} is already a seed")
        gained = 0
        for world in range(self._index.num_worlds):
            covered = self._covered[world]
            if covered[node]:
                continue
            cascade = self._index.cascade(node, world)
            fresh = cascade[~covered[cascade]]
            covered[fresh] = True
            gained += int(fresh.size)
        self._covered_total += gained
        self._seeds.append(node)
        return gained / self._index.num_worlds

    def spread_of(self, seeds: Sequence[int]) -> float:
        """sigma(S) for an arbitrary seed set, without touching state."""
        if len(seeds) == 0:
            return 0.0
        total = 0
        for world in range(self._index.num_worlds):
            total += int(self._index.seed_set_cascade(list(seeds), world).size)
        return total / self._index.num_worlds


def evaluate_spread_curve(
    graph: ProbabilisticDigraph,
    seed_sequence: Sequence[int],
    num_worlds: int = 256,
    seed: SeedLike = None,
    index: CascadeIndex | None = None,
) -> np.ndarray:
    """sigma(S_j) for every prefix S_j of ``seed_sequence``.

    Evaluation uses fresh worlds (or a caller-supplied shared ``index``) so
    that both influence-maximisation methods are scored on identical ground —
    the protocol behind Figure 6.  Returns a float array of length
    ``len(seed_sequence)``.
    """
    if index is None:
        check_positive_int(num_worlds, "num_worlds")
        index = CascadeIndex.build(graph, num_worlds, seed=seed, reduce=False)
    oracle = SpreadOracle(index)
    curve = np.zeros(len(seed_sequence), dtype=np.float64)
    for j, node in enumerate(seed_sequence):
        oracle.add_seed(int(node))
        curve[j] = oracle.current_spread()
    return curve


def monte_carlo_spread(
    graph: ProbabilisticDigraph,
    seeds: Iterable[int],
    num_samples: int,
    seed: SeedLike = None,
) -> float:
    """Plain MC spread estimate without an index (reference implementation)."""
    from repro.cascades.ic import expected_spread_monte_carlo

    return expected_spread_monte_carlo(graph, list(seeds), num_samples, seed=seed)
