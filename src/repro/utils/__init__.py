"""Shared utilities: seeded RNG streams, timers, table formatting, validation.

These helpers are deliberately small and dependency-free (numpy only) so that
every other subpackage can rely on them without import cycles.
"""

from repro.utils.rng import RngStream, derive_rng, spawn_rngs
from repro.utils.timing import Timer, timed
from repro.utils.tables import format_table
from repro.utils.validation import (
    check_fraction,
    check_positive_int,
    check_probability,
)

__all__ = [
    "RngStream",
    "derive_rng",
    "spawn_rngs",
    "Timer",
    "timed",
    "format_table",
    "check_fraction",
    "check_positive_int",
    "check_probability",
]
