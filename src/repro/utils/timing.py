"""Lightweight wall-clock timing helpers for the experiment harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

T = TypeVar("T")


@dataclass
class Timer:
    """Accumulating stopwatch.

    ``Timer`` supports repeated ``start``/``stop`` cycles and accumulates the
    elapsed time, which is what the per-node timing measurements of Figure 4
    need (time many small units of work under one label).
    """

    label: str = ""
    elapsed: float = 0.0
    _started_at: float | None = field(default=None, repr=False)

    def start(self) -> "Timer":
        """Begin (or resume) timing; returns self for chaining."""
        if self._started_at is not None:
            raise RuntimeError(f"timer {self.label!r} is already running")
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop timing; returns the seconds elapsed in this cycle."""
        if self._started_at is None:
            raise RuntimeError(f"timer {self.label!r} is not running")
        delta = time.perf_counter() - self._started_at
        self.elapsed += delta
        self._started_at = None
        return delta

    def reset(self) -> None:
        """Zero the accumulated time and clear any running cycle."""
        self.elapsed = 0.0
        self._started_at = None

    @property
    def running(self) -> bool:
        return self._started_at is not None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


@contextmanager
def timed(sink: list[float]) -> Iterator[None]:
    """Context manager appending the elapsed seconds to ``sink``."""
    start = time.perf_counter()
    try:
        yield
    finally:
        sink.append(time.perf_counter() - start)


def time_call(fn: Callable[[], T]) -> tuple[T, float]:
    """Run ``fn`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start
