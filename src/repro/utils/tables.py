"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows the paper's tables report; a tiny
fixed-width formatter keeps that output readable without pulling in heavier
dependencies.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _render_cell(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    rendered_rows = [[_render_cell(v, precision) for v in row] for row in rows]
    for i, row in enumerate(rendered_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for col, cell in enumerate(row):
            widths[col] = max(widths[col], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), sum(widths) + 2 * (len(widths) - 1)))
    lines.append(fmt_line(list(headers)))
    lines.append(fmt_line(["-" * w for w in widths]))
    lines.extend(fmt_line(row) for row in rendered_rows)
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[object]],
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render aligned columns for figure-style (x, multiple y) data."""
    headers = [x_label, *series.keys()]
    columns = [list(x_values), *[list(v) for v in series.values()]]
    lengths = {len(col) for col in columns}
    if len(lengths) != 1:
        raise ValueError(f"series have mismatched lengths: {sorted(lengths)}")
    rows = list(zip(*columns))
    return format_table(headers, rows, precision=precision, title=title)
