"""Deterministic random-number streams.

All stochastic components of the library (world sampling, cascade simulation,
synthetic data generation, Monte Carlo estimators) accept either an integer
seed or a ``numpy.random.Generator``.  Centralising the coercion here keeps
experiments reproducible: the same seed always yields the same possible
worlds, the same logs and the same seed sets.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, np.random.SeedSequence, None]


def derive_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a ``numpy.random.Generator``.

    ``None`` yields a fresh, OS-entropy-seeded generator; an ``int`` or a
    ``SeedSequence`` yields a deterministic generator; an existing generator
    is returned unchanged (shared state, *not* copied).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent generators from one seed.

    Used when an experiment fans work out over datasets or Monte Carlo
    repetitions and wants each branch to be reproducible in isolation.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's bit stream.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


class RngStream:
    """A named, forkable stream of random generators.

    A stream remembers its root seed and hands out child generators on
    demand.  Each ``fork(name)`` is deterministic in ``(root seed, name)``,
    so components can be re-run independently of the order in which other
    components consumed randomness.
    """

    def __init__(self, seed: SeedLike = None) -> None:
        if isinstance(seed, np.random.Generator):
            # Freeze a root for forking purposes.
            seed = int(seed.integers(0, 2**63 - 1))
        self._root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)

    def fork(self, name: str) -> np.random.Generator:
        """Deterministic child generator keyed by ``name``."""
        key = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
        child = np.random.SeedSequence(
            entropy=self._root.entropy,
            spawn_key=tuple(int(b) for b in key),
        )
        return np.random.default_rng(child)

    def generators(self, name: str, count: int) -> Iterator[np.random.Generator]:
        """Yield ``count`` independent generators under ``name``."""
        base = self.fork(name)
        for rng in spawn_rngs(base, count):
            yield rng


def permutation_from_seed(n: int, seed: SeedLike = None) -> np.ndarray:
    """Deterministic permutation of ``range(n)`` — used for node relabeling."""
    return derive_rng(seed).permutation(n)


def sample_without_replacement(
    population: Sequence[int], size: int, seed: SeedLike = None
) -> list[int]:
    """Uniform sample of ``size`` distinct items from ``population``."""
    if size > len(population):
        raise ValueError(
            f"cannot sample {size} items from population of {len(population)}"
        )
    rng = derive_rng(seed)
    idx = rng.choice(len(population), size=size, replace=False)
    return [population[int(i)] for i in idx]
