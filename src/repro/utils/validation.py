"""Argument validation helpers shared across the library.

Public entry points validate inputs eagerly and raise ``ValueError`` /
``TypeError`` with messages naming the offending argument, so that user
errors surface at the call site instead of deep inside a Monte Carlo loop.
"""

from __future__ import annotations

import math
from typing import Any


def check_positive_int(value: Any, name: str) -> int:
    """Return ``value`` as an int, requiring it to be a positive integer."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_non_negative_int(value: Any, name: str) -> int:
    """Return ``value`` as an int, requiring it to be >= 0."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_probability(value: Any, name: str, allow_zero: bool = False) -> float:
    """Validate an edge/contagion probability.

    The paper's model has ``p : E -> (0, 1]``; ``allow_zero`` relaxes the
    lower bound for estimator outputs which may legitimately be 0.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    p = float(value)
    if math.isnan(p):
        raise ValueError(f"{name} must not be NaN")
    lower_ok = p >= 0.0 if allow_zero else p > 0.0
    if not lower_ok or p > 1.0:
        interval = "[0, 1]" if allow_zero else "(0, 1]"
        raise ValueError(f"{name} must be in {interval}, got {p}")
    return p


def check_fraction(value: Any, name: str) -> float:
    """Validate a value in the closed interval [0, 1]."""
    return check_probability(value, name, allow_zero=True)


def check_node(node: Any, n: int, name: str = "node") -> int:
    """Validate a node id against a graph of ``n`` nodes."""
    if isinstance(node, bool) or not isinstance(node, (int,)):
        # Accept numpy integer scalars too.
        try:
            node = int(node)
        except (TypeError, ValueError) as exc:
            raise TypeError(f"{name} must be an int, got {type(node).__name__}") from exc
    node = int(node)
    if not 0 <= node < n:
        raise ValueError(f"{name} {node} out of range for graph with {n} nodes")
    return node
