"""Cost estimators for candidate typical cascades.

Three estimators of the expected cost ``rho_{G,s}(C) = E[d_J(R_s(G), C)]``:

* :func:`empirical_cost` — the sample mean over an explicit list of
  cascades (the unbiased estimator ``rho_bar`` of Section 2.3);
* :func:`exact_expected_cost` — exact by world enumeration; exponential in
  |E| (tiny graphs only), it is the ground truth the Monte Carlo estimators
  are validated against, reflecting the #P-hardness of Theorem 1;
* :func:`monte_carlo_expected_cost` — fresh i.i.d. worlds, independent of
  whatever samples produced the candidate (this is what the paper uses to
  *score* a typical cascade, avoiding the optimism of in-sample evaluation).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.cascades.reliability import exact_cascade_distribution
from repro.graph.digraph import ProbabilisticDigraph
from repro.graph.reachability import reachable_array
from repro.graph.sampling import sample_world
from repro.median.jaccard import jaccard_distance
from repro.median.samples import SampleCollection
from repro.utils.rng import SeedLike, derive_rng
from repro.utils.validation import check_positive_int


def empirical_cost(
    candidate: np.ndarray | Iterable[int],
    samples: SampleCollection | Sequence[np.ndarray],
    universe_size: int | None = None,
) -> float:
    """rho_bar(C): mean Jaccard distance from ``candidate`` to the samples."""
    candidate_arr = np.unique(np.fromiter((int(x) for x in candidate), dtype=np.int64))
    if not isinstance(samples, SampleCollection):
        arrays = [np.asarray(s, dtype=np.int64) for s in samples]
        if universe_size is None:
            universe_size = 1 + max(
                max((int(a.max()) for a in arrays if a.size), default=-1),
                int(candidate_arr.max()) if candidate_arr.size else -1,
            )
        samples = SampleCollection(universe_size, arrays)
    return samples.mean_distance(candidate_arr)


def exact_expected_cost(
    graph: ProbabilisticDigraph,
    sources: Iterable[int] | int,
    candidate: Iterable[int],
    max_edges: int = 20,
) -> float:
    """Exact rho_{G,s}(C) by summing over every possible world (Theorem 1's
    #P-hard quantity, computable only on tiny graphs)."""
    candidate_set = frozenset(int(x) for x in candidate)
    dist = exact_cascade_distribution(graph, sources, max_edges=max_edges)
    total = 0.0
    for cascade, prob in dist.items():
        total += prob * jaccard_distance(cascade, candidate_set)
    return total


def monte_carlo_expected_cost(
    graph: ProbabilisticDigraph,
    sources: Iterable[int] | int,
    candidate: Iterable[int],
    num_samples: int,
    seed: SeedLike = None,
) -> float:
    """MC estimate of rho_{G,s}(C) from fresh worlds (out-of-sample)."""
    check_positive_int(num_samples, "num_samples")
    if isinstance(sources, (int, np.integer)):
        sources = [int(sources)]
    sources = list(sources)
    rng = derive_rng(seed)
    candidate_arr = np.unique(np.fromiter((int(x) for x in candidate), dtype=np.int64))
    mask = np.zeros(graph.num_nodes, dtype=bool)
    mask[candidate_arr] = True
    c_size = int(candidate_arr.size)

    total = 0.0
    for _ in range(num_samples):
        world = sample_world(graph, rng)
        cascade = reachable_array(graph, sources, world)
        inter = int(mask[cascade].sum())
        union = c_size + cascade.size - inter
        total += 0.0 if union == 0 else 1.0 - inter / union
    return total / num_samples
