"""Jaccard distance, empirical/exact cost estimators, and the Jaccard-median
approximation algorithms (Chierichetti et al., SODA 2010) used to turn
sampled cascades into a typical cascade.
"""

from repro.median.jaccard import jaccard_distance, jaccard_similarity
from repro.median.samples import SampleCollection
from repro.median.cost import (
    empirical_cost,
    exact_expected_cost,
    monte_carlo_expected_cost,
)
from repro.median.chierichetti import jaccard_median, MedianResult
from repro.median.local_search import local_search_refine
from repro.median.exact import exact_jaccard_median, approximation_ratio
from repro.median.minhash import MinHasher

__all__ = [
    "jaccard_distance",
    "jaccard_similarity",
    "SampleCollection",
    "empirical_cost",
    "exact_expected_cost",
    "monte_carlo_expected_cost",
    "jaccard_median",
    "MedianResult",
    "local_search_refine",
    "exact_jaccard_median",
    "approximation_ratio",
    "MinHasher",
]
