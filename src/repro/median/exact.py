"""Exact Jaccard median by exhaustive search (ground-truth oracle).

Problem 2 is NP-hard (Chierichetti et al.), but tiny instances can be
solved exactly: the optimal median is always a subset of the union of the
input sets, so searching the union's power set suffices.  A simple
branch-and-bound over candidate sizes prunes most of the lattice in
practice; instances are guarded by ``max_union`` regardless.

Used by the test-suite and the median ablation as the reference the
approximation algorithms are measured against.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.median.chierichetti import MedianResult, jaccard_median
from repro.median.samples import SampleCollection

#: Hard guard: 2^18 candidate subsets is the most we ever enumerate.
DEFAULT_MAX_UNION = 18


def exact_jaccard_median(
    samples: SampleCollection, max_union: int = DEFAULT_MAX_UNION
) -> MedianResult:
    """Optimal Jaccard median of ``samples`` by exhaustive search.

    Raises ``ValueError`` when the union exceeds ``max_union`` elements
    (the search is exponential in the union size).
    """
    union = samples.union()
    if union.size > max_union:
        raise ValueError(
            f"union has {union.size} elements; exact search is limited to "
            f"{max_union} (the problem is NP-hard)"
        )
    if union.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return MedianResult(empty, 0.0, "exact", 1)

    # Seed the bound with the approximation algorithm's answer: every
    # candidate whose cost cannot beat it is pruned wholesale.
    incumbent = jaccard_median(samples)
    best_cost = incumbent.cost
    best = incumbent.median
    evaluated = incumbent.candidates_evaluated

    elements = [int(x) for x in union]
    for size in range(len(elements) + 1):
        # Lower bound for any candidate of this size: the cost against each
        # sample is at least |size - |S_i|| / max(size, |S_i|) (achieved
        # when one set contains the other).
        sizes = samples.sizes.astype(np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            lb_per_sample = np.where(
                np.maximum(size, sizes) > 0,
                np.abs(size - sizes) / np.maximum(size, np.maximum(sizes, 1)),
                0.0,
            )
        if float(lb_per_sample.mean()) > best_cost + 1e-12:
            continue
        for comb in combinations(elements, size):
            candidate = np.asarray(comb, dtype=np.int64)
            cost = samples.mean_distance(candidate)
            evaluated += 1
            if cost < best_cost - 1e-15:
                best_cost = cost
                best = candidate
    return MedianResult(np.asarray(best, dtype=np.int64), float(best_cost), "exact", evaluated)


def approximation_ratio(
    samples: SampleCollection, max_union: int = DEFAULT_MAX_UNION
) -> float:
    """cost(approx) / cost(optimal) for one instance (1.0 when optimal is 0
    and the approximation also achieves 0)."""
    approx = jaccard_median(samples)
    optimal = exact_jaccard_median(samples, max_union=max_union)
    if optimal.cost <= 1e-15:
        return 1.0 if approx.cost <= 1e-12 else float("inf")
    return approx.cost / optimal.cost
