"""Approximate Jaccard median (Problem 2 of the paper).

The paper computes typical cascades with the practical algorithm of
Chierichetti et al. ("Finding the Jaccard Median", SODA 2010), Section 3.2,
which achieves a ``1 + O(eps)`` approximation (``eps`` = optimal cost) in
near-linear time.  The algorithm combines three candidate families and keeps
the candidate with the lowest *empirical* cost:

1. **Size sweep** — for each candidate size ``m`` (a geometric grid plus all
   distinct sample sizes), score each universe element
   ``score_m(x) = sum_{i : x in S_i} 1 / (m + |S_i|)`` and take the top-m
   elements.  The score is the separable surrogate obtained by replacing the
   intersection-dependent denominator ``|C u S_i|`` with ``m + |S_i|``; for
   low-cost instances the surrogate is within a constant of the truth, which
   is the engine of the 1+O(eps) guarantee.
2. **Frequency thresholds** — every superlevel set ``{x : f(x) >= t}``.
   These include the majority set (t = l/2) that Section 5's observation 4
   builds on.
3. **Best input sample** — the classical 2-approximation for medians in a
   metric space.

All candidate evaluations are vectorised through
:class:`~repro.median.samples.SampleCollection`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.median.samples import SampleCollection


@dataclass(frozen=True)
class MedianResult:
    """Outcome of a Jaccard-median computation.

    Attributes:
        median: sorted element array of the selected median.
        cost: empirical cost rho_bar(median) over the input samples.
        strategy: which candidate family produced the winner
            ("size-sweep", "threshold", "sample", "empty").
        candidates_evaluated: number of candidate sets scored.
    """

    median: np.ndarray
    cost: float
    strategy: str
    candidates_evaluated: int

    @property
    def size(self) -> int:
        return int(self.median.size)

    def as_set(self) -> frozenset[int]:
        """The median as a frozenset of node ids."""
        return frozenset(int(x) for x in self.median)


def _size_grid(max_size: int, ratio: float) -> list[int]:
    """Geometric grid 1, ..., max_size with the given ratio (dense for small m)."""
    if max_size <= 0:
        return []
    grid: list[int] = []
    m = 1.0
    while m < max_size:
        grid.append(int(round(m)))
        m = max(m * ratio, m + 1.0)
    grid.append(max_size)
    return sorted(set(grid))


def jaccard_median(
    samples: SampleCollection,
    size_grid_ratio: float = 1.15,
    include_samples: bool = True,
    include_thresholds: bool = True,
) -> MedianResult:
    """Approximate Jaccard median of ``samples`` (see module docstring).

    ``size_grid_ratio`` controls the density of the size sweep; 1.15 gives
    ~50 candidate sizes for a 1000-element union, matching the paper's
    near-linear running-time budget.
    """
    if size_grid_ratio <= 1.0:
        raise ValueError(f"size_grid_ratio must exceed 1, got {size_grid_ratio}")
    union = samples.union()
    if union.size == 0:
        # Every sample is empty; the empty set is the exact median.
        empty = np.zeros(0, dtype=np.int64)
        return MedianResult(empty, 0.0, "empty", 1)

    sizes = samples.sizes
    union_idx = samples.union_indices()

    best_cost = np.inf
    best_median = np.zeros(0, dtype=np.int64)
    best_strategy = "empty"
    evaluated = 0

    def consider(candidate: np.ndarray, strategy: str) -> None:
        nonlocal best_cost, best_median, best_strategy, evaluated
        evaluated += 1
        cost = samples.mean_distance(candidate)
        # Tie-break toward smaller medians: a strictly smaller set with the
        # same cost is a more conservative sphere of influence.
        if cost < best_cost - 1e-12 or (
            abs(cost - best_cost) <= 1e-12 and candidate.size < best_median.size
        ):
            best_cost = cost
            best_median = candidate
            best_strategy = strategy

    # --- family 1: size sweep ------------------------------------------------
    candidate_sizes = set(_size_grid(int(union.size), size_grid_ratio))
    candidate_sizes.update(int(s) for s in np.unique(sizes) if 0 < s <= union.size)
    for m in sorted(candidate_sizes):
        weights = 1.0 / (m + sizes.astype(np.float64))
        per_element = np.repeat(weights, sizes)
        scores = np.bincount(union_idx, weights=per_element, minlength=union.size)
        if m >= union.size:
            top = np.arange(union.size)
        else:
            top = np.argpartition(scores, union.size - m)[union.size - m :]
        consider(np.sort(union[top]), "size-sweep")

    # --- family 2: frequency thresholds ---------------------------------------
    if include_thresholds:
        freq = samples.frequencies()
        for t in np.unique(freq):
            candidate = union[freq >= t]
            consider(candidate, "threshold")

    # --- family 3: the input samples themselves --------------------------------
    if include_samples:
        # Dedup on full content: keying on (size, first element) can collide
        # two *different* cascades and silently drop the best input sample,
        # breaking the "never worse than best_of_samples" guarantee of the
        # classical 2-approximation family.
        seen: set[bytes] = set()
        for i in range(samples.num_samples):
            s = samples.sample(i)
            key = s.tobytes()
            if key in seen:
                continue
            seen.add(key)
            consider(s.copy(), "sample")

    return MedianResult(best_median, best_cost, best_strategy, evaluated)


def best_of_samples(samples: SampleCollection) -> MedianResult:
    """The classical 2-approximation: the input sample with the least cost.

    Exposed separately for the median-algorithm ablation benchmark.
    """
    best_cost = np.inf
    best = np.zeros(0, dtype=np.int64)
    for i in range(samples.num_samples):
        s = samples.sample(i)
        cost = samples.mean_distance(s)
        if cost < best_cost:
            best_cost = cost
            best = s.copy()
    return MedianResult(best, float(best_cost), "sample", samples.num_samples)


def majority_median(samples: SampleCollection) -> MedianResult:
    """Elements present in at least half the samples.

    Section 5 (observation 4) of the paper: if the optimal cost is eps, the
    1/2-frequency superlevel set has cost at most eps + O(eps^{3/2}).
    """
    union = samples.union()
    freq = samples.frequencies()
    threshold = samples.num_samples / 2.0
    candidate = union[freq >= threshold]
    return MedianResult(
        candidate, samples.mean_distance(candidate), "threshold", 1
    )
