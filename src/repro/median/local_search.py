"""Single-element-swap local search for Jaccard medians.

An optional polish pass: starting from any candidate median, repeatedly
toggle the single element whose addition/removal most reduces the empirical
cost, until a local optimum (or ``max_passes``) is reached.  Each toggle is
evaluated with one vectorised pass over the packed samples, so a full sweep
costs ``O(|U| * total_sample_mass)`` — affordable as a refinement step on
per-node instances, and used by the median-algorithm ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.median.chierichetti import MedianResult
from repro.median.samples import SampleCollection


def _cost_with_mask(
    samples: SampleCollection, mask: np.ndarray, candidate_size: int
) -> float:
    inter = samples.intersection_sizes(mask)
    union = candidate_size + samples.sizes - inter
    dist = np.ones(samples.num_samples, dtype=np.float64)
    nonzero = union > 0
    dist[nonzero] = 1.0 - inter[nonzero] / union[nonzero]
    dist[~nonzero] = 0.0
    return float(dist.mean())


def local_search_refine(
    samples: SampleCollection,
    start: np.ndarray,
    max_passes: int = 3,
    tolerance: float = 1e-12,
) -> MedianResult:
    """Greedy toggle local search from ``start``.

    Considers every element of the samples' union plus every element of the
    starting candidate.  Returns the refined median and its empirical cost.
    """
    if max_passes < 0:
        raise ValueError(f"max_passes must be >= 0, got {max_passes}")
    universe = samples.universe_size
    start = np.unique(np.asarray(start, dtype=np.int64))
    mask = np.zeros(universe, dtype=bool)
    if start.size:
        mask[start] = True
    size = int(start.size)
    current_cost = _cost_with_mask(samples, mask, size)

    pool = np.union1d(samples.union(), start)
    evaluated = 1
    for _ in range(max_passes):
        best_gain = 0.0
        best_elem = -1
        for x in pool:
            x = int(x)
            mask[x] = not mask[x]
            trial_size = size + (1 if mask[x] else -1)
            cost = _cost_with_mask(samples, mask, trial_size)
            evaluated += 1
            mask[x] = not mask[x]
            gain = current_cost - cost
            if gain > best_gain + tolerance:
                best_gain = gain
                best_elem = x
        if best_elem < 0:
            break
        mask[best_elem] = not mask[best_elem]
        size += 1 if mask[best_elem] else -1
        current_cost -= best_gain

    median = np.flatnonzero(mask).astype(np.int64)
    # Recompute the final cost directly to avoid drift from accumulated gains.
    final_cost = _cost_with_mask(samples, mask, int(median.size))
    return MedianResult(median, final_cost, "local-search", evaluated)
