"""Jaccard similarity and distance on node sets.

``d_J(A, B) = 1 - |A n B| / |A u B|`` is a metric (the paper relies on the
triangle inequality in Lemma 1); by the usual convention
``d_J(empty, empty) = 0``.

Sets may be given as any iterable of ints, as Python ``set``/``frozenset``,
or as *sorted* numpy arrays (the representation cascades use); the array
path is vectorised.
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

SetLike = Union[Iterable[int], np.ndarray]


def _as_sorted_array(s: SetLike) -> np.ndarray:
    if isinstance(s, np.ndarray):
        return s if s.dtype.kind in "iu" else s.astype(np.int64)
    return np.fromiter(sorted(set(int(x) for x in s)), dtype=np.int64)


def intersection_size(a: SetLike, b: SetLike) -> int:
    """|A n B| for sorted-array or iterable inputs."""
    arr_a, arr_b = _as_sorted_array(a), _as_sorted_array(b)
    if arr_a.size == 0 or arr_b.size == 0:
        return 0
    return int(np.intersect1d(arr_a, arr_b, assume_unique=True).size)


def union_size(a: SetLike, b: SetLike) -> int:
    """|A u B|."""
    arr_a, arr_b = _as_sorted_array(a), _as_sorted_array(b)
    return int(arr_a.size + arr_b.size) - intersection_size(arr_a, arr_b)


def jaccard_similarity(a: SetLike, b: SetLike) -> float:
    """|A n B| / |A u B|, with J(empty, empty) = 1."""
    arr_a, arr_b = _as_sorted_array(a), _as_sorted_array(b)
    inter = intersection_size(arr_a, arr_b)
    union = int(arr_a.size + arr_b.size) - inter
    if union == 0:
        return 1.0
    return inter / union


def jaccard_distance(a: SetLike, b: SetLike) -> float:
    """The Jaccard metric d_J(A, B) = 1 - J(A, B)."""
    return 1.0 - jaccard_similarity(a, b)


def symmetric_difference_size(a: SetLike, b: SetLike) -> int:
    """|A (+) B| — the numerator of the d_J = |A(+)B| / |AuB| form."""
    arr_a, arr_b = _as_sorted_array(a), _as_sorted_array(b)
    inter = intersection_size(arr_a, arr_b)
    return int(arr_a.size + arr_b.size) - 2 * inter
