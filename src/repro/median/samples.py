"""Packed representation of a collection of sampled sets.

``SampleCollection`` stores ``l`` node sets (the sampled cascades of one
source) in one concatenated array plus an ``indptr`` — the layout that lets
every cost evaluation against *all* samples run as a handful of vectorised
numpy calls (one fancy-index + one ``reduceat`` per candidate).  The median
algorithms and the empirical cost estimator are built on it.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


class SampleCollection:
    """Immutable packed list of sets over the universe ``0..n-1``.

    Each set must be a *sorted, duplicate-free* int array (the cascade
    extraction code guarantees this; :meth:`from_iterables` sorts for you).
    """

    __slots__ = ("_n", "_concat", "_indptr", "_sizes", "_union", "_freq", "_union_idx")

    def __init__(self, universe_size: int, sets: Sequence[np.ndarray]) -> None:
        if universe_size < 0:
            raise ValueError(f"universe_size must be >= 0, got {universe_size}")
        if not sets:
            raise ValueError("need at least one sample set")
        self._n = int(universe_size)
        arrays = []
        for i, s in enumerate(sets):
            arr = np.asarray(s, dtype=np.int64)
            if arr.ndim != 1:
                raise ValueError(f"sample {i} must be one-dimensional")
            if arr.size and (int(arr.min()) < 0 or int(arr.max()) >= self._n):
                raise ValueError(
                    f"sample {i} has elements outside universe 0..{self._n - 1}"
                )
            if arr.size > 1 and np.any(arr[1:] <= arr[:-1]):
                raise ValueError(f"sample {i} must be sorted and duplicate-free")
            arrays.append(arr)
        self._sizes = np.array([a.size for a in arrays], dtype=np.int64)
        self._indptr = np.zeros(len(arrays) + 1, dtype=np.int64)
        np.cumsum(self._sizes, out=self._indptr[1:])
        self._concat = (
            np.concatenate(arrays) if self._indptr[-1] > 0 else np.zeros(0, np.int64)
        )
        self._union: np.ndarray | None = None
        self._freq: np.ndarray | None = None
        self._union_idx: np.ndarray | None = None

    @classmethod
    def from_iterables(
        cls, universe_size: int, sets: Iterable[Iterable[int]]
    ) -> "SampleCollection":
        """Build from arbitrary iterables (sorted/deduplicated here)."""
        arrays = [
            np.unique(np.fromiter((int(x) for x in s), dtype=np.int64))
            for s in sets
        ]
        return cls(universe_size, arrays)

    # -- accessors ----------------------------------------------------------

    @property
    def universe_size(self) -> int:
        return self._n

    @property
    def num_samples(self) -> int:
        return int(self._sizes.shape[0])

    @property
    def sizes(self) -> np.ndarray:
        """|S_i| for every sample (int64 array)."""
        return self._sizes

    def sample(self, i: int) -> np.ndarray:
        """The i-th sample as a sorted array (view into the packed buffer)."""
        if not 0 <= i < self.num_samples:
            raise IndexError(f"sample {i} out of range ({self.num_samples} samples)")
        return self._concat[self._indptr[i] : self._indptr[i + 1]]

    def __len__(self) -> int:
        return self.num_samples

    def __iter__(self):
        for i in range(self.num_samples):
            yield self.sample(i)

    # -- aggregate structure ---------------------------------------------------

    def union(self) -> np.ndarray:
        """Sorted union of all samples (cached)."""
        if self._union is None:
            self._union = np.unique(self._concat)
        return self._union

    def union_indices(self) -> np.ndarray:
        """Index of every packed element within :meth:`union` (cached).

        Lets callers compute per-union-element weighted sums with a single
        ``bincount`` — the workhorse of the median size-sweep.
        """
        if self._union_idx is None:
            union = self.union()
            self._union_idx = (
                np.searchsorted(union, self._concat)
                if union.size
                else np.zeros(0, dtype=np.int64)
            )
        return self._union_idx

    def frequencies(self) -> np.ndarray:
        """For each element of :meth:`union`, in how many samples it appears."""
        if self._freq is None:
            union = self.union()
            if union.size == 0:
                self._freq = np.zeros(0, dtype=np.int64)
            else:
                self._freq = np.bincount(
                    self.union_indices(), minlength=union.size
                ).astype(np.int64)
        return self._freq

    def sample_ids_per_element(self) -> np.ndarray:
        """Sample id of every packed element (aligned with the buffer)."""
        return np.repeat(np.arange(self.num_samples, dtype=np.int64), self._sizes)

    def membership_mask(self, candidate: np.ndarray) -> np.ndarray:
        """Boolean mask over the universe marking candidate membership."""
        mask = np.zeros(self._n, dtype=bool)
        mask[np.asarray(candidate, dtype=np.int64)] = True
        return mask

    # -- vectorised candidate evaluation -----------------------------------------

    def intersection_sizes(self, candidate_mask: np.ndarray) -> np.ndarray:
        """|C n S_i| for every sample, in one reduceat pass."""
        candidate_mask = np.asarray(candidate_mask, dtype=bool)
        if candidate_mask.shape != (self._n,):
            raise ValueError(
                f"candidate_mask must have shape ({self._n},), got {candidate_mask.shape}"
            )
        if self._concat.size == 0:
            return np.zeros(self.num_samples, dtype=np.int64)
        hits = candidate_mask[self._concat].astype(np.int64)
        # Segment sums by differencing the cumulative sum: robust to empty
        # segments, unlike np.add.reduceat.
        csum = np.concatenate(([0], np.cumsum(hits)))
        return csum[self._indptr[1:]] - csum[self._indptr[:-1]]

    def distances(self, candidate: np.ndarray) -> np.ndarray:
        """d_J(C, S_i) for every sample; C given as a sorted element array."""
        candidate = np.asarray(candidate, dtype=np.int64)
        mask = self.membership_mask(candidate)
        inter = self.intersection_sizes(mask)
        union = candidate.size + self._sizes - inter
        dist = np.ones(self.num_samples, dtype=np.float64)
        nonzero = union > 0
        dist[nonzero] = 1.0 - inter[nonzero] / union[nonzero]
        dist[~nonzero] = 0.0  # d(empty, empty) = 0
        return dist

    def mean_distance(self, candidate: np.ndarray) -> float:
        """Empirical cost rho_hat(C): average Jaccard distance to the samples."""
        return float(self.distances(candidate).mean())
