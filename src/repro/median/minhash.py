"""MinHash signatures for approximate Jaccard computation.

The related work (Section 7) points at sketch-based influence computation
(Cohen et al., CIKM 2014).  This module provides the classical MinHash
machinery: fixed-size signatures whose per-coordinate collision probability
equals the Jaccard similarity, enabling O(signature) distance estimates
independent of set sizes.

Used as an optional accelerator for the empirical-cost evaluation on very
large cascades, and benchmarked against exact evaluation in the median
ablation.  Signatures use the standard ``(a * x + b) mod p`` universal hash
family over a Mersenne prime.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, derive_rng
from repro.utils.validation import check_positive_int

_MERSENNE_61 = (1 << 61) - 1


class MinHasher:
    """A family of ``num_hashes`` MinHash functions over int64 universes."""

    def __init__(self, num_hashes: int = 128, seed: SeedLike = None) -> None:
        check_positive_int(num_hashes, "num_hashes")
        rng = derive_rng(seed)
        self._a = rng.integers(1, _MERSENNE_61, size=num_hashes, dtype=np.int64)
        self._b = rng.integers(0, _MERSENNE_61, size=num_hashes, dtype=np.int64)

    @property
    def num_hashes(self) -> int:
        return int(self._a.shape[0])

    def signature(self, elements: np.ndarray) -> np.ndarray:
        """MinHash signature of a set given as an int array.

        The empty set's signature is all ``2^63 - 1`` (never collides with
        a non-empty set's signature coordinate except vanishingly rarely).
        """
        elements = np.asarray(elements, dtype=np.int64)
        if elements.size == 0:
            return np.full(self.num_hashes, np.iinfo(np.int64).max, dtype=np.int64)
        # (a * x + b) mod p, vectorised over (hashes, elements). Use object
        # -free uint64 arithmetic via Python ints is slow; float is lossy;
        # instead compute modular products in uint64 pairs.
        x = elements.astype(np.uint64)
        a = self._a.astype(np.uint64)[:, np.newaxis]
        b = self._b.astype(np.uint64)[:, np.newaxis]
        # 61-bit modulus keeps a*x below 2^125; split multiplication to
        # stay within uint64: x fits in ~32 bits for graph node ids, so
        # a * x fits in 61 + 32 = 93 bits — still too big.  Reduce x mod p
        # first (no-op for node ids) and use Python-int fallback only when
        # values are large.
        if int(x.max()) < (1 << 31):
            # Split a into high/low 31-bit halves so every intermediate
            # product stays below 2^64.
            a_lo = a & np.uint64((1 << 31) - 1)
            a_hi = a >> np.uint64(31)
            # a*x = (a_hi * 2^31 + a_lo) * x
            part_hi = (a_hi * x) % np.uint64(_MERSENNE_61)
            part_hi = (part_hi << np.uint64(31)) % np.uint64(_MERSENNE_61)
            part_lo = (a_lo * x) % np.uint64(_MERSENNE_61)
            hashed = (part_hi + part_lo + b) % np.uint64(_MERSENNE_61)
        else:
            hashed = np.empty((self.num_hashes, elements.size), dtype=np.uint64)
            for i in range(self.num_hashes):
                ai, bi = int(self._a[i]), int(self._b[i])
                hashed[i] = np.array(
                    [(ai * int(v) + bi) % _MERSENNE_61 for v in elements],
                    dtype=np.uint64,
                )
        return hashed.min(axis=1).astype(np.int64)

    def signatures(self, sets: list[np.ndarray]) -> np.ndarray:
        """Stack of signatures, shape ``(len(sets), num_hashes)``."""
        return np.vstack([self.signature(s) for s in sets])


def estimate_jaccard_similarity(sig_a: np.ndarray, sig_b: np.ndarray) -> float:
    """Fraction of colliding signature coordinates — unbiased J estimate."""
    sig_a = np.asarray(sig_a)
    sig_b = np.asarray(sig_b)
    if sig_a.shape != sig_b.shape:
        raise ValueError(
            f"signature shapes differ: {sig_a.shape} vs {sig_b.shape}"
        )
    return float(np.mean(sig_a == sig_b))


def estimate_jaccard_distance(sig_a: np.ndarray, sig_b: np.ndarray) -> float:
    """1 - estimated similarity."""
    return 1.0 - estimate_jaccard_similarity(sig_a, sig_b)


def estimate_mean_distance(
    candidate_sig: np.ndarray, sample_sigs: np.ndarray
) -> float:
    """Sketched empirical cost: mean estimated distance to all samples.

    ``sample_sigs`` has shape ``(num_samples, num_hashes)``; the whole
    evaluation is one vectorised comparison.
    """
    candidate_sig = np.asarray(candidate_sig)
    sample_sigs = np.asarray(sample_sigs)
    if sample_sigs.ndim != 2 or sample_sigs.shape[1] != candidate_sig.shape[0]:
        raise ValueError(
            "sample_sigs must have shape (num_samples, num_hashes) matching "
            "the candidate signature"
        )
    collisions = (sample_sigs == candidate_sig[np.newaxis, :]).mean(axis=1)
    return float((1.0 - collisions).mean())
