"""Parallel, deterministic construction of cascade-index worlds.

Sampling world ``i`` depends only on ``(seed entropy, i)`` — the contract
of :class:`~repro.graph.sampling.WorldSampler` — and condensation plus
transitive reduction are pure functions of the sampled mask.  The build
therefore parallelises embarrassingly: worlds are partitioned into
contiguous chunks, each worker re-derives its own sampler from the shared
entropy, and results are reassembled in world order.  The output is
**bit-identical** to the serial build regardless of worker count or
scheduling (asserted by ``tests/store/test_build_parallel.py`` and the CI
parity gate).

Workers receive the graph's CSR arrays once via the pool initializer, not
per task, so the per-chunk IPC cost is just the returned condensations.

Execution is *supervised* (:mod:`repro.runtime.supervisor`): chunks are
submitted individually and a crashed worker, a hung pool or a transient
chunk error costs only that chunk a retry — never the build.  Chunk purity
makes every recovery action output-preserving, so the bit-identity
guarantee holds under supervision, retries and even injected faults
(site ``"build.chunk"`` of :mod:`repro.runtime.faults`).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.graph.condensation import Condensation, condense
from repro.graph.digraph import ProbabilisticDigraph
from repro.graph.sampling import WorldSampler
from repro.graph.transitive import reduce_condensation
from repro.runtime.faults import maybe_fire
from repro.runtime.supervisor import SupervisorConfig, supervise_chunks
from repro.store.header import EntropyLike
from repro.utils.rng import SeedLike
from repro.utils.validation import check_positive_int

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cascades.index import CascadeIndex

#: Fault-injection site fired once per chunk attempt (worker- or serial-side).
FAULT_SITE_CHUNK = "build.chunk"

#: Chunks per worker: enough slack that an unlucky worker with the densest
#: worlds does not serialise the whole pool behind it.
_CHUNKS_PER_WORKER = 4

#: Per-process state installed by :func:`_init_worker`.
_WORKER_STATE: dict[str, Any] = {}


def _init_worker(
    num_nodes: int,
    indptr: np.ndarray,
    targets: np.ndarray,
    probs: np.ndarray,
    entropy: EntropyLike,
    reduce: bool,
) -> None:
    graph = ProbabilisticDigraph._from_csr_unchecked(num_nodes, indptr, targets, probs)
    _WORKER_STATE["graph"] = graph
    _WORKER_STATE["sampler"] = WorldSampler(
        graph, np.random.SeedSequence(entropy=entropy)
    )
    _WORKER_STATE["reduce"] = reduce


def _condense_one(
    graph: ProbabilisticDigraph,
    sampler: WorldSampler,
    world: int,
    reduce: bool,
) -> Condensation:
    cond = condense(graph, sampler.world_mask(world))
    if reduce:
        cond = reduce_condensation(cond)
    return cond


def _condense_range(bounds: tuple[int, int], attempt: int = 0) -> list[Condensation]:
    """Worker-side chunk body; ``attempt`` lets the fault harness target
    "chunk starting at world s, attempt a" deterministically."""
    maybe_fire(FAULT_SITE_CHUNK, key=bounds[0], attempt=attempt)
    graph = _WORKER_STATE["graph"]
    sampler = _WORKER_STATE["sampler"]
    reduce = _WORKER_STATE["reduce"]
    start, stop = bounds
    return [_condense_one(graph, sampler, i, reduce) for i in range(start, stop)]


def _chunk_bounds(start: int, count: int, chunks: int) -> list[tuple[int, int]]:
    """Split ``[start, start + count)`` into ``chunks`` contiguous ranges."""
    edges = np.linspace(start, start + count, chunks + 1).astype(np.int64)
    return [
        (int(edges[i]), int(edges[i + 1]))
        for i in range(chunks)
        if edges[i + 1] > edges[i]
    ]


def resolve_jobs(n_jobs: int | None) -> int:
    """Normalise an ``n_jobs`` argument: ``None``/``0`` means all cores."""
    if n_jobs is None or n_jobs == 0:
        return os.cpu_count() or 1
    if n_jobs < 0:
        raise ValueError(f"n_jobs must be positive, None or 0, got {n_jobs}")
    return n_jobs


def sampled_condensations(
    graph: ProbabilisticDigraph,
    num_samples: int,
    *,
    entropy: EntropyLike,
    reduce: bool = True,
    n_jobs: int | None = 1,
    start: int = 0,
    supervisor: SupervisorConfig | None = None,
) -> list[Condensation]:
    """Condensations of worlds ``start .. start + num_samples`` of ``entropy``.

    The workhorse behind :meth:`CascadeIndex.build(n_jobs=...)
    <repro.cascades.index.CascadeIndex.build>` and
    :func:`~repro.store.append.append_worlds`.  ``entropy`` is the recorded
    ``SeedSequence.entropy`` of the index's sampler, which fully determines
    every world; the result is identical for every ``n_jobs``.

    Parallel execution runs under :func:`~repro.runtime.supervisor.
    supervise_chunks` (tunable via ``supervisor``): a crashed or OOM-killed
    worker is retried on a fresh pool, and after repeated pool failures the
    remaining chunks complete serially in-process — because each chunk is a
    pure function of ``(entropy, world range)``, the output is bit-identical
    either way.
    """
    check_positive_int(num_samples, "num_samples")
    if start < 0:
        raise ValueError(f"start must be non-negative, got {start}")
    n_jobs = min(resolve_jobs(n_jobs), num_samples)
    if n_jobs == 1:
        sampler = WorldSampler(graph, np.random.SeedSequence(entropy=entropy))
        return [
            _condense_one(graph, sampler, i, reduce)
            for i in range(start, start + num_samples)
        ]
    bounds = _chunk_bounds(start, num_samples, n_jobs * _CHUNKS_PER_WORKER)

    def pool_factory() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=n_jobs,
            initializer=_init_worker,
            initargs=(
                graph.num_nodes,
                np.asarray(graph.indptr),
                np.asarray(graph.targets),
                np.asarray(graph.probs),
                entropy,
                reduce,
            ),
        )

    fallback_sampler = WorldSampler(graph, np.random.SeedSequence(entropy=entropy))

    def serial_fn(chunk_bounds: tuple[int, int], attempt: int) -> list[Condensation]:
        maybe_fire(FAULT_SITE_CHUNK, key=chunk_bounds[0], attempt=attempt)
        lo, hi = chunk_bounds
        return [
            _condense_one(graph, fallback_sampler, i, reduce) for i in range(lo, hi)
        ]

    chunks = supervise_chunks(
        bounds, pool_factory, _condense_range, serial_fn, config=supervisor
    )
    return [cond for chunk in chunks for cond in chunk]


def build_index(
    graph: ProbabilisticDigraph,
    num_samples: int,
    seed: SeedLike = None,
    reduce: bool = True,
    *,
    n_jobs: int | None = 1,
) -> "CascadeIndex":
    """Build a :class:`CascadeIndex`, fanning the per-world work over
    ``n_jobs`` processes.  Convenience alias for
    ``CascadeIndex.build(..., n_jobs=n_jobs)``."""
    from repro.cascades.index import CascadeIndex

    return CascadeIndex.build(graph, num_samples, seed=seed, reduce=reduce, n_jobs=n_jobs)
