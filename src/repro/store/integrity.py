"""Read-time integrity verification for the columnar index store.

The store header records a SHA-256 per column (:class:`ArrayInfo.sha256`),
but until this module those digests were only consulted by an explicit
``verify="full"`` load — a bit flipped *after* open (or skipped by a
``fast`` open) was served as a silently-wrong sphere.  Two complementary
mechanisms close that gap:

:class:`ColumnIntegrity`
    A per-open guard for the lazy read path (``verify="lazy"``).  The
    first touch of each column streams its SHA-256 against the header
    manifest; after that first touch the guard is a lock-free set lookup,
    so the steady-state hot path pays nothing.  A failed column is
    *quarantined*: the first toucher gets :class:`CorruptColumnError`, and
    so does every later toucher — instantly, without re-hashing.  The
    serving layer maps this to an explicit ``500 store-corrupt`` and
    reports the quarantine set in ``/healthz`` and ``/metrics``.

:func:`scrub_store`
    An offline full scrub over every column (plus the self-checksummed
    header), producing a per-file report — the engine behind
    ``python -m repro index verify``.  Unlike
    :func:`repro.store.format.check_files` it does not stop at the first
    problem: an operator deciding whether to restore from backup wants
    the complete damage list.

The legacy ``.npz`` :class:`~repro.core.store.SphereStore` needs neither:
it is decompressed eagerly at load and every member is CRC-protected by
the zip container, so corruption already surfaces as a
:class:`~repro.store.errors.StoreFormatError` at open.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Union

from repro.runtime.locksan import make_lock
from repro.store.errors import CorruptColumnError, StoreFormatError
from repro.store.fingerprint import digest_file
from repro.store.header import IndexStoreHeader

PathLike = Union[str, os.PathLike]

HEADER_NAME = "header.json"


def _array_file(root: Path, name: str) -> Path:
    return root / f"{name}.npy"


class ColumnIntegrity:
    """First-touch checksum guard over one opened store generation.

    ``verify(name)`` is called by the lazy world factories just before a
    column's data is interpreted.  Outcomes:

    * column already verified → return immediately (set lookup, no lock);
    * column already quarantined → raise :class:`CorruptColumnError`
      immediately (set lookup, no hashing);
    * first touch → stream the file's SHA-256 (outside the guard lock, so
      health probes are never stalled behind a hash), then record the
      verdict for every later caller.

    The guard is bound to the *open*, not the path: a hot-swap reload
    builds a fresh guard for the candidate generation, so quarantine
    state never leaks across generations.
    """

    def __init__(
        self,
        root: PathLike,
        header: IndexStoreHeader,
        *,
        on_quarantine: Callable[[str], None] | None = None,
    ) -> None:
        self._root = Path(os.fspath(root))
        self._header = header
        self._on_quarantine = on_quarantine
        self._lock = make_lock("ColumnIntegrity._lock")
        self._verified: set[str] = set()  # guarded-by: _lock
        self._quarantined: dict[str, str] = {}  # guarded-by: _lock

    @property
    def root(self) -> Path:
        return self._root

    def mark_verified(self, names: Iterable[str]) -> None:
        """Record columns already verified by the caller (e.g. an eager
        full-hash pass at open) so first touch skips re-hashing them."""
        with self._lock:
            self._verified.update(names)

    def quarantined(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._quarantined))

    def verified(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._verified))

    def verify(self, *names: str) -> None:
        """Ensure every named column has a valid checksum, hashing on
        first touch; raise :class:`CorruptColumnError` for quarantined or
        newly-failing columns."""
        for name in names:
            # Unlocked fast path: set membership on an insert-only set
            # (a stale miss just falls through to the locked re-check).
            if name in self._verified:  # reprolint: disable=REP701
                continue
            self._verify_one(name)

    def _verify_one(self, name: str) -> None:
        with self._lock:
            if name in self._verified:
                return
            reason = self._quarantined.get(name)
        if reason is None:
            # First touch: stream the SHA-256 *outside* the guard lock —
            # hashing a multi-megabyte column under it would stall every
            # concurrent quarantined()/healthz call for the duration.
            # Concurrent first-touchers may hash the same column twice;
            # the verdict is deterministic, so last-writer-wins is fine.
            verdict = self._check(name)
            fresh = False
            with self._lock:
                if name in self._verified:
                    return
                reason = self._quarantined.get(name)
                if reason is None:
                    if verdict is None:
                        self._verified.add(name)
                        return
                    reason = verdict
                    self._quarantined[name] = reason
                    fresh = True
            if fresh and self._on_quarantine is not None:
                self._on_quarantine(name)
        raise CorruptColumnError(name, reason)

    def _check(self, name: str) -> str | None:
        """Hash one column against the manifest; return the failure reason
        (or None when clean)."""
        info = self._header.arrays.get(name)
        if info is None:
            return f"column {name} is not in the header manifest"
        file = _array_file(self._root, name)
        if not file.is_file():
            return f"{file.name} is missing from the store directory"
        size = int(file.stat().st_size)
        if size != info.num_bytes:
            return (
                f"{file.name} is {size} bytes, header records {info.num_bytes} "
                "— truncated or torn"
            )
        actual = digest_file(file)
        if actual != info.sha256:
            return (
                f"{file.name} fails its SHA-256 check "
                f"(header {info.sha256}, file {actual})"
            )
        return None


# -- offline scrub ------------------------------------------------------------


@dataclass(frozen=True)
class ColumnReport:
    """Verdict for one column of a scrubbed store."""

    name: str
    ok: bool
    num_bytes: int
    expected_sha256: str
    actual_sha256: str | None
    problem: str | None

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "ok": self.ok,
            "num_bytes": self.num_bytes,
            "expected_sha256": self.expected_sha256,
            "actual_sha256": self.actual_sha256,
            "problem": self.problem,
        }


@dataclass(frozen=True)
class ScrubReport:
    """Full-store verification result: header verdict + one entry per column."""

    path: str
    columns: list[ColumnReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.columns)

    @property
    def corrupt(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns if not c.ok)

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "ok": self.ok,
            "corrupt": list(self.corrupt),
            "columns": [c.to_dict() for c in self.columns],
        }


def scrub_store(path: PathLike) -> ScrubReport:
    """Stream-verify every column of the store at ``path``.

    Parses the (self-checksummed) header, then hashes each manifest column
    and compares size + SHA-256, continuing past failures to report the
    complete damage list.  An unreadable or checksum-failing header raises
    (:class:`~repro.store.errors.StoreFormatError` /
    :class:`~repro.store.errors.StoreIntegrityError`) — without a trusted
    manifest there is nothing meaningful to scrub against.
    """
    root = Path(os.fspath(path))
    header_path = root / HEADER_NAME
    if not root.is_dir() or not header_path.is_file():
        raise StoreFormatError(
            f"{root} is not a cascade-index store directory (no {HEADER_NAME})"
        )
    header = IndexStoreHeader.from_json(header_path.read_text())

    report = ScrubReport(path=str(root))
    for name in sorted(header.arrays):
        info = header.arrays[name]
        file = _array_file(root, name)
        actual: str | None = None
        problem: str | None = None
        if not file.is_file():
            problem = "missing"
        else:
            size = int(file.stat().st_size)
            if size != info.num_bytes:
                problem = f"size mismatch: {size} bytes on disk, {info.num_bytes} in header"
            else:
                actual = digest_file(file)
                if actual != info.sha256:
                    problem = "sha256 mismatch"
        report.columns.append(
            ColumnReport(
                name=name,
                ok=problem is None,
                num_bytes=info.num_bytes,
                expected_sha256=info.sha256,
                actual_sha256=actual,
                problem=problem,
            )
        )
    return report
