"""The versioned JSON header of an on-disk cascade-index store.

The header is the store's single source of truth: format version, the
fingerprint of the graph the worlds were sampled from, the sampler's seed
entropy (what makes :func:`~repro.store.append.append_worlds` and the
parallel build deterministic), the reduction flag, and a manifest of every
array file with dtype, shape, byte size and SHA-256.

The header carries its own checksum over the canonical JSON payload, so a
corrupted or hand-edited header is detected before any array is trusted.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Mapping, Sequence, Union

from repro.store.errors import StoreFormatError, StoreIntegrityError
from repro.store.fingerprint import digest_text

MAGIC = "repro-cascade-index"
FORMAT_VERSION = 1

#: Seed entropy as recorded from ``numpy.random.SeedSequence.entropy``.
EntropyLike = Union[int, Sequence[int], None]


@dataclass(frozen=True)
class ArrayInfo:
    """Manifest entry for one ``.npy`` file in the store directory."""

    dtype: str
    shape: tuple[int, ...]
    num_bytes: int
    sha256: str

    @classmethod
    def from_mapping(cls, raw: Mapping[str, Any]) -> "ArrayInfo":
        try:
            return cls(
                dtype=str(raw["dtype"]),
                shape=tuple(int(s) for s in raw["shape"]),
                num_bytes=int(raw["num_bytes"]),
                sha256=str(raw["sha256"]),
            )
        except (KeyError, TypeError) as exc:
            raise StoreFormatError(f"malformed array manifest entry: {raw!r}") from exc


@dataclass(frozen=True)
class IndexStoreHeader:
    """Parsed, validated ``header.json`` of a cascade-index store."""

    num_nodes: int
    num_edges: int
    num_worlds: int
    reduced: bool
    seed_entropy: EntropyLike
    graph_fingerprint: str
    content_digest: str
    arrays: dict[str, ArrayInfo] = field(default_factory=dict)
    format_version: int = FORMAT_VERSION
    library_version: str = ""

    def to_json(self) -> str:
        """Canonical JSON with a trailing self-checksum field."""
        payload = asdict(self)
        payload["magic"] = MAGIC
        body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        payload["header_checksum"] = digest_text(body)
        return json.dumps(payload, sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "IndexStoreHeader":
        """Parse and validate magic, version and the self-checksum."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise StoreFormatError(f"header is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("magic") != MAGIC:
            raise StoreFormatError(
                "not a cascade-index store header (bad or missing magic string)"
            )
        version = payload.get("format_version")
        if version != FORMAT_VERSION:
            raise StoreFormatError(
                f"unsupported store format version {version!r} "
                f"(this library reads version {FORMAT_VERSION})"
            )
        recorded = payload.pop("header_checksum", None)
        if recorded is None:
            raise StoreIntegrityError("header is missing its self-checksum")
        body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        if digest_text(body) != recorded:
            raise StoreIntegrityError(
                "header self-checksum mismatch — the header was corrupted or edited"
            )
        try:
            entropy = payload["seed_entropy"]
            if isinstance(entropy, list):
                entropy = tuple(int(e) for e in entropy)
            arrays = {
                str(name): ArrayInfo.from_mapping(info)
                for name, info in payload["arrays"].items()
            }
            return cls(
                num_nodes=int(payload["num_nodes"]),
                num_edges=int(payload["num_edges"]),
                num_worlds=int(payload["num_worlds"]),
                reduced=bool(payload["reduced"]),
                seed_entropy=entropy,
                graph_fingerprint=str(payload["graph_fingerprint"]),
                content_digest=str(payload["content_digest"]),
                arrays=arrays,
                format_version=int(version),
                library_version=str(payload.get("library_version", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreFormatError(f"header is missing required fields: {exc}") from exc
