"""Content addressing for graphs and cascade indexes.

Two digests anchor the store's provenance chain:

* :func:`graph_fingerprint` — a SHA-256 over the CSR arrays of a
  :class:`~repro.graph.digraph.ProbabilisticDigraph`.  Two graphs with the
  same fingerprint have identical topology and probabilities, so an index
  header carrying the fingerprint proves which graph it was sampled from.
* :func:`index_digest` — a SHA-256 over the *logical* content of a cascade
  index (the ``I[v, i]`` matrix plus every world's condensation DAG).  It
  is computable both from an in-memory :class:`CascadeIndex` and from the
  on-disk arrays, and is bit-for-bit identical for the two — the property
  the parallel-vs-serial build parity check and the sphere-store
  provenance link both rely on.
"""

from __future__ import annotations

import hashlib
import os
from typing import TYPE_CHECKING, Iterable, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.graph.condensation import Condensation
    from repro.graph.digraph import ProbabilisticDigraph

PathLike = Union[str, os.PathLike]

_DIGEST_PREFIX = "sha256:"

#: Streaming chunk for file digests — 4 MiB keeps memory flat on huge files.
_FILE_CHUNK_BYTES = 4 * 1024 * 1024


def _canonical_bytes(array: np.ndarray, dtype: np.dtype | str) -> bytes:
    """C-contiguous little-endian bytes of ``array`` viewed as ``dtype``."""
    canonical = np.ascontiguousarray(array, dtype=np.dtype(dtype).newbyteorder("<"))
    return canonical.tobytes()


def graph_fingerprint(graph: "ProbabilisticDigraph") -> str:
    """Deterministic SHA-256 of a graph's node count and CSR arrays."""
    hasher = hashlib.sha256()
    hasher.update(b"repro-graph-v1")
    hasher.update(int(graph.num_nodes).to_bytes(8, "little"))
    hasher.update(_canonical_bytes(graph.indptr, np.int64))
    hasher.update(_canonical_bytes(graph.targets, np.int32))
    hasher.update(_canonical_bytes(graph.probs, np.float64))
    return _DIGEST_PREFIX + hasher.hexdigest()


def index_digest(
    node_comp: np.ndarray,
    condensations: Iterable["Condensation"],
    *,
    graph_fp: str,
    reduced: bool,
) -> str:
    """Logical SHA-256 of an index: graph identity, matrix, per-world DAGs.

    Member lists and component sizes are derivable from ``node_comp`` and
    are deliberately excluded, so the digest is cheap to recompute and
    stable across storage layouts.
    """
    hasher = hashlib.sha256()
    hasher.update(b"repro-cascade-index-v1")
    hasher.update(graph_fp.encode("ascii"))
    hasher.update(b"reduced" if reduced else b"full")
    hasher.update(_canonical_bytes(node_comp, np.int32))
    count = 0
    for cond in condensations:
        hasher.update(_canonical_bytes(cond.indptr, np.int64))
        hasher.update(_canonical_bytes(cond.targets, np.int64))
        count += 1
    hasher.update(count.to_bytes(8, "little"))
    return _DIGEST_PREFIX + hasher.hexdigest()


def digest_of_index(index) -> str:
    """:func:`index_digest` of a live :class:`CascadeIndex` (duck-typed)."""
    return index_digest(
        index.component_matrix,
        (index.condensation(w) for w in range(index.num_worlds)),
        graph_fp=graph_fingerprint(index.graph),
        reduced=index.reduced,
    )


def digest_file(path: PathLike) -> str:
    """Streaming SHA-256 of a file's bytes."""
    hasher = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(_FILE_CHUNK_BYTES)
            if not chunk:
                break
            hasher.update(chunk)
    return _DIGEST_PREFIX + hasher.hexdigest()


def digest_text(payload: str) -> str:
    """SHA-256 of a UTF-8 string (used for the header's self-checksum)."""
    return _DIGEST_PREFIX + hashlib.sha256(payload.encode("utf-8")).hexdigest()
