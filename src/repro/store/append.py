"""Incremental growth of an on-disk index: ``append_worlds``.

Tightening the approximation guarantee means more sampled worlds (the
paper's ``l = O(alpha^-2 log n)``); because world ``i`` is deterministic in
the recorded seed entropy, worlds ``l .. l + l'`` of an existing store are
exactly the worlds a fresh ``l + l'``-sample build would have produced.
``append_worlds`` therefore extends a store *in place* instead of
rebuilding: new condensations are computed (optionally in parallel), every
affected column file is rewritten via a temp file, and the header is
swapped in last — a crash mid-append leaves a store whose size/checksum
validation fails loudly on the next open rather than one that silently
serves a torn index.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.graph.condensation import Condensation
from repro.graph.digraph import ProbabilisticDigraph
from repro.runtime.faults import maybe_fire
from repro.runtime.supervisor import SupervisorConfig
from repro.store.build import sampled_condensations
from repro.store.errors import StoreError
from repro.store.fingerprint import digest_file, index_digest
from repro.store.format import (
    ARRAY_DTYPES,
    PathLike,
    _array_file,
    check_files,
    read_header,
    write_header,
)
from repro.store.header import ArrayInfo, IndexStoreHeader
from repro.utils.validation import check_positive_int

#: Row-block size for streaming the node_comp rewrite.
_ROW_BLOCK = 65536

#: Fault-injection site fired before each column is staged.
FAULT_SITE_STAGE = "append.stage"


def _info_for(path: Path) -> ArrayInfo:
    array = np.load(path, mmap_mode="r")
    return ArrayInfo(
        dtype=str(array.dtype),
        shape=tuple(int(s) for s in array.shape),
        num_bytes=int(path.stat().st_size),
        sha256=digest_file(path),
    )


def _append_concat(
    root: Path, name: str, pieces: Sequence[np.ndarray]
) -> tuple[Path, ArrayInfo]:
    """Write ``<name>.npy.tmp`` = existing column + ``pieces`` (streamed)."""
    dtype = np.dtype(ARRAY_DTYPES[name])
    src = _array_file(root, name)
    old = np.load(src, mmap_mode="r")
    extra = sum(int(p.shape[0]) for p in pieces)
    tmp = Path(str(src) + ".tmp")
    out = np.lib.format.open_memmap(
        tmp, mode="w+", dtype=dtype, shape=(int(old.shape[0]) + extra,)
    )
    try:
        pos = int(old.shape[0])
        out[:pos] = old
        for piece in pieces:
            piece = np.asarray(piece, dtype=dtype)
            out[pos : pos + piece.shape[0]] = piece
            pos += int(piece.shape[0])
        out.flush()
    finally:
        # Release both mappings on error too, or the cleanup pass cannot
        # unlink the orphaned .tmp on platforms that lock mapped files.
        del out, old
    return tmp, _info_for(tmp)


def _append_offsets(
    root: Path, name: str, new_lengths: Sequence[int]
) -> tuple[Path, ArrayInfo]:
    """Extend an ``l + 1`` offsets column by the cumulative new lengths."""
    src = _array_file(root, name)
    old = np.load(src)
    tail = int(old[-1]) + np.cumsum(np.asarray(new_lengths, dtype=np.int64))
    tmp = Path(str(src) + ".tmp")
    with open(tmp, "wb") as handle:  # np.save(path) would append ".npy"
        np.save(handle, np.concatenate([old, tail]))
    return tmp, _info_for(tmp)


def _append_node_comp(
    root: Path, columns: list[np.ndarray]
) -> tuple[Path, ArrayInfo]:
    """Rewrite ``node_comp`` as ``(n, l + l')`` with the new world columns."""
    src = _array_file(root, "node_comp")
    old = np.load(src, mmap_mode="r")
    n, num_worlds = old.shape
    new = np.column_stack(columns).astype(np.int32)
    tmp = Path(str(src) + ".tmp")
    out = np.lib.format.open_memmap(
        tmp, mode="w+", dtype=np.int32, shape=(n, num_worlds + new.shape[1])
    )
    try:
        for row in range(0, n, _ROW_BLOCK):
            stop = min(row + _ROW_BLOCK, n)
            out[row:stop, :num_worlds] = old[row:stop]
            out[row:stop, num_worlds:] = new[row:stop]
        out.flush()
    finally:
        del out, old
    return tmp, _info_for(tmp)


def append_worlds(
    path: PathLike,
    additional_samples: int,
    *,
    n_jobs: int | None = 1,
    verify: str = "fast",
    supervisor: SupervisorConfig | None = None,
) -> IndexStoreHeader:
    """Grow the store at ``path`` by ``additional_samples`` fresh worlds.

    The resulting store is bit-identical to one built from scratch with
    ``num_worlds + additional_samples`` samples and the same seed.  Returns
    the updated header.  Raises :class:`StoreError` when the store predates
    seed-entropy recording (nothing deterministic to extend from).

    An exception anywhere before the final swap leaves the store
    byte-identical to its pre-append state: every staged ``*.npy.tmp`` file
    is removed on the way out.  ``supervisor`` tunes the fault-tolerant
    parallel sampling of the new worlds (see
    :func:`~repro.store.build.sampled_condensations`).
    """
    check_positive_int(additional_samples, "additional_samples")
    root = Path(os.fspath(path))
    header = read_header(root)
    check_files(root, header, verify=verify)
    if header.seed_entropy is None:
        raise StoreError(
            "store records no seed entropy; it was saved from an index without "
            "a sampler and cannot be extended deterministically — rebuild with "
            "CascadeIndex.build"
        )

    graph = ProbabilisticDigraph._from_csr_unchecked(
        header.num_nodes,
        np.load(_array_file(root, "graph_indptr"), mmap_mode="r"),
        np.load(_array_file(root, "graph_targets"), mmap_mode="r"),
        np.load(_array_file(root, "graph_probs"), mmap_mode="r"),
    )
    new_conds = sampled_condensations(
        graph,
        additional_samples,
        entropy=header.seed_entropy,
        reduce=header.reduced,
        n_jobs=n_jobs,
        start=header.num_worlds,
        supervisor=supervisor,
    )

    stages: list[tuple[str, Callable[[], tuple[Path, ArrayInfo]]]] = [
        ("node_comp", lambda: _append_node_comp(
            root, [c.node_comp for c in new_conds]
        )),
        ("dag_indptr", lambda: _append_concat(
            root, "dag_indptr", [c.indptr for c in new_conds]
        )),
        ("dag_indptr_offsets", lambda: _append_offsets(
            root, "dag_indptr_offsets", [c.indptr.shape[0] for c in new_conds]
        )),
        ("dag_targets", lambda: _append_concat(
            root, "dag_targets", [c.targets for c in new_conds]
        )),
        ("dag_targets_offsets", lambda: _append_offsets(
            root, "dag_targets_offsets", [c.targets.shape[0] for c in new_conds]
        )),
        ("members", lambda: _append_concat(
            root, "members", [np.concatenate(c.members()) for c in new_conds]
        )),
        ("members_offsets", lambda: _append_offsets(
            root, "members_offsets", [graph.num_nodes] * len(new_conds)
        )),
        ("members_indptr", lambda: _append_concat(
            root, "members_indptr", [_cond_members_indptr(c) for c in new_conds]
        )),
        ("members_indptr_offsets", lambda: _append_offsets(
            root,
            "members_indptr_offsets",
            [c.num_components + 1 for c in new_conds],
        )),
    ]

    staged: dict[str, tuple[Path, ArrayInfo]] = {}
    swapped = False
    try:
        for name, stage in stages:
            maybe_fire(FAULT_SITE_STAGE, key=name)
            staged[name] = stage()

        # Point of no return: swap the staged files in, header last.
        for name, (tmp, _info) in staged.items():
            os.replace(tmp, _array_file(root, name))
        swapped = True
    finally:
        if not swapped:
            # A failed staging pass must leave the store byte-identical:
            # remove every temp file, including one a stage was mid-writing.
            for leftover in sorted(root.glob("*.npy.tmp")):
                leftover.unlink()

    arrays = dict(header.arrays)
    for name, (_tmp, info) in staged.items():
        arrays[name] = info
    num_worlds = header.num_worlds + additional_samples
    node_comp = np.load(_array_file(root, "node_comp"), mmap_mode="r")
    dag_indptr = np.load(_array_file(root, "dag_indptr"), mmap_mode="r")
    dag_targets = np.load(_array_file(root, "dag_targets"), mmap_mode="r")
    dio = np.load(_array_file(root, "dag_indptr_offsets"))
    dto = np.load(_array_file(root, "dag_targets_offsets"))
    content_digest = index_digest(
        node_comp,
        (
            _dag_slice(dag_indptr, dag_targets, dio, dto, i)
            for i in range(num_worlds)
        ),
        graph_fp=header.graph_fingerprint,
        reduced=header.reduced,
    )
    new_header = IndexStoreHeader(
        num_nodes=header.num_nodes,
        num_edges=header.num_edges,
        num_worlds=num_worlds,
        reduced=header.reduced,
        seed_entropy=header.seed_entropy,
        graph_fingerprint=header.graph_fingerprint,
        content_digest=content_digest,
        arrays=arrays,
        library_version=header.library_version,
    )
    write_header(root, new_header)
    return new_header


def _cond_members_indptr(cond: Condensation) -> np.ndarray:
    offsets = np.zeros(cond.num_components + 1, dtype=np.int64)
    np.cumsum(cond.comp_sizes, out=offsets[1:])
    return offsets


class _DagView:
    """Duck-typed stand-in for :class:`Condensation` inside the digest loop."""

    __slots__ = ("indptr", "targets")

    def __init__(self, indptr: np.ndarray, targets: np.ndarray) -> None:
        self.indptr = indptr
        self.targets = targets


def _dag_slice(
    dag_indptr: np.ndarray,
    dag_targets: np.ndarray,
    dio: np.ndarray,
    dto: np.ndarray,
    i: int,
) -> _DagView:
    return _DagView(
        dag_indptr[int(dio[i]) : int(dio[i + 1])],
        dag_targets[int(dto[i]) : int(dto[i + 1])],
    )
