"""On-disk columnar format for :class:`~repro.cascades.index.CascadeIndex`.

A store is a *directory* (conventionally ``*.cidx``) holding one
``header.json`` (see :mod:`repro.store.header`) plus one ``.npy`` file per
logical column.  Per-world structures are flattened into CSR-style
concatenations with ``*_offsets`` arrays delimiting each world's slice:

========================  =======  ==========================================
file                      dtype    content
========================  =======  ==========================================
graph_indptr              int64    CSR row pointers of the source graph
graph_targets             int32    CSR arc heads of the source graph
graph_probs               float64  arc probabilities of the source graph
node_comp                 int32    the ``I[v, i]`` matrix, shape ``(n, l)``
dag_indptr                int64    per-world condensation CSR indptrs, concat
dag_indptr_offsets        int64    ``l + 1`` offsets into ``dag_indptr``
dag_targets               int64    per-world condensation CSR arcs, concat
dag_targets_offsets       int64    ``l + 1`` offsets into ``dag_targets``
members                   int64    per-world, per-component sorted node ids
members_offsets           int64    ``l + 1`` offsets into ``members``
members_indptr            int64    per-world component indptrs into the
                                   world's ``members`` slice, concat
members_indptr_offsets    int64    ``l + 1`` offsets into ``members_indptr``
========================  =======  ==========================================

Reading uses ``numpy.load(..., mmap_mode="r")`` exclusively: opening a
multi-gigabyte index costs only the header parse plus twelve ``mmap``
calls, and a cascade query pages in just the components the walk touches.
The per-world :class:`Condensation` objects and member lists are
materialised lazily (:class:`_LazyWorldList`), so load time is independent
of the member-array payload.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Sequence, TypeVar, Union

import numpy as np

from repro.runtime.locksan import make_lock
from repro.store.errors import StoreFormatError, StoreIntegrityError
from repro.store.fingerprint import digest_file, graph_fingerprint, index_digest
from repro.store.header import ArrayInfo, IndexStoreHeader

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cascades.index import CascadeIndex

PathLike = Union[str, os.PathLike]

HEADER_NAME = "header.json"

#: Array files of format version 1, with their required dtypes.
ARRAY_DTYPES: dict[str, str] = {
    "graph_indptr": "int64",
    "graph_targets": "int32",
    "graph_probs": "float64",
    "node_comp": "int32",
    "dag_indptr": "int64",
    "dag_indptr_offsets": "int64",
    "dag_targets": "int64",
    "dag_targets_offsets": "int64",
    "members": "int64",
    "members_offsets": "int64",
    "members_indptr": "int64",
    "members_indptr_offsets": "int64",
}

#: Chunk (in elements) for streaming copies between memmaps.
_COPY_CHUNK = 4 * 1024 * 1024

T = TypeVar("T")


# -- lazy views --------------------------------------------------------------


class _CSRMembers(Sequence[np.ndarray]):
    """One world's member lists as zero-copy slices of the store arrays.

    ``members[c]`` is a read-only view into the memory-mapped ``members``
    column; nothing is read from disk until the view's pages are touched.
    """

    __slots__ = ("_values", "_indptr")

    def __init__(self, values: np.ndarray, indptr: np.ndarray) -> None:
        self._values = values
        self._indptr = indptr

    def __len__(self) -> int:
        return int(self._indptr.shape[0]) - 1

    def __getitem__(self, comp: int) -> np.ndarray:
        if isinstance(comp, slice):
            raise TypeError("component member lists are indexed by component id")
        comp = int(comp)
        if comp < 0:
            comp += len(self)
        if not 0 <= comp < len(self):
            raise IndexError(f"component {comp} out of range (have {len(self)})")
        return self._values[int(self._indptr[comp]) : int(self._indptr[comp + 1])]


class _LazyWorldList(Sequence[T]):
    """Per-world objects materialised on first access, append-friendly.

    Backs both ``CascadeIndex._conds`` and ``CascadeIndex._members`` for
    store-loaded indexes: item ``i`` is created by ``factory(i)`` the first
    time it is requested and cached; :meth:`append` supports in-memory
    :meth:`~repro.cascades.index.CascadeIndex.extend` on loaded indexes.

    Reads are safe from concurrent threads (the serving layer queries one
    loaded index from a thread pool): materialisation is double-checked
    under a lock, so every caller observes the one canonical object per
    world.  ``append`` is *not* thread-safe against readers — ``extend`` on
    a served index is the caller's race to avoid.
    """

    __slots__ = ("_count", "_factory", "_cache", "_extra", "_materialize_lock")

    def __init__(self, count: int, factory: Callable[[int], T]) -> None:
        self._count = int(count)
        self._factory = factory
        self._cache: dict[int, T] = {}  # guarded-by: _materialize_lock
        self._extra: list[T] = []
        self._materialize_lock = make_lock("_LazyWorldList._materialize_lock")

    def __len__(self) -> int:
        return self._count + len(self._extra)

    def __getitem__(self, i: int) -> T:
        if isinstance(i, slice):
            return [self[j] for j in range(*i.indices(len(self)))]
        i = int(i)
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            raise IndexError(f"world {i} out of range (have {len(self)})")
        if i >= self._count:
            return self._extra[i - self._count]
        # Unlocked first read of double-checked locking: a stale miss just
        # falls through to the locked re-check, never observes a torn value.
        hit = self._cache.get(i)  # reprolint: disable=REP701
        if hit is None:
            with self._materialize_lock:
                hit = self._cache.get(i)
                if hit is None:
                    hit = self._factory(i)
                    self._cache[i] = hit
        return hit

    def append(self, item: T) -> None:
        self._extra.append(item)


# -- writing -----------------------------------------------------------------


def _array_file(root: Path, name: str) -> Path:
    return root / f"{name}.npy"


def _write_array(root: Path, name: str, array: np.ndarray) -> ArrayInfo:
    """Save one column and return its manifest entry."""
    expected = ARRAY_DTYPES[name]
    array = np.ascontiguousarray(array, dtype=np.dtype(expected))
    path = _array_file(root, name)
    np.save(path, array)
    return ArrayInfo(
        dtype=expected,
        shape=tuple(int(s) for s in array.shape),
        num_bytes=int(path.stat().st_size),
        sha256=digest_file(path),
    )


def _write_concat(
    root: Path, name: str, pieces: Iterable[np.ndarray], total: int
) -> ArrayInfo:
    """Stream per-world pieces into one on-disk column without concatenating
    them in memory (the pieces of a large index would not fit)."""
    dtype = np.dtype(ARRAY_DTYPES[name])
    path = _array_file(root, name)
    out = np.lib.format.open_memmap(path, mode="w+", dtype=dtype, shape=(total,))
    try:
        pos = 0
        for piece in pieces:
            piece = np.asarray(piece, dtype=dtype)
            out[pos : pos + piece.shape[0]] = piece
            pos += int(piece.shape[0])
        if pos != total:
            raise AssertionError(f"{name}: wrote {pos} elements, expected {total}")
        out.flush()
    finally:
        # Drop the mapping even when a piece raises: a live w+ handle on a
        # half-written file keeps the fd (and on Windows the file) pinned.
        del out
    return ArrayInfo(
        dtype=str(dtype),
        shape=(total,),
        num_bytes=int(path.stat().st_size),
        sha256=digest_file(path),
    )


def _offsets_from_lengths(lengths: Sequence[int]) -> np.ndarray:
    offsets = np.zeros(len(lengths) + 1, dtype=np.int64)
    np.cumsum(np.asarray(lengths, dtype=np.int64), out=offsets[1:])
    return offsets


def write_index(index: "CascadeIndex", path: PathLike, *, overwrite: bool = False) -> IndexStoreHeader:
    """Persist ``index`` as a store directory at ``path``.

    Refuses to clobber an existing path unless ``overwrite`` is set *and*
    the path already looks like a store (never silently replaces foreign
    data).  Returns the written header.
    """
    root = Path(os.fspath(path))
    if root.exists():
        if not overwrite:
            raise FileExistsError(
                f"{root} already exists; pass overwrite=True to replace it"
            )
        if not (root.is_dir() and (root / HEADER_NAME).is_file()):
            raise StoreFormatError(
                f"{root} exists and is not a cascade-index store; refusing to overwrite"
            )
    root.mkdir(parents=True, exist_ok=True)

    graph = index.graph
    num_worlds = index.num_worlds
    conds = [index.condensation(w) for w in range(num_worlds)]

    arrays: dict[str, ArrayInfo] = {}
    arrays["graph_indptr"] = _write_array(root, "graph_indptr", graph.indptr)
    arrays["graph_targets"] = _write_array(root, "graph_targets", graph.targets)
    arrays["graph_probs"] = _write_array(root, "graph_probs", graph.probs)
    arrays["node_comp"] = _write_array(root, "node_comp", index.component_matrix)

    dag_indptr_lens = [int(c.indptr.shape[0]) for c in conds]
    dag_target_lens = [int(c.targets.shape[0]) for c in conds]
    arrays["dag_indptr"] = _write_concat(
        root, "dag_indptr", (c.indptr for c in conds), sum(dag_indptr_lens)
    )
    arrays["dag_indptr_offsets"] = _write_array(
        root, "dag_indptr_offsets", _offsets_from_lengths(dag_indptr_lens)
    )
    arrays["dag_targets"] = _write_concat(
        root, "dag_targets", (c.targets for c in conds), sum(dag_target_lens)
    )
    arrays["dag_targets_offsets"] = _write_array(
        root, "dag_targets_offsets", _offsets_from_lengths(dag_target_lens)
    )

    def world_member_values() -> Iterable[np.ndarray]:
        for w in range(num_worlds):
            world = index.world_members(w)
            yield np.concatenate([np.asarray(m, dtype=np.int64) for m in world])

    def world_member_indptrs() -> Iterable[np.ndarray]:
        for c in conds:
            yield _offsets_from_lengths([int(s) for s in c.comp_sizes])

    member_lens = [graph.num_nodes] * num_worlds
    indptr_lens = [int(c.num_components) + 1 for c in conds]
    arrays["members"] = _write_concat(
        root, "members", world_member_values(), sum(member_lens)
    )
    arrays["members_offsets"] = _write_array(
        root, "members_offsets", _offsets_from_lengths(member_lens)
    )
    arrays["members_indptr"] = _write_concat(
        root, "members_indptr", world_member_indptrs(), sum(indptr_lens)
    )
    arrays["members_indptr_offsets"] = _write_array(
        root, "members_indptr_offsets", _offsets_from_lengths(indptr_lens)
    )

    graph_fp = graph_fingerprint(graph)
    from repro import __version__

    header = IndexStoreHeader(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        num_worlds=num_worlds,
        reduced=index.reduced,
        seed_entropy=index.seed_entropy,
        graph_fingerprint=graph_fp,
        content_digest=index_digest(
            index.component_matrix, conds, graph_fp=graph_fp, reduced=index.reduced
        ),
        arrays=arrays,
        library_version=__version__,
    )
    write_header(root, header)
    return header


def write_header(root: Path, header: IndexStoreHeader) -> None:
    """Atomically (write + rename) replace the store's header."""
    tmp = root / (HEADER_NAME + ".tmp")
    tmp.write_text(header.to_json())
    os.replace(tmp, root / HEADER_NAME)


# -- reading -----------------------------------------------------------------


def read_header(path: PathLike) -> IndexStoreHeader:
    """Parse and validate the header of the store at ``path``."""
    root = Path(os.fspath(path))
    header_path = root / HEADER_NAME
    if not root.is_dir() or not header_path.is_file():
        raise StoreFormatError(
            f"{root} is not a cascade-index store directory (no {HEADER_NAME})"
        )
    return IndexStoreHeader.from_json(header_path.read_text())


def check_files(path: PathLike, header: IndexStoreHeader, *, verify: str = "fast") -> None:
    """Validate the array files against the header manifest.

    ``verify="fast"`` checks presence and exact byte size (catches
    truncation and torn appends in microseconds); ``verify="full"``
    additionally streams the SHA-256 of every file.
    """
    if verify not in ("fast", "full"):
        raise ValueError(f"verify must be 'fast' or 'full', got {verify!r}")
    root = Path(os.fspath(path))
    for name in sorted(header.arrays):
        info = header.arrays[name]
        file = _array_file(root, name)
        if not file.is_file():
            raise StoreIntegrityError(f"store is missing array file {file.name}")
        size = int(file.stat().st_size)
        if size != info.num_bytes:
            raise StoreIntegrityError(
                f"{file.name} is {size} bytes, header records {info.num_bytes} "
                "— the store is truncated or was torn mid-write"
            )
        if verify == "full" and digest_file(file) != info.sha256:
            raise StoreIntegrityError(
                f"{file.name} fails its SHA-256 content check — the store is corrupted"
            )


def _open_arrays(root: Path, header: IndexStoreHeader) -> dict[str, np.ndarray]:
    missing = sorted(set(ARRAY_DTYPES) - set(header.arrays))
    if missing:
        raise StoreFormatError(f"header manifest is missing arrays: {missing}")
    arrays: dict[str, np.ndarray] = {}
    for name in ARRAY_DTYPES:
        info = header.arrays[name]
        mm = np.load(_array_file(root, name), mmap_mode="r")
        if str(mm.dtype) != ARRAY_DTYPES[name] or tuple(mm.shape) != info.shape:
            raise StoreIntegrityError(
                f"{name}.npy has dtype/shape {mm.dtype}/{mm.shape}, header "
                f"records {info.dtype}/{info.shape}"
            )
        arrays[name] = mm
    return arrays


def read_index(path: PathLike, *, verify: str = "fast") -> "CascadeIndex":
    """Open a store as a query-ready, memory-mapped :class:`CascadeIndex`.

    Nothing beyond the header and the ``numpy`` array headers is read
    eagerly; condensations and member lists are materialised per world on
    first touch, as zero-copy views into the mapped files.  The returned
    index supports in-memory :meth:`extend` (the sampler is reconstructed
    from the recorded seed entropy) and exposes the parsed header via
    :attr:`~repro.cascades.index.CascadeIndex.store_header`.

    ``verify`` selects the integrity regime: ``"fast"`` (size checks only),
    ``"full"`` (every column SHA-256-verified before the open returns), or
    ``"lazy"`` — size checks plus a :class:`~repro.store.integrity.
    ColumnIntegrity` guard that hashes the graph/offset columns at open and
    each payload column on its first touch, quarantining failures as
    :class:`~repro.store.errors.CorruptColumnError` (exposed via
    :attr:`~repro.cascades.index.CascadeIndex.store_integrity`).
    """
    from repro.cascades.index import CascadeIndex
    from repro.graph.condensation import Condensation
    from repro.graph.digraph import ProbabilisticDigraph
    from repro.graph.sampling import WorldSampler

    if verify not in ("fast", "full", "lazy"):
        raise ValueError(f"verify must be 'fast', 'full' or 'lazy', got {verify!r}")
    root = Path(os.fspath(path))
    header = read_header(root)
    check_files(root, header, verify="fast" if verify == "lazy" else verify)
    integrity = None
    if verify == "lazy":
        from repro.store.integrity import ColumnIntegrity

        integrity = ColumnIntegrity(root, header)
        # The graph and offset columns back every query and are interpreted
        # immediately below; hash them now so the guard only ever defers the
        # payload columns (the dominant bytes of a large store).
        integrity.verify(
            "graph_indptr",
            "graph_targets",
            "graph_probs",
            "dag_indptr_offsets",
            "dag_targets_offsets",
            "members_offsets",
            "members_indptr_offsets",
        )
    arrays = _open_arrays(root, header)

    n, num_worlds = header.num_nodes, header.num_worlds
    if arrays["node_comp"].shape != (n, num_worlds):
        raise StoreIntegrityError(
            f"node_comp has shape {arrays['node_comp'].shape}, "
            f"header records ({n}, {num_worlds})"
        )
    graph = ProbabilisticDigraph._from_csr_unchecked(
        n, arrays["graph_indptr"], arrays["graph_targets"], arrays["graph_probs"]
    )

    node_comp = arrays["node_comp"]
    dag_indptr, dio = arrays["dag_indptr"], arrays["dag_indptr_offsets"]
    dag_targets, dto = arrays["dag_targets"], arrays["dag_targets_offsets"]
    members, mo = arrays["members"], arrays["members_offsets"]
    members_indptr, mio = arrays["members_indptr"], arrays["members_indptr_offsets"]
    for name, offsets in (
        ("dag_indptr_offsets", dio),
        ("dag_targets_offsets", dto),
        ("members_offsets", mo),
        ("members_indptr_offsets", mio),
    ):
        if offsets.shape != (num_worlds + 1,):
            raise StoreIntegrityError(
                f"{name} has shape {offsets.shape}, expected ({num_worlds + 1},)"
            )

    def make_condensation(i: int) -> Condensation:
        if integrity is not None:
            integrity.verify(
                "node_comp", "dag_indptr", "dag_targets", "members_indptr"
            )
        indptr = dag_indptr[int(dio[i]) : int(dio[i + 1])]
        world_members_indptr = members_indptr[int(mio[i]) : int(mio[i + 1])]
        return Condensation(
            node_comp=node_comp[:, i],
            num_components=int(world_members_indptr.shape[0]) - 1,
            indptr=indptr,
            targets=dag_targets[int(dto[i]) : int(dto[i + 1])],
            comp_sizes=np.diff(world_members_indptr),
        )

    def make_members(i: int) -> _CSRMembers:
        if integrity is not None:
            integrity.verify("members", "members_indptr")
        return _CSRMembers(
            members[int(mo[i]) : int(mo[i + 1])],
            members_indptr[int(mio[i]) : int(mio[i + 1])],
        )

    sampler = None
    if header.seed_entropy is not None:
        sampler = WorldSampler(
            graph, np.random.SeedSequence(entropy=header.seed_entropy)
        )
    index = CascadeIndex(
        graph,
        _LazyWorldList(num_worlds, make_condensation),
        reduced=header.reduced,
        sampler=sampler,
        members=_LazyWorldList(num_worlds, make_members),
        node_comp=node_comp,
    )
    index._store_header = header
    index._store_integrity = integrity
    return index
