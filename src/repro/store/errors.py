"""Exception hierarchy of the persistent index store.

Every failure mode an operator can hit when opening somebody else's index
file maps to a distinct exception, so callers can distinguish "this is not
an index at all" (:class:`StoreFormatError`) from "this was an index but it
is damaged" (:class:`StoreIntegrityError`) from "this index belongs to a
different graph" (:class:`FingerprintMismatchError`).

All of them subclass :class:`ValueError` (via :class:`StoreError`) so a
bare ``except ValueError`` in legacy call sites keeps working.
"""

from __future__ import annotations


class StoreError(ValueError):
    """Base class for every persistent-store failure."""


class StoreFormatError(StoreError):
    """The file/directory is not a valid store of the expected format.

    Raised for missing files, unknown magic strings, unsupported format
    versions, and archives missing required arrays.
    """


class StoreIntegrityError(StoreError):
    """The store is structurally valid but its content fails validation.

    Raised when a checksum or byte-size recorded in the header does not
    match the data on disk — a torn write, truncation or bit rot.
    """


class FingerprintMismatchError(StoreError):
    """The store was built from a different graph than the one supplied."""


class CorruptColumnError(StoreIntegrityError):
    """A specific store column failed its read-time checksum.

    Raised by the lazy integrity guard (:mod:`repro.store.integrity`) on
    the first touch of a damaged column — and instantly on every later
    touch, once the column is quarantined.  ``column`` names the offending
    array so the serving layer can report *which* part of the store is
    unusable while continuing to serve queries that avoid it.
    """

    def __init__(self, column: str, message: str) -> None:
        super().__init__(message)
        self.column = column
