"""Provenance link between derived artefacts and the index they came from.

A :class:`~repro.core.store.SphereStore` (or any future derived artefact)
can carry an :class:`IndexProvenance`: the content digest, graph
fingerprint, seed entropy and world count of the cascade index its spheres
were computed from.  Because :func:`~repro.store.fingerprint.index_digest`
is identical for an in-memory index and its on-disk store, the chain
"sphere store -> index store -> graph" is auditable end to end: given a
saved sphere store you can verify exactly which sampled worlds produced
it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.store.errors import StoreFormatError
from repro.store.fingerprint import digest_of_index, graph_fingerprint
from repro.store.header import EntropyLike, IndexStoreHeader

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cascades.index import CascadeIndex


@dataclass(frozen=True)
class IndexProvenance:
    """Identity of the cascade index a derived artefact was computed from."""

    content_digest: str
    graph_fingerprint: str
    seed_entropy: EntropyLike
    num_worlds: int

    @classmethod
    def from_index(cls, index: "CascadeIndex") -> "IndexProvenance":
        """Provenance of a live index (hashes its logical content)."""
        return cls(
            content_digest=digest_of_index(index),
            graph_fingerprint=graph_fingerprint(index.graph),
            seed_entropy=index.seed_entropy,
            num_worlds=index.num_worlds,
        )

    @classmethod
    def from_header(cls, header: IndexStoreHeader) -> "IndexProvenance":
        """Provenance straight from a store header (no hashing needed)."""
        return cls(
            content_digest=header.content_digest,
            graph_fingerprint=header.graph_fingerprint,
            seed_entropy=header.seed_entropy,
            num_worlds=header.num_worlds,
        )

    def matches(self, other: "IndexProvenance") -> bool:
        """True iff both artefacts trace back to the same index content."""
        return self.content_digest == other.content_digest

    def to_json(self) -> str:
        return json.dumps(
            {
                "content_digest": self.content_digest,
                "graph_fingerprint": self.graph_fingerprint,
                "seed_entropy": self.seed_entropy,
                "num_worlds": self.num_worlds,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "IndexProvenance":
        try:
            payload = json.loads(text)
            entropy = payload["seed_entropy"]
            if isinstance(entropy, list):
                entropy = tuple(int(e) for e in entropy)
            return cls(
                content_digest=str(payload["content_digest"]),
                graph_fingerprint=str(payload["graph_fingerprint"]),
                seed_entropy=entropy,
                num_worlds=int(payload["num_worlds"]),
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise StoreFormatError(f"malformed provenance record: {exc}") from exc
