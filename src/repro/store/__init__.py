"""Persistent, memory-mapped storage for cascade indexes (Section 8).

The paper's spheres-of-influence pipeline is built for *reuse*: sample the
possible worlds once, then serve every campaign from the same index.  This
package is the storage layer that makes the reuse real:

* :func:`write_index` / :func:`read_index` — a versioned columnar on-disk
  format with a checksummed JSON header; reading is zero-copy via
  ``numpy`` memmaps, so a query process opens a multi-GB index in
  milliseconds and pages in only what its cascade walks touch.
* :func:`sampled_condensations` / :func:`build_index` — a deterministic
  parallel build: bit-identical output for any worker count.
* :func:`append_worlds` — grow a saved index in place (more samples =
  tighter approximation) instead of rebuilding.
* :class:`IndexProvenance` — the audit link stamped into derived artefacts
  such as :class:`~repro.core.store.SphereStore`.
* :class:`ColumnIntegrity` / :func:`scrub_store` — read-time first-touch
  checksum quarantine for the serving hot path and the offline
  ``index verify`` scrub (see :mod:`repro.store.integrity`).

The usual entry points are the :class:`~repro.cascades.index.CascadeIndex`
methods (``build(n_jobs=...)``, ``save``, ``load``) and the
``python -m repro index`` CLI; this package is the machinery underneath.
"""

from repro.store.append import append_worlds
from repro.store.build import build_index, sampled_condensations
from repro.store.errors import (
    CorruptColumnError,
    FingerprintMismatchError,
    StoreError,
    StoreFormatError,
    StoreIntegrityError,
)
from repro.store.fingerprint import digest_of_index, graph_fingerprint, index_digest
from repro.store.format import check_files, read_header, read_index, write_index
from repro.store.header import FORMAT_VERSION, MAGIC, ArrayInfo, IndexStoreHeader
from repro.store.integrity import ColumnIntegrity, ScrubReport, scrub_store
from repro.store.provenance import IndexProvenance

__all__ = [
    "append_worlds",
    "build_index",
    "sampled_condensations",
    "CorruptColumnError",
    "FingerprintMismatchError",
    "StoreError",
    "StoreFormatError",
    "StoreIntegrityError",
    "ColumnIntegrity",
    "ScrubReport",
    "scrub_store",
    "digest_of_index",
    "graph_fingerprint",
    "index_digest",
    "check_files",
    "read_header",
    "read_index",
    "write_index",
    "FORMAT_VERSION",
    "MAGIC",
    "ArrayInfo",
    "IndexStoreHeader",
    "IndexProvenance",
]
