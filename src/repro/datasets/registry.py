"""The 12 experiment settings (dataset x probability source).

Naming follows the paper's suffix convention:

* ``-S`` — probabilities learnt with Saito et al.'s EM,
* ``-G`` — probabilities learnt with Goyal et al.'s frequentist model,
* ``-W`` — weighted-cascade assignment ``1/indeg(v)``,
* ``-F`` — fixed 0.1.

``load_setting(name, scale=...)`` builds the base topology, synthesises the
activity log where needed, and returns the graph with its final
probabilities.  Everything is deterministic in ``(name, scale)``.
Settings are cached per (name, scale) within a process since the learnt
settings involve an EM fit.

Names that are not synthetic settings resolve against the *ingested*
datasets of the real-data ETL pipeline (``repro data ingest``; see
:mod:`repro.data`): ``load_setting("epinions-W")`` loads the committed,
checksummed graph from the data root, with its ingest manifest exposed
via ``DatasetSetting.provenance`` / ``.describe()``.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable

from repro.graph.digraph import ProbabilisticDigraph
from repro.problearn.assign import (
    assign_fixed,
    assign_trivalency,
    assign_weighted_cascade,
)
from repro.problearn.goyal import learn_goyal
from repro.problearn.logs import generate_action_log
from repro.problearn.saito import learn_saito
from repro.datasets import synth
from repro.datasets.synth import plant_ground_truth

LEARNT_SETTINGS = (
    "Digg-S",
    "Flixster-S",
    "Twitter-S",
    "Digg-G",
    "Flixster-G",
    "Twitter-G",
)
ASSIGNED_SETTINGS = (
    "NetHEPT-W",
    "Epinions-W",
    "Slashdot-W",
    "NetHEPT-F",
    "Epinions-F",
    "Slashdot-F",
)
SETTING_NAMES = LEARNT_SETTINGS + ASSIGNED_SETTINGS

#: Extension settings beyond the paper's 12: the TRIVALENCY assignment
#: (each arc uniform over {0.1, 0.01, 0.001}), a common benchmark in the
#: influence-maximisation literature.
EXTENSION_SETTINGS = ("NetHEPT-T", "Epinions-T", "Slashdot-T")

#: Base-graph builder, directedness and ground-truth mean per dataset family.
_BASE_BUILDERS: dict[str, tuple[Callable[..., ProbabilisticDigraph], bool, float]] = {
    "Digg": (synth.build_digg_like, True, 0.08),
    "Flixster": (synth.build_flixster_like, False, 0.05),
    "Twitter": (synth.build_twitter_like, False, 0.03),
    "NetHEPT": (synth.build_nethept_like, False, 0.0),
    "Epinions": (synth.build_epinions_like, True, 0.0),
    "Slashdot": (synth.build_slashdot_like, True, 0.0),
}

#: Items per node in the synthetic activity logs (learnt settings).
_LOG_ITEMS_PER_NODE = 0.6


@dataclass(frozen=True)
class DatasetSetting:
    """A fully materialised experiment setting.

    Attributes:
        name: e.g. ``"Digg-S"``.
        family: base dataset name, e.g. ``"Digg"``.
        method: ``"saito"`` / ``"goyal"`` / ``"wc"`` / ``"fixed"``.
        directed: whether the base dataset is directed (Table 1's Type).
        graph: the probabilistic graph carrying final probabilities.
        probability_source: Table 1's Probabilities column value.
        provenance: for ingested real datasets, the validated ingest
            manifest (source digest, parse stats, assignment, tool
            version); ``None`` for synthetic settings.
    """

    name: str
    family: str
    method: str
    directed: bool
    graph: ProbabilisticDigraph
    probability_source: str
    provenance: dict | None = field(default=None, compare=False)

    def describe(self) -> dict:
        """Summary of where this setting's probabilities came from."""
        info = {
            "name": self.name,
            "family": self.family,
            "method": self.method,
            "directed": self.directed,
            "num_nodes": self.graph.num_nodes,
            "num_edges": self.graph.num_edges,
            "probability_source": self.probability_source,
        }
        if self.provenance is None:
            info["origin"] = "synthetic"
        else:
            info["origin"] = "ingested"
            info["source"] = self.provenance["source"]
            info["assignment"] = self.provenance["assignment"]
            info["manifest_digest"] = self.provenance["manifest_digest"]
            info["tool_version"] = self.provenance["tool_version"]
        return info


_SUFFIX_METHOD = {"S": "saito", "G": "goyal", "W": "wc", "F": "fixed", "T": "trivalency"}
_cache: dict[tuple[str, float], DatasetSetting] = {}
_log_cache: dict[tuple[str, float], tuple[ProbabilisticDigraph, object]] = {}


def _base_and_log(family: str, scale: float):
    """Ground-truth graph and synthetic log for a learnt family (cached so
    -S and -G of the same family learn from the same log)."""
    key = (family, scale)
    if key not in _log_cache:
        builder, _, gt_mean = _BASE_BUILDERS[family]
        topology = builder(scale=scale)
        # zlib.crc32 is stable across processes, unlike builtin str hashing.
        family_seed = zlib.crc32(family.encode("utf-8"))
        truth = plant_ground_truth(topology, mean=gt_mean, seed=family_seed)
        num_items = max(20, int(round(topology.num_nodes * _LOG_ITEMS_PER_NODE)))
        log = generate_action_log(
            truth, num_items, seed=family_seed + 7, initial_adopters=2
        )
        _log_cache[key] = (truth, log)
    return _log_cache[key]


def load_base_topology(family: str, scale: float = 1.0) -> ProbabilisticDigraph:
    """The raw social graph of a dataset family (Table 1 reports this size;
    the learnt settings may drop arcs that never received credit)."""
    if family not in _BASE_BUILDERS:
        raise ValueError(
            f"unknown family {family!r}; choose from {sorted(_BASE_BUILDERS)}"
        )
    builder, _, _ = _BASE_BUILDERS[family]
    return builder(scale=scale)


def _load_ingested_setting(name: str, data_root) -> DatasetSetting:
    """Resolve ``name`` as an ingested real dataset (see repro.data)."""
    from repro.data.registry import load_dataset

    graph, manifest = load_dataset(name, root=data_root)
    method = manifest["assignment"]["method"]
    source_text = {
        "wc": "assigned (weighted cascade)",
        "fixed": f"assigned (fixed {manifest['assignment'].get('p', 0.1)})",
        "trivalency": "assigned (trivalency)",
        "file": "carried by the source file",
    }[method]
    setting = DatasetSetting(
        name=name,
        family=manifest["source"]["name"],
        method=method,
        directed=True,  # ingested edge lists are taken as directed arcs
        graph=graph,
        probability_source=source_text + " [ingested]",
        provenance=manifest,
    )
    # Not cached: ingested arrays are memory-mapped, so loading is cheap,
    # and the same name can point at different data roots across calls.
    return setting


def load_setting(
    name: str, scale: float = 1.0, *, data_root=None
) -> DatasetSetting:
    """Materialise one of the 12 settings (see module docstring), one of the
    ``EXTENSION_SETTINGS`` (``-T`` = trivalency), or an ingested real
    dataset by its ``repro data ingest`` name (``scale`` does not apply to
    ingested datasets).  ``data_root`` overrides ``REPRO_DATA_DIR`` when
    resolving ingested names."""
    valid = SETTING_NAMES + EXTENSION_SETTINGS
    if name not in valid:
        from repro.data.registry import has_dataset, list_ingested

        if has_dataset(name, data_root):
            return _load_ingested_setting(name, data_root)
        ingested = list_ingested(data_root)
        raise ValueError(
            f"unknown setting {name!r}; synthetic settings: {list(valid)}; "
            + (
                f"ingested datasets: {ingested}"
                if ingested
                else "no ingested datasets (run 'repro data ingest' to add real ones)"
            )
        )
    key = (name, scale)
    if key in _cache:
        return _cache[key]

    family, suffix = name.rsplit("-", 1)
    method = _SUFFIX_METHOD[suffix]
    builder, directed, _ = _BASE_BUILDERS[family]

    if method in ("saito", "goyal"):
        truth, log = _base_and_log(family, scale)
        if method == "saito":
            graph = learn_saito(truth, log, max_iterations=40).graph
            source = "learnt (Saito EM)"
        else:
            # Goyal et al. credit activations within an influence window;
            # a short window keeps chain activations from inflating the
            # estimates on dense synthetic graphs (Figure 3's ordering
            # Goyal >= Saito still emerges from the co-parent overcounting).
            graph = learn_goyal(truth, log, time_window=2)
            source = "learnt (Goyal frequentist)"
    else:
        topology = builder(scale=scale)
        if method == "wc":
            graph = assign_weighted_cascade(topology)
            source = "assigned (weighted cascade)"
        elif method == "fixed":
            graph = assign_fixed(topology, 0.1)
            source = "assigned (fixed 0.1)"
        else:
            graph = assign_trivalency(
                topology, seed=zlib.crc32(name.encode("utf-8"))
            )
            source = "assigned (trivalency)"

    setting = DatasetSetting(
        name=name,
        family=family,
        method=method,
        directed=directed,
        graph=graph,
        probability_source=source,
    )
    _cache[key] = setting
    return setting


def load_all_settings(scale: float = 1.0) -> list[DatasetSetting]:
    """All 12 settings in the paper's presentation order."""
    order = (
        "Digg-S",
        "Flixster-S",
        "Twitter-S",
        "Digg-G",
        "Flixster-G",
        "Twitter-G",
        "NetHEPT-W",
        "Epinions-W",
        "Slashdot-W",
        "NetHEPT-F",
        "Epinions-F",
        "Slashdot-F",
    )
    return [load_setting(name, scale=scale) for name in order]


def clear_cache() -> None:
    """Drop all cached settings and logs (tests use this for isolation)."""
    _cache.clear()
    _log_cache.clear()
