"""Base topologies for the six benchmark datasets (Table 1 stand-ins).

Each builder mimics the corresponding dataset's *type* (directed vs
reciprocal-undirected), density regime and degree skew at a configurable
scale.  The ``scale`` argument multiplies the node counts; ``scale=1.0`` is
the default experiment size (see DESIGN.md §4), small fractions are used by
the test-suite.

Ground-truth probabilities for the learnt settings are planted here too:
heterogeneous Beta-like draws, so that the two learners face a realistic
estimation problem and the learnt CDFs (Figure 3) have non-trivial shape.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import ProbabilisticDigraph
from repro.graph.generators import (
    copying_model_digraph,
    forest_fire_digraph,
    powerlaw_outdegree_digraph,
)
from repro.utils.rng import SeedLike, derive_rng


def _scaled(base: int, scale: float, minimum: int = 30) -> int:
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return max(minimum, int(round(base * scale)))


def plant_ground_truth(
    graph: ProbabilisticDigraph,
    mean: float = 0.15,
    concentration: float = 2.0,
    seed: SeedLike = None,
) -> ProbabilisticDigraph:
    """Stamp heterogeneous ground-truth probabilities on a topology.

    Per-arc draws from Beta(a, b) with ``a = mean * concentration`` and
    ``b = (1 - mean) * concentration``, clipped away from 0 — a skewed,
    heavy-at-low-values distribution comparable to learnt influence
    strengths in real logs.
    """
    if not 0.0 < mean < 1.0:
        raise ValueError(f"mean must be in (0, 1), got {mean}")
    if concentration <= 0:
        raise ValueError(f"concentration must be positive, got {concentration}")
    rng = derive_rng(seed)
    a = mean * concentration
    b = (1.0 - mean) * concentration
    probs = np.clip(rng.beta(a, b, size=graph.num_edges), 1e-4, 1.0)
    return graph.with_probabilities(probs)


def build_digg_like(scale: float = 1.0, seed: SeedLike = 1) -> ProbabilisticDigraph:
    """Directed 'fan network' stand-in for Digg (copying model)."""
    n = _scaled(2400, scale)
    return copying_model_digraph(n, out_degree=6, copy_prob=0.55, seed=seed)


def build_flixster_like(scale: float = 1.0, seed: SeedLike = 2) -> ProbabilisticDigraph:
    """Reciprocal scale-free friendship graph stand-in for Flixster."""
    n = _scaled(4000, scale)
    return powerlaw_outdegree_digraph(
        n, mean_degree=4.5, exponent=2.2, seed=seed, reciprocal=True
    )


def build_twitter_like(scale: float = 1.0, seed: SeedLike = 3) -> ProbabilisticDigraph:
    """Smaller but denser reciprocal graph stand-in for the Twitter crawl."""
    n = _scaled(1200, scale)
    return powerlaw_outdegree_digraph(
        n, mean_degree=8.0, exponent=2.1, seed=seed, reciprocal=True
    )


def build_nethept_like(scale: float = 1.0, seed: SeedLike = 4) -> ProbabilisticDigraph:
    """Reciprocal collaboration-style stand-in for NetHEPT.

    The density is tuned so that the fixed-0.1 assignment is *mildly*
    supercritical at reduced scale — cascades of a few percent of the
    graph, matching the paper's relative sizes (NetHEPT-F averages ~7% of
    |V| in Table 2) — while WC stays near-critical with tiny cascades (WC
    is near-critical at any density because the per-node incoming
    probabilities sum to 1).  See DESIGN.md §3 on shape-preserving
    substitutions.
    """
    n = _scaled(1500, scale)
    return powerlaw_outdegree_digraph(
        n, mean_degree=4.0, exponent=2.4, seed=seed, reciprocal=True
    )


def build_epinions_like(scale: float = 1.0, seed: SeedLike = 5) -> ProbabilisticDigraph:
    """Directed trust-network stand-in for Epinions (forest fire)."""
    n = _scaled(2500, scale)
    return forest_fire_digraph(
        n, forward_prob=0.3, backward_prob=0.15, seed=seed, max_burn=25
    )


def build_slashdot_like(scale: float = 1.0, seed: SeedLike = 6) -> ProbabilisticDigraph:
    """Directed power-law social graph stand-in for Slashdot.

    Kept heavy-tailed (exponent 2.2, like the crawl): the resulting
    cascade-size variance is what drowns the classic greedy's Monte Carlo
    estimates and produces the Figure 6 crossover regime.
    """
    n = _scaled(2500, scale)
    return powerlaw_outdegree_digraph(
        n, mean_degree=14.0, exponent=2.2, seed=seed, reciprocal=False
    )
