"""Scaled-down synthetic stand-ins for the paper's 12 dataset settings.

Real crawls (Digg, Flixster, Twitter) and SNAP graphs (NetHEPT, Epinions,
Slashdot) are unavailable offline; DESIGN.md §3 documents the substitution.
"""

from repro.datasets.synth import (
    build_digg_like,
    build_flixster_like,
    build_twitter_like,
    build_nethept_like,
    build_epinions_like,
    build_slashdot_like,
)
from repro.datasets.registry import (
    DatasetSetting,
    SETTING_NAMES,
    LEARNT_SETTINGS,
    ASSIGNED_SETTINGS,
    load_setting,
    load_all_settings,
)

__all__ = [
    "build_digg_like",
    "build_flixster_like",
    "build_twitter_like",
    "build_nethept_like",
    "build_epinions_like",
    "build_slashdot_like",
    "DatasetSetting",
    "SETTING_NAMES",
    "LEARNT_SETTINGS",
    "ASSIGNED_SETTINGS",
    "load_setting",
    "load_all_settings",
]
