"""k-nearest neighbours in uncertain graphs (Potamias et al., PVLDB 2010 —
reference [31] of the paper).

In a probabilistic graph the distance between two nodes is a *random
variable*; Potamias et al. rank neighbours by statistics of the sampled
distance distribution.  Implemented here:

* **median distance** — the median of the hop-distance distribution
  (unreachable samples count as +infinity);
* **majority distance** — the most probable distance value;
* **expected reliable distance** — the mean hop distance conditioned on
  reachability, with the reachability probability reported alongside.

All statistics are computed from one shared batch of sampled worlds, so a
k-NN query costs ``num_samples`` hop-bounded BFS traversals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cascades.distance_reliability import hop_distances
from repro.graph.digraph import ProbabilisticDigraph
from repro.graph.sampling import sample_world
from repro.utils.rng import SeedLike, derive_rng
from repro.utils.validation import check_node, check_positive_int

#: Sentinel used for "unreachable" in the distance matrices.
UNREACHABLE = np.iinfo(np.int64).max


@dataclass(frozen=True)
class NeighbourDistance:
    """Distance statistics of one candidate neighbour."""

    node: int
    median_distance: float  # inf when unreachable in >= half the worlds
    majority_distance: float  # most frequent finite distance (inf if none)
    reliability: float  # fraction of worlds where reachable
    mean_reliable_distance: float  # mean over reachable worlds (nan if never)


def sampled_distance_matrix(
    graph: ProbabilisticDigraph,
    source: int,
    num_samples: int,
    seed: SeedLike = None,
) -> np.ndarray:
    """``(num_samples, n)`` hop distances from ``source``; UNREACHABLE
    marks nodes not reached in that world."""
    source = check_node(source, graph.num_nodes, "source")
    check_positive_int(num_samples, "num_samples")
    rng = derive_rng(seed)
    out = np.full((num_samples, graph.num_nodes), UNREACHABLE, dtype=np.int64)
    for i in range(num_samples):
        mask = sample_world(graph, rng)
        dist = hop_distances(graph, source, mask)
        reached = dist >= 0
        out[i, reached] = dist[reached]
    return out


def _statistics_for(node: int, column: np.ndarray) -> NeighbourDistance:
    finite = column[column != UNREACHABLE]
    reliability = finite.size / column.size
    if finite.size:
        majority_values, counts = np.unique(finite, return_counts=True)
        majority = float(majority_values[int(np.argmax(counts))])
        mean_reliable = float(finite.mean())
    else:
        majority = float("inf")
        mean_reliable = float("nan")
    # Median over the full distribution with inf for unreachable samples.
    if reliability >= 0.5:
        as_float = np.where(column == UNREACHABLE, np.inf, column).astype(float)
        median = float(np.median(as_float))
    else:
        median = float("inf")
    return NeighbourDistance(
        node=node,
        median_distance=median,
        majority_distance=majority,
        reliability=reliability,
        mean_reliable_distance=mean_reliable,
    )


def k_nearest_neighbours(
    graph: ProbabilisticDigraph,
    source: int,
    k: int,
    num_samples: int = 256,
    seed: SeedLike = None,
    by: str = "median",
) -> list[NeighbourDistance]:
    """The ``k`` closest nodes to ``source`` under a distance statistic.

    ``by`` is one of ``"median"``, ``"majority"``, ``"reliable-mean"``.
    The source itself is excluded.  Ties break toward higher reliability,
    then lower node id.
    """
    check_positive_int(k, "k")
    if by not in ("median", "majority", "reliable-mean"):
        raise ValueError(
            f"by must be 'median', 'majority' or 'reliable-mean', got {by!r}"
        )
    matrix = sampled_distance_matrix(graph, source, num_samples, seed)
    stats = [
        _statistics_for(v, matrix[:, v])
        for v in range(graph.num_nodes)
        if v != source
    ]

    def sort_key(s: NeighbourDistance):
        if by == "median":
            primary = s.median_distance
        elif by == "majority":
            primary = s.majority_distance
        else:
            primary = (
                s.mean_reliable_distance
                if not np.isnan(s.mean_reliable_distance)
                else float("inf")
            )
        return (primary, -s.reliability, s.node)

    stats.sort(key=sort_key)
    return stats[:k]
