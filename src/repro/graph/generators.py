"""Synthetic graph generators.

These produce the *topologies* used throughout the test-suite and as the
stand-ins for the paper's benchmark datasets (Digg, Flixster, Twitter,
NetHEPT, Epinions, Slashdot — see DESIGN.md §3 for the substitution
rationale).  Probabilities default to 1.0; the assignment/learning code in
:mod:`repro.problearn` replaces them.

All generators are deterministic in their ``seed`` argument.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.builder import GraphBuilder
from repro.graph.digraph import ProbabilisticDigraph
from repro.utils.rng import SeedLike, derive_rng
from repro.utils.validation import check_positive_int, check_probability


# -- deterministic fixtures ---------------------------------------------------


def path_graph(n: int, p: float = 1.0) -> ProbabilisticDigraph:
    """Directed path 0 -> 1 -> ... -> n-1."""
    check_positive_int(n, "n")
    check_probability(p, "p")
    return ProbabilisticDigraph(n, ((i, i + 1, p) for i in range(n - 1)))


def cycle_graph(n: int, p: float = 1.0) -> ProbabilisticDigraph:
    """Directed cycle over ``n`` nodes (n >= 2)."""
    check_positive_int(n, "n")
    if n < 2:
        raise ValueError("cycle needs at least 2 nodes")
    check_probability(p, "p")
    return ProbabilisticDigraph(n, ((i, (i + 1) % n, p) for i in range(n)))


def star_graph(n: int, p: float = 1.0) -> ProbabilisticDigraph:
    """Hub node 0 pointing at spokes 1..n-1."""
    check_positive_int(n, "n")
    check_probability(p, "p")
    return ProbabilisticDigraph(n, ((0, i, p) for i in range(1, n)))


def complete_dag(n: int, p: float = 1.0) -> ProbabilisticDigraph:
    """All arcs i -> j for i < j — the worst case for transitive reduction."""
    check_positive_int(n, "n")
    check_probability(p, "p")
    return ProbabilisticDigraph(
        n, ((i, j, p) for i in range(n) for j in range(i + 1, n))
    )


def figure1_graph() -> ProbabilisticDigraph:
    """The worked example of Figure 1 of the paper.

    Nodes: v1..v5 mapped to ids 0..4.  Arcs: (v5,v1,0.7), (v5,v2,0.4),
    (v5,v4,0.3), (v1,v2,0.1), (v2,v1,0.1)?  — the paper's example computes
    P[{v1}] = 0.7 * (1-0.4) * (1-0.3) * (1-0.1), attributing the final
    (1-0.1) to the arc (v1, v2); and P[{v2,v4}] uses arcs (v4,v2,0.6),
    (v2,v1,0.1) and (v2,v3,0.4).  The graph below reproduces those numbers.
    """
    edges = [
        (4, 0, 0.7),  # v5 -> v1
        (4, 1, 0.4),  # v5 -> v2
        (4, 3, 0.3),  # v5 -> v4
        (0, 1, 0.1),  # v1 -> v2
        (3, 1, 0.6),  # v4 -> v2
        (1, 0, 0.1),  # v2 -> v1
        (1, 2, 0.4),  # v2 -> v3
    ]
    return ProbabilisticDigraph(5, edges)


# -- random families ----------------------------------------------------------


def gnp_digraph(
    n: int, edge_prob: float, p: float = 1.0, seed: SeedLike = None
) -> ProbabilisticDigraph:
    """Directed Erdős–Rényi G(n, q): each ordered pair (u != v) independently.

    ``edge_prob`` is the *topology* density q; ``p`` is the contagion
    probability stamped on every generated arc.
    """
    check_positive_int(n, "n")
    check_probability(edge_prob, "edge_prob", allow_zero=True)
    check_probability(p, "p")
    rng = derive_rng(seed)
    mask = rng.random((n, n)) < edge_prob
    np.fill_diagonal(mask, False)
    sources, targets = np.nonzero(mask)
    probs = np.full(sources.shape[0], p)
    return ProbabilisticDigraph.from_arrays(n, sources, targets, probs)


def random_dag(
    n: int, edge_prob: float, p: float = 1.0, seed: SeedLike = None
) -> ProbabilisticDigraph:
    """Random DAG: arcs only from lower to higher ids, each with prob q."""
    check_positive_int(n, "n")
    check_probability(edge_prob, "edge_prob", allow_zero=True)
    check_probability(p, "p")
    rng = derive_rng(seed)
    mask = np.triu(rng.random((n, n)) < edge_prob, k=1)
    sources, targets = np.nonzero(mask)
    probs = np.full(sources.shape[0], p)
    return ProbabilisticDigraph.from_arrays(n, sources, targets, probs)


def powerlaw_outdegree_digraph(
    n: int,
    mean_degree: float,
    exponent: float = 2.3,
    p: float = 1.0,
    seed: SeedLike = None,
    reciprocal: bool = False,
) -> ProbabilisticDigraph:
    """Configuration-style digraph with heavy-tailed out-degrees.

    Out-degrees are drawn from a discretised Pareto with the given
    ``exponent`` and rescaled to hit ``mean_degree``; targets are chosen by
    preferential attachment over a Zipf-weighted node popularity, which
    yields the skewed in-degree profile typical of the paper's benchmark
    social graphs.  With ``reciprocal=True`` every generated edge is added
    in both directions (the paper's handling of undirected datasets).
    """
    check_positive_int(n, "n")
    if mean_degree <= 0:
        raise ValueError(f"mean_degree must be positive, got {mean_degree}")
    if exponent <= 1.0:
        raise ValueError(f"exponent must exceed 1, got {exponent}")
    check_probability(p, "p")
    rng = derive_rng(seed)

    raw = rng.pareto(exponent - 1.0, size=n) + 1.0
    degrees = np.maximum(1, np.round(raw * mean_degree / raw.mean()).astype(np.int64))
    degrees = np.minimum(degrees, n - 1)

    # Zipf-like popularity for target selection (skewed in-degrees).
    popularity = 1.0 / np.arange(1, n + 1, dtype=np.float64)
    popularity /= popularity.sum()
    node_perm = rng.permutation(n)  # decouple popularity from node id

    builder = GraphBuilder(on_duplicate="overwrite")
    builder.add_nodes(range(n))
    for u in range(n):
        k = int(degrees[u])
        choices = rng.choice(n, size=min(3 * k + 8, n), replace=False, p=popularity)
        added = 0
        for c in choices:
            v = int(node_perm[int(c)])
            if v == u:
                continue
            if reciprocal:
                builder.add_undirected_edge(u, v, p)
            else:
                builder.add_edge(u, v, p)
            added += 1
            if added >= k:
                break
    return builder.build()


def copying_model_digraph(
    n: int,
    out_degree: int = 4,
    copy_prob: float = 0.5,
    p: float = 1.0,
    seed: SeedLike = None,
) -> ProbabilisticDigraph:
    """Kumar et al. copying model — grows a Web/social-like directed graph.

    Each new node u picks a random prototype w; each of its ``out_degree``
    arcs either copies one of w's targets (with ``copy_prob``) or points at a
    uniformly random earlier node.  Produces power-law in-degrees.
    """
    check_positive_int(n, "n")
    check_positive_int(out_degree, "out_degree")
    check_probability(copy_prob, "copy_prob", allow_zero=True)
    check_probability(p, "p")
    rng = derive_rng(seed)

    builder = GraphBuilder(on_duplicate="overwrite")
    builder.add_nodes(range(n))
    adjacency: list[list[int]] = [[] for _ in range(n)]
    seed_size = min(n, out_degree + 1)
    # Seed clique so early nodes have prototypes to copy from.
    for u in range(seed_size):
        for v in range(seed_size):
            if u != v:
                builder.add_edge(u, v, p)
                adjacency[u].append(v)

    for u in range(seed_size, n):
        prototype = int(rng.integers(0, u))
        proto_targets = adjacency[prototype]
        targets: set[int] = set()
        for i in range(out_degree):
            if proto_targets and rng.random() < copy_prob:
                v = proto_targets[int(rng.integers(0, len(proto_targets)))]
            else:
                v = int(rng.integers(0, u))
            if v != u:
                targets.add(v)
        # Sorted: set iteration order would leak hash order into the edge
        # list and the adjacency used by later prototype copies.
        for v in sorted(targets):
            builder.add_edge(u, v, p)
            adjacency[u].append(v)
    return builder.build()


def stochastic_kronecker_digraph(
    initiator: "np.ndarray | Sequence[Sequence[float]]",
    power: int,
    p: float = 1.0,
    seed: SeedLike = None,
) -> ProbabilisticDigraph:
    """Stochastic Kronecker graph (Leskovec et al.) — the generative model
    fitted to many SNAP networks.

    The ``initiator`` is a small square matrix of probabilities in [0, 1];
    its ``power``-th Kronecker power gives the per-arc existence
    probability of a graph on ``k^power`` nodes, sampled here arc by arc
    via the standard recursive-descent trick (cost proportional to the
    expected number of arcs, not to n^2).  Self-loops are discarded.
    """
    initiator = np.asarray(initiator, dtype=np.float64)
    if initiator.ndim != 2 or initiator.shape[0] != initiator.shape[1]:
        raise ValueError("initiator must be a square matrix")
    if np.any((initiator < 0) | (initiator > 1)):
        raise ValueError("initiator entries must lie in [0, 1]")
    check_positive_int(power, "power")
    check_probability(p, "p")
    k = initiator.shape[0]
    n = k**power
    if n > 2**20:
        raise ValueError(f"k^power = {n} nodes is too large")
    rng = derive_rng(seed)

    total_mass = float(initiator.sum()) ** power
    expected_edges = total_mass
    num_draws = rng.poisson(expected_edges)

    flat = initiator.flatten()
    flat_probs = flat / flat.sum() if flat.sum() > 0 else flat
    cells = np.arange(k * k)

    builder = GraphBuilder(on_duplicate="overwrite")
    builder.add_nodes(range(n))
    # Each draw descends `power` levels, picking one initiator cell per
    # level proportionally to its weight — this samples an arc with
    # probability proportional to its Kronecker-product weight.
    for _ in range(int(num_draws)):
        u = v = 0
        for _level in range(power):
            cell = int(rng.choice(cells, p=flat_probs))
            row, col = divmod(cell, k)
            u = u * k + row
            v = v * k + col
        if u != v:
            builder.add_edge(int(u), int(v), p)
    return builder.build()


def forest_fire_digraph(
    n: int,
    forward_prob: float = 0.35,
    backward_prob: float = 0.2,
    p: float = 1.0,
    seed: SeedLike = None,
    max_burn: int = 200,
) -> ProbabilisticDigraph:
    """Leskovec et al. forest-fire model (directed, simplified).

    New nodes link to an ambassador and recursively "burn" through its
    out- and in-neighbours.  Yields densifying, heavy-tailed graphs similar
    to the SNAP social networks used by the paper.
    """
    check_positive_int(n, "n")
    check_probability(forward_prob, "forward_prob", allow_zero=True)
    check_probability(backward_prob, "backward_prob", allow_zero=True)
    check_probability(p, "p")
    rng = derive_rng(seed)

    out_adj: list[list[int]] = [[] for _ in range(n)]
    in_adj: list[list[int]] = [[] for _ in range(n)]
    builder = GraphBuilder(on_duplicate="overwrite")
    builder.add_nodes(range(n))

    def link(u: int, v: int) -> None:
        if u != v and v not in out_adj[u]:
            builder.add_edge(u, v, p)
            out_adj[u].append(v)
            in_adj[v].append(u)

    for u in range(1, n):
        ambassador = int(rng.integers(0, u))
        visited = {ambassador}
        queue = [ambassador]
        burned = 0
        while queue and burned < max_burn:
            w = queue.pop()
            link(u, w)
            burned += 1
            for v in out_adj[w]:
                if v not in visited and rng.random() < forward_prob:
                    visited.add(v)
                    queue.append(v)
            for v in in_adj[w]:
                if v not in visited and rng.random() < backward_prob:
                    visited.add(v)
                    queue.append(v)
    return builder.build()
