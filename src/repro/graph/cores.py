"""(k, eta)-core decomposition of uncertain graphs (Bonchi et al.,
KDD 2014 — reference [6] of the paper).

In an uncertain graph a node's degree is a random variable.  The
*eta-degree* of ``v`` is the largest ``k`` such that
``P[deg(v) >= k] >= eta``; the **(k, eta)-core** is the maximal subgraph in
which every node has eta-degree at least ``k`` *within the subgraph*.  The
decomposition assigns every node its *core number*: the largest ``k`` whose
core contains it.

Degrees here are undirected-style: an incident arc in either direction
counts (the convention of the original paper); the degree distribution of a
node with incident probabilities ``p_1..p_d`` is Poisson-binomial and is
computed exactly with the standard O(d^2) dynamic program.

The peeling algorithm mirrors classical k-core: repeatedly remove the node
of smallest eta-degree, updating its neighbours' distributions.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import ProbabilisticDigraph
from repro.utils.validation import check_probability


def degree_tail_probabilities(probabilities: np.ndarray) -> np.ndarray:
    """``P[deg >= k]`` for k = 0..d, for independent incident arcs.

    Computed from the Poisson-binomial pmf via the exact DP.
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    d = probabilities.size
    pmf = np.zeros(d + 1)
    pmf[0] = 1.0
    for p in probabilities:
        pmf[1:] = pmf[1:] * (1.0 - p) + pmf[:-1] * p
        pmf[0] *= 1.0 - p
    tail = np.cumsum(pmf[::-1])[::-1]
    return np.minimum(tail, 1.0)


def eta_degree(probabilities: np.ndarray, eta: float) -> int:
    """The largest k with P[deg >= k] >= eta (0 when even k=1 fails)."""
    eta = check_probability(eta, "eta")
    tail = degree_tail_probabilities(probabilities)
    qualifying = np.flatnonzero(tail >= eta)
    return int(qualifying.max()) if qualifying.size else 0


def _incident_probabilities(graph: ProbabilisticDigraph) -> list[list[float]]:
    """Per-node list of incident arc probabilities (both directions).

    A reciprocal pair (u, v) / (v, u) counts as one undirected edge with
    the maximum of the two probabilities, matching the undirected semantics
    of the core-decomposition paper.
    """
    n = graph.num_nodes
    incident: list[dict[int, float]] = [dict() for _ in range(n)]
    for u, v, p in graph.edges():
        incident[u][v] = max(incident[u].get(v, 0.0), p)
        incident[v][u] = max(incident[v].get(u, 0.0), p)
    return [list(neighbours.values()) for neighbours in incident], [
        list(neighbours.keys()) for neighbours in incident
    ]


def eta_core_numbers(graph: ProbabilisticDigraph, eta: float) -> np.ndarray:
    """Core number of every node at probability threshold ``eta``.

    Peels nodes in order of current eta-degree; a removed node's incident
    probability is dropped from each remaining neighbour's distribution.
    Runs in O(n * d_max^2) degree-DP work overall — fine for the graph
    sizes of this reproduction.
    """
    eta = check_probability(eta, "eta")
    n = graph.num_nodes
    probs_per_node, neighbours_per_node = _incident_probabilities(graph)
    # Mutable working state: per node, neighbour -> probability.
    working: list[dict[int, float]] = [
        dict(zip(neighbours_per_node[v], probs_per_node[v])) for v in range(n)
    ]
    core = np.zeros(n, dtype=np.int64)
    removed = np.zeros(n, dtype=bool)
    current_max = 0

    degrees = np.array(
        [
            eta_degree(np.fromiter(working[v].values(), dtype=np.float64), eta)
            for v in range(n)
        ],
        dtype=np.int64,
    )

    for _ in range(n):
        candidates = np.flatnonzero(~removed)
        v = int(candidates[np.argmin(degrees[candidates])])
        current_max = max(current_max, int(degrees[v]))
        core[v] = current_max
        removed[v] = True
        for u in list(working[v].keys()):
            if removed[u]:
                continue
            working[u].pop(v, None)
            degrees[u] = eta_degree(
                np.fromiter(working[u].values(), dtype=np.float64), eta
            )
    return core


def eta_core_members(
    graph: ProbabilisticDigraph, k: int, eta: float
) -> np.ndarray:
    """Sorted node ids of the (k, eta)-core (possibly empty)."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    core = eta_core_numbers(graph, eta)
    return np.flatnonzero(core >= k).astype(np.int64)
