"""Incremental construction of probabilistic digraphs.

``GraphBuilder`` collects arcs (with optional overwrite-on-duplicate
semantics) and node labels before freezing them into an immutable
:class:`~repro.graph.digraph.ProbabilisticDigraph`.  Dataset loaders and
synthetic generators use it so that validation and relabeling live in one
place.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from repro.graph.digraph import ProbabilisticDigraph
from repro.utils.validation import check_probability


class GraphBuilder:
    """Mutable accumulator of arcs, frozen into a CSR digraph by :meth:`build`.

    Nodes may be referred to by arbitrary hashable labels; they are assigned
    dense integer ids in order of first appearance.  Adding the same arc
    twice either overwrites (default) or raises, depending on
    ``on_duplicate``.
    """

    def __init__(self, on_duplicate: str = "overwrite") -> None:
        if on_duplicate not in ("overwrite", "error", "max", "min", "first"):
            raise ValueError(
                "on_duplicate must be one of 'overwrite', 'error', 'max', "
                f"'min', 'first', got {on_duplicate!r}"
            )
        self._on_duplicate = on_duplicate
        self._labels: dict[Hashable, int] = {}
        self._edges: dict[tuple[int, int], float] = {}

    # -- nodes --------------------------------------------------------------

    def add_node(self, label: Hashable) -> int:
        """Register ``label`` (idempotent) and return its dense id."""
        node_id = self._labels.get(label)
        if node_id is None:
            node_id = len(self._labels)
            self._labels[label] = node_id
        return node_id

    def add_nodes(self, labels: Iterable[Hashable]) -> None:
        """Register every label in ``labels`` (idempotent)."""
        for label in labels:
            self.add_node(label)

    @property
    def num_nodes(self) -> int:
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    # -- arcs ---------------------------------------------------------------

    def add_edge(self, u: Hashable, v: Hashable, p: float) -> None:
        """Add arc ``u -> v`` with contagion probability ``p``."""
        p = check_probability(p, "p")
        uid, vid = self.add_node(u), self.add_node(v)
        if uid == vid:
            raise ValueError(f"self-loop on {u!r} is not allowed")
        key = (uid, vid)
        if key in self._edges:
            if self._on_duplicate == "error":
                raise ValueError(f"duplicate arc ({u!r}, {v!r})")
            if self._on_duplicate == "first":
                return
            if self._on_duplicate == "max":
                p = max(p, self._edges[key])
            elif self._on_duplicate == "min":
                p = min(p, self._edges[key])
        self._edges[key] = p

    def add_undirected_edge(self, u: Hashable, v: Hashable, p: float) -> None:
        """Add both arcs ``u -> v`` and ``v -> u`` with probability ``p``.

        Matches the paper's treatment of undirected benchmark graphs: "we
        just consider the edges existing in both directions".
        """
        self.add_edge(u, v, p)
        self.add_edge(v, u, p)

    def add_edges(self, triples: Iterable[tuple[Hashable, Hashable, float]]) -> None:
        """Add every ``(u, v, p)`` triple via :meth:`add_edge`."""
        for u, v, p in triples:
            self.add_edge(u, v, p)

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        """True iff the arc ``u -> v`` has been added."""
        uid, vid = self._labels.get(u), self._labels.get(v)
        if uid is None or vid is None:
            return False
        return (uid, vid) in self._edges

    # -- freezing -----------------------------------------------------------

    def label_mapping(self) -> Mapping[Hashable, int]:
        """Label -> dense id mapping (a copy; safe to mutate)."""
        return dict(self._labels)

    def build(self) -> ProbabilisticDigraph:
        """Freeze into an immutable CSR digraph."""
        triples = ((u, v, p) for (u, v), p in self._edges.items())
        return ProbabilisticDigraph(len(self._labels), triples)

    def build_with_labels(self) -> tuple[ProbabilisticDigraph, dict[Hashable, int]]:
        """Freeze and also return the label -> id mapping."""
        return self.build(), dict(self._labels)
