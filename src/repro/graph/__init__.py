"""Probabilistic directed graphs and the deterministic graph algorithms
(reachability, SCC, condensation, transitive reduction) the paper's cascade
index is built from.
"""

from repro.graph.digraph import ProbabilisticDigraph
from repro.graph.builder import GraphBuilder
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.sampling import WorldSampler, sample_world
from repro.graph.reachability import reachable_set, reachable_from_all
from repro.graph.scc import strongly_connected_components
from repro.graph.condensation import Condensation, condense
from repro.graph.transitive import transitive_reduction, transitive_closure
from repro.graph.sparsify import sparsify_top_probability, sparsify_fraction
from repro.graph.cores import eta_core_numbers, eta_core_members, eta_degree
from repro.graph.knn import k_nearest_neighbours
from repro.graph.paths import most_probable_path, path_probability

__all__ = [
    "sparsify_top_probability",
    "sparsify_fraction",
    "eta_core_numbers",
    "eta_core_members",
    "eta_degree",
    "k_nearest_neighbours",
    "most_probable_path",
    "path_probability",
    "ProbabilisticDigraph",
    "GraphBuilder",
    "read_edge_list",
    "write_edge_list",
    "WorldSampler",
    "sample_world",
    "reachable_set",
    "reachable_from_all",
    "strongly_connected_components",
    "Condensation",
    "condense",
    "transitive_reduction",
    "transitive_closure",
]
