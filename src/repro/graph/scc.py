"""Strongly connected components (iterative Tarjan).

The cascade index exploits the fact that every node of an SCC has the same
reachability set, so each sampled world is stored as its SCC condensation
(Section 4 of the paper).  Tarjan's algorithm [36] runs in linear time; the
implementation below is fully iterative (explicit stacks) so it handles the
deep recursions that arise in path-shaped sampled worlds without hitting
Python's recursion limit.

Component ids are assigned in *completion* order, which for Tarjan means
**reverse topological order of the condensation**: every arc of the
condensation goes from a higher component id to a strictly lower one.  The
condensation and transitive-reduction code relies on this invariant.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import ProbabilisticDigraph


def strongly_connected_components(
    graph: ProbabilisticDigraph, edge_mask: np.ndarray | None = None
) -> tuple[np.ndarray, int]:
    """Tarjan SCC over the (optionally masked) graph.

    Returns ``(comp, num_components)`` where ``comp[v]`` is the component id
    of node ``v`` and ids satisfy the reverse-topological invariant described
    in the module docstring.
    """
    n = graph.num_nodes
    indptr = graph.indptr
    targets = graph.targets
    if edge_mask is not None:
        edge_mask = np.asarray(edge_mask, dtype=bool)
        if edge_mask.shape != targets.shape:
            raise ValueError(
                f"edge_mask must have shape {targets.shape}, got {edge_mask.shape}"
            )

    UNVISITED = -1
    index = np.full(n, UNVISITED, dtype=np.int64)  # discovery order
    lowlink = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    comp = np.full(n, UNVISITED, dtype=np.int64)

    stack: list[int] = []  # Tarjan's component stack
    next_index = 0
    next_comp = 0

    # The DFS stack holds (node, position-in-adjacency) frames.
    for root in range(n):
        if index[root] != UNVISITED:
            continue
        work: list[tuple[int, int]] = [(root, int(indptr[root]))]
        index[root] = lowlink[root] = next_index
        next_index += 1
        stack.append(root)
        on_stack[root] = True

        while work:
            v, pos = work[-1]
            hi = int(indptr[v + 1])
            advanced = False
            while pos < hi:
                if edge_mask is not None and not edge_mask[pos]:
                    pos += 1
                    continue
                w = int(targets[pos])
                pos += 1
                if index[w] == UNVISITED:
                    # Descend into w.
                    work[-1] = (v, pos)
                    work.append((w, int(indptr[w])))
                    index[w] = lowlink[w] = next_index
                    next_index += 1
                    stack.append(w)
                    on_stack[w] = True
                    advanced = True
                    break
                if on_stack[w] and index[w] < lowlink[v]:
                    lowlink[v] = index[w]
            if advanced:
                continue
            # v is finished: pop the frame and maybe emit a component.
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[v] < lowlink[parent]:
                    lowlink[parent] = lowlink[v]
            if lowlink[v] == index[v]:
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    comp[w] = next_comp
                    if w == v:
                        break
                next_comp += 1

    return comp, next_comp


def component_members(comp: np.ndarray, num_components: int) -> list[np.ndarray]:
    """Invert a component labelling: members[c] = sorted node ids in c."""
    order = np.argsort(comp, kind="stable")
    sorted_comps = comp[order]
    boundaries = np.searchsorted(sorted_comps, np.arange(num_components + 1))
    return [
        np.sort(order[boundaries[c] : boundaries[c + 1]]).astype(np.int64)
        for c in range(num_components)
    ]


def is_valid_scc_labelling(
    graph: ProbabilisticDigraph,
    comp: np.ndarray,
    edge_mask: np.ndarray | None = None,
) -> bool:
    """Check the reverse-topological invariant: arcs never go from a lower
    component id to a higher one.  Used by property tests."""
    sources = graph.edge_sources()
    targets = graph.targets
    if edge_mask is not None:
        sources = sources[edge_mask]
        targets = targets[edge_mask]
    return bool(np.all(comp[sources] >= comp[targets]))
