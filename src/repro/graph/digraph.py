"""CSR-backed probabilistic directed graph.

``ProbabilisticDigraph`` is the central data structure of the library: a
directed graph ``G = (V, E, p)`` where every arc ``(u, v)`` carries an
independent existence (contagion) probability ``p(u, v) in (0, 1]``.  Under
the possible-world semantics the graph is a distribution over deterministic
subgraphs; all samplers and estimators in :mod:`repro.cascades` read the CSR
arrays exposed here directly.

The representation is immutable after construction:

* ``indptr``  — ``int64[n + 1]``; arcs of node ``u`` occupy the slice
  ``indptr[u]:indptr[u + 1]`` of the arc arrays.
* ``targets`` — ``int32[m]``; head node of each arc.
* ``probs``   — ``float64[m]``; existence probability of each arc.

Arcs are sorted by (source, target), with no duplicates and no self-loops.
Use :class:`repro.graph.builder.GraphBuilder` for incremental construction.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.utils.validation import check_node

EdgeTriple = tuple[int, int, float]


class ProbabilisticDigraph:
    """Immutable probabilistic directed graph in CSR form."""

    __slots__ = ("_n", "_indptr", "_targets", "_probs", "_reverse")

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[EdgeTriple] = (),
        *,
        _internal: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
    ) -> None:
        if isinstance(num_nodes, bool) or not isinstance(num_nodes, (int, np.integer)):
            raise TypeError(f"num_nodes must be an int, got {type(num_nodes).__name__}")
        if num_nodes < 0:
            raise ValueError(f"num_nodes must be non-negative, got {num_nodes}")
        self._n = int(num_nodes)
        self._reverse: "ProbabilisticDigraph | None" = None
        if _internal is not None:
            self._indptr, self._targets, self._probs = _internal
            return
        self._indptr, self._targets, self._probs = _build_csr(self._n, edges)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_arrays(
        cls,
        num_nodes: int,
        sources: np.ndarray,
        targets: np.ndarray,
        probs: np.ndarray,
    ) -> "ProbabilisticDigraph":
        """Build from parallel (source, target, prob) arrays.

        The arrays are validated and re-sorted; duplicates raise.
        """
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        probs = np.asarray(probs, dtype=np.float64)
        if not (len(sources) == len(targets) == len(probs)):
            raise ValueError(
                "sources, targets and probs must have equal length, got "
                f"{len(sources)}, {len(targets)}, {len(probs)}"
            )
        triples = zip(sources.tolist(), targets.tolist(), probs.tolist())
        return cls(num_nodes, triples)

    @classmethod
    def _from_csr_unchecked(
        cls, num_nodes: int, indptr: np.ndarray, targets: np.ndarray, probs: np.ndarray
    ) -> "ProbabilisticDigraph":
        """Internal fast path: arrays are trusted to be valid CSR."""
        return cls(num_nodes, _internal=(indptr, targets, probs))

    # -- basic accessors ---------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        return int(self._targets.shape[0])

    @property
    def indptr(self) -> np.ndarray:
        return self._indptr

    @property
    def targets(self) -> np.ndarray:
        return self._targets

    @property
    def probs(self) -> np.ndarray:
        return self._probs

    def nodes(self) -> range:
        """Iterable of all node ids ``0..n-1``."""
        return range(self._n)

    def successors(self, node: int) -> np.ndarray:
        """Targets of the arcs leaving ``node`` (sorted, read-only view)."""
        node = check_node(node, self._n)
        return self._targets[self._indptr[node] : self._indptr[node + 1]]

    def successor_probs(self, node: int) -> np.ndarray:
        """Probabilities of the arcs leaving ``node``, aligned with
        :meth:`successors`."""
        node = check_node(node, self._n)
        return self._probs[self._indptr[node] : self._indptr[node + 1]]

    def out_degree(self, node: int) -> int:
        """Number of arcs leaving ``node``."""
        node = check_node(node, self._n)
        return int(self._indptr[node + 1] - self._indptr[node])

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every node as an int64 array."""
        return np.diff(self._indptr)

    def in_degrees(self) -> np.ndarray:
        """In-degree of every node as an int64 array."""
        return np.bincount(self._targets, minlength=self._n).astype(np.int64)

    def has_edge(self, u: int, v: int) -> bool:
        """True iff the arc ``(u, v)`` exists."""
        u = check_node(u, self._n, "u")
        v = check_node(v, self._n, "v")
        row = self._targets[self._indptr[u] : self._indptr[u + 1]]
        i = int(np.searchsorted(row, v))
        return i < len(row) and int(row[i]) == v

    def edge_probability(self, u: int, v: int) -> float:
        """Probability of the arc ``(u, v)``; raises ``KeyError`` if absent."""
        u = check_node(u, self._n, "u")
        v = check_node(v, self._n, "v")
        lo, hi = int(self._indptr[u]), int(self._indptr[u + 1])
        row = self._targets[lo:hi]
        i = int(np.searchsorted(row, v))
        if i >= len(row) or int(row[i]) != v:
            raise KeyError(f"no arc ({u}, {v}) in graph")
        return float(self._probs[lo + i])

    def edges(self) -> Iterator[EdgeTriple]:
        """Iterate ``(u, v, p)`` triples in (u, v) order."""
        for u in range(self._n):
            lo, hi = int(self._indptr[u]), int(self._indptr[u + 1])
            for i in range(lo, hi):
                yield u, int(self._targets[i]), float(self._probs[i])

    def edge_sources(self) -> np.ndarray:
        """Source node of each arc, aligned with :attr:`targets`."""
        return np.repeat(np.arange(self._n, dtype=np.int64), self.out_degrees())

    # -- derived graphs ----------------------------------------------------

    def reverse(self) -> "ProbabilisticDigraph":
        """The transpose graph (arcs flipped, probabilities kept).

        Cached: repeated calls return the same object.  Used by the
        weighted-cascade assignment and the RIS baseline.
        """
        if self._reverse is None:
            sources = self.edge_sources()
            self._reverse = ProbabilisticDigraph.from_arrays(
                self._n, self._targets, sources, self._probs
            )
            self._reverse._reverse = self
        return self._reverse

    def with_probabilities(self, probs: np.ndarray) -> "ProbabilisticDigraph":
        """A copy of this topology with arc probabilities replaced.

        ``probs`` must align with the internal arc order (see :meth:`edges`).
        """
        probs = np.asarray(probs, dtype=np.float64)
        if probs.shape != self._probs.shape:
            raise ValueError(
                f"probs must have shape {self._probs.shape}, got {probs.shape}"
            )
        if np.any(~np.isfinite(probs)) or np.any(probs <= 0.0) or np.any(probs > 1.0):
            raise ValueError("all probabilities must be finite and in (0, 1]")
        return ProbabilisticDigraph._from_csr_unchecked(
            self._n, self._indptr, self._targets, probs.copy()
        )

    def subgraph_from_mask(self, edge_mask: np.ndarray) -> "ProbabilisticDigraph":
        """Deterministic possible world: keep arcs where ``edge_mask`` is True.

        Kept arcs get probability 1.0 (they exist in the sampled world).
        """
        edge_mask = np.asarray(edge_mask, dtype=bool)
        if edge_mask.shape != self._targets.shape:
            raise ValueError(
                f"edge_mask must have shape {self._targets.shape}, got {edge_mask.shape}"
            )
        counts = np.zeros(self._n, dtype=np.int64)
        sources = self.edge_sources()
        kept_sources = sources[edge_mask]
        np.add.at(counts, kept_sources, 1)
        indptr = np.zeros(self._n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        targets = self._targets[edge_mask].copy()
        probs = np.ones(targets.shape[0], dtype=np.float64)
        return ProbabilisticDigraph._from_csr_unchecked(self._n, indptr, targets, probs)

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProbabilisticDigraph):
            return NotImplemented
        return (
            self._n == other._n
            and np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._targets, other._targets)
            and np.array_equal(self._probs, other._probs)
        )

    def __hash__(self) -> int:  # immutable, so hashable by content digest
        return hash(
            (self._n, self._targets.tobytes(), self._probs.tobytes())
        )

    def __repr__(self) -> str:
        return (
            f"ProbabilisticDigraph(num_nodes={self._n}, num_edges={self.num_edges})"
        )


def _build_csr(
    n: int, edges: Iterable[EdgeTriple]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Validate, sort and pack edge triples into CSR arrays."""
    triples = list(edges)
    if not triples:
        return (
            np.zeros(n + 1, dtype=np.int64),
            np.zeros(0, dtype=np.int32),
            np.zeros(0, dtype=np.float64),
        )
    raw_sources = np.fromiter(
        (t[0] for t in triples), dtype=np.float64, count=len(triples)
    )
    raw_targets = np.fromiter(
        (t[1] for t in triples), dtype=np.float64, count=len(triples)
    )
    probs = np.fromiter((t[2] for t in triples), dtype=np.float64, count=len(triples))
    sources = raw_sources.astype(np.int64)
    targets = raw_targets.astype(np.int64)
    if np.any(sources != raw_sources) or np.any(targets != raw_targets):
        raise TypeError("node ids must be integers")

    if np.any(sources < 0) or np.any(sources >= n):
        bad = int(sources[(sources < 0) | (sources >= n)][0])
        raise ValueError(f"edge source {bad} out of range for {n} nodes")
    if np.any(targets < 0) or np.any(targets >= n):
        bad = int(targets[(targets < 0) | (targets >= n)][0])
        raise ValueError(f"edge target {bad} out of range for {n} nodes")
    if np.any(sources == targets):
        bad = int(sources[sources == targets][0])
        raise ValueError(f"self-loop on node {bad} is not allowed")
    if np.any(~np.isfinite(probs)) or np.any(probs <= 0.0) or np.any(probs > 1.0):
        raise ValueError("all edge probabilities must be finite and in (0, 1]")

    order = np.lexsort((targets, sources))
    sources, targets, probs = sources[order], targets[order], probs[order]
    if len(sources) > 1:
        dup = (sources[1:] == sources[:-1]) & (targets[1:] == targets[:-1])
        if np.any(dup):
            i = int(np.flatnonzero(dup)[0])
            raise ValueError(
                f"duplicate arc ({int(sources[i])}, {int(targets[i])})"
            )
    counts = np.bincount(sources, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, targets.astype(np.int32), probs
