"""SCC condensation of a (possibly masked) directed graph.

The condensation contracts every SCC to a single vertex, yielding a DAG.
Thanks to the component-id convention of :mod:`repro.graph.scc` (ids are a
reverse topological order), the condensation arrives pre-topologically
sorted: every arc goes from a higher id to a strictly lower id.  This is the
structure the cascade index stores per sampled world.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.digraph import ProbabilisticDigraph
from repro.graph.scc import component_members, strongly_connected_components


@dataclass(frozen=True)
class Condensation:
    """Condensation DAG of one deterministic world.

    Attributes:
        node_comp: int64[n] — component id of every original node.
        num_components: number of SCCs.
        indptr / targets: CSR adjacency of the DAG over component ids
            (deduplicated; arcs go from higher ids to lower ids).
        comp_sizes: int64[num_components] — |members| of each component.
    """

    node_comp: np.ndarray
    num_components: int
    indptr: np.ndarray
    targets: np.ndarray
    comp_sizes: np.ndarray

    @property
    def num_edges(self) -> int:
        return int(self.targets.shape[0])

    def successors(self, comp_id: int) -> np.ndarray:
        """Component ids directly reachable from ``comp_id``."""
        if not 0 <= comp_id < self.num_components:
            raise ValueError(
                f"component {comp_id} out of range (have {self.num_components})"
            )
        return self.targets[self.indptr[comp_id] : self.indptr[comp_id + 1]]

    def members(self) -> list[np.ndarray]:
        """Per-component sorted member node ids (recomputed on demand)."""
        return component_members(self.node_comp, self.num_components)

    def reachable_components(self, comp_id: int) -> np.ndarray:
        """All component ids reachable from ``comp_id`` (itself included)."""
        if not 0 <= comp_id < self.num_components:
            raise ValueError(
                f"component {comp_id} out of range (have {self.num_components})"
            )
        visited = np.zeros(self.num_components, dtype=bool)
        visited[comp_id] = True
        frontier = [comp_id]
        while frontier:
            nxt: list[int] = []
            for c in frontier:
                for d in self.targets[self.indptr[c] : self.indptr[c + 1]]:
                    d = int(d)
                    if not visited[d]:
                        visited[d] = True
                        nxt.append(d)
            frontier = nxt
        return np.flatnonzero(visited).astype(np.int64)

    def is_acyclic(self) -> bool:
        """True iff every arc goes from a higher to a strictly lower id.

        By the SCC id convention this is equivalent to acyclicity; exposed
        for property tests.
        """
        sources = np.repeat(
            np.arange(self.num_components, dtype=np.int64), np.diff(self.indptr)
        )
        return bool(np.all(sources > self.targets))

    def with_dag_edges(self, indptr: np.ndarray, targets: np.ndarray) -> "Condensation":
        """Copy of this condensation with the DAG adjacency replaced.

        Used to swap in the transitive reduction while keeping membership.
        """
        return Condensation(
            node_comp=self.node_comp,
            num_components=self.num_components,
            indptr=indptr,
            targets=targets,
            comp_sizes=self.comp_sizes,
        )


def condense(
    graph: ProbabilisticDigraph, edge_mask: np.ndarray | None = None
) -> Condensation:
    """Compute the SCC condensation of ``graph`` restricted to ``edge_mask``."""
    comp, num_components = strongly_connected_components(graph, edge_mask)
    sources = graph.edge_sources()
    targets = graph.targets
    if edge_mask is not None:
        edge_mask = np.asarray(edge_mask, dtype=bool)
        sources = sources[edge_mask]
        targets = targets[edge_mask]

    comp_src = comp[sources]
    comp_dst = comp[np.asarray(targets, dtype=np.int64)]
    cross = comp_src != comp_dst
    comp_src, comp_dst = comp_src[cross], comp_dst[cross]

    if comp_src.size:
        # Deduplicate parallel DAG arcs.
        keys = comp_src * np.int64(num_components) + comp_dst
        unique_keys = np.unique(keys)
        comp_src = unique_keys // num_components
        comp_dst = unique_keys % num_components

    counts = np.bincount(comp_src, minlength=num_components)
    indptr = np.zeros(num_components + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    order = np.argsort(comp_src, kind="stable")
    dag_targets = comp_dst[order].astype(np.int64)

    comp_sizes = np.bincount(comp, minlength=num_components).astype(np.int64)
    return Condensation(
        node_comp=comp,
        num_components=num_components,
        indptr=indptr,
        targets=dag_targets,
        comp_sizes=comp_sizes,
    )
