"""Possible-world sampling under the independent-edge semantics.

A *possible world* of ``G = (V, E, p)`` is a deterministic subgraph obtained
by keeping each arc ``e`` independently with probability ``p(e)`` (Eq. 1 of
the paper).  The sampler is vectorised: one ``rng.random(m) < probs``
comparison per world.

Two representations of a world are offered:

* a boolean *edge mask* aligned with the graph's CSR arc order — cheap, and
  what the cascade simulator and the index builder consume;
* a materialised :class:`~repro.graph.digraph.ProbabilisticDigraph`
  (via ``graph.subgraph_from_mask``) when a first-class graph is needed.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.graph.digraph import ProbabilisticDigraph
from repro.utils.rng import SeedLike, derive_rng
from repro.utils.validation import check_positive_int


def sample_world(graph: ProbabilisticDigraph, seed: SeedLike = None) -> np.ndarray:
    """Sample one possible world as a boolean edge mask."""
    rng = derive_rng(seed)
    return rng.random(graph.num_edges) < graph.probs


def sample_worlds(
    graph: ProbabilisticDigraph, count: int, seed: SeedLike = None
) -> np.ndarray:
    """Sample ``count`` i.i.d. worlds as a ``(count, m)`` boolean matrix."""
    check_positive_int(count, "count")
    rng = derive_rng(seed)
    return rng.random((count, graph.num_edges)) < graph.probs[np.newaxis, :]


def world_log_probability(graph: ProbabilisticDigraph, edge_mask: np.ndarray) -> float:
    """Log-probability of a world under Eq. 1 (useful for exact enumeration).

    Uses logs for numerical stability; ``-inf`` cannot occur because edge
    probabilities are in (0, 1] — an absent arc with p == 1 has probability
    zero, and that *is* reported as ``-inf``.
    """
    edge_mask = np.asarray(edge_mask, dtype=bool)
    if edge_mask.shape != graph.probs.shape:
        raise ValueError(
            f"edge_mask must have shape {graph.probs.shape}, got {edge_mask.shape}"
        )
    probs = graph.probs
    with np.errstate(divide="ignore"):
        log_on = np.log(probs)
        log_off = np.log1p(-probs)
    return float(np.sum(np.where(edge_mask, log_on, log_off)))


def world_probability(graph: ProbabilisticDigraph, edge_mask: np.ndarray) -> float:
    """Probability of a world under Eq. 1 of the paper."""
    return float(np.exp(world_log_probability(graph, edge_mask)))


def enumerate_worlds(
    graph: ProbabilisticDigraph, max_edges: int = 20
) -> Iterator[tuple[np.ndarray, float]]:
    """Yield every possible world ``(edge_mask, probability)``.

    Exponential in the number of arcs; guarded by ``max_edges`` so it is only
    used on the tiny graphs of the exact cross-check tests.
    """
    m = graph.num_edges
    if m > max_edges:
        raise ValueError(
            f"refusing to enumerate 2^{m} worlds (limit 2^{max_edges}); "
            "raise max_edges explicitly if you really mean it"
        )
    # Arc i of world `bits` is bit i of `bits`; one vectorised shift per
    # world instead of a per-bit Python loop.
    bit_positions = np.arange(m, dtype=np.int64)
    for bits in range(1 << m):
        mask = (bits >> bit_positions) & 1 == 1
        yield mask, world_probability(graph, mask)


class WorldSampler:
    """Reusable sampler bound to a graph and a seed.

    Provides a deterministic stream of worlds: world ``i`` depends only on
    ``(seed, i)``, so consumers can re-extract any world without storing the
    masks (the cascade index relies on this to keep its memory bounded).
    """

    def __init__(self, graph: ProbabilisticDigraph, seed: SeedLike = None) -> None:
        self._graph = graph
        if isinstance(seed, np.random.Generator):
            seed = int(seed.integers(0, 2**63 - 1))
        self._seed_sequence = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )

    @property
    def graph(self) -> ProbabilisticDigraph:
        return self._graph

    @property
    def seed_entropy(self):
        """Entropy of the root seed sequence — with the world index, the
        sole input to :meth:`world_mask`.  Recording it (the persistent
        index store does) is enough to re-derive any world later."""
        return self._seed_sequence.entropy

    def world_mask(self, index: int) -> np.ndarray:
        """Edge mask of world ``index`` (deterministic in (seed, index))."""
        if index < 0:
            raise ValueError(f"index must be non-negative, got {index}")
        rng = derive_rng(
            np.random.SeedSequence(
                entropy=self._seed_sequence.entropy, spawn_key=(index,)
            )
        )
        return rng.random(self._graph.num_edges) < self._graph.probs

    def world_graph(self, index: int) -> ProbabilisticDigraph:
        """World ``index`` materialised as a deterministic digraph."""
        return self._graph.subgraph_from_mask(self.world_mask(index))

    def masks(self, count: int) -> Iterator[np.ndarray]:
        """Yield the first ``count`` world masks."""
        check_positive_int(count, "count")
        for index in range(count):
            yield self.world_mask(index)
