"""Most-probable paths in probabilistic graphs.

The probability that a specific path materialises is the product of its
arc probabilities; the *most probable path* from ``s`` to ``t`` maximises
that product — equivalently, it is the shortest path under arc weights
``-log p``.  A classic uncertain-graph primitive (it lower-bounds the s-t
reliability and is the backbone of many pruning heuristics).

Implemented with a binary-heap Dijkstra over the CSR arrays.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro.graph.digraph import ProbabilisticDigraph
from repro.utils.validation import check_node


@dataclass(frozen=True)
class PathResult:
    """A most-probable path and its probability."""

    nodes: tuple[int, ...]
    probability: float

    @property
    def num_hops(self) -> int:
        """Number of arcs on the path."""
        return max(0, len(self.nodes) - 1)


def most_probable_path(
    graph: ProbabilisticDigraph, source: int, target: int
) -> PathResult | None:
    """The path from ``source`` to ``target`` with maximal existence
    probability; ``None`` when no path exists.

    ``source == target`` yields the empty path with probability 1.
    """
    source = check_node(source, graph.num_nodes, "source")
    target = check_node(target, graph.num_nodes, "target")
    if source == target:
        return PathResult((source,), 1.0)

    n = graph.num_nodes
    dist = np.full(n, np.inf)
    parent = np.full(n, -1, dtype=np.int64)
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    indptr, targets, probs = graph.indptr, graph.targets, graph.probs

    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        if u == target:
            break
        lo, hi = int(indptr[u]), int(indptr[u + 1])
        for i in range(lo, hi):
            v = int(targets[i])
            weight = -math.log(probs[i])
            nd = d + weight
            if nd < dist[v] - 1e-15:
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))

    if not np.isfinite(dist[target]):
        return None
    path = [target]
    while path[-1] != source:
        path.append(int(parent[path[-1]]))
    path.reverse()
    return PathResult(tuple(path), float(math.exp(-dist[target])))


def path_probability(graph: ProbabilisticDigraph, nodes: "list[int] | tuple[int, ...]") -> float:
    """Existence probability of an explicit path (product of arc probs).

    Raises ``KeyError`` when a required arc is missing.
    """
    nodes = [check_node(v, graph.num_nodes) for v in nodes]
    probability = 1.0
    for u, v in zip(nodes, nodes[1:]):
        probability *= graph.edge_probability(u, v)
    return probability


def most_probable_path_tree(
    graph: ProbabilisticDigraph, source: int
) -> tuple[np.ndarray, np.ndarray]:
    """Single-source variant: ``(probability, parent)`` arrays for all
    nodes (probability 0 and parent -1 where unreachable)."""
    source = check_node(source, graph.num_nodes, "source")
    n = graph.num_nodes
    dist = np.full(n, np.inf)
    parent = np.full(n, -1, dtype=np.int64)
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    indptr, targets, probs = graph.indptr, graph.targets, graph.probs
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        lo, hi = int(indptr[u]), int(indptr[u + 1])
        for i in range(lo, hi):
            v = int(targets[i])
            nd = d - math.log(probs[i])
            if nd < dist[v] - 1e-15:
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    with np.errstate(over="ignore"):
        probability = np.where(np.isfinite(dist), np.exp(-dist), 0.0)
    return probability, parent
