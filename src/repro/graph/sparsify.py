"""Influence-network sparsification (Mathioudakis et al., KDD 2011).

Related work (Section 7): keep only the ``m'`` most informative arcs of an
influence network while preserving its propagation behaviour.  The full
SPINE algorithm maximises the log-likelihood of a propagation log; the
widely-used practical variant implemented here keeps the globally
top-probability arcs (optionally guaranteeing a minimum out-degree so no
influencer is completely silenced), which preserves the high-probability
backbone the spheres of influence live on.

The sparsification ablation checks that typical cascades computed on the
sparsified graph stay close (in Jaccard distance) to the full-graph
spheres at a fraction of the arcs.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import ProbabilisticDigraph
from repro.utils.validation import check_non_negative_int, check_positive_int


def sparsify_top_probability(
    graph: ProbabilisticDigraph,
    keep_edges: int,
    min_out_degree: int = 0,
) -> ProbabilisticDigraph:
    """Keep the ``keep_edges`` highest-probability arcs.

    ``min_out_degree`` first reserves each node's strongest outgoing arcs
    (as many as it has, up to the minimum), then fills the remaining budget
    globally by probability.  Raises if the reservation alone exceeds the
    budget.
    """
    check_positive_int(keep_edges, "keep_edges")
    check_non_negative_int(min_out_degree, "min_out_degree")
    m = graph.num_edges
    if keep_edges >= m:
        return graph

    probs = graph.probs
    keep = np.zeros(m, dtype=bool)

    if min_out_degree > 0:
        indptr = graph.indptr
        for u in range(graph.num_nodes):
            lo, hi = int(indptr[u]), int(indptr[u + 1])
            if lo == hi:
                continue
            row = probs[lo:hi]
            quota = min(min_out_degree, hi - lo)
            best = np.argsort(row)[::-1][:quota]
            keep[lo + best] = True
        reserved = int(keep.sum())
        if reserved > keep_edges:
            raise ValueError(
                f"min_out_degree={min_out_degree} reserves {reserved} arcs, "
                f"more than keep_edges={keep_edges}"
            )

    remaining = keep_edges - int(keep.sum())
    if remaining > 0:
        candidates = np.flatnonzero(~keep)
        order = candidates[np.argsort(probs[candidates])[::-1]]
        keep[order[:remaining]] = True

    sources = graph.edge_sources()[keep]
    targets = np.asarray(graph.targets, dtype=np.int64)[keep]
    return ProbabilisticDigraph.from_arrays(
        graph.num_nodes, sources, targets, probs[keep]
    )


def sparsify_fraction(
    graph: ProbabilisticDigraph,
    fraction: float,
    min_out_degree: int = 0,
) -> ProbabilisticDigraph:
    """Keep the strongest ``fraction`` of arcs (0 < fraction <= 1)."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    keep_edges = max(1, int(round(graph.num_edges * fraction)))
    return sparsify_top_probability(graph, keep_edges, min_out_degree)


def retained_probability_mass(
    original: ProbabilisticDigraph, sparsified: ProbabilisticDigraph
) -> float:
    """Fraction of the total arc-probability mass the sparsifier kept."""
    total = float(original.probs.sum())
    if total <= 0.0:
        return 1.0
    return float(sparsified.probs.sum()) / total
