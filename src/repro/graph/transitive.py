"""Transitive closure and transitive reduction of condensation DAGs.

The paper shrinks the cascade index by replacing each world's condensation
with its transitive reduction [3] — the unique minimal DAG with the same
reachability.  On a DAG the reduction is unique and computable from the
transitive closure: an arc ``(u, v)`` is redundant iff ``v`` is reachable
from some *other* successor of ``u``.

Both routines exploit the id convention of :mod:`repro.graph.scc`: every arc
goes from a higher component id to a strictly lower one, so ascending id
order is a valid reverse-topological processing order (all successors of a
node are processed before the node itself).

Closures are stored as a dense boolean matrix, which is exact and fast for
the condensation sizes arising from sampled worlds; ``max_nodes`` guards
against accidentally materialising an n^2 matrix for huge inputs.
"""

from __future__ import annotations

import numpy as np

from repro.graph.condensation import Condensation

#: Default guard: a 2^13 x 2^13 boolean matrix is 64 MiB.
DEFAULT_MAX_CLOSURE_NODES = 8192


def _check_dag_arrays(indptr: np.ndarray, targets: np.ndarray) -> int:
    indptr = np.asarray(indptr)
    targets = np.asarray(targets)
    n = int(indptr.shape[0]) - 1
    if n < 0:
        raise ValueError("indptr must have at least one entry")
    if int(indptr[0]) != 0 or int(indptr[-1]) != targets.shape[0]:
        raise ValueError("indptr does not describe the targets array")
    sources = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    if np.any(sources <= targets):
        raise ValueError(
            "DAG arrays must satisfy the reverse-topological invariant "
            "(every arc from a higher id to a strictly lower id)"
        )
    return n


def transitive_closure(
    indptr: np.ndarray,
    targets: np.ndarray,
    max_nodes: int = DEFAULT_MAX_CLOSURE_NODES,
) -> np.ndarray:
    """Dense reachability matrix of a reverse-topologically-ordered DAG.

    ``closure[u, v]`` is True iff there is a directed path of length >= 1
    from ``u`` to ``v`` (so the diagonal is always False on a DAG).
    """
    n = _check_dag_arrays(indptr, targets)
    if n > max_nodes:
        raise ValueError(
            f"closure of a {n}-node DAG exceeds the max_nodes={max_nodes} guard"
        )
    closure = np.zeros((n, n), dtype=bool)
    for u in range(n):
        row = closure[u]
        for v in targets[indptr[u] : indptr[u + 1]]:
            v = int(v)
            row[v] = True
            # v < u, so closure[v] is already final.
            np.logical_or(row, closure[v], out=row)
    return closure


def transitive_reduction(
    indptr: np.ndarray,
    targets: np.ndarray,
    max_nodes: int = DEFAULT_MAX_CLOSURE_NODES,
) -> tuple[np.ndarray, np.ndarray]:
    """Unique transitive reduction of a reverse-topologically-ordered DAG.

    Returns new ``(indptr, targets)`` arrays in the same convention.  An arc
    ``(u, v)`` is kept iff no other successor of ``u`` reaches ``v``.
    """
    n = _check_dag_arrays(indptr, targets)
    closure = transitive_closure(indptr, targets, max_nodes=max_nodes)

    new_counts = np.zeros(n, dtype=np.int64)
    kept_targets: list[np.ndarray] = []
    for u in range(n):
        succ = np.asarray(targets[indptr[u] : indptr[u + 1]], dtype=np.int64)
        if succ.size == 0:
            kept_targets.append(succ)
            continue
        # v reachable from any successor (including through v's own row is
        # impossible: DAGs have no self-reach), so OR-ing all successor rows
        # marks exactly the targets with an alternative longer path.
        reach_via_succ = np.any(closure[succ], axis=0)
        keep = ~reach_via_succ[succ]
        kept = succ[keep]
        kept_targets.append(kept)
        new_counts[u] = kept.size

    new_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(new_counts, out=new_indptr[1:])
    new_targets = (
        np.concatenate(kept_targets) if kept_targets else np.zeros(0, dtype=np.int64)
    ).astype(np.int64)
    return new_indptr, new_targets


def reduce_condensation(
    cond: Condensation, max_nodes: int = DEFAULT_MAX_CLOSURE_NODES
) -> Condensation:
    """Condensation with its DAG arcs replaced by the transitive reduction.

    Falls back to the unreduced condensation when the DAG is larger than the
    closure guard — the index stays correct, just less compact.
    """
    if cond.num_components > max_nodes:
        return cond
    indptr, targets = transitive_reduction(cond.indptr, cond.targets, max_nodes)
    return cond.with_dag_edges(indptr, targets)


def closures_equal(
    indptr_a: np.ndarray,
    targets_a: np.ndarray,
    indptr_b: np.ndarray,
    targets_b: np.ndarray,
    max_nodes: int = DEFAULT_MAX_CLOSURE_NODES,
) -> bool:
    """True iff two DAGs over the same vertex set have equal reachability.

    The defining property of the transitive reduction; used in tests.
    """
    ca = transitive_closure(indptr_a, targets_a, max_nodes=max_nodes)
    cb = transitive_closure(indptr_b, targets_b, max_nodes=max_nodes)
    return bool(np.array_equal(ca, cb))
