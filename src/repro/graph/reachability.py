"""Reachability over deterministic worlds.

``R_s(G)`` — the set of nodes reachable from ``s`` through directed paths —
is the paper's definition of the cascade of ``s`` in a world ``G``.  These
routines run a frontier BFS directly over the CSR arrays of the base graph,
restricted to the arcs that are alive in a given edge mask, so sampling a
world never has to materialise a subgraph.

Conventions: the source(s) are always included in the returned set (a node
trivially infects itself), matching the live-edge view of the IC model.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.graph.digraph import ProbabilisticDigraph
from repro.utils.validation import check_node


def reachable_mask(
    graph: ProbabilisticDigraph,
    sources: Iterable[int] | int,
    edge_mask: np.ndarray | None = None,
) -> np.ndarray:
    """Boolean array marking nodes reachable from ``sources``.

    ``edge_mask`` restricts traversal to alive arcs; ``None`` means the full
    topology (every arc alive), which computes deterministic reachability.
    """
    n = graph.num_nodes
    if isinstance(sources, (int, np.integer)):
        sources = [int(sources)]
    visited = np.zeros(n, dtype=bool)
    frontier: list[int] = []
    for s in sources:
        s = check_node(s, n, "source")
        if not visited[s]:
            visited[s] = True
            frontier.append(s)

    indptr = graph.indptr
    targets = graph.targets
    if edge_mask is not None:
        edge_mask = np.asarray(edge_mask, dtype=bool)
        if edge_mask.shape != targets.shape:
            raise ValueError(
                f"edge_mask must have shape {targets.shape}, got {edge_mask.shape}"
            )

    while frontier:
        next_frontier: list[int] = []
        for u in frontier:
            lo, hi = int(indptr[u]), int(indptr[u + 1])
            if edge_mask is None:
                out = targets[lo:hi]
            else:
                out = targets[lo:hi][edge_mask[lo:hi]]
            for v in out:
                v = int(v)
                if not visited[v]:
                    visited[v] = True
                    next_frontier.append(v)
        frontier = next_frontier
    return visited


def reachable_set(
    graph: ProbabilisticDigraph,
    sources: Iterable[int] | int,
    edge_mask: np.ndarray | None = None,
) -> frozenset[int]:
    """Nodes reachable from ``sources``, as a frozenset (sources included)."""
    mask = reachable_mask(graph, sources, edge_mask)
    return frozenset(int(v) for v in np.flatnonzero(mask))


def reachable_array(
    graph: ProbabilisticDigraph,
    sources: Iterable[int] | int,
    edge_mask: np.ndarray | None = None,
) -> np.ndarray:
    """Nodes reachable from ``sources`` as a sorted int64 array."""
    mask = reachable_mask(graph, sources, edge_mask)
    return np.flatnonzero(mask).astype(np.int64)


def reachable_from_all(
    graph: ProbabilisticDigraph, edge_mask: np.ndarray | None = None
) -> list[frozenset[int]]:
    """Reachability set of every node (naive per-node BFS).

    Quadratic; used only as the reference implementation that the SCC-based
    cascade index is validated against in tests.
    """
    return [reachable_set(graph, v, edge_mask) for v in graph.nodes()]


def spread_size(
    graph: ProbabilisticDigraph,
    sources: Sequence[int],
    edge_mask: np.ndarray | None = None,
) -> int:
    """|R_S(G)| — the cascade size of seed set ``sources`` in one world."""
    return int(np.count_nonzero(reachable_mask(graph, sources, edge_mask)))
