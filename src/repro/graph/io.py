"""Edge-list serialisation for probabilistic digraphs.

The on-disk format is the plain whitespace-separated triple format used by
the influence-maximisation literature (and the SNAP collection, plus a
probability column)::

    # comment lines start with '#'
    <source> <target> <probability>

Node ids in a file may be arbitrary non-negative integers or strings; they
are densified on read and the mapping can be recovered via
``read_edge_list(..., return_labels=True)``.
"""

from __future__ import annotations

import os
from typing import IO, Iterable, Union

from repro.graph.builder import GraphBuilder
from repro.graph.digraph import ProbabilisticDigraph

PathLike = Union[str, os.PathLike]


def write_edge_list(graph: ProbabilisticDigraph, path: PathLike, precision: int = 17) -> None:
    """Write ``graph`` as a ``u v p`` edge list (dense integer node ids)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# nodes {graph.num_nodes} edges {graph.num_edges}\n")
        for u, v, p in graph.edges():
            handle.write(f"{u} {v} {p:.{precision}g}\n")


def _parse_lines(lines: Iterable[str], default_probability: float | None) -> GraphBuilder:
    builder = GraphBuilder(on_duplicate="error")
    declared_nodes: int | None = None
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line[1:].split()
            if len(parts) >= 2 and parts[0] == "nodes":
                try:
                    declared_nodes = int(parts[1])
                except ValueError:
                    declared_nodes = None
                if declared_nodes is not None:
                    # Pre-register 0..n-1 so ids round-trip identically for
                    # files produced by write_edge_list.
                    for node in range(declared_nodes):
                        builder.add_node(node)
            continue
        parts = line.split()
        if len(parts) == 2:
            if default_probability is None:
                raise ValueError(
                    f"line {lineno}: no probability column and no default_probability given"
                )
            u, v, p = parts[0], parts[1], default_probability
        elif len(parts) == 3:
            u, v = parts[0], parts[1]
            try:
                p = float(parts[2])
            except ValueError as exc:
                raise ValueError(f"line {lineno}: bad probability {parts[2]!r}") from exc
        else:
            raise ValueError(f"line {lineno}: expected 2 or 3 columns, got {len(parts)}")
        builder.add_edge(_coerce_label(u), _coerce_label(v), p)
    return builder


def _coerce_label(token: str):
    """Integer-looking tokens become ints so files round-trip id-stably."""
    try:
        return int(token)
    except ValueError:
        return token


def read_edge_list(
    source: Union[PathLike, IO[str]],
    default_probability: float | None = None,
    return_labels: bool = False,
):
    """Read an edge list from a path or open text handle.

    Returns the graph, or ``(graph, labels)`` when ``return_labels`` is set,
    where ``labels`` maps original file labels to dense node ids.
    """
    if hasattr(source, "read"):
        builder = _parse_lines(source, default_probability)
    else:
        with open(source, "r", encoding="utf-8") as handle:
            builder = _parse_lines(handle, default_probability)
    if return_labels:
        return builder.build_with_labels()
    return builder.build()
