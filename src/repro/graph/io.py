"""Edge-list serialisation for probabilistic digraphs.

The on-disk format is the plain whitespace-separated triple format used by
the influence-maximisation literature (and the SNAP collection, plus a
probability column)::

    # comment lines start with '#'
    <source> <target> <probability>

Node ids in a file may be arbitrary non-negative integers or strings; they
are densified on read and the mapping can be recovered via
``read_edge_list(..., return_labels=True)``.

Paths ending in ``.gz`` are read and written through gzip transparently.
Raw SNAP dumps repeat arcs; ``on_duplicate`` forwards the
:class:`~repro.graph.builder.GraphBuilder` policy (``"error"`` — the
round-trip-safe default — ``"first"``, or ``"max"``).  For SNAP-scale
files prefer the streaming :mod:`repro.data` pipeline; this reader
builds the whole graph in memory.
"""

from __future__ import annotations

import gzip
import io
import os
from typing import IO, Iterable, Union

from repro.graph.builder import GraphBuilder
from repro.graph.digraph import ProbabilisticDigraph

PathLike = Union[str, os.PathLike]


def _is_gz(path: PathLike) -> bool:
    return os.fspath(path).endswith(".gz")


def write_edge_list(graph: ProbabilisticDigraph, path: PathLike, precision: int = 17) -> None:
    """Write ``graph`` as a ``u v p`` edge list (dense integer node ids).

    A ``.gz`` suffix gzip-compresses the output (``mtime=0`` so identical
    graphs produce byte-identical files).
    """
    if _is_gz(path):
        raw = open(path, "wb")
        # filename="" keeps the target path out of the gzip header, so
        # identical graphs stay byte-identical wherever they are written.
        handle = gzip.GzipFile(filename="", fileobj=raw, mode="wb", mtime=0)
        text: IO[str] = io.TextIOWrapper(handle, encoding="utf-8")
    else:
        raw = None
        text = open(path, "w", encoding="utf-8")
    try:
        text.write(f"# nodes {graph.num_nodes} edges {graph.num_edges}\n")
        for u, v, p in graph.edges():
            text.write(f"{u} {v} {p:.{precision}g}\n")
    finally:
        text.close()
        if raw is not None:
            raw.close()


def _parse_lines(
    lines: Iterable[str],
    default_probability: float | None,
    on_duplicate: str = "error",
) -> GraphBuilder:
    builder = GraphBuilder(on_duplicate=on_duplicate)
    declared_nodes: int | None = None
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line[1:].split()
            if len(parts) >= 2 and parts[0] == "nodes":
                try:
                    declared_nodes = int(parts[1])
                except ValueError:
                    declared_nodes = None
                if declared_nodes is not None:
                    # Pre-register 0..n-1 so ids round-trip identically for
                    # files produced by write_edge_list.
                    for node in range(declared_nodes):
                        builder.add_node(node)
            continue
        parts = line.split()
        if len(parts) == 2:
            if default_probability is None:
                raise ValueError(
                    f"line {lineno}: no probability column and no default_probability given"
                )
            u, v, p = parts[0], parts[1], default_probability
        elif len(parts) == 3:
            u, v = parts[0], parts[1]
            try:
                p = float(parts[2])
            except ValueError as exc:
                raise ValueError(f"line {lineno}: bad probability {parts[2]!r}") from exc
        else:
            raise ValueError(f"line {lineno}: expected 2 or 3 columns, got {len(parts)}")
        builder.add_edge(_coerce_label(u), _coerce_label(v), p)
    return builder


def _coerce_label(token: str):
    """Integer-looking tokens become ints so files round-trip id-stably."""
    try:
        return int(token)
    except ValueError:
        return token


def read_edge_list(
    source: Union[PathLike, IO[str]],
    default_probability: float | None = None,
    return_labels: bool = False,
    on_duplicate: str = "error",
):
    """Read an edge list from a path or open text handle.

    Paths ending in ``.gz`` are decompressed transparently.
    ``on_duplicate`` forwards the builder's duplicate-arc policy; the
    default ``"error"`` preserves the historical round-trip contract.
    Returns the graph, or ``(graph, labels)`` when ``return_labels`` is set,
    where ``labels`` maps original file labels to dense node ids.
    """
    if hasattr(source, "read"):
        builder = _parse_lines(source, default_probability, on_duplicate)
    elif _is_gz(source):
        with gzip.open(source, "rt", encoding="utf-8") as handle:
            builder = _parse_lines(handle, default_probability, on_duplicate)
    else:
        with open(source, "r", encoding="utf-8") as handle:
            builder = _parse_lines(handle, default_probability, on_duplicate)
    if return_labels:
        return builder.build_with_labels()
    return builder.build()
