"""Split one cascade-index store into per-shard stores + a routing map.

``partition_store`` takes an existing store directory and produces a
*fleet directory*::

    fleet/
      partition.json      <- checksummed routing map (this module)
      shard-00.cidx/      <- replica 0 of shard 0 (v1-compatible name)
      shard-00.r1.cidx/   <- replica 1 of shard 0 (``--replicas 2``)
      shard-01.cidx/
      ...

Two partitioning modes:

``node-range``
    Shard ``s`` *owns* the contiguous node range ``[lo_s, hi_s)`` with
    ``lo_s = floor(s * n / N)`` — a pure function of ``(n, N)``, so the
    router and any client computing the map independently agree.  A
    sphere or cascade query for an owned node still needs the full graph
    and every sampled world (a cascade can reach any node), so each
    shard directory carries the complete column set — hard-linked from
    the source where the filesystem allows, copied otherwise.  What is
    partitioned is *responsibility*: each worker's cache, admission
    slots, compute load and quarantine blast-radius cover only its
    range.  Because ``append_worlds`` and reloads replace columns via
    ``os.replace`` (new inode), mutating one shard never leaks into its
    siblings despite the shared bytes.

``world-block``
    Shard ``s`` holds the contiguous world block ``[lo_s, hi_s)`` as a
    genuinely sliced store (its columns contain only that block).  Useful
    for distributing per-world analytics or append work; the serving
    router refuses this mode (a sphere is a median over *all* worlds, so
    no single world-block shard can answer it byte-identically).

Replication (``replicas=R``) materialises each shard ``R`` times.  Every
replica of a shard is pinned to the *same* per-column sha256 digests,
recorded in the map itself (format version 2): the cascade index is
immutable per generation, so two replicas of a shard are byte-identical
by contract, any replica can serve any request for the range, and
anti-entropy (``repro shard scrub`` / ``repair``) reduces to comparing
file hashes against the map.  Replica dirs share hard-linked column
inodes where the filesystem allows — divergence in practice means a
column was *replaced* (new inode) or the directory lost, which is
exactly what scrub detects and repair rebuilds from a healthy peer.

Every shard directory is built in a ``*.staging`` sibling and renamed
into place, and ``partition.json`` is written last (write + ``os.replace``)
— a crash mid-partition leaves no fleet directory that parses.  The map
carries a self-checksum in the style of the store header, so a corrupted
or hand-edited map is refused before any request is routed by it.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Union

from repro.store.errors import StoreFormatError, StoreIntegrityError
from repro.store.fingerprint import digest_text
from repro.store.format import ARRAY_DTYPES, HEADER_NAME, read_header

PathLike = Union[str, os.PathLike]

PARTITION_NAME = "partition.json"
PARTITION_MAGIC = "repro-partition-map"
#: Version 2 added ``replicas`` / per-entry ``replica_dirs`` +
#: ``column_digests``; version-1 maps (single replica, no pinned columns)
#: are still read.
PARTITION_VERSION = 2

MODES = ("node-range", "world-block")


def shard_dir_name(shard_id: int) -> str:
    return f"shard-{shard_id:02d}.cidx"


def replica_dir_name(shard_id: int, replica: int) -> str:
    """Directory name of one replica; replica 0 keeps the v1 shard name."""
    if replica == 0:
        return shard_dir_name(shard_id)
    return f"shard-{shard_id:02d}.r{replica}.cidx"


def shard_ranges(total: int, num_shards: int) -> list[tuple[int, int]]:
    """Contiguous near-equal ranges: shard ``s`` gets ``[s*t//N, (s+1)*t//N)``.

    Deterministic in ``(total, num_shards)`` alone — the routing contract
    depends on every party computing identical boundaries.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if num_shards > total:
        raise ValueError(
            f"cannot split {total} units across {num_shards} shards "
            "(at least one shard would be empty)"
        )
    return [
        (s * total // num_shards, (s + 1) * total // num_shards)
        for s in range(num_shards)
    ]


@dataclass(frozen=True)
class ShardEntry:
    """One shard's slot in the map: what it owns and where its replicas live."""

    shard_id: int
    replica_dirs: tuple[str, ...]
    lo: int
    hi: int
    content_digest: str
    #: ``((column_name, sha256), ...)`` sorted by name — the byte contract
    #: every replica of this shard is pinned to.  Empty on maps read from
    #: format version 1 (scrub then falls back to each replica's own
    #: self-checksummed header).
    column_digests: tuple[tuple[str, str], ...] = field(default=())

    @property
    def dir(self) -> str:
        """Primary replica directory (the v1 single-replica field)."""
        return self.replica_dirs[0]

    @property
    def column_digest_map(self) -> dict[str, str]:
        return dict(self.column_digests)

    def to_mapping(self, mode: str) -> dict:
        prefix = "node" if mode == "node-range" else "world"
        return {
            "shard_id": self.shard_id,
            "replica_dirs": list(self.replica_dirs),
            f"{prefix}_lo": self.lo,
            f"{prefix}_hi": self.hi,
            "content_digest": self.content_digest,
            "column_digests": {name: sha for name, sha in self.column_digests},
        }

    @classmethod
    def from_mapping(cls, raw: dict, mode: str) -> "ShardEntry":
        prefix = "node" if mode == "node-range" else "world"
        try:
            if "replica_dirs" in raw:
                dirs = tuple(str(d) for d in raw["replica_dirs"])
            else:
                dirs = (str(raw["dir"]),)  # format version 1
            if not dirs:
                raise ValueError("entry lists no replica directories")
            columns = raw.get("column_digests", {})
            if not isinstance(columns, dict):
                raise TypeError("column_digests must be a mapping")
            return cls(
                shard_id=int(raw["shard_id"]),
                replica_dirs=dirs,
                lo=int(raw[f"{prefix}_lo"]),
                hi=int(raw[f"{prefix}_hi"]),
                content_digest=str(raw["content_digest"]),
                column_digests=tuple(
                    (str(k), str(v)) for k, v in sorted(columns.items())
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreFormatError(
                f"malformed partition shard entry: {raw!r}"
            ) from exc


@dataclass(frozen=True)
class PartitionMap:
    """Parsed, validated ``partition.json`` of a fleet directory."""

    mode: str
    num_shards: int
    num_nodes: int
    num_worlds: int
    source_digest: str
    shards: tuple[ShardEntry, ...]
    replicas: int = 1

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise StoreFormatError(
                f"partition mode must be one of {MODES}, got {self.mode!r}"
            )
        if self.replicas < 1:
            raise StoreFormatError(
                f"partition map declares {self.replicas} replicas"
            )
        if len(self.shards) != self.num_shards:
            raise StoreFormatError(
                f"partition map declares {self.num_shards} shards but lists "
                f"{len(self.shards)}"
            )
        for entry in self.shards:
            if len(entry.replica_dirs) != self.replicas:
                raise StoreFormatError(
                    f"shard {entry.shard_id} lists {len(entry.replica_dirs)} "
                    f"replica dirs but the map declares {self.replicas} "
                    "replicas"
                )
        all_dirs = [d for e in self.shards for d in e.replica_dirs]
        if len(set(all_dirs)) != len(all_dirs):
            raise StoreIntegrityError(
                "partition map lists the same directory for two replicas"
            )
        total = self.num_nodes if self.mode == "node-range" else self.num_worlds
        expected = shard_ranges(total, self.num_shards)
        actual = [(e.lo, e.hi) for e in self.shards]
        if actual != expected:
            raise StoreIntegrityError(
                f"partition ranges {actual} are not the canonical split of "
                f"{total} units across {self.num_shards} shards {expected}"
            )

    def shard_for_node(self, node: int) -> int:
        """The shard owning ``node`` — O(1) from the canonical split."""
        if self.mode != "node-range":
            raise StoreFormatError(
                f"cannot route nodes over a {self.mode!r} partition"
            )
        if not 0 <= node < self.num_nodes:
            raise KeyError(
                f"node {node} not in index ({self.num_nodes} nodes)"
            )
        # Inverse of lo_s = s*n//N: candidate via the real-valued split,
        # corrected by at most one step for the floor rounding.
        s = min(self.num_shards - 1, node * self.num_shards // self.num_nodes)
        while node < self.shards[s].lo:
            s -= 1
        while node >= self.shards[s].hi:
            s += 1
        return s

    def to_json(self) -> str:
        payload = {
            "magic": PARTITION_MAGIC,
            "format_version": PARTITION_VERSION,
            "mode": self.mode,
            "num_shards": self.num_shards,
            "replicas": self.replicas,
            "num_nodes": self.num_nodes,
            "num_worlds": self.num_worlds,
            "source_digest": self.source_digest,
            "shards": [e.to_mapping(self.mode) for e in self.shards],
        }
        body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        payload["map_checksum"] = digest_text(body)
        return json.dumps(payload, sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "PartitionMap":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise StoreFormatError(
                f"partition map is not valid JSON: {exc}"
            ) from exc
        if not isinstance(payload, dict) or payload.get("magic") != PARTITION_MAGIC:
            raise StoreFormatError(
                "not a partition map (bad or missing magic string)"
            )
        version = payload.get("format_version")
        if version not in (1, PARTITION_VERSION):
            raise StoreFormatError(
                f"unsupported partition map version {version!r} "
                f"(this library reads versions 1 and {PARTITION_VERSION})"
            )
        recorded = payload.pop("map_checksum", None)
        if recorded is None:
            raise StoreIntegrityError("partition map is missing its checksum")
        body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        if digest_text(body) != recorded:
            raise StoreIntegrityError(
                "partition map checksum mismatch — the map was corrupted or "
                "edited"
            )
        try:
            mode = str(payload["mode"])
            shards = tuple(
                ShardEntry.from_mapping(raw, mode) for raw in payload["shards"]
            )
            return cls(
                mode=mode,
                num_shards=int(payload["num_shards"]),
                num_nodes=int(payload["num_nodes"]),
                num_worlds=int(payload["num_worlds"]),
                source_digest=str(payload["source_digest"]),
                shards=shards,
                replicas=int(payload.get("replicas", 1)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreFormatError(
                f"partition map is missing required fields: {exc}"
            ) from exc


def load_partition(fleet_dir: PathLike) -> PartitionMap:
    """Parse and checksum-validate ``<fleet_dir>/partition.json``."""
    root = Path(os.fspath(fleet_dir))
    path = root / PARTITION_NAME
    if not path.is_file():
        raise StoreFormatError(
            f"{root} is not a fleet directory (no {PARTITION_NAME})"
        )
    return PartitionMap.from_json(path.read_text())


def verify_partition_stores(fleet_dir: PathLike, partition: PartitionMap) -> None:
    """Check every replica directory exists and matches its recorded digest.

    This is the cheap (header-only) topology cross-check the fleet runs at
    startup: shard count and replica count come from the map shape, and the
    generation pin is each replica's self-checksummed header
    ``content_digest`` matching the map.  Full column hashing is
    :func:`repro.shard.repair.scrub_fleet`'s job.
    """
    root = Path(os.fspath(fleet_dir))
    for entry in partition.shards:
        for replica, dir_name in enumerate(entry.replica_dirs):
            shard_root = root / dir_name
            header = read_header(shard_root)
            if header.content_digest != entry.content_digest:
                raise StoreIntegrityError(
                    f"shard {entry.shard_id} replica {replica} at "
                    f"{shard_root} has content digest "
                    f"{header.content_digest}, partition map records "
                    f"{entry.content_digest} — the replica was rebuilt "
                    "without re-partitioning"
                )


def _link_or_copy(src: Path, dst: Path) -> None:
    try:
        os.link(src, dst)
    except OSError:
        shutil.copy2(src, dst)


def _stage_replica_dir(source: Path, staging: Path) -> None:
    """Materialise one replica: full column set, linked not copied."""
    staging.mkdir(parents=True)
    for name in ARRAY_DTYPES:
        _link_or_copy(source / f"{name}.npy", staging / f"{name}.npy")
    # The header is tiny; an independent copy keeps a hand-edited shard
    # header from silently changing its siblings through a shared inode.
    shutil.copy2(source / HEADER_NAME, staging / HEADER_NAME)


def _stage_world_block_shard(index, lo: int, hi: int, staging: Path) -> str:
    """Write worlds ``[lo, hi)`` of ``index`` as a standalone sliced store."""
    import numpy as np

    from repro.cascades.index import CascadeIndex
    from repro.store.format import write_index

    sub = CascadeIndex(
        index.graph,
        [index.condensation(w) for w in range(lo, hi)],
        reduced=index.reduced,
        # No sampler: worlds lo..hi of the source are *not* worlds 0..hi-lo
        # of a fresh build, so a sliced shard cannot deterministically
        # append — its header honestly records no seed entropy.
        sampler=None,
        members=[index.world_members(w) for w in range(lo, hi)],
        node_comp=np.ascontiguousarray(index.component_matrix[:, lo:hi]),
    )
    header = write_index(sub, staging)
    return header.content_digest


def _column_digests(store_dir: Path) -> tuple[tuple[str, str], ...]:
    """The per-column sha256 pins, straight from a self-checksummed header."""
    header = read_header(store_dir)
    return tuple(
        (name, header.arrays[name].sha256) for name in sorted(header.arrays)
    )


def partition_store(
    store: PathLike,
    out: PathLike,
    num_shards: int,
    *,
    by: str = "node-range",
    replicas: int = 1,
    overwrite: bool = False,
) -> PartitionMap:
    """Split ``store`` into ``num_shards`` x ``replicas`` stores under ``out``.

    Returns the written :class:`PartitionMap`.  Refuses to clobber an
    existing ``out`` unless ``overwrite`` is set *and* it already looks
    like a fleet directory (never silently replaces foreign data).
    """
    if by not in MODES:
        raise ValueError(f"by must be one of {MODES}, got {by!r}")
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    source = Path(os.fspath(store))
    header = read_header(source)
    root = Path(os.fspath(out))
    if root.exists():
        if not overwrite:
            raise FileExistsError(
                f"{root} already exists; pass overwrite=True to replace it"
            )
        if not (root / PARTITION_NAME).is_file():
            raise StoreFormatError(
                f"{root} exists and is not a fleet directory; refusing to "
                "overwrite"
            )
        shutil.rmtree(root)
    root.mkdir(parents=True)

    total = header.num_nodes if by == "node-range" else header.num_worlds
    ranges = shard_ranges(total, num_shards)
    index = None
    if by == "world-block":
        from repro.cascades.index import CascadeIndex

        index = CascadeIndex.load(source)

    source_columns = tuple(
        (name, header.arrays[name].sha256) for name in sorted(header.arrays)
    )

    entries: list[ShardEntry] = []
    for shard_id, (lo, hi) in enumerate(ranges):
        dirs: list[str] = []
        digest = header.content_digest
        columns = source_columns
        for replica in range(replicas):
            name = replica_dir_name(shard_id, replica)
            final = root / name
            staging = root / (name + ".staging")
            if staging.exists():
                shutil.rmtree(staging)
            if by == "node-range":
                _stage_replica_dir(source, staging)
            elif replica == 0:
                digest = _stage_world_block_shard(index, lo, hi, staging)
                columns = _column_digests(staging)
            else:
                # Later world-block replicas link from the sliced replica 0
                # rather than re-slicing: bit-identical by construction.
                _stage_replica_dir(root / dirs[0], staging)
            os.rename(staging, final)
            dirs.append(name)
        entries.append(
            ShardEntry(
                shard_id=shard_id,
                replica_dirs=tuple(dirs),
                lo=lo,
                hi=hi,
                content_digest=digest,
                column_digests=columns,
            )
        )

    partition = PartitionMap(
        mode=by,
        num_shards=num_shards,
        num_nodes=header.num_nodes,
        num_worlds=header.num_worlds,
        source_digest=header.content_digest,
        shards=tuple(entries),
        replicas=replicas,
    )
    tmp = root / (PARTITION_NAME + ".tmp")
    tmp.write_text(partition.to_json())
    os.replace(tmp, root / PARTITION_NAME)
    return partition
