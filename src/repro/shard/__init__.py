"""Sharded multi-process serving: partitioner, worker fleet, front router.

The single-process service (:mod:`repro.serve`) caps out at one
``ThreadingHTTPServer`` over one mmap'd store.  This package scales it out
while keeping the *either correct or refused* contract:

* :mod:`repro.shard.partition` splits a store into N independent per-shard
  store directories — each materialised as R byte-identical *replicas*
  pinned to the same column digests — plus a checksummed
  ``partition.json`` routing map;
* :mod:`repro.shard.fleet` launches and supervises one
  ``python -m repro serve`` worker per shard replica (respawn-on-crash
  with bounded deterministic backoff) after cross-checking the on-disk
  topology against the map;
* :mod:`repro.shard.router` is the thin stdlib frontend: it routes
  single-node queries by the partition map with health-aware replica
  selection, transparent failover and retry-budgeted hedged reads,
  scatter-gathers batches, aggregates ``/healthz`` and ``/metrics``
  (shard/replica-labelled), propagates worker refusals verbatim,
  circuit-breaks per replica, and performs rolling generation-checked
  hot reloads that never drop a range below quorum;
* :mod:`repro.shard.repair` is the anti-entropy pass: scrub compares
  every replica's bytes against the map's pinned digests, repair rebuilds
  a divergent replica from a healthy peer with verify-then-atomic-rename.
"""

from repro.shard.errors import ShardUnavailable, UpstreamError
from repro.shard.fleet import Fleet, WorkerHandle, check_fleet_topology, run_fleet
from repro.shard.partition import (
    PARTITION_NAME,
    PartitionMap,
    ShardEntry,
    load_partition,
    partition_store,
    replica_dir_name,
)
from repro.shard.repair import (
    FleetScrub,
    RepairError,
    RepairReport,
    ReplicaScrub,
    repair_replica,
    scrub_fleet,
    scrub_replica,
)
from repro.shard.router import RetryBudget, ShardRouter, StaticEndpoint

__all__ = [
    "PARTITION_NAME",
    "Fleet",
    "FleetScrub",
    "PartitionMap",
    "RepairError",
    "RepairReport",
    "ReplicaScrub",
    "RetryBudget",
    "ShardEntry",
    "ShardRouter",
    "ShardUnavailable",
    "StaticEndpoint",
    "UpstreamError",
    "WorkerHandle",
    "check_fleet_topology",
    "load_partition",
    "partition_store",
    "repair_replica",
    "replica_dir_name",
    "run_fleet",
    "scrub_fleet",
    "scrub_replica",
]
