"""Sharded multi-process serving: partitioner, worker fleet, front router.

The single-process service (:mod:`repro.serve`) caps out at one
``ThreadingHTTPServer`` over one mmap'd store.  This package scales it out
while keeping the *either correct or refused* contract:

* :mod:`repro.shard.partition` splits a store into N independent per-shard
  store directories plus a checksummed ``partition.json`` routing map;
* :mod:`repro.shard.fleet` launches and supervises one
  ``python -m repro serve`` worker per shard (respawn-on-crash with
  bounded deterministic backoff);
* :mod:`repro.shard.router` is the thin stdlib frontend: it routes
  single-node queries by the partition map, scatter-gathers batches,
  aggregates ``/healthz`` and ``/metrics`` (shard-labelled), propagates
  worker refusals verbatim, circuit-breaks per shard, and performs rolling
  generation-checked hot reloads.
"""

from repro.shard.errors import ShardUnavailable, UpstreamError
from repro.shard.fleet import Fleet, WorkerHandle, run_fleet
from repro.shard.partition import (
    PARTITION_NAME,
    PartitionMap,
    ShardEntry,
    load_partition,
    partition_store,
)
from repro.shard.router import ShardRouter, StaticEndpoint

__all__ = [
    "PARTITION_NAME",
    "Fleet",
    "PartitionMap",
    "ShardEntry",
    "ShardRouter",
    "ShardUnavailable",
    "StaticEndpoint",
    "UpstreamError",
    "WorkerHandle",
    "load_partition",
    "partition_store",
    "run_fleet",
]
