"""HTTP surface of the shard router.

One ``BaseHTTPRequestHandler`` subclass maps the worker URL surface onto
:class:`~repro.shard.router.ShardRouter` methods:

====== ======================== ==========================================
method path                     router call
====== ======================== ==========================================
GET    /healthz                 :meth:`ShardRouter.healthz` (aggregated)
GET    /metrics                 :meth:`ShardRouter.metrics_text` (merged)
GET    /sphere/{node}           :meth:`ShardRouter.sphere` (relayed)
GET    /cascades/{node}[?world] :meth:`ShardRouter.cascades` (relayed)
POST   /spheres                 :meth:`ShardRouter.sphere_batch` (scatter)
POST   /admin/reload            :meth:`ShardRouter.reload` (rolling)
POST   /admin/scrub             :meth:`ShardRouter.scrub` (anti-entropy)
POST   /admin/repair            :meth:`ShardRouter.repair` (anti-entropy)
POST   /jobs/infmax             :meth:`ShardRouter.relay_jobs` (relayed)
GET    /jobs[/{id}[/result]]    :meth:`ShardRouter.relay_jobs` (relayed)
POST   /jobs/{id}/cancel        :meth:`ShardRouter.relay_jobs` (relayed)
====== ======================== ==========================================

Single-node responses are *relays*: the worker's status, body bytes,
``Content-Type`` and ``Retry-After`` pass through unchanged, so a client
cannot tell a routed response from a direct worker hit — including the
worker's own 429/503/504 refusals.  Router-originated refusals (breaker
open, worker down, malformed request) render through the same JSON error
shape the workers use.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.serve.errors import (
    BadRequest,
    NodeNotFound,
    PayloadTooLarge,
    RetryableError,
    ServeError,
)
from repro.serve.handlers import MAX_BODY_BYTES
from repro.serve.query import canonical_json
from repro.shard.router import RelayResponse, ShardRouter


def _parse_int(raw: str, name: str) -> int:
    try:
        return int(raw)
    except ValueError:
        raise BadRequest(f"{name} must be an integer, got {raw!r}") from None


class RouterRequestHandler(BaseHTTPRequestHandler):
    """Routes requests to the server's :class:`ShardRouter`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-router/1.0"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    @property
    def router(self) -> ShardRouter:
        return self.server.router

    # -- plumbing ------------------------------------------------------------

    def _send(
        self,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        extra_headers: tuple[tuple[str, str], ...] = (),
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in extra_headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: Any, **kwargs) -> None:
        self._send(status, canonical_json(payload), **kwargs)

    def _send_relay(self, response: RelayResponse) -> int:
        """Pass a worker response through byte-for-byte."""
        content_type = response.headers.get("Content-Type", "application/json")
        extra = tuple(
            ("Retry-After", value)
            for value in (response.headers.get("Retry-After"),)
            if value is not None
        )
        self._send(
            response.status,
            response.body,
            content_type=content_type,
            extra_headers=extra,
        )
        return response.status

    def _send_error_payload(self, exc: ServeError) -> None:
        extra: tuple[tuple[str, str], ...] = ()
        if isinstance(exc, RetryableError):
            extra = (("Retry-After", format(exc.retry_after, "g")),)
        self._send_json(
            exc.status,
            {"error": {"status": exc.status, "message": exc.message}},
            extra_headers=extra,
        )

    def send_error(self, code, message=None, explain=None) -> None:  # noqa: D102
        # Same JSON error surface as the workers for transport-level
        # failures (unsupported method, bad request line).
        code = int(code)
        if message is None:
            short, _ = self.responses.get(code, ("error", ""))
            message = short
        self.close_connection = True
        try:
            body = canonical_json(
                {"error": {"status": code, "message": str(message)}}
            )
            self.send_response(code, str(message))
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.send_header("Connection", "close")
            self.end_headers()
            if self.command != "HEAD":
                self.wfile.write(body)
        except OSError:
            pass  # client already gone

    def _dispatch(self, endpoint: str, handler) -> None:
        router = self.router
        start = time.perf_counter()
        status = 500
        try:
            status = handler()
        except ServeError as exc:
            status = exc.status
            self._send_error_payload(exc)
        except BrokenPipeError:
            pass  # client went away mid-response
        except Exception as exc:
            # Includes an InjectedFault from the router.pick site: even a
            # chaos-armed router answers with an explicit sanitized 500.
            status = 500
            try:
                self._send_json(
                    500,
                    {"error": {"status": 500,
                               "message": f"internal error ({type(exc).__name__})"}},
                )
            except OSError:
                pass
        finally:
            router.request_seconds.observe(
                time.perf_counter() - start, endpoint=endpoint
            )
            router.requests_total.inc(endpoint=endpoint, status=str(status))

    def _query_params(self) -> dict[str, str]:
        parsed = parse_qs(urlsplit(self.path).query, keep_blank_values=False)
        return {name: values[-1] for name, values in parsed.items()}

    def _read_json_body(self, *, required: bool) -> Any:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise BadRequest("Content-Length must be an integer") from None
        if length <= 0:
            if required:
                raise BadRequest("this endpoint needs a JSON body")
            return None
        if length > MAX_BODY_BYTES:
            raise PayloadTooLarge(
                f"body of {length} bytes exceeds the {MAX_BODY_BYTES} limit"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise BadRequest(f"body is not valid JSON: {exc}") from None

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = urlsplit(self.path).path.rstrip("/") or "/"
        parts = [p for p in path.split("/") if p]
        if path == "/healthz":
            self._dispatch("healthz", self._handle_healthz)
        elif path == "/metrics":
            self._dispatch("metrics", self._handle_metrics)
        elif len(parts) == 2 and parts[0] == "sphere":
            self._dispatch("sphere", lambda: self._handle_sphere(parts[1]))
        elif len(parts) == 2 and parts[0] == "cascades":
            self._dispatch("cascades", lambda: self._handle_cascades(parts[1]))
        elif parts and parts[0] == "jobs" and len(parts) <= 3:
            self._dispatch("jobs", lambda: self._handle_jobs_relay(path))
        else:
            self._dispatch("unknown", self._handle_unknown)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = urlsplit(self.path).path.rstrip("/")
        parts = [p for p in path.split("/") if p]
        if path == "/spheres":
            self._dispatch("spheres_batch", self._handle_batch)
        elif path == "/admin/reload":
            self._dispatch("admin_reload", self._handle_reload)
        elif path == "/admin/scrub":
            self._dispatch("admin_scrub", self._handle_scrub)
        elif path == "/admin/repair":
            self._dispatch("admin_repair", self._handle_repair)
        elif path == "/jobs/infmax" or (
            len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel"
        ):
            self._dispatch("jobs", lambda: self._handle_jobs_relay(path))
        else:
            self._dispatch("unknown", self._handle_unknown)

    # -- endpoint bodies (each returns the response status it sent) ----------

    def _handle_healthz(self) -> int:
        status, payload = self.router.healthz()
        self._send_json(status, payload)
        return status

    def _handle_metrics(self) -> int:
        body = self.router.metrics_text().encode("utf-8")
        self._send(200, body, content_type="text/plain; version=0.0.4")
        return 200

    def _handle_sphere(self, raw_node: str) -> int:
        node = _parse_int(raw_node, "node")
        return self._send_relay(self.router.sphere(node))

    def _handle_cascades(self, raw_node: str) -> int:
        node = _parse_int(raw_node, "node")
        params = self._query_params()
        world = None
        if "world" in params:
            world = _parse_int(params["world"], "world")
        return self._send_relay(self.router.cascades(node, world))

    def _handle_batch(self) -> int:
        payload = self._read_json_body(required=True)
        if not isinstance(payload, dict) or "nodes" not in payload:
            raise BadRequest('body must be a JSON object {"nodes": [...]}')
        nodes = payload["nodes"]
        if not isinstance(nodes, list):
            raise BadRequest("'nodes' must be a list of integers")
        self._send_json(200, self.router.sphere_batch(nodes))
        return 200

    def _handle_reload(self) -> int:
        status, payload = self.router.reload()
        self._send_json(status, payload)
        return status

    def _handle_scrub(self) -> int:
        status, payload = self.router.scrub()
        self._send_json(status, payload)
        return status

    def _handle_repair(self) -> int:
        payload = self._read_json_body(required=True)
        if not isinstance(payload, dict):
            raise BadRequest(
                'body must be a JSON object {"shard": s, "replica": r}'
            )
        shard_id = self._body_int(payload, "shard")
        replica = self._body_int(payload, "replica")
        source = None
        if payload.get("source_replica") is not None:
            source = self._body_int(payload, "source_replica")
        status, report = self.router.repair(
            shard_id, replica, source_replica=source
        )
        self._send_json(status, report)
        return status

    @staticmethod
    def _body_int(payload: dict, name: str) -> int:
        value = payload.get(name)
        if isinstance(value, bool) or not isinstance(value, int):
            raise BadRequest(f"'{name}' must be an integer, got {value!r}")
        return value

    def _handle_jobs_relay(self, path: str) -> int:
        """Relay a /jobs/* request to the fleet's dedicated jobs worker.

        The body passes through as raw bytes (size-capped here, validated
        by the jobs worker) and the response relays verbatim, so a routed
        job call is byte-identical to a direct worker hit.
        """
        body = self._read_raw_body() if self.command == "POST" else None
        return self._send_relay(self.router.relay_jobs(self.command, path, body))

    def _read_raw_body(self) -> bytes | None:
        """The request body bytes for relaying, size-capped before the read."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise BadRequest("Content-Length must be an integer") from None
        if length <= 0:
            return None
        if length > MAX_BODY_BYTES:
            raise PayloadTooLarge(
                f"body of {length} bytes exceeds the {MAX_BODY_BYTES} limit"
            )
        return self.rfile.read(length)

    def _handle_unknown(self) -> int:
        raise NodeNotFound(f"no route for {self.command} {self.path}")


class RouterHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server that drains in-flight requests on close."""

    daemon_threads = False
    allow_reuse_address = True

    def __init__(self, address, handler_class, router: ShardRouter) -> None:
        self.router = router
        super().__init__(address, handler_class)


def make_router_server(
    router: ShardRouter, host: str = "127.0.0.1", port: int = 0
) -> RouterHTTPServer:
    """Bind a draining router server (``port=0`` = ephemeral)."""
    return RouterHTTPServer((host, port), RouterRequestHandler, router)
