"""Router-specific refusals, extending the serve error hierarchy.

The router never invents data: a request either relays a worker response
verbatim (including the worker's own 4xx/5xx JSON surface) or fails with
one of these explicit errors.  Both reuse the JSON error rendering of
:mod:`repro.serve.handlers`, so clients see one uniform error shape
whether the refusal happened in a worker or in the router.

====  ==========================  ========================================
code  exception                   cause
====  ==========================  ========================================
502   :class:`UpstreamError`      the worker connection failed mid-request
                                  (reset, protocol error, injected fault)
503   :class:`ShardUnavailable`   the shard's worker is down/respawning or
                                  its router-side circuit breaker is open
====  ==========================  ========================================
"""

from __future__ import annotations

from repro.serve.errors import RetryableError, ServeError


class UpstreamError(ServeError):
    """The forward to a worker failed at the transport layer.

    The worker may or may not have processed the request; the router
    cannot know, so it refuses explicitly instead of retrying (a retry
    could double-run a non-idempotent admin call)."""

    status = 502


class ShardUnavailable(RetryableError):
    """The shard cannot take traffic right now: its worker process is down
    (the fleet supervisor is respawning it) or the router's per-shard
    circuit breaker is open after repeated transport failures.  Carries a
    ``Retry-After`` hint; other shards keep serving."""

    status = 503
